// Micro-bench (§3 latency inventory): the modelled API overheads and the
// fabric's message-latency/bandwidth curves, printed against the ranges the
// paper quotes so the cost model's provenance is auditable.
#include <iostream>

#include "common.hpp"

using namespace hs;

int main() {
  const auto cm = sim::CostModel::h100_eos();

  bench::print_header("Micro — §3 latency inventory (modelled vs paper)",
                      "GPU API overheads and per-link transfer costs.");

  util::Table api({"quantity", "modelled", "paper"});
  api.add_row({"kernel launch", util::Table::fmt(cm.kernel_launch_ns / 1000.0, 1) + " us",
               "2-10 us"});
  api.add_row({"event API call", util::Table::fmt(cm.event_api_ns / 1000.0, 2) + " us",
               "< 1 us"});
  api.add_row({"local NB per atom", util::Table::fmt(cm.nb_local_ns_per_atom, 2) + " ns",
               "1.7-2.0 ns"});
  api.add_row({"launch calls per step (~20)",
               util::Table::fmt(20 * cm.kernel_launch_ns / 1000.0, 0) + " us",
               "~40-200 us total"});
  api.add_row({"event calls per step (~30)",
               util::Table::fmt(30 * cm.event_api_ns / 1000.0, 0) + " us",
               "< 30 us total"});
  api.print(std::cout);

  std::cout << "\nTransfer cost (one message, latency + wire), per link:\n";
  util::Table xfer({"bytes", "nvlink us", "ib us", "ib/nvlink"});
  sim::Machine machine(sim::Topology::dgx_h100(2, 2), cm);
  auto& fabric = machine.fabric();
  for (std::size_t bytes : {1024u, 16384u, 131072u, 1048576u, 8388608u}) {
    const double nv = sim::to_us(fabric.estimate(0, 1, bytes));
    const double ib = sim::to_us(fabric.estimate(0, 2, bytes));
    xfer.add_row({std::to_string(bytes), util::Table::fmt(nv, 2),
                  util::Table::fmt(ib, 2), util::Table::fmt(ib / nv, 1) + "x"});
  }
  xfer.print(std::cout);

  std::cout << "\nDevice-initiated op costs (NVSHMEM-path model):\n";
  util::Table dev({"op", "cost"});
  dev.add_row({"system release store (notify)",
               util::Table::fmt(cm.signal_release_ns / 1000.0, 2) + " us"});
  dev.add_row({"system relaxed store",
               util::Table::fmt(cm.signal_relaxed_ns / 1000.0, 2) + " us"});
  dev.add_row({"acquire-wait poll granularity",
               util::Table::fmt(cm.signal_poll_ns / 1000.0, 2) + " us"});
  dev.add_row({"TMA bulk issue (warp leader)",
               util::Table::fmt(cm.tma_issue_ns / 1000.0, 2) + " us"});
  dev.add_row({"nvshmem put issue (proxy doorbell)",
               util::Table::fmt(cm.shmem_put_issue_ns / 1000.0, 2) + " us"});
  dev.print(std::cout);
  return 0;
}
