// Shared harness for the figure-reproduction benches.
//
// Every bench builds grappa-like skeleton workloads (density 100 atoms/nm^3,
// cubic box — §6.1), runs the GPU-resident schedule on the simulated
// cluster, and prints the same series the paper's figures plot:
// ns/day, ms/step, parallel efficiency, and the NVSHMEM/MPI speedup S.
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "dd/geometry.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hs::bench {

/// Grappa benchmark-set number density (water-like, ~100 atoms/nm^3).
inline constexpr double kGrappaDensity = 100.0;
/// Communication cutoff = pair-list radius (cutoff + the large Verlet
/// buffer an nstlist=200 setup needs). At 1.3 nm the 90k/8-rank slabs are
/// thinner than the cutoff, giving the two-pulse "1D" decompositions the
/// paper's Fig. 7 pulse accounting implies.
inline constexpr double kCommCutoff = 1.30;

struct CaseResult {
  runner::PerfReport perf;
  runner::DeviceTimingReport timing;
  dd::GridDims grid;
};

struct CaseSpec {
  long long atoms = 45000;
  sim::Topology topology = sim::Topology::dgx_h100(1, 4);
  sim::CostModel cost_model = sim::CostModel::h100_eos();
  runner::RunConfig config{};
  int steps = 16;
  int warmup = 4;
};

/// Observability sink shared by all benches: collects per-run traces into
/// one Chrome-trace JSON file (`--trace-json=<path>`) and prints fabric /
/// PGAS counter summaries plus per-step kernel aggregates (`--counters`,
/// implied by `--trace-json`). With neither flag it is a no-op.
class Observability {
 public:
  explicit Observability(const util::Cli& cli)
      : trace_path_(cli.get("trace-json", "")),
        counters_(cli.get_bool("counters", false)) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;
  ~Observability() { finish(); }

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool counters_enabled() const { return counters_ || trace_enabled(); }
  bool enabled() const { return counters_enabled(); }

  /// Call once per finished run, before the machine is torn down.
  void collect(const std::string& label, sim::Machine& machine,
               pgas::World* world, int warmup = 0) {
    if (trace_enabled()) writer_.add(machine.trace(), label);
    if (!counters_enabled()) return;
    std::cout << "\n--- observability: " << label << " ---\n";
    sim::print_counters(std::cout, machine.fabric().counters());
    if (world != nullptr) pgas::print_counters(std::cout, world->counters());
    runner::print_trace_aggregate(
        std::cout, runner::aggregate_trace(machine.trace(), warmup));
  }

  /// Write the accumulated trace file (also runs from the destructor).
  /// Returns false if the file could not be written — call explicitly at
  /// the end of main and propagate into the exit code, so scripted runs
  /// don't mistake a failed dump for success.
  bool finish() {
    if (!trace_enabled() || finished_) return ok_;
    finished_ = true;
    if (writer_.write_file(trace_path_)) {
      std::cout << "\ntrace written: " << trace_path_ << " ("
                << writer_.event_count() << " events)\n";
    } else {
      std::cerr << "\nfailed to write trace file: " << trace_path_ << "\n";
      ok_ = false;
    }
    return ok_;
  }

 private:
  std::string trace_path_;
  bool counters_ = false;
  bool finished_ = false;
  bool ok_ = true;
  sim::ChromeTraceWriter writer_;
};

inline CaseResult run_case(const CaseSpec& spec, Observability* obs = nullptr,
                           const std::string& label = {}) {
  const int ranks = spec.topology.device_count();
  const float box_len =
      static_cast<float>(std::cbrt(static_cast<double>(spec.atoms) / kGrappaDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::GridDims dims = dd::choose_grid(box, ranks, kCommCutoff);
  const dd::DomainGrid grid(box, dims);

  sim::Machine machine(spec.topology, spec.cost_model);
  machine.trace().set_enabled(true);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::MdRunner md_runner(
      machine, world, comm,
      halo::make_skeleton_workload(grid, kCommCutoff, kGrappaDensity),
      spec.config);
  md_runner.run(spec.steps);

  CaseResult result;
  result.perf = md_runner.perf(spec.warmup);
  result.timing = runner::analyze_device_timing(
      machine.trace(), md_runner.step_end_times(), ranks, spec.warmup);
  result.grid = dims;
  if (obs != nullptr) obs->collect(label, machine, &world, spec.warmup);
  return result;
}

inline std::string grid_name(const dd::GridDims& g) {
  return std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
         std::to_string(g.nz) + " (" + std::to_string(g.dimensionality()) +
         "D)";
}

inline std::string size_label(long long atoms) {
  if (atoms % 1000000 == 0) return std::to_string(atoms / 1000000) + "M";
  if (atoms >= 1000000) {
    return util::Table::fmt(static_cast<double>(atoms) / 1e6, 2) + "M";
  }
  return std::to_string(atoms / 1000) + "k";
}

inline void print_header(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

}  // namespace hs::bench
