// Shared harness for the figure-reproduction benches.
//
// Every bench builds grappa-like skeleton workloads (density 100 atoms/nm^3,
// cubic box — §6.1), runs the GPU-resident schedule on the simulated
// cluster, and prints the same series the paper's figures plot:
// ns/day, ms/step, parallel efficiency, and the NVSHMEM/MPI speedup S.
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "dd/geometry.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "util/table.hpp"

namespace hs::bench {

/// Grappa benchmark-set number density (water-like, ~100 atoms/nm^3).
inline constexpr double kGrappaDensity = 100.0;
/// Communication cutoff = pair-list radius (cutoff + the large Verlet
/// buffer an nstlist=200 setup needs). At 1.3 nm the 90k/8-rank slabs are
/// thinner than the cutoff, giving the two-pulse "1D" decompositions the
/// paper's Fig. 7 pulse accounting implies.
inline constexpr double kCommCutoff = 1.30;

struct CaseResult {
  runner::PerfReport perf;
  runner::DeviceTimingReport timing;
  dd::GridDims grid;
};

struct CaseSpec {
  long long atoms = 45000;
  sim::Topology topology = sim::Topology::dgx_h100(1, 4);
  sim::CostModel cost_model = sim::CostModel::h100_eos();
  runner::RunConfig config{};
  int steps = 16;
  int warmup = 4;
};

inline CaseResult run_case(const CaseSpec& spec) {
  const int ranks = spec.topology.device_count();
  const float box_len =
      static_cast<float>(std::cbrt(static_cast<double>(spec.atoms) / kGrappaDensity));
  const md::Box box(box_len, box_len, box_len);
  const dd::GridDims dims = dd::choose_grid(box, ranks, kCommCutoff);
  const dd::DomainGrid grid(box, dims);

  sim::Machine machine(spec.topology, spec.cost_model);
  machine.trace().set_enabled(true);
  pgas::World world(machine);
  msg::Comm comm(machine);
  runner::MdRunner md_runner(
      machine, world, comm,
      halo::make_skeleton_workload(grid, kCommCutoff, kGrappaDensity),
      spec.config);
  md_runner.run(spec.steps);

  CaseResult result;
  result.perf = md_runner.perf(spec.warmup);
  result.timing = runner::analyze_device_timing(
      machine.trace(), md_runner.step_end_times(), ranks, spec.warmup);
  result.grid = dims;
  return result;
}

inline std::string grid_name(const dd::GridDims& g) {
  return std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
         std::to_string(g.nz) + " (" + std::to_string(g.dimensionality()) +
         "D)";
}

inline std::string size_label(long long atoms) {
  if (atoms % 1000000 == 0) return std::to_string(atoms / 1000000) + "M";
  if (atoms >= 1000000) {
    return util::Table::fmt(static_cast<double>(atoms) / 1e6, 2) + "M";
  }
  return std::to_string(atoms / 1000) + "k";
}

inline void print_header(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

}  // namespace hs::bench
