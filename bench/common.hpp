// Shared harness for the figure-reproduction benches.
//
// Every bench builds grappa-like skeleton workloads (density 100 atoms/nm^3,
// cubic box — §6.1), runs the GPU-resident schedule on the simulated
// cluster, and prints the same series the paper's figures plot:
// ns/day, ms/step, parallel efficiency, and the NVSHMEM/MPI speedup S.
#pragma once

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dd/geometry.hpp"
#include "runner/case.hpp"
#include "runner/critical_path.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace hs::bench {

// The case harness itself lives in src/runner/case.hpp so the campaign
// sweep service runs the exact same cases; these aliases keep the bench
// sources on their historical names.
inline constexpr double kGrappaDensity = runner::kGrappaDensity;
inline constexpr double kCommCutoff = runner::kCommCutoff;
using CaseResult = runner::CaseResult;
using CaseSpec = runner::CaseSpec;

/// Observability sink shared by all benches: collects per-run traces into
/// one Chrome-trace JSON file (`--trace-json=<path>`), prints fabric /
/// PGAS counter summaries plus per-step kernel aggregates (`--counters`,
/// implied by `--trace-json`), walks the causal span graph into a per-step
/// critical-path breakdown (`--critical-path`), dumps per-case scalar
/// metrics for tools/bench_diff (`--metrics-json=<path>`), and samples the
/// machine's time-series telemetry (`--telemetry-json=<path>` /
/// `--telemetry-csv=<path>`, window set by `--telemetry-every=<us>`,
/// wall-clock series opted in with `--telemetry-host`). Telemetry rides
/// into every other sink it can: counter tracks in the Chrome trace and a
/// top-level `"telemetry"` section in the metrics file. With no flag it is
/// a no-op.
class Observability {
 public:
  explicit Observability(const util::Cli& cli)
      : trace_path_(cli.get("trace-json", "")),
        metrics_path_(cli.get("metrics-json", "")),
        telemetry_path_(cli.get("telemetry-json", "")),
        telemetry_csv_path_(cli.get("telemetry-csv", "")),
        telemetry_every_us_(cli.get_int("telemetry-every", 100)),
        telemetry_host_(cli.get_bool("telemetry-host", false)),
        counters_(cli.get_bool("counters", false)),
        critical_path_(cli.get_bool("critical-path", false)) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;
  ~Observability() { finish(); }

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool telemetry_enabled() const {
    return !telemetry_path_.empty() || !telemetry_csv_path_.empty();
  }
  bool counters_enabled() const { return counters_ || trace_enabled(); }
  bool critical_path_enabled() const {
    return critical_path_ || metrics_enabled();
  }
  bool enabled() const {
    return counters_enabled() || critical_path_enabled() ||
           metrics_enabled() || telemetry_enabled();
  }

  /// Turn the machine's telemetry registry on (when a telemetry sink was
  /// requested). Must run right after Machine construction, before the
  /// instrumented layers (World, MdRunner) are built — they register
  /// their metrics at construction time.
  void configure(sim::Machine& machine) const {
    if (telemetry_enabled()) {
      machine.enable_telemetry(telemetry_every_us_ * 1000);
    }
  }

  /// Call once per finished run, before the machine is torn down.
  void collect(const std::string& label, sim::Machine& machine,
               pgas::World* world, int warmup = 0) {
    if (trace_enabled()) writer_.add(machine.trace(), label);
    if (telemetry_enabled() && machine.telemetry_enabled()) {
      if (trace_enabled()) writer_.add_counters(machine.telemetry());
      std::ostringstream run;
      machine.telemetry().write_json(run, telemetry_host_);
      if (!telemetry_csv_path_.empty()) {
        machine.telemetry().write_csv(telemetry_csv_, label, telemetry_host_,
                                      telemetry_runs_.empty());
      }
      telemetry_runs_.emplace_back(label, run.str());
    }
    if (!enabled()) return;
    const bool chatty = counters_enabled() || critical_path_;
    if (chatty) std::cout << "\n--- observability: " << label << " ---\n";
    if (counters_enabled()) {
      sim::print_counters(std::cout, machine.fabric().counters());
      if (world != nullptr) pgas::print_counters(std::cout, world->counters());
      runner::print_trace_aggregate(
          std::cout, runner::aggregate_trace(machine.trace(), warmup));
    }
    runner::CriticalPathReport crit;
    if (critical_path_enabled()) {
      crit = runner::compute_critical_path(machine.trace(), warmup);
      if (critical_path_) print_critical_path(std::cout, crit);
    }
    if (metrics_enabled()) {
      record_metrics(label, machine, world, warmup, crit);
    }
  }

  /// Write the accumulated trace/metrics files (also runs from the
  /// destructor). Returns false if any file could not be written — call
  /// explicitly at the end of main and propagate into the exit code, so
  /// scripted runs don't mistake a failed dump for success.
  bool finish() {
    if (finished_) return ok_;
    finished_ = true;
    if (trace_enabled()) {
      if (writer_.write_file(trace_path_)) {
        std::cout << "\ntrace written: " << trace_path_ << " ("
                  << writer_.event_count() << " events)\n";
      } else {
        std::cerr << "\nfailed to write trace file: " << trace_path_ << "\n";
        ok_ = false;
      }
    }
    if (metrics_enabled()) {
      if (!telemetry_runs_.empty()) {
        metrics_.telemetry_json = telemetry_wrapper();
      }
      if (util::metrics::write_file(metrics_path_, metrics_)) {
        std::cout << "metrics written: " << metrics_path_ << " ("
                  << metrics_.cases.size() << " cases)\n";
      } else {
        std::cerr << "\nfailed to write metrics file: " << metrics_path_
                  << "\n";
        ok_ = false;
      }
    }
    if (!telemetry_path_.empty()) {
      std::ofstream os(telemetry_path_);
      if (os) os << telemetry_wrapper() << "\n";
      if (os) {
        std::cout << "telemetry written: " << telemetry_path_ << " ("
                  << telemetry_runs_.size() << " runs)\n";
      } else {
        std::cerr << "\nfailed to write telemetry file: " << telemetry_path_
                  << "\n";
        ok_ = false;
      }
    }
    if (!telemetry_csv_path_.empty()) {
      std::ofstream os(telemetry_csv_path_);
      if (os) os << telemetry_csv_.str();
      if (os) {
        std::cout << "telemetry csv written: " << telemetry_csv_path_ << "\n";
      } else {
        std::cerr << "\nfailed to write telemetry csv: " << telemetry_csv_path_
                  << "\n";
        ok_ = false;
      }
    }
    return ok_;
  }

 private:
  /// The standalone telemetry document (`halosim-telemetry-v1`): one inner
  /// Registry::write_json object per collected run, keyed by label. The
  /// same text embeds under bench-metrics' top-level "telemetry" key, so
  /// halo_top reads either file shape.
  std::string telemetry_wrapper() const {
    std::string out = "{\"schema\":\"";
    out += util::telemetry::kSchema;
    out += "\",\"runs\":{";
    bool first = true;
    for (const auto& [label, json] : telemetry_runs_) {
      if (!first) out += ",";
      first = false;
      out += "\n \"" + label + "\":" + json;
    }
    out += "\n}}";
    return out;
  }

  void record_metrics(const std::string& label, sim::Machine& machine,
                      pgas::World* world, int warmup,
                      const runner::CriticalPathReport& crit) {
    const auto agg = runner::aggregate_trace(machine.trace(), warmup);
    const auto set = [&](const std::string& key, double v) {
      metrics_.set(label, key, v);
    };
    set("exchange_mean_us", agg.exchange_us.mean());
    set("exchange_p50_us", agg.exchange_percentile(50.0));
    set("exchange_p90_us", agg.exchange_percentile(90.0));
    set("exchange_p99_us", agg.exchange_percentile(99.0));
    set("exchange_max_us", agg.exchange_us.max());
    set("exchange_count", static_cast<double>(agg.exchange_us.count()));
    set("crit_window_us", crit.window_mean_us());
    for (int c = 0; c < runner::kPathCategoryCount; ++c) {
      const auto cat = static_cast<runner::PathCategory>(c);
      set("crit_" + std::string(runner::to_string(cat)) + "_us",
          crit.category_mean_us(cat));
    }
    const auto& fab = machine.fabric().counters();
    for (const sim::LinkType link :
         {sim::LinkType::Loopback, sim::LinkType::NVLink, sim::LinkType::IB}) {
      const auto& c = fab.link(link);
      const std::string prefix = "fabric_" + std::string(to_string(link));
      set(prefix + "_transfers", static_cast<double>(c.transfers));
      set(prefix + "_messages", static_cast<double>(c.messages));
      set(prefix + "_bytes", static_cast<double>(c.bytes));
    }
    set("fabric_total_bytes", static_cast<double>(fab.total_bytes()));
    double nic_busy = 0.0;
    double nic_queue = 0.0;
    double proxy_delay = 0.0;
    for (const auto v : fab.nic_busy_ns) nic_busy += static_cast<double>(v);
    for (const auto v : fab.nic_queue_ns) nic_queue += static_cast<double>(v);
    for (const auto v : fab.proxy_delay_ns) {
      proxy_delay += static_cast<double>(v);
    }
    set("nic_busy_ns", nic_busy);
    set("nic_queue_ns", nic_queue);
    set("proxy_delay_ns", proxy_delay);
    if (world != nullptr) {
      const pgas::WorldCounters pc = world->counters();
      for (int o = 0; o < pgas::kPgasOpCount; ++o) {
        const auto op = static_cast<pgas::PgasOp>(o);
        const auto& c = pc.op(op);
        const std::string prefix = "pgas_" + pgas::to_string(op);
        set(prefix + "_calls", static_cast<double>(c.calls));
        set(prefix + "_bytes", static_cast<double>(c.bytes));
      }
    }
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::string telemetry_path_;
  std::string telemetry_csv_path_;
  long long telemetry_every_us_ = 100;
  bool telemetry_host_ = false;
  bool counters_ = false;
  bool critical_path_ = false;
  bool finished_ = false;
  bool ok_ = true;
  sim::ChromeTraceWriter writer_;
  util::metrics::Report metrics_;
  std::vector<std::pair<std::string, std::string>> telemetry_runs_;
  std::ostringstream telemetry_csv_;
};

/// Parse the shared --workers=N flag (parallel engine worker count).
inline int cli_workers(const util::Cli& cli) {
  return static_cast<int>(cli.get_int("workers", 0));
}

inline CaseResult run_case(const CaseSpec& spec, Observability* obs = nullptr,
                           const std::string& label = {}) {
  runner::CaseHooks hooks;
  if (obs != nullptr) {
    hooks.configure = [obs](sim::Machine& machine) { obs->configure(machine); };
    hooks.collect = [obs, &label, &spec](sim::Machine& machine,
                                         pgas::World& world) {
      obs->collect(label, machine, &world, spec.warmup);
    };
  }
  return runner::run_case(spec, obs != nullptr ? &hooks : nullptr);
}

inline std::string grid_name(const dd::GridDims& g) {
  return std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
         std::to_string(g.nz) + " (" + std::to_string(g.dimensionality()) +
         "D)";
}

inline std::string size_label(long long atoms) {
  if (atoms % 1000000 == 0) return std::to_string(atoms / 1000000) + "M";
  if (atoms >= 1000000) {
    return util::Table::fmt(static_cast<double>(atoms) / 1e6, 2) + "M";
  }
  return std::to_string(atoms / 1000) + "k";
}

inline void print_header(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

}  // namespace hs::bench
