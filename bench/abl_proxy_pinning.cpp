// Ablation (§5.5): NVSHMEM proxy-thread placement on multi-node IB runs.
// ReservedCore = the paper's OMP_NUM_THREADS-1 + dedicated-init-thread fix;
// RankPinned = rank-level pinning only (paper: performs the same);
// ContendedCore = proxy pinned onto a busy core (paper: up to 50x slower).
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Ablation §5.5 — NVSHMEM proxy-thread placement (multi-node IB)",
      "Paper: reserved-thread pinning shows no benefit over rank-level\n"
      "pinning; a contended proxy degrades runs by up to 50x.");

  util::Table table(
      {"size", "nodes", "placement", "ns/day", "slowdown vs reserved"});

  for (long long atoms : {90000LL, 720000LL}) {
    for (int nodes : {2, 4}) {
      double reserved_perf = 0.0;
      for (pgas::ProxyPlacement placement :
           {pgas::ProxyPlacement::ReservedCore,
            pgas::ProxyPlacement::RankPinned,
            pgas::ProxyPlacement::ContendedCore}) {
        bench::CaseSpec spec;
        spec.workers = bench::cli_workers(cli);
        spec.atoms = atoms;
        spec.topology = sim::Topology::dgx_h100(nodes, 4);
        spec.config.transport = halo::Transport::Shmem;
        spec.config.proxy_placement = placement;
        const char* pname =
            placement == pgas::ProxyPlacement::ReservedCore ? "reserved"
            : placement == pgas::ProxyPlacement::RankPinned ? "rank-pinned"
                                                            : "contended";
        const auto r = bench::run_case(
            spec, &obs,
            std::string(pname) + " " + bench::size_label(atoms) + " " +
                std::to_string(nodes) + "n");
        if (placement == pgas::ProxyPlacement::ReservedCore) {
          reserved_perf = r.perf.ns_per_day;
        }
        const char* name =
            placement == pgas::ProxyPlacement::ReservedCore ? "reserved-core"
            : placement == pgas::ProxyPlacement::RankPinned ? "rank-pinned"
                                                            : "contended-core";
        table.add_row({bench::size_label(atoms), std::to_string(nodes), name,
                       util::Table::fmt(r.perf.ns_per_day, 0),
                       util::Table::fmt(reserved_perf / r.perf.ns_per_day, 2) +
                           "x"});
      }
    }
  }
  table.print(std::cout);
  return obs.finish() ? 0 : 1;
}
