// Figure 4 reproduction: NVSHMEM strong scaling on a GB200 NVL72 multi-node
// NVLink (MNNVL) rack, 36x2 configuration, 4 GPUs/node — every tested node
// count fits in one NVLink domain, so all communication is NVLink-path.
// Prints ns/day, ms/step, and parallel efficiency vs the single-node run,
// plus an MPI series for the paper's "up to 2x with NVSHMEM" early data.
#include <iostream>
#include <map>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 4 — NVSHMEM strong scaling on GB200 NVL72 (multi-node NVLink)",
      "4 GPUs/node, rack-wide NVLink domain; efficiency vs 1 node.\n"
      "Paper single-node baselines: 720k 492 ns/day, 1440k 272 ns/day;\n"
      "paper efficiencies 720k: 84%/55%/32%, 1440k: 88%/71%/48% at 2/4/8 "
      "nodes.");

  util::Table table({"size", "nodes", "gpus", "dd", "nvshmem ns/day",
                     "ms/step", "efficiency", "mpi ns/day", "S"});

  for (long long atoms : {720000LL, 1440000LL, 2880000LL}) {
    double baseline = 0.0;
    for (int nodes : {1, 2, 4, 8}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = atoms;
      spec.topology = sim::Topology::gb200_nvl72(nodes, 4);
      spec.cost_model = sim::CostModel::gb200_nvl72();

      const std::string tag =
          bench::size_label(atoms) + " " + std::to_string(nodes) + "n";
      spec.config.transport = halo::Transport::Shmem;
      const auto shmem = bench::run_case(spec, &obs, "shmem " + tag);
      spec.config.transport = halo::Transport::Mpi;
      const auto mpi = bench::run_case(spec, &obs, "mpi " + tag);

      if (nodes == 1) baseline = shmem.perf.ns_per_day;
      const double efficiency =
          baseline > 0.0 ? shmem.perf.ns_per_day / (baseline * nodes) : 1.0;

      table.add_row(
          {bench::size_label(atoms), std::to_string(nodes),
           std::to_string(nodes * 4), bench::grid_name(shmem.grid),
           util::Table::fmt(shmem.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ms_per_step, 3),
           util::Table::fmt(100.0 * efficiency, 0) + "%",
           util::Table::fmt(mpi.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ns_per_day / mpi.perf.ns_per_day, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): high efficiency at 2 nodes "
               "(84-88%) decaying with\nscale; the larger system scales "
               "better; NVSHMEM up to ~2x over MPI at scale.\n";
  return obs.finish() ? 0 : 1;
}
