// Figures 1 & 2 reproduction: the GPU-resident schedule illustrations.
// Runs a 2D-decomposed case (16 ranks => two communication phases) with
// each transport and renders rank 0's kernel timeline for one steady-state
// step — the MPI variant shows halo work serialized on the critical path
// (Fig. 1), the NVSHMEM variant shows it fused and overlapped (Fig. 2).
//
//   $ fig12_schedule_trace [--trace-json=out.json] [--counters]
//
// --trace-json exports both transports' full kernel traces as one
// Chrome-trace file (chrome://tracing / Perfetto); --counters prints the
// fabric and PGAS op counters per run (implied by --trace-json).
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);

  bench::print_header(
      "Figs. 1-2 — GPU-resident schedules, MPI vs NVSHMEM (2D DD)",
      "16 ranks (4x4x1 decomposition, two communication phases), grappa "
      "720k.\nThe MPI timeline shows per-pulse pack/comm gaps on the "
      "non-local stream;\nthe NVSHMEM timeline shows one fused kernel per "
      "exchange, fully overlapped.");

  for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
    bench::CaseSpec spec;
    spec.atoms = 720000;
    spec.topology = sim::Topology::dgx_h100(4, 4);
    spec.config.transport = tr;
    spec.steps = 8;

    const bool mpi = tr == halo::Transport::Mpi;
    const int ranks = spec.topology.device_count();
    const float box_len = static_cast<float>(
        std::cbrt(static_cast<double>(spec.atoms) / bench::kGrappaDensity));
    const md::Box box(box_len, box_len, box_len);
    const dd::DomainGrid grid(
        box, dd::choose_grid(box, ranks, bench::kCommCutoff));

    sim::MachineOptions machine_options;
    // The MPI half is CPU-blocking and stays on the classic engine.
    machine_options.workers = mpi ? 0 : bench::cli_workers(cli);
    sim::Machine machine(spec.topology, spec.cost_model, machine_options);
    machine.trace().set_enabled(true);
    obs.configure(machine);
    pgas::World world(machine);
    msg::Comm comm(machine);
    runner::MdRunner md_runner(
        machine, world, comm,
        halo::make_skeleton_workload(grid, bench::kCommCutoff,
                                     bench::kGrappaDensity),
        spec.config);
    md_runner.run(spec.steps);
    std::cout << "\n--- "
              << (mpi ? "Fig. 1 analogue: GPU-aware MPI schedule"
                      : "Fig. 2 analogue: GPU-initiated NVSHMEM schedule")
              << " (rank 0, step 5) ---\n";
    runner::render_timeline(machine.trace(), /*device=*/0, /*step=*/5,
                            std::cout);
    obs.collect(mpi ? "mpi" : "shmem", machine, &world, /*warmup=*/2);
  }
  return obs.finish() ? 0 : 1;
}
