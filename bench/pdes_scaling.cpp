// Parallel-engine strong scaling: wall-clock throughput of the partitioned
// (PDES) engine on a 72-rank fig-style halo-exchange case, swept over
// worker counts.
//
//   $ pdes_scaling [--workers-list=0,1,2,4,8] [--atoms=720000] [--steps=6]
//                  [--metrics-json=out.json] [--telemetry-json=out.json]
//                  [--telemetry-host=true]
//
// Every run simulates the identical workload; partitioned runs (workers
// >= 1) are bit-identical to each other by construction (verified here via
// a final-clock/event-count cross-check, and — with --telemetry-json — a
// byte-compare of every run's Sim-domain telemetry document), so the sweep
// isolates pure host parallelism. The telemetry file includes the
// wall-clock (Host) series by default: this is the bench halo_top reads
// per-lane busy/barrier shares from. The metrics JSON (bench-metrics-v1) records wall ms per
// run, speedup vs workers=1, and the host CPU count — wall-clock speedup
// saturates at the physical core count, so baselines must be read against
// host_cpus (a 1-core container cannot show > 1x no matter the workers).
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

using namespace hs;

namespace {

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const long long atoms = cli.get_int("atoms", 720000);
  const int steps = static_cast<int>(cli.get_int("steps", 6));
  const std::vector<int> workers_list =
      parse_list(cli.get("workers-list", "0,1,2,4,8"));
  const std::string metrics_path = cli.get("metrics-json", "");
  const std::string telemetry_path = cli.get("telemetry-json", "");
  const bool telemetry_host = cli.get_bool("telemetry-host", true);
  const unsigned host_cpus = std::thread::hardware_concurrency();

  bench::print_header(
      "PDES strong scaling — 72-rank halo exchange, workers sweep",
      "gb200_nvl72(18,4) = 72 ranks, Shmem transport, grappa " +
          bench::size_label(atoms) + ", " + std::to_string(steps) +
          " steps.\nworkers=0 is the classic sequential engine; workers>=1 "
          "the partitioned\nengine (bit-identical output for every N). "
          "host_cpus=" + std::to_string(host_cpus) +
          " bounds the attainable wall speedup.");

  util::Table table({"workers", "engine", "wall ms", "events", "Mev/s",
                     "vs workers=1", "sim final ms"});
  util::metrics::Report metrics;
  double base_wall_ms = 0.0;
  sim::SimTime partitioned_final = -1;
  std::uint64_t partitioned_events = 0;
  bool parity_ok = true;
  std::vector<std::pair<std::string, std::string>> telemetry_runs;
  std::string partitioned_telemetry;  // Sim-domain canon, first workers>=1 run
  bool telemetry_parity_ok = true;

  for (const int workers : workers_list) {
    bench::CaseSpec spec;
    spec.atoms = atoms;
    spec.steps = steps;
    spec.topology = sim::Topology::gb200_nvl72(18, 4);
    spec.cost_model = sim::CostModel::gb200_nvl72();
    spec.config.transport = halo::Transport::Shmem;
    spec.workers = workers;

    const float box_len = static_cast<float>(std::cbrt(
        static_cast<double>(atoms) / bench::kGrappaDensity));
    const md::Box box(box_len, box_len, box_len);
    const dd::DomainGrid grid(
        box, dd::choose_grid(box, spec.topology.device_count(),
                             bench::kCommCutoff));

    sim::MachineOptions machine_options;
    machine_options.workers = workers;
    sim::Machine machine(spec.topology, spec.cost_model, machine_options);
    if (!telemetry_path.empty()) machine.enable_telemetry();
    pgas::World world(machine);
    msg::Comm comm(machine);
    runner::MdRunner md_runner(
        machine, world, comm,
        halo::make_skeleton_workload(grid, bench::kCommCutoff,
                                     bench::kGrappaDensity),
        spec.config);

    const auto t0 = std::chrono::steady_clock::now();
    md_runner.run(steps);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const std::uint64_t events = machine.events_processed();
    const sim::SimTime final_ns = machine.final_time();

    if (workers == 1) base_wall_ms = wall_ms;
    if (workers >= 1) {
      // Cross-check the bit-identity contract on the cheap observables.
      if (partitioned_final < 0) {
        partitioned_final = final_ns;
        partitioned_events = events;
      } else if (final_ns != partitioned_final ||
                 events != partitioned_events) {
        parity_ok = false;
      }
    }

    const std::string label = "workers" + std::to_string(workers);
    if (machine.telemetry_enabled()) {
      // The Sim-domain telemetry document is part of the bit-identity
      // contract: every partitioned run must produce the same bytes.
      std::ostringstream sim_only;
      machine.telemetry().write_json(sim_only, /*include_host=*/false);
      if (workers >= 1) {
        if (partitioned_telemetry.empty()) {
          partitioned_telemetry = sim_only.str();
        } else if (sim_only.str() != partitioned_telemetry) {
          telemetry_parity_ok = false;
        }
      }
      std::ostringstream full;
      machine.telemetry().write_json(full, telemetry_host);
      telemetry_runs.emplace_back(label, full.str());
    }
    table.add_row(
        {std::to_string(workers), workers == 0 ? "classic" : "partitioned",
         util::Table::fmt(wall_ms, 1), std::to_string(events),
         util::Table::fmt(static_cast<double>(events) / (wall_ms * 1e3), 2),
         workers >= 1 && base_wall_ms > 0.0
             ? util::Table::fmt(base_wall_ms / wall_ms, 2) + "x"
             : "-",
         util::Table::fmt(sim::to_ms(final_ns), 2)});
    metrics.set(label, "wall_ms", wall_ms);
    metrics.set(label, "events", static_cast<double>(events));
    // Throughput, not latency — keep the key clear of the _us/_ns suffixes
    // bench_diff gates on (growth here is an improvement).
    metrics.set(label, "mevents_per_s",
                static_cast<double>(events) / (wall_ms * 1e3));
    if (workers >= 1 && base_wall_ms > 0.0) {
      metrics.set(label, "speedup_vs_workers1", base_wall_ms / wall_ms);
    }
    metrics.set(label, "host_cpus", static_cast<double>(host_cpus));
    metrics.set(label, "sim_final_ns", static_cast<double>(final_ns));
  }
  table.print(std::cout);

  if (!parity_ok) {
    std::cerr << "pdes_scaling: FAIL — partitioned runs disagreed on "
                 "final clock / event count (bit-identity broken)\n";
    return 1;
  }
  if (!telemetry_parity_ok) {
    std::cerr << "pdes_scaling: FAIL — partitioned runs disagreed on the "
                 "Sim-domain telemetry document (bit-identity broken)\n";
    return 1;
  }
  std::cout << "\npartitioned runs agree on final clock and event count";
  if (!telemetry_runs.empty()) std::cout << " and on Sim-domain telemetry";
  std::cout << ".\n";

  std::string telemetry_doc;
  if (!telemetry_runs.empty()) {
    telemetry_doc = "{\"schema\":\"";
    telemetry_doc += util::telemetry::kSchema;
    telemetry_doc += "\",\"runs\":{";
    bool first = true;
    for (const auto& [label, json] : telemetry_runs) {
      if (!first) telemetry_doc += ",";
      first = false;
      telemetry_doc += "\n \"" + label + "\":" + json;
    }
    telemetry_doc += "\n}}";
    metrics.telemetry_json = telemetry_doc;
  }

  if (!metrics_path.empty()) {
    if (!util::metrics::write_file(metrics_path, metrics)) {
      std::cerr << "failed to write metrics file: " << metrics_path << "\n";
      return 1;
    }
    std::cout << "metrics written: " << metrics_path << "\n";
  }
  if (!telemetry_path.empty()) {
    std::ofstream os(telemetry_path);
    if (os) os << telemetry_doc << "\n";
    if (!os) {
      std::cerr << "failed to write telemetry file: " << telemetry_path
                << "\n";
      return 1;
    }
    std::cout << "telemetry written: " << telemetry_path << " ("
              << telemetry_runs.size() << " runs)\n";
  }
  return 0;
}
