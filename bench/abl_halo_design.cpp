// Ablation (§5.1-5.2): the fused halo-exchange design choices, toggled
// individually: pulse fusion, dependency partitioning, TMA async copies,
// and fused signaling — on an intra-node 3D case (max pulses over NVLink)
// and a multi-node mixed NVLink+IB case.
#include <iostream>

#include "common.hpp"

using namespace hs;

namespace {

struct Variant {
  const char* name;
  halo::HaloTuning tuning;
};

void run_suite(const char* title, long long atoms, sim::Topology topo,
               bench::Observability& obs, const std::string& suite_tag,
               int workers) {
  std::cout << "\n" << title << "\n";
  util::Table table({"variant", "ns/day", "nonlocal us", "vs full"});
  const Variant variants[] = {
      {"full design", halo::HaloTuning{}},
      {"serialized pulses", {false, true, true, true}},
      {"no dependency partitioning", {true, false, true, true}},
      {"no TMA (SM copies)", {true, true, false, true}},
      {"no fused signaling", {true, true, true, false}},
      {"all off (baseline)", {false, false, false, false}},
  };
  double full = 0.0;
  for (const auto& v : variants) {
    bench::CaseSpec spec;
    spec.atoms = atoms;
    spec.topology = topo;
    spec.workers = workers;
    spec.config.transport = halo::Transport::Shmem;
    spec.config.halo_tuning = v.tuning;
    const auto r =
        bench::run_case(spec, &obs, suite_tag + " " + v.name);
    if (full == 0.0) full = r.perf.ns_per_day;
    table.add_row({v.name, util::Table::fmt(r.perf.ns_per_day, 0),
                   util::Table::fmt(r.timing.nonlocal_us, 1),
                   util::Table::fmt(100.0 * r.perf.ns_per_day / full, 1) + "%"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Ablation §5.1-5.2 — fused halo-exchange design choices",
      "Each optimization disabled individually (results identical by "
      "construction;\nonly timing changes).");
  // 32 ranks on one NVL72-style domain => 3D DD, all-NVLink.
  run_suite("Intra-domain NVLink, 32 GPUs, 3D DD, grappa 720k:", 720000,
            sim::Topology::gb200_nvl72(8, 4), obs, "nvl72",
            bench::cli_workers(cli));
  // 8 nodes x 4 GPUs over IB => 3D DD, mixed NVLink+IB.
  run_suite("Multi-node NVLink+IB, 32 GPUs, 3D DD, grappa 360k:", 360000,
            sim::Topology::dgx_h100(8, 4), obs, "mixed",
            bench::cli_workers(cli));
  return obs.finish() ? 0 : 1;
}
