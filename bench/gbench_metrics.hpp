// Shared bench-metrics-v1 plumbing for the google-benchmark binaries
// (sim_perf, md_kernels).
//
// MetricsReporter captures per-benchmark wall-clock results for the
// metrics dump while still printing the normal console table. Across
// repetitions the minimum is kept — the least-noisy wall-clock statistic
// for a regression gate. Keys are `<benchmark>_wall_ns` (per iteration)
// and `<benchmark>_per_item_wall_ns` (per processed item); binaries may
// add derived, non-time metrics (e.g. speedup ratios, which
// tools/bench_diff reports but never gates) before the dump.
//
// run_benchmark_main() peels `--metrics-json=PATH` off argv before
// google-benchmark parses it, runs the registered benchmarks, applies the
// binary's `derive` hook, and writes the report.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace hs::bench {

class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  explicit MetricsReporter(std::string case_label)
      : case_label_(std::move(case_label)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (!run.aggregate_name.empty() || run.error_occurred ||
          run.iterations == 0) {
        continue;
      }
      const std::string name = run.benchmark_name();
      const double wall_ns = run.real_accumulated_time * 1e9 /
                             static_cast<double>(run.iterations);
      keep_min(name + "_wall_ns", wall_ns);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end() && it->second.value > 0.0) {
        keep_min(name + "_per_item_wall_ns", 1e9 / it->second.value);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Captured value for `<benchmark>_wall_ns` style keys (pre-sanitize,
  /// i.e. with '/'); 0 when absent. For derive hooks.
  double value_or_zero(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
  }

  /// Add a derived metric (sanitized like the captured ones). Use keys
  /// NOT suffixed _ns/_us for ratios: bench_diff reports but never gates
  /// them, so a speedup metric can only inform, not flake.
  void set(const std::string& key, double value) { values_[key] = value; }

  util::metrics::Report metrics() const {
    util::metrics::Report report;
    for (const auto& [key, value] : values_) {
      report.set(case_label_, sanitize(key), value);
    }
    return report;
  }

 private:
  static std::string sanitize(std::string key) {
    std::replace(key.begin(), key.end(), '/', '_');
    return key;
  }
  void keep_min(const std::string& key, double v) {
    const auto it = values_.find(key);
    if (it == values_.end() || v < it->second) values_[key] = v;
  }

  std::string case_label_;
  std::map<std::string, double> values_;
};

/// Common main() body: parse flags, run benchmarks, derive extra metrics,
/// dump the report. Returns the process exit code.
inline int run_benchmark_main(
    int argc, char** argv, const std::string& case_label,
    const std::function<void(MetricsReporter&)>& derive = nullptr) {
  // Peel off our flag before google-benchmark sees the argument list.
  std::string metrics_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--metrics-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      metrics_path = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  MetricsReporter reporter(case_label);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (derive) derive(reporter);

  if (!metrics_path.empty()) {
    const util::metrics::Report report = reporter.metrics();
    if (!util::metrics::write_file(metrics_path, report)) {
      std::cerr << case_label
                << ": failed to write metrics file: " << metrics_path << "\n";
      return 1;
    }
    std::cout << "metrics written: " << metrics_path << " ("
              << report.cases.size() << " cases)\n";
  }
  return 0;
}

}  // namespace hs::bench
