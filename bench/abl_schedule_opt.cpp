// Ablation (§5.4): end-of-step schedule optimizations — prune kernels on a
// dedicated low-priority stream + a third medium-priority stream for
// reduction/update. The paper reports up to ~10% for both transports, with
// slightly larger benefits for NVSHMEM.
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Ablation §5.4 — end-of-step schedule optimizations",
      "prune-on-low-priority-stream + third update stream, on vs off;\n"
      "prune every step to expose the effect. Paper: up to ~10% gain.");

  util::Table table({"size", "transport", "optimized ns/day",
                     "original ns/day", "gain"});

  for (long long atoms : {180000LL, 360000LL, 720000LL}) {
    for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = atoms;
      spec.topology = sim::Topology::dgx_h100(1, 4);
      spec.config.transport = tr;
      spec.config.prune_interval = 1;

      const std::string tag =
          (tr == halo::Transport::Mpi ? "mpi " : "shmem ") +
          bench::size_label(atoms);
      spec.config.prune_low_priority_stream = true;
      spec.config.third_stream_for_update = true;
      const auto optimized = bench::run_case(spec, &obs, "opt " + tag);

      spec.config.prune_low_priority_stream = false;
      spec.config.third_stream_for_update = false;
      const auto original = bench::run_case(spec, &obs, "orig " + tag);

      table.add_row(
          {bench::size_label(atoms),
           tr == halo::Transport::Mpi ? "MPI" : "NVSHMEM",
           util::Table::fmt(optimized.perf.ns_per_day, 0),
           util::Table::fmt(original.perf.ns_per_day, 0),
           util::Table::fmt(100.0 * (optimized.perf.ns_per_day /
                                         original.perf.ns_per_day -
                                     1.0),
                            1) +
               "%"});
    }
  }
  table.print(std::cout);
  return obs.finish() ? 0 : 1;
}
