// Extension (§7 future work): GPU-initiated PP<->PME communication.
//
// The paper: "We also plan [to] use the GPU-initiated communication
// approaches and optimizations employed here to redesign the rest of the
// communication in GROMACS, notably the communication of coordinates and
// forces to and from the PME tasks which will be key to fully unlock the
// scalability potential." This bench quantifies that projection on the
// simulated cluster: the MPMD rank-specialized PME pipeline with today's
// CPU-initiated exchange vs a device-initiated put-with-signal design.
#include <iostream>

#include "common.hpp"
#include "runner/pme_flow.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Extension — PP<->PME communication, CPU- vs GPU-initiated (§7)",
      "MPMD rank specialization: N PP ranks + 1..2 PME ranks; the PME mesh\n"
      "runs spread -> FFT -> convolution -> inverse FFT -> gather per step.");

  util::Table table({"pp ranks", "pme ranks", "atoms/pp", "grid",
                     "cpu us/step", "gpu us/step", "speedup",
                     "cpu pme-wait us", "gpu pme-wait us"});

  struct Case {
    int pp, pme, atoms;
    std::array<int, 3> grid;
  };
  for (const Case c : {Case{3, 1, 30000, {64, 64, 64}},
                       Case{3, 1, 11250, {32, 32, 32}},
                       Case{6, 2, 30000, {64, 64, 64}},
                       Case{7, 1, 90000, {128, 128, 128}}}) {
    runner::PmeFlowReport rep[2];
    for (int mode = 0; mode < 2; ++mode) {
      sim::Machine machine(sim::Topology::dgx_h100(1, c.pp + c.pme),
                           sim::CostModel::h100_eos());
      machine.trace().set_enabled(obs.enabled());
      pgas::World world(machine);
      runner::PmeFlowConfig cfg;
      cfg.n_pp_ranks = c.pp;
      cfg.n_pme_ranks = c.pme;
      cfg.atoms_per_pp_rank = c.atoms;
      cfg.pme_grid = c.grid;
      cfg.comm_mode = mode == 0 ? runner::PmeCommMode::CpuInitiated
                                : runner::PmeCommMode::GpuInitiated;
      rep[mode] = runner::run_pme_flow(machine, world, cfg);
      obs.collect((mode == 0 ? "cpu " : "gpu ") + std::to_string(c.pp) + "pp" +
                      std::to_string(c.pme) + "pme",
                  machine, &world);
    }
    table.add_row(
        {std::to_string(c.pp), std::to_string(c.pme), std::to_string(c.atoms),
         std::to_string(c.grid[0]) + "^3",
         util::Table::fmt(rep[0].us_per_step, 1),
         util::Table::fmt(rep[1].us_per_step, 1),
         util::Table::fmt(rep[0].us_per_step / rep[1].us_per_step, 2) + "x",
         util::Table::fmt(rep[0].pme_wait_us, 1),
         util::Table::fmt(rep[1].pme_wait_us, 1)});
  }
  table.print(std::cout);
  std::cout << "\nGPU-initiated PP<->PME removes the per-step sync+send round "
               "trips from the\ncritical path — the same mechanism that the "
               "halo-exchange redesign exploits.\n";
  return obs.finish() ? 0 : 1;
}
