// Campaign executor throughput (google-benchmark): what a sweep case
// costs end to end under each executor mode — cold per-case simulation,
// warm prepared-state reuse, the in-process pool vs fork/execv process
// sharding, and the --serve batch loop answering a repeated spec.
//
//   $ sweep_throughput --metrics-json=out.json [--benchmark_min_time=...]
//
// Keys are `<benchmark>_wall_ns`; scripts/perf_smoke.sh diffs them
// against scripts/baselines/BENCH_sweep_throughput.json. Two derived
// ratio metrics (reported, never gated by bench_diff):
//   warm_state_speedup  — cold wall / warm-state wall per campaign pass;
//                         scripts/sweep_smoke.sh enforces the >= 1.5x
//                         floor on this number.
//   pool_vs_fork_speedup — forked-shard wall / in-process pool wall for
//                          the same 2-way sharded campaign.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "gbench_metrics.hpp"
#include "sweep/output.hpp"
#include "sweep/runner.hpp"

using namespace hs;

namespace {

namespace fs = std::filesystem;

// The smoke campaign (campaigns/smoke.json) inlined: two sizes x two
// transports plus a forced-DD case — five cases, one shared setup pair
// plus one distinct, so warm state has both hits and misses to serve.
constexpr const char* kSpec = R"({
  "schema": "halosim-campaign-spec-v1",
  "name": "sweep_throughput",
  "grids": [
    {
      "machine": "dgx_h100",
      "gpus_per_node": 4,
      "atoms": [45000, 90000],
      "transport": ["mpi", "shmem"],
      "steps": 6,
      "warmup": 2
    },
    {
      "machine": "dgx_h100",
      "gpus_per_node": 4,
      "atoms": 45000,
      "transport": "shmem",
      "dd": [2, 2, 1],
      "steps": 6,
      "warmup": 2
    }
  ]
})";

const sweep::Campaign& campaign() {
  static const sweep::Campaign c = sweep::parse_campaign_text(kSpec);
  return c;
}

fs::path unique_dir(const char* tag, std::uint64_t n) {
  return fs::temp_directory_path() /
         ("hs_sweep_bench_" + std::string(tag) + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(n));
}

/// The sibling halo_sweep binary ("" when not built) — fork mode execs it.
std::string halo_sweep_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path exe =
      fs::path(buf).parent_path().parent_path() / "tools" / "halo_sweep";
  return fs::exists(exe) ? exe.string() : "";
}

/// Every case simulated from nothing: prepare + fresh arenas each time.
void BM_CampaignCold(benchmark::State& state) {
  std::int64_t cases = 0;
  for (auto _ : state) {
    for (const sweep::CaseConfig& config : campaign().cases) {
      benchmark::DoNotOptimize(sweep::simulate_case_document(config));
      ++cases;
    }
  }
  state.SetItemsProcessed(cases);
}
BENCHMARK(BM_CampaignCold);

/// Same campaign with session-lifetime warm state: shared PreparedCase
/// per setup sub-hash, recycled symmetric-heap arenas. Warmed once
/// before timing — this measures the steady state a long sweep lives in.
void BM_CampaignWarmState(benchmark::State& state) {
  sweep::PreparedStateCache prepared;
  runner::CaseScratch scratch;
  sweep::ExecutionContext ctx;
  ctx.prepared = &prepared;
  ctx.scratch = &scratch;
  for (const sweep::CaseConfig& config : campaign().cases) {
    sweep::simulate_case_document(config, ctx);
  }
  std::int64_t cases = 0;
  for (auto _ : state) {
    for (const sweep::CaseConfig& config : campaign().cases) {
      benchmark::DoNotOptimize(sweep::simulate_case_document(config, ctx));
      ++cases;
    }
  }
  state.SetItemsProcessed(cases);
}
BENCHMARK(BM_CampaignWarmState);

void run_sharded(benchmark::State& state, bool isolate, const char* tag) {
  const std::string exe = halo_sweep_exe();
  const fs::path spec_file = unique_dir(tag, 0).concat(".spec.json");
  {
    std::ofstream os(spec_file);
    os << kSpec;
  }
  std::uint64_t round = 0;
  std::int64_t cases = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const fs::path dir = unique_dir(tag, ++round);
    fs::remove_all(dir);
    sweep::SweepOptions options;
    options.cache_dir = dir.string();
    options.shards = 2;
    // Without the sibling binary fork mode degrades to the parent's
    // mop-up loop; the metrics row still exists but measures that.
    options.isolate_shards = isolate && !exe.empty();
    options.self_exe = exe;
    options.spec_path = spec_file.string();
    options.quiet = true;
    state.ResumeTiming();
    const sweep::CampaignResult result =
        sweep::run_campaign(campaign(), options);
    cases += static_cast<std::int64_t>(result.cases.size());
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
  }
  fs::remove(spec_file);
  state.SetItemsProcessed(cases);
}

/// Full run_campaign, misses executed on the in-process thread pool.
void BM_CampaignPool(benchmark::State& state) {
  run_sharded(state, /*isolate=*/false, "pool");
}
BENCHMARK(BM_CampaignPool);

/// Full run_campaign with --isolate-shards: fork/execv worker processes
/// (the PR-9 path), results handed back through the disk cache.
void BM_CampaignFork(benchmark::State& state) {
  run_sharded(state, /*isolate=*/true, "fork");
}
BENCHMARK(BM_CampaignFork);

/// The --serve steady state: a repeated spec answered from the memoized
/// cache plus warm execution state (simulate once, then all hits).
void BM_ServeBatch(benchmark::State& state) {
  sweep::ResultCache cache("");
  cache.set_memoize(true);
  sweep::PreparedStateCache prepared;
  runner::CaseScratch scratch;
  sweep::ExecutionContext ctx;
  ctx.prepared = &prepared;
  ctx.scratch = &scratch;
  std::int64_t cases = 0;
  for (auto _ : state) {
    for (const sweep::CaseConfig& config : campaign().cases) {
      const std::string hash = sweep::case_hash_hex(config);
      if (auto document = cache.load(hash)) {
        benchmark::DoNotOptimize(document);
      } else {
        cache.store(hash, sweep::simulate_case_document(config, ctx));
      }
      ++cases;
    }
  }
  state.SetItemsProcessed(cases);
}
BENCHMARK(BM_ServeBatch);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_benchmark_main(
      argc, argv, "sweep_throughput", [](bench::MetricsReporter& reporter) {
        const double cold = reporter.value_or_zero("BM_CampaignCold_wall_ns");
        const double warm =
            reporter.value_or_zero("BM_CampaignWarmState_wall_ns");
        if (cold > 0.0 && warm > 0.0) {
          reporter.set("warm_state_speedup", cold / warm);
        }
        const double pool = reporter.value_or_zero("BM_CampaignPool_wall_ns");
        const double fork = reporter.value_or_zero("BM_CampaignFork_wall_ns");
        if (pool > 0.0 && fork > 0.0) {
          reporter.set("pool_vs_fork_speedup", fork / pool);
        }
      });
}
