// Figure 8 reproduction: device-side timing for multi-node runs at 90k
// atoms per GPU — grappa 720k/1440k/2880k on 8/16/32 ranks (2/4/8 nodes,
// 4 GPUs/node): 1D/2D/3D decompositions.
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 8 — Device-side timing, multi-node, 90k atoms/GPU",
      "All values in us. Paper anchors: 1D: local ~151 vs non-local 153-165\n"
      "(near-full overlap, transports within ~10 us); 2D: NVSHMEM non-local\n"
      "~28 us shorter, local ~16 us slower (SM sharing), net ~24 us faster;\n"
      "3D: NVSHMEM 50-60 us faster in both non-local and total.");

  util::Table table({"size", "ranks", "dd", "transport", "local", "non-local",
                     "non-overlap", "other", "time/step"});

  struct Point {
    long long atoms;
    int nodes;
  };
  for (const Point pt :
       {Point{720000, 2}, Point{1440000, 4}, Point{2880000, 8}}) {
    for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = pt.atoms;
      spec.topology = sim::Topology::dgx_h100(pt.nodes, 4);
      spec.config.transport = tr;
      spec.steps = 20;
      spec.warmup = 5;
      const auto r = bench::run_case(
          spec, &obs,
          std::string(tr == halo::Transport::Mpi ? "mpi " : "shmem ") +
              bench::size_label(pt.atoms));
      table.add_row({bench::size_label(pt.atoms), std::to_string(pt.nodes * 4),
                     bench::grid_name(r.grid),
                     tr == halo::Transport::Mpi ? "MPI" : "NVSHMEM",
                     util::Table::fmt(r.timing.local_us, 1),
                     util::Table::fmt(r.timing.nonlocal_us, 1),
                     util::Table::fmt(r.timing.nonoverlap_us, 1),
                     util::Table::fmt(r.timing.other_us, 1),
                     util::Table::fmt(r.timing.step_us, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): near-complete overlap at 1D; the "
               "NVSHMEM non-local\nadvantage grows with DD dimensionality "
               "while its local work is slightly\nslower from SM resource "
               "sharing.\n";
  return obs.finish() ? 0 : 1;
}
