// Figure 3 reproduction: intra-node MPI vs NVSHMEM on 4/8 GPUs (DGX-H100),
// grappa 45k-360k. Prints simulation performance (ns/day) and iteration
// rate (ms/step), plus the NVSHMEM/MPI speedup S and the paper's published
// values where available for side-by-side comparison.
#include <iostream>
#include <map>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 3 — Intra-node strong scaling, MPI vs NVSHMEM (DGX-H100)",
      "grappa water-ethanol analogue, reaction-field electrostatics;\n"
      "paper reference values (ns/day) shown where published.");

  // Paper-published ns/day values (Fig. 3 discussion, §6.2).
  const std::map<std::pair<long long, int>, std::pair<double, double>> paper =
      {{{45000, 4}, {1126.0, 1649.0}},
       {{180000, 4}, {1058.0, 1103.0}},
       {{180000, 8}, {973.0, 1249.0}},
       {{360000, 4}, {670.0, 671.0}},
       {{360000, 8}, {779.0, 910.0}}};

  util::Table table({"size", "gpus", "dd", "mpi ns/day", "tmpi ns/day",
                     "nvshmem ns/day", "S", "nvshmem ms/step", "paper mpi",
                     "paper nvshmem"});

  for (long long atoms : {45000LL, 90000LL, 180000LL, 360000LL}) {
    for (int gpus : {4, 8}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = atoms;
      spec.topology = sim::Topology::dgx_h100(1, gpus);

      const std::string tag =
          bench::size_label(atoms) + " " + std::to_string(gpus) + "gpu";
      spec.config.transport = halo::Transport::Mpi;
      const auto mpi = bench::run_case(spec, &obs, "mpi " + tag);
      spec.config.transport = halo::Transport::ThreadMpi;
      const auto tmpi = bench::run_case(spec, &obs, "tmpi " + tag);
      spec.config.transport = halo::Transport::Shmem;
      const auto shmem = bench::run_case(spec, &obs, "shmem " + tag);

      const auto ref = paper.find({atoms, gpus});
      table.add_row(
          {bench::size_label(atoms), std::to_string(gpus),
           bench::grid_name(mpi.grid),
           util::Table::fmt(mpi.perf.ns_per_day, 0),
           util::Table::fmt(tmpi.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ns_per_day / mpi.perf.ns_per_day, 2),
           util::Table::fmt(shmem.perf.ms_per_step, 3),
           ref != paper.end() ? util::Table::fmt(ref->second.first, 0) : "-",
           ref != paper.end() ? util::Table::fmt(ref->second.second, 0) : "-"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): NVSHMEM >= MPI everywhere, largest "
               "gain at 45k\n(+46% at 4 GPUs), converging toward parity by "
               "360k on 4 GPUs.\n";
  return obs.finish() ? 0 : 1;
}
