// Figure 6 reproduction: device-side timing for intra-node runs on 4 ranks
// (1D DD): Local work, Non-local work, Non-overlap, and Time per step, for
// MPI vs NVSHMEM at 45k/180k/360k atoms (11.25k/45k/90k per GPU).
// Definitions follow §6.3 verbatim (see runner/timing.hpp).
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 6 — Device-side timing, intra-node (4x H100, 1D DD)",
      "All values in us. Paper anchors: local ~22 us at 11.25k atoms/GPU\n"
      "(1.7-2.0 ns/atom); non-local 116 (MPI) vs 64 (NVSHMEM) at 45k atoms;\n"
      "near-equal local/non-local (~152 us) at 90k atoms/GPU.");

  util::Table table({"size", "atoms/gpu", "transport", "local", "non-local",
                     "non-overlap", "other", "time/step"});

  for (long long atoms : {45000LL, 180000LL, 360000LL}) {
    for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = atoms;
      spec.topology = sim::Topology::dgx_h100(1, 4);
      spec.config.transport = tr;
      spec.steps = 24;
      spec.warmup = 6;
      const auto r = bench::run_case(
          spec, &obs,
          std::string(tr == halo::Transport::Mpi ? "mpi " : "shmem ") +
              bench::size_label(atoms));
      table.add_row({bench::size_label(atoms),
                     bench::size_label(atoms / 4),
                     tr == halo::Transport::Mpi ? "MPI" : "NVSHMEM",
                     util::Table::fmt(r.timing.local_us, 1),
                     util::Table::fmt(r.timing.nonlocal_us, 1),
                     util::Table::fmt(r.timing.nonoverlap_us, 1),
                     util::Table::fmt(r.timing.other_us, 1),
                     util::Table::fmt(r.timing.step_us, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): at 11.25k atoms/GPU NVSHMEM's "
               "non-local work is\nfar smaller than MPI's; by 90k atoms/GPU "
               "local and non-local converge and\nthe transport difference "
               "becomes negligible.\n";
  return obs.finish() ? 0 : 1;
}
