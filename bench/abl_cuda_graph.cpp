// Ablation (§2.2/§3): CUDA-graph scheduling of whole time-steps. One
// cudaGraphLaunch replaces the ~20 launch + ~30 event API calls per step.
// The benefit concentrates where CPU launch overhead is exposed — the
// smallest systems — and vanishes once GPU work hides the control path;
// the CPU-blocking MPI transport cannot be captured at all.
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Ablation — CUDA-graph step scheduling (NVSHMEM / thread-MPI only)",
      "Paper §3: accumulated API overheads reach >50% of CPU wall-time at\n"
      "peak iteration rates; graph scheduling removes most of them.");

  util::Table table({"size", "transport", "graphs off ns/day",
                     "graphs on ns/day", "gain"});

  for (long long atoms : {22500LL, 45000LL, 180000LL, 720000LL}) {
    for (halo::Transport tr :
         {halo::Transport::Shmem, halo::Transport::ThreadMpi}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = atoms;
      spec.topology = sim::Topology::dgx_h100(1, 4);
      spec.config.transport = tr;

      const std::string tag =
          (tr == halo::Transport::Shmem ? "shmem " : "tmpi ") +
          bench::size_label(atoms);
      spec.config.use_cuda_graph = false;
      const auto off = bench::run_case(spec, &obs, "nograph " + tag);
      spec.config.use_cuda_graph = true;
      const auto on = bench::run_case(spec, &obs, "graph " + tag);

      table.add_row(
          {bench::size_label(atoms),
           tr == halo::Transport::Shmem ? "NVSHMEM" : "thread-MPI",
           util::Table::fmt(off.perf.ns_per_day, 0),
           util::Table::fmt(on.perf.ns_per_day, 0),
           util::Table::fmt(
               100.0 * (on.perf.ns_per_day / off.perf.ns_per_day - 1.0), 1) +
               "%"});
    }
  }
  table.print(std::cout);
  return obs.finish() ? 0 : 1;
}
