// Figure 7 reproduction: device-side timing for multi-node runs at 11.25k
// atoms per GPU — grappa 90k/180k/360k on 8/16/32 ranks (2/4/8 nodes,
// 4 GPUs/node), which produce 1D/2D/3D decompositions respectively.
#include <iostream>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 7 — Device-side timing, multi-node, 11.25k atoms/GPU",
      "All values in us. Paper anchors: local ~22 us throughout; non-local\n"
      ">= 80 us and rate-limiting; 1D->2D changes non-local by <11% despite\n"
      "doubling the pulses; 2D->3D adds ~45% (1.5x pulses); other 30-40 us.");

  util::Table table({"size", "ranks", "dd", "transport", "local", "non-local",
                     "non-overlap", "other", "time/step"});

  struct Point {
    long long atoms;
    int nodes;
  };
  for (const Point pt : {Point{90000, 2}, Point{180000, 4}, Point{360000, 8}}) {
    for (halo::Transport tr : {halo::Transport::Mpi, halo::Transport::Shmem}) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = pt.atoms;
      spec.topology = sim::Topology::dgx_h100(pt.nodes, 4);
      spec.config.transport = tr;
      spec.steps = 24;
      spec.warmup = 6;
      const auto r = bench::run_case(
          spec, &obs,
          std::string(tr == halo::Transport::Mpi ? "mpi " : "shmem ") +
              bench::size_label(pt.atoms));
      table.add_row({bench::size_label(pt.atoms), std::to_string(pt.nodes * 4),
                     bench::grid_name(r.grid),
                     tr == halo::Transport::Mpi ? "MPI" : "NVSHMEM",
                     util::Table::fmt(r.timing.local_us, 1),
                     util::Table::fmt(r.timing.nonlocal_us, 1),
                     util::Table::fmt(r.timing.nonoverlap_us, 1),
                     util::Table::fmt(r.timing.other_us, 1),
                     util::Table::fmt(r.timing.step_us, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): non-local dominates the step at "
               "this size; pulse\ncount (DD dimensionality) drives its "
               "growth; NVSHMEM stays ahead of MPI.\n";
  return obs.finish() ? 0 : 1;
}
