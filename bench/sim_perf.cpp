// Wall-clock performance of the simulator itself (google-benchmark):
// discrete-event throughput, coroutine task churn, and a full simulated MD
// step at bench scale — documents how expensive the figure reproductions
// are to run.
#include <benchmark/benchmark.h>

#include "common.hpp"

using namespace hs;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    long long counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(i, [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_DeviceProcessorSharing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Device device(engine, 0, 0);
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(i, [&device, &done] {
        device.begin_span(500.0, 0.4, 0, [&done] { ++done; });
      });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DeviceProcessorSharing);

void BM_SimulatedStep(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bench::CaseSpec spec;
    spec.atoms = 45000LL * ranks / 4;
    spec.topology = sim::Topology::dgx_h100(std::max(1, ranks / 4), 4);
    spec.steps = 8;
    spec.warmup = 2;
    const auto r = bench::run_case(spec);
    benchmark::DoNotOptimize(r.perf.ns_per_day);
  }
  state.SetItemsProcessed(state.iterations() * 8 * ranks);
  state.SetLabel("rank-steps");
}
BENCHMARK(BM_SimulatedStep)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
