// Wall-clock performance of the simulator itself (google-benchmark):
// discrete-event throughput, same-time delivery churn, coroutine task
// churn, and a full simulated MD step at bench scale — documents how
// expensive the figure reproductions are to run.
//
// Beyond the interactive tables, the binary can emit its results in the
// bench-metrics-v1 schema so the wall-clock perf trajectory is gated just
// like the simulated-time figures:
//
//   $ sim_perf --metrics-json=out.json [--benchmark_min_time=...]
//
// Keys are `<benchmark>_wall_ns` (per-iteration wall time) and
// `<benchmark>_per_item_wall_ns` (per processed item: engine events for
// BM_EngineEventThroughput, simulated rank-steps for BM_SimulatedStep).
// All are `_ns`-suffixed, so tools/bench_diff treats them as
// lower-is-better time metrics; scripts/perf_smoke.sh diffs them against
// scripts/baselines/BENCH_sim_perf.json with a generous threshold.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common.hpp"
#include "gbench_metrics.hpp"

using namespace hs;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    long long counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(i, [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

// Same-time delivery churn: every event immediately schedules follow-up
// work at the current timestamp, the dominant pattern in stream pump /
// signal wake chains. Exercises the engine's O(1) FIFO bucket rather than
// the far-future heap.
void BM_EngineScheduleNowChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    long long counter = 0;
    for (int t = 0; t < 100; ++t) {
      engine.schedule_at(t, [&engine, &counter] {
        for (int k = 0; k < 33; ++k) {
          engine.schedule_now([&counter] { ++counter; });
        }
      });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 100 * 34);
}
BENCHMARK(BM_EngineScheduleNowChurn);

void BM_DeviceProcessorSharing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Device device(engine, 0, 0);
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(i, [&device, &done] {
        device.begin_span(500.0, 0.4, 0, [&done] { ++done; });
      });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DeviceProcessorSharing);

// Tiered sharing with holds and mixed priorities: the §5.4 three-stream
// shape, stressing the incremental tier bookkeeping.
void BM_DeviceTieredSharing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Device device(engine, 0, 0);
    int done = 0;
    for (int i = 0; i < 500; ++i) {
      engine.schedule_at(i * 3, [&device, &done, i] {
        const auto hold = device.begin_hold(0.1, 2);
        device.begin_span(200.0, 0.5, i % 3, [&device, hold, &done] {
          device.end_hold(hold);
          ++done;
        });
      });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DeviceTieredSharing);

void BM_SimulatedStep(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bench::CaseSpec spec;
    spec.atoms = 45000LL * ranks / 4;
    spec.topology = sim::Topology::dgx_h100(std::max(1, ranks / 4), 4);
    spec.steps = 8;
    spec.warmup = 2;
    const auto r = bench::run_case(spec);
    benchmark::DoNotOptimize(r.perf.ns_per_day);
  }
  state.SetItemsProcessed(state.iterations() * 8 * ranks);
  state.SetLabel("rank-steps");
}
BENCHMARK(BM_SimulatedStep)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_benchmark_main(argc, argv, "sim_perf");
}
