// Wall-clock microbenchmarks for the MD kernels (google-benchmark): pair
// list construction (scalar vs cluster), nonbonded force evaluation
// (scalar vs the batched cluster fast path), and the SoA gather/scatter
// shims, at grappa-like functional-run sizes (density 50 atoms/nm^3,
// cutoff 0.9 nm, rlist 1.0 nm).
//
// Like sim_perf, the binary emits bench-metrics-v1 JSON:
//
//   $ md_kernels --metrics-json=out.json [--benchmark_min_time=...]
//
// `_wall_ns` keys are gated against scripts/baselines/BENCH_md_kernels.json
// by scripts/perf_smoke.sh. Derived `nb_cluster_speedup_<atoms>` ratios
// (scalar wall / cluster wall, higher is better) are reported but never
// gated by bench_diff; scripts/md_smoke.sh asserts the fast path stays
// >= 2x at the >= 10k-atom sizes.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "gbench_metrics.hpp"
#include "md/cluster_nonbonded.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/nonbonded.hpp"
#include "md/pair_list.hpp"
#include "md/system.hpp"

using namespace hs;

namespace {

constexpr double kCutoff = 0.9;
constexpr double kRlist = 1.0;

/// One prebuilt system per benchmarked size (building a 48k-atom grappa
/// system per iteration would dwarf the kernel under test).
struct SizedCase {
  md::System sys;
  md::ForceField ff{md::grappa_atom_types(), kCutoff};
  md::PairList scalar_list;
  md::ClusterPairList cluster_list;

  explicit SizedCase(int atoms) {
    md::GrappaSpec spec;
    spec.target_atoms = atoms;
    spec.density = 50.0;
    sys = md::build_grappa(spec);
    scalar_list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
    cluster_list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
  }
};

SizedCase& case_for(int atoms) {
  static std::map<int, SizedCase> cases;
  return cases.try_emplace(atoms, atoms).first->second;
}

void BM_PairListBuildScalar(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::PairList list;  // reused across iterations: the steady-state rebuild
  for (auto _ : state) {
    list.build_local(c.sys.box, c.sys.x, c.sys.natoms(), kRlist);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_PairListBuildScalar)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_PairListBuildCluster(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::ClusterPairList list;
  for (auto _ : state) {
    list.build_local(c.sys.box, c.sys.x, c.sys.natoms(), kRlist);
    benchmark::DoNotOptimize(list.pair_count());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_PairListBuildCluster)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_NonbondedScalar(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), md::Vec3{});
    const md::Energies e = md::compute_nonbonded(
        c.sys.box, c.ff, c.sys.x, c.sys.type, c.scalar_list, f);
    benchmark::DoNotOptimize(e.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.scalar_list.size()));
  state.SetLabel("pairs");
}
BENCHMARK(BM_NonbondedScalar)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_NonbondedCluster(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  const md::NbParamTable params(c.ff);
  md::NbWorkspace ws;
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), md::Vec3{});
    const md::Energies e = md::compute_nonbonded_clusters(
        c.sys.box, params, c.cluster_list, c.sys.x, c.sys.type, f, ws);
    benchmark::DoNotOptimize(e.total());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(c.cluster_list.pair_count()));
  state.SetLabel("pairs");
}
BENCHMARK(BM_NonbondedCluster)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_SoaGatherScatter(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::SoaVecs soa;
  std::vector<md::Vec3> back(c.sys.x.size());
  for (auto _ : state) {
    soa.gather(c.sys.x);
    soa.scatter(back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_SoaGatherScatter)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_ClusterGatherScatterAdd(benchmark::State& state) {
  // The kernel's actual staging pattern: indexed gather through the
  // cluster map, indexed scatter-add of forces back (pad slots skipped).
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::SoaVecs soa;
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    soa.gather_indexed(c.sys.x, c.cluster_list.gather_atoms());
    soa.scatter_add_indexed(f, c.cluster_list.cluster_atoms());
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_ClusterGatherScatterAdd)->Arg(3000)->Arg(12000)->Arg(48000);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_benchmark_main(
      argc, argv, "md_kernels", [](bench::MetricsReporter& reporter) {
        for (const int atoms : {3000, 12000, 48000}) {
          const std::string n = std::to_string(atoms);
          const double scalar =
              reporter.value_or_zero("BM_NonbondedScalar/" + n + "_wall_ns");
          const double cluster =
              reporter.value_or_zero("BM_NonbondedCluster/" + n + "_wall_ns");
          if (scalar > 0.0 && cluster > 0.0) {
            reporter.set("nb_cluster_speedup_" + n, scalar / cluster);
          }
          const double sbuild =
              reporter.value_or_zero("BM_PairListBuildScalar/" + n +
                                     "_wall_ns");
          const double cbuild =
              reporter.value_or_zero("BM_PairListBuildCluster/" + n +
                                     "_wall_ns");
          if (sbuild > 0.0 && cbuild > 0.0) {
            reporter.set("list_build_cluster_speedup_" + n, sbuild / cbuild);
          }
        }
      });
}
