// Wall-clock microbenchmarks for the MD kernels (google-benchmark): pair
// list construction (scalar vs cluster), nonbonded force evaluation
// (scalar vs the batched cluster fast path), and the SoA gather/scatter
// shims, at grappa-like functional-run sizes (density 50 atoms/nm^3,
// cutoff 0.9 nm, rlist 1.0 nm).
//
// Like sim_perf, the binary emits bench-metrics-v1 JSON:
//
//   $ md_kernels --metrics-json=out.json [--benchmark_min_time=...]
//
// `_wall_ns` keys are gated against scripts/baselines/BENCH_md_kernels.json
// by scripts/perf_smoke.sh. Derived `nb_cluster_speedup_<atoms>` ratios
// (scalar wall / cluster wall, higher is better) are reported but never
// gated by bench_diff; scripts/md_smoke.sh asserts the fast path stays
// >= 2x at the >= 10k-atom sizes.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "gbench_metrics.hpp"
#include "md/cluster_nonbonded.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/nonbonded.hpp"
#include "md/pair_list.hpp"
#include "md/simd/isa.hpp"
#include "md/system.hpp"

using namespace hs;

namespace {

constexpr double kCutoff = 0.9;
constexpr double kRlist = 1.0;

/// One prebuilt system per benchmarked size (building a 48k-atom grappa
/// system per iteration would dwarf the kernel under test).
struct SizedCase {
  md::System sys;
  md::ForceField ff{md::grappa_atom_types(), kCutoff};
  md::PairList scalar_list;
  md::ClusterPairList cluster_list;

  explicit SizedCase(int atoms) {
    md::GrappaSpec spec;
    spec.target_atoms = atoms;
    spec.density = 50.0;
    sys = md::build_grappa(spec);
    scalar_list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
    cluster_list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
  }
};

SizedCase& case_for(int atoms) {
  static std::map<int, SizedCase> cases;
  return cases.try_emplace(atoms, atoms).first->second;
}

void BM_PairListBuildScalar(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::PairList list;  // reused across iterations: the steady-state rebuild
  for (auto _ : state) {
    list.build_local(c.sys.box, c.sys.x, c.sys.natoms(), kRlist);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_PairListBuildScalar)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_PairListBuildCluster(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::ClusterPairList list;
  for (auto _ : state) {
    list.build_local(c.sys.box, c.sys.x, c.sys.natoms(), kRlist);
    benchmark::DoNotOptimize(list.pair_count());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_PairListBuildCluster)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_NonbondedScalar(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), md::Vec3{});
    const md::Energies e = md::compute_nonbonded(
        c.sys.box, c.ff, c.sys.x, c.sys.type, c.scalar_list, f);
    benchmark::DoNotOptimize(e.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.scalar_list.size()));
  state.SetLabel("pairs");
}
BENCHMARK(BM_NonbondedScalar)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_NonbondedCluster(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  const md::NbParamTable params(c.ff);
  md::NbWorkspace ws;
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), md::Vec3{});
    const md::Energies e = md::compute_nonbonded_clusters(
        c.sys.box, params, c.cluster_list, c.sys.x, c.sys.type, f, ws);
    benchmark::DoNotOptimize(e.total());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(c.cluster_list.pair_count()));
  state.SetLabel("pairs");
}
BENCHMARK(BM_NonbondedCluster)->Arg(3000)->Arg(12000)->Arg(48000);

/// Forced-ISA cluster kernel (BM_NonbondedCluster_<isa>): one instance is
/// registered per host-supported ISA in main(), at 3k and the 24k
/// acceptance size, so one run compares the 4x4 SSE2 path against the
/// 4x8 AVX2/AVX-512 lane blocks on identical lists.
void nonbonded_cluster_isa(benchmark::State& state, md::simd::KernelIsa isa) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  const md::NbParamTable params(c.ff);
  md::NbWorkspace ws;
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), md::Vec3{});
    const md::Energies e = md::compute_nonbonded_clusters(
        c.sys.box, params, c.cluster_list, c.sys.x, c.sys.type, f, ws, isa);
    benchmark::DoNotOptimize(e.total());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(c.cluster_list.pair_count()));
  state.SetLabel("pairs");
}

void BM_SoaGatherScatter(benchmark::State& state) {
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::SoaVecs soa;
  std::vector<md::Vec3> back(c.sys.x.size());
  for (auto _ : state) {
    soa.gather(c.sys.x);
    soa.scatter(back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_SoaGatherScatter)->Arg(3000)->Arg(12000)->Arg(48000);

void BM_ClusterGatherScatterAdd(benchmark::State& state) {
  // The kernel's actual staging pattern: indexed gather through the
  // cluster map, indexed scatter-add of forces back (pad slots skipped).
  SizedCase& c = case_for(static_cast<int>(state.range(0)));
  md::SoaVecs soa;
  std::vector<md::Vec3> f(c.sys.x.size());
  for (auto _ : state) {
    soa.gather_indexed(c.sys.x, c.cluster_list.gather_atoms());
    soa.scatter_add_indexed(f, c.cluster_list.cluster_atoms());
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * c.sys.natoms());
}
BENCHMARK(BM_ClusterGatherScatterAdd)->Arg(3000)->Arg(12000)->Arg(48000);

}  // namespace

int main(int argc, char** argv) {
  // `--print-isa`: report dispatch capabilities for scripts (md_smoke.sh
  // uses it to enumerate the HALOSIM_FORCE_ISA sweep) and exit.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-isa") == 0) {
      std::cout << "supported:";
      for (const auto isa : md::simd::supported_isas()) {
        std::cout << ' ' << md::simd::isa_name(isa);
      }
      std::cout << "\ndispatched: "
                << md::simd::isa_name(md::simd::active_isa()) << "\n";
      return 0;
    }
  }

  for (const auto isa : md::simd::supported_isas()) {
    const std::string name =
        std::string("BM_NonbondedCluster_") + std::string(md::simd::isa_name(isa));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [isa](benchmark::State& state) { nonbonded_cluster_isa(state, isa); })
        ->Arg(3000)
        ->Arg(24000);
  }

  return bench::run_benchmark_main(
      argc, argv, "md_kernels", [](bench::MetricsReporter& reporter) {
        for (const int atoms : {3000, 12000, 48000}) {
          const std::string n = std::to_string(atoms);
          const double scalar =
              reporter.value_or_zero("BM_NonbondedScalar/" + n + "_wall_ns");
          const double cluster =
              reporter.value_or_zero("BM_NonbondedCluster/" + n + "_wall_ns");
          if (scalar > 0.0 && cluster > 0.0) {
            reporter.set("nb_cluster_speedup_" + n, scalar / cluster);
          }
          const double sbuild =
              reporter.value_or_zero("BM_PairListBuildScalar/" + n +
                                     "_wall_ns");
          const double cbuild =
              reporter.value_or_zero("BM_PairListBuildCluster/" + n +
                                     "_wall_ns");
          if (sbuild > 0.0 && cbuild > 0.0) {
            reporter.set("list_build_cluster_speedup_" + n, sbuild / cbuild);
          }
        }
        // ISA provenance (non-time keys: bench_diff notes an ISA change as
        // key drift, never gates it) plus wide-vs-SSE2 speedups at the
        // acceptance sizes.
        const auto active = md::simd::active_isa();
        reporter.set("simd_isa_level",
                     static_cast<double>(md::simd::isa_level(active)));
        reporter.set("cluster_j_width",
                     static_cast<double>(md::simd::j_cluster_width(active)));
        for (const int atoms : {3000, 24000}) {
          const std::string n = std::to_string(atoms);
          const double sse2 = reporter.value_or_zero(
              "BM_NonbondedCluster_sse2/" + n + "_wall_ns");
          if (sse2 <= 0.0) continue;
          for (const char* wide : {"avx2", "avx512"}) {
            const double w = reporter.value_or_zero(
                std::string("BM_NonbondedCluster_") + wide + "/" + n +
                "_wall_ns");
            if (w > 0.0) {
              reporter.set(std::string("nb_") + wide + "_vs_sse2_speedup_" + n,
                           sse2 / w);
            }
          }
        }
      });
}
