// Figure 5 reproduction: multi-node MPI vs NVSHMEM strong scaling over
// NVLink + InfiniBand on Eos (4 of 8 H100 GPUs per node, NDR400 IB).
// Prints ns/day, ms/step, parallel efficiency vs the smallest node count,
// and the NVSHMEM/MPI speedup S for every (size, nodes) point.
#include <iostream>
#include <map>
#include <vector>

#include "common.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Observability obs(cli);
  bench::print_header(
      "Fig. 5 — Multi-node strong scaling over NVLink+IB (Eos, 4 GPUs/node)",
      "Paper anchors: 720k @8 nodes: 944 (MPI) vs 1103 (NVSHMEM) ns/day;\n"
      "5760k @128 nodes: NVSHMEM 1.3x MPI; 23040k @288 nodes: 716 vs 633.");

  struct Series {
    long long atoms;
    std::vector<int> nodes;
  };
  const std::vector<Series> series = {
      {720000, {2, 4, 8, 16}},
      {1440000, {2, 4, 8, 16, 32}},
      {5760000, {8, 16, 32, 64, 128}},
      {23040000, {32, 64, 128, 288}},
  };

  util::Table table({"size", "nodes", "gpus", "dd", "mpi ns/day",
                     "nvshmem ns/day", "S", "mpi eff", "nvshmem eff"});

  for (const auto& s : series) {
    double base_mpi = 0.0, base_shmem = 0.0;
    int base_nodes = s.nodes.front();
    for (int nodes : s.nodes) {
      bench::CaseSpec spec;
      spec.workers = bench::cli_workers(cli);
      spec.atoms = s.atoms;
      spec.topology = sim::Topology::dgx_h100(nodes, 4);
      // Fewer steps at very large rank counts to keep the bench snappy.
      if (nodes >= 64) {
        spec.steps = 10;
        spec.warmup = 3;
      }

      const std::string tag =
          bench::size_label(s.atoms) + " " + std::to_string(nodes) + "n";
      spec.config.transport = halo::Transport::Mpi;
      const auto mpi = bench::run_case(spec, &obs, "mpi " + tag);
      spec.config.transport = halo::Transport::Shmem;
      const auto shmem = bench::run_case(spec, &obs, "shmem " + tag);

      if (nodes == base_nodes) {
        base_mpi = mpi.perf.ns_per_day;
        base_shmem = shmem.perf.ns_per_day;
      }
      const double scale = static_cast<double>(nodes) / base_nodes;
      table.add_row(
          {bench::size_label(s.atoms), std::to_string(nodes),
           std::to_string(nodes * 4), bench::grid_name(shmem.grid),
           util::Table::fmt(mpi.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ns_per_day, 0),
           util::Table::fmt(shmem.perf.ns_per_day / mpi.perf.ns_per_day, 2),
           util::Table::fmt(100.0 * mpi.perf.ns_per_day / (base_mpi * scale), 0) + "%",
           util::Table::fmt(
               100.0 * shmem.perf.ns_per_day / (base_shmem * scale), 0) +
               "%"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): NVSHMEM ahead for smaller systems "
               "and at scale\n(S up to ~1.3 at high node counts); MPI "
               "marginally ahead for large systems\nat low node counts "
               "(compute-dominated regime).\n";
  return obs.finish() ? 0 : 1;
}
