file(REMOVE_RECURSE
  "../examples/pme_validation"
  "../examples/pme_validation.pdb"
  "CMakeFiles/pme_validation.dir/pme_validation.cpp.o"
  "CMakeFiles/pme_validation.dir/pme_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pme_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
