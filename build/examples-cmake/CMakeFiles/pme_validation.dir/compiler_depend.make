# Empty compiler generated dependencies file for pme_validation.
# This may be replaced when dependencies are built.
