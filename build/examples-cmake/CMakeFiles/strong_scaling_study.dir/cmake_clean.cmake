file(REMOVE_RECURSE
  "../examples/strong_scaling_study"
  "../examples/strong_scaling_study.pdb"
  "CMakeFiles/strong_scaling_study.dir/strong_scaling_study.cpp.o"
  "CMakeFiles/strong_scaling_study.dir/strong_scaling_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strong_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
