# Empty dependencies file for strong_scaling_study.
# This may be replaced when dependencies are built.
