file(REMOVE_RECURSE
  "../examples/schedule_explorer"
  "../examples/schedule_explorer.pdb"
  "CMakeFiles/schedule_explorer.dir/schedule_explorer.cpp.o"
  "CMakeFiles/schedule_explorer.dir/schedule_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
