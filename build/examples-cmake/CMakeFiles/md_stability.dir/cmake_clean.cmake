file(REMOVE_RECURSE
  "../examples/md_stability"
  "../examples/md_stability.pdb"
  "CMakeFiles/md_stability.dir/md_stability.cpp.o"
  "CMakeFiles/md_stability.dir/md_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
