# Empty dependencies file for md_stability.
# This may be replaced when dependencies are built.
