file(REMOVE_RECURSE
  "CMakeFiles/runner_tests.dir/calibration_test.cpp.o"
  "CMakeFiles/runner_tests.dir/calibration_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/consistency_test.cpp.o"
  "CMakeFiles/runner_tests.dir/consistency_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/md_runner_test.cpp.o"
  "CMakeFiles/runner_tests.dir/md_runner_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/pme_flow_test.cpp.o"
  "CMakeFiles/runner_tests.dir/pme_flow_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/robustness_test.cpp.o"
  "CMakeFiles/runner_tests.dir/robustness_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/schedule_test.cpp.o"
  "CMakeFiles/runner_tests.dir/schedule_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/timing_test.cpp.o"
  "CMakeFiles/runner_tests.dir/timing_test.cpp.o.d"
  "runner_tests"
  "runner_tests.pdb"
  "runner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
