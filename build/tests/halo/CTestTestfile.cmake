# CMake generated Testfile for 
# Source directory: /root/repo/tests/halo
# Build directory: /root/repo/build/tests/halo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/halo/halo_tests[1]_include.cmake")
