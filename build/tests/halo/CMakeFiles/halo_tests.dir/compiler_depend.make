# Empty compiler generated dependencies file for halo_tests.
# This may be replaced when dependencies are built.
