file(REMOVE_RECURSE
  "CMakeFiles/halo_tests.dir/mpi_halo_test.cpp.o"
  "CMakeFiles/halo_tests.dir/mpi_halo_test.cpp.o.d"
  "CMakeFiles/halo_tests.dir/shmem_halo_test.cpp.o"
  "CMakeFiles/halo_tests.dir/shmem_halo_test.cpp.o.d"
  "CMakeFiles/halo_tests.dir/tmpi_halo_test.cpp.o"
  "CMakeFiles/halo_tests.dir/tmpi_halo_test.cpp.o.d"
  "CMakeFiles/halo_tests.dir/transport_equivalence_test.cpp.o"
  "CMakeFiles/halo_tests.dir/transport_equivalence_test.cpp.o.d"
  "CMakeFiles/halo_tests.dir/workload_test.cpp.o"
  "CMakeFiles/halo_tests.dir/workload_test.cpp.o.d"
  "halo_tests"
  "halo_tests.pdb"
  "halo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
