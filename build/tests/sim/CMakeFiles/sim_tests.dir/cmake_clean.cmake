file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/device_test.cpp.o"
  "CMakeFiles/sim_tests.dir/device_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/engine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/engine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/fabric_test.cpp.o"
  "CMakeFiles/sim_tests.dir/fabric_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/hold_dispatch_test.cpp.o"
  "CMakeFiles/sim_tests.dir/hold_dispatch_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/stream_test.cpp.o"
  "CMakeFiles/sim_tests.dir/stream_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sync_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sync_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/task_test.cpp.o"
  "CMakeFiles/sim_tests.dir/task_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/topology_test.cpp.o"
  "CMakeFiles/sim_tests.dir/topology_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
