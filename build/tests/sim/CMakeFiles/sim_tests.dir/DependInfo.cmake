
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/device_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/device_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/engine_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/sim/fabric_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/fabric_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/fabric_test.cpp.o.d"
  "/root/repo/tests/sim/hold_dispatch_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/hold_dispatch_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/hold_dispatch_test.cpp.o.d"
  "/root/repo/tests/sim/stream_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/stream_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/stream_test.cpp.o.d"
  "/root/repo/tests/sim/sync_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/sync_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/sync_test.cpp.o.d"
  "/root/repo/tests/sim/task_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/task_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/task_test.cpp.o.d"
  "/root/repo/tests/sim/topology_test.cpp" "tests/sim/CMakeFiles/sim_tests.dir/topology_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_tests.dir/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
