
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dd/exchange_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/exchange_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/exchange_test.cpp.o.d"
  "/root/repo/tests/dd/geometry_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/geometry_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/dd/grid_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/grid_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/grid_test.cpp.o.d"
  "/root/repo/tests/dd/integration_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/integration_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/dd/lifecycle_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/lifecycle_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/lifecycle_test.cpp.o.d"
  "/root/repo/tests/dd/plan_test.cpp" "tests/dd/CMakeFiles/dd_tests.dir/plan_test.cpp.o" "gcc" "tests/dd/CMakeFiles/dd_tests.dir/plan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dd/CMakeFiles/hs_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/hs_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
