file(REMOVE_RECURSE
  "CMakeFiles/dd_tests.dir/exchange_test.cpp.o"
  "CMakeFiles/dd_tests.dir/exchange_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/geometry_test.cpp.o"
  "CMakeFiles/dd_tests.dir/geometry_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/grid_test.cpp.o"
  "CMakeFiles/dd_tests.dir/grid_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/integration_test.cpp.o"
  "CMakeFiles/dd_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/lifecycle_test.cpp.o"
  "CMakeFiles/dd_tests.dir/lifecycle_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/plan_test.cpp.o"
  "CMakeFiles/dd_tests.dir/plan_test.cpp.o.d"
  "dd_tests"
  "dd_tests.pdb"
  "dd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
