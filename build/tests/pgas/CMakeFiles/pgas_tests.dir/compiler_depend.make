# Empty compiler generated dependencies file for pgas_tests.
# This may be replaced when dependencies are built.
