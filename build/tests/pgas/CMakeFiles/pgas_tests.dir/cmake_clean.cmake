file(REMOVE_RECURSE
  "CMakeFiles/pgas_tests.dir/symmetric_heap_test.cpp.o"
  "CMakeFiles/pgas_tests.dir/symmetric_heap_test.cpp.o.d"
  "CMakeFiles/pgas_tests.dir/team_test.cpp.o"
  "CMakeFiles/pgas_tests.dir/team_test.cpp.o.d"
  "CMakeFiles/pgas_tests.dir/world_test.cpp.o"
  "CMakeFiles/pgas_tests.dir/world_test.cpp.o.d"
  "pgas_tests"
  "pgas_tests.pdb"
  "pgas_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgas_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
