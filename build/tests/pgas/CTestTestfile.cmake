# CMake generated Testfile for 
# Source directory: /root/repo/tests/pgas
# Build directory: /root/repo/build/tests/pgas
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pgas/pgas_tests[1]_include.cmake")
