
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/md/box_test.cpp" "tests/md/CMakeFiles/md_tests.dir/box_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/box_test.cpp.o.d"
  "/root/repo/tests/md/cell_list_test.cpp" "tests/md/CMakeFiles/md_tests.dir/cell_list_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/cell_list_test.cpp.o.d"
  "/root/repo/tests/md/ewald_test.cpp" "tests/md/CMakeFiles/md_tests.dir/ewald_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/ewald_test.cpp.o.d"
  "/root/repo/tests/md/fft_test.cpp" "tests/md/CMakeFiles/md_tests.dir/fft_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/fft_test.cpp.o.d"
  "/root/repo/tests/md/forcefield_test.cpp" "tests/md/CMakeFiles/md_tests.dir/forcefield_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/forcefield_test.cpp.o.d"
  "/root/repo/tests/md/integrator_test.cpp" "tests/md/CMakeFiles/md_tests.dir/integrator_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/integrator_test.cpp.o.d"
  "/root/repo/tests/md/nonbonded_test.cpp" "tests/md/CMakeFiles/md_tests.dir/nonbonded_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/nonbonded_test.cpp.o.d"
  "/root/repo/tests/md/pair_list_test.cpp" "tests/md/CMakeFiles/md_tests.dir/pair_list_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/pair_list_test.cpp.o.d"
  "/root/repo/tests/md/system_test.cpp" "tests/md/CMakeFiles/md_tests.dir/system_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/system_test.cpp.o.d"
  "/root/repo/tests/md/vec3_test.cpp" "tests/md/CMakeFiles/md_tests.dir/vec3_test.cpp.o" "gcc" "tests/md/CMakeFiles/md_tests.dir/vec3_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/hs_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
