# Empty dependencies file for md_tests.
# This may be replaced when dependencies are built.
