file(REMOVE_RECURSE
  "CMakeFiles/md_tests.dir/box_test.cpp.o"
  "CMakeFiles/md_tests.dir/box_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/cell_list_test.cpp.o"
  "CMakeFiles/md_tests.dir/cell_list_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/ewald_test.cpp.o"
  "CMakeFiles/md_tests.dir/ewald_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/fft_test.cpp.o"
  "CMakeFiles/md_tests.dir/fft_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/forcefield_test.cpp.o"
  "CMakeFiles/md_tests.dir/forcefield_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/integrator_test.cpp.o"
  "CMakeFiles/md_tests.dir/integrator_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/nonbonded_test.cpp.o"
  "CMakeFiles/md_tests.dir/nonbonded_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/pair_list_test.cpp.o"
  "CMakeFiles/md_tests.dir/pair_list_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/system_test.cpp.o"
  "CMakeFiles/md_tests.dir/system_test.cpp.o.d"
  "CMakeFiles/md_tests.dir/vec3_test.cpp.o"
  "CMakeFiles/md_tests.dir/vec3_test.cpp.o.d"
  "md_tests"
  "md_tests.pdb"
  "md_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
