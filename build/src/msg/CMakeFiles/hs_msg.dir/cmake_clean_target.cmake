file(REMOVE_RECURSE
  "libhs_msg.a"
)
