# Empty dependencies file for hs_msg.
# This may be replaced when dependencies are built.
