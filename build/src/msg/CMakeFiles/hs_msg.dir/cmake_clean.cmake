file(REMOVE_RECURSE
  "CMakeFiles/hs_msg.dir/comm.cpp.o"
  "CMakeFiles/hs_msg.dir/comm.cpp.o.d"
  "libhs_msg.a"
  "libhs_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
