file(REMOVE_RECURSE
  "libhs_halo.a"
)
