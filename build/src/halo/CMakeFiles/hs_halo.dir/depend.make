# Empty dependencies file for hs_halo.
# This may be replaced when dependencies are built.
