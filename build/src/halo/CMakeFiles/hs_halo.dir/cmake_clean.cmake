file(REMOVE_RECURSE
  "CMakeFiles/hs_halo.dir/mpi_halo.cpp.o"
  "CMakeFiles/hs_halo.dir/mpi_halo.cpp.o.d"
  "CMakeFiles/hs_halo.dir/shmem_halo.cpp.o"
  "CMakeFiles/hs_halo.dir/shmem_halo.cpp.o.d"
  "CMakeFiles/hs_halo.dir/tmpi_halo.cpp.o"
  "CMakeFiles/hs_halo.dir/tmpi_halo.cpp.o.d"
  "CMakeFiles/hs_halo.dir/workload.cpp.o"
  "CMakeFiles/hs_halo.dir/workload.cpp.o.d"
  "libhs_halo.a"
  "libhs_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
