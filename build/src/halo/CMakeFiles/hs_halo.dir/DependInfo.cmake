
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/halo/mpi_halo.cpp" "src/halo/CMakeFiles/hs_halo.dir/mpi_halo.cpp.o" "gcc" "src/halo/CMakeFiles/hs_halo.dir/mpi_halo.cpp.o.d"
  "/root/repo/src/halo/shmem_halo.cpp" "src/halo/CMakeFiles/hs_halo.dir/shmem_halo.cpp.o" "gcc" "src/halo/CMakeFiles/hs_halo.dir/shmem_halo.cpp.o.d"
  "/root/repo/src/halo/tmpi_halo.cpp" "src/halo/CMakeFiles/hs_halo.dir/tmpi_halo.cpp.o" "gcc" "src/halo/CMakeFiles/hs_halo.dir/tmpi_halo.cpp.o.d"
  "/root/repo/src/halo/workload.cpp" "src/halo/CMakeFiles/hs_halo.dir/workload.cpp.o" "gcc" "src/halo/CMakeFiles/hs_halo.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dd/CMakeFiles/hs_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/hs_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hs_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/hs_md.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
