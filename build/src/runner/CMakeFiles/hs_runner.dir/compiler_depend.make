# Empty compiler generated dependencies file for hs_runner.
# This may be replaced when dependencies are built.
