file(REMOVE_RECURSE
  "CMakeFiles/hs_runner.dir/md_runner.cpp.o"
  "CMakeFiles/hs_runner.dir/md_runner.cpp.o.d"
  "CMakeFiles/hs_runner.dir/pme_flow.cpp.o"
  "CMakeFiles/hs_runner.dir/pme_flow.cpp.o.d"
  "CMakeFiles/hs_runner.dir/timing.cpp.o"
  "CMakeFiles/hs_runner.dir/timing.cpp.o.d"
  "libhs_runner.a"
  "libhs_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
