file(REMOVE_RECURSE
  "libhs_runner.a"
)
