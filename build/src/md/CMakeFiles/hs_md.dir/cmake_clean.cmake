file(REMOVE_RECURSE
  "CMakeFiles/hs_md.dir/cell_list.cpp.o"
  "CMakeFiles/hs_md.dir/cell_list.cpp.o.d"
  "CMakeFiles/hs_md.dir/ewald.cpp.o"
  "CMakeFiles/hs_md.dir/ewald.cpp.o.d"
  "CMakeFiles/hs_md.dir/fft.cpp.o"
  "CMakeFiles/hs_md.dir/fft.cpp.o.d"
  "CMakeFiles/hs_md.dir/forcefield.cpp.o"
  "CMakeFiles/hs_md.dir/forcefield.cpp.o.d"
  "CMakeFiles/hs_md.dir/integrator.cpp.o"
  "CMakeFiles/hs_md.dir/integrator.cpp.o.d"
  "CMakeFiles/hs_md.dir/nonbonded.cpp.o"
  "CMakeFiles/hs_md.dir/nonbonded.cpp.o.d"
  "CMakeFiles/hs_md.dir/pair_list.cpp.o"
  "CMakeFiles/hs_md.dir/pair_list.cpp.o.d"
  "CMakeFiles/hs_md.dir/system.cpp.o"
  "CMakeFiles/hs_md.dir/system.cpp.o.d"
  "libhs_md.a"
  "libhs_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
