# Empty dependencies file for hs_md.
# This may be replaced when dependencies are built.
