file(REMOVE_RECURSE
  "libhs_md.a"
)
