
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/cell_list.cpp" "src/md/CMakeFiles/hs_md.dir/cell_list.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/cell_list.cpp.o.d"
  "/root/repo/src/md/ewald.cpp" "src/md/CMakeFiles/hs_md.dir/ewald.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/ewald.cpp.o.d"
  "/root/repo/src/md/fft.cpp" "src/md/CMakeFiles/hs_md.dir/fft.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/fft.cpp.o.d"
  "/root/repo/src/md/forcefield.cpp" "src/md/CMakeFiles/hs_md.dir/forcefield.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/forcefield.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/hs_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/nonbonded.cpp" "src/md/CMakeFiles/hs_md.dir/nonbonded.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/nonbonded.cpp.o.d"
  "/root/repo/src/md/pair_list.cpp" "src/md/CMakeFiles/hs_md.dir/pair_list.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/pair_list.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/md/CMakeFiles/hs_md.dir/system.cpp.o" "gcc" "src/md/CMakeFiles/hs_md.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
