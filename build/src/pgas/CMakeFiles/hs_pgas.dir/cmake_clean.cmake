file(REMOVE_RECURSE
  "CMakeFiles/hs_pgas.dir/symmetric_heap.cpp.o"
  "CMakeFiles/hs_pgas.dir/symmetric_heap.cpp.o.d"
  "CMakeFiles/hs_pgas.dir/team.cpp.o"
  "CMakeFiles/hs_pgas.dir/team.cpp.o.d"
  "CMakeFiles/hs_pgas.dir/world.cpp.o"
  "CMakeFiles/hs_pgas.dir/world.cpp.o.d"
  "libhs_pgas.a"
  "libhs_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
