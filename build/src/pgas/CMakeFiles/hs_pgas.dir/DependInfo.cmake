
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgas/symmetric_heap.cpp" "src/pgas/CMakeFiles/hs_pgas.dir/symmetric_heap.cpp.o" "gcc" "src/pgas/CMakeFiles/hs_pgas.dir/symmetric_heap.cpp.o.d"
  "/root/repo/src/pgas/team.cpp" "src/pgas/CMakeFiles/hs_pgas.dir/team.cpp.o" "gcc" "src/pgas/CMakeFiles/hs_pgas.dir/team.cpp.o.d"
  "/root/repo/src/pgas/world.cpp" "src/pgas/CMakeFiles/hs_pgas.dir/world.cpp.o" "gcc" "src/pgas/CMakeFiles/hs_pgas.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
