# Empty dependencies file for hs_pgas.
# This may be replaced when dependencies are built.
