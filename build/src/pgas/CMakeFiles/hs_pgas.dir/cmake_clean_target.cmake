file(REMOVE_RECURSE
  "libhs_pgas.a"
)
