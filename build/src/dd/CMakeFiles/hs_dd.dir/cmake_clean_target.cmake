file(REMOVE_RECURSE
  "libhs_dd.a"
)
