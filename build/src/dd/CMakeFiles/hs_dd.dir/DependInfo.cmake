
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/decomposition.cpp" "src/dd/CMakeFiles/hs_dd.dir/decomposition.cpp.o" "gcc" "src/dd/CMakeFiles/hs_dd.dir/decomposition.cpp.o.d"
  "/root/repo/src/dd/geometry.cpp" "src/dd/CMakeFiles/hs_dd.dir/geometry.cpp.o" "gcc" "src/dd/CMakeFiles/hs_dd.dir/geometry.cpp.o.d"
  "/root/repo/src/dd/grid.cpp" "src/dd/CMakeFiles/hs_dd.dir/grid.cpp.o" "gcc" "src/dd/CMakeFiles/hs_dd.dir/grid.cpp.o.d"
  "/root/repo/src/dd/plan.cpp" "src/dd/CMakeFiles/hs_dd.dir/plan.cpp.o" "gcc" "src/dd/CMakeFiles/hs_dd.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/hs_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
