# Empty dependencies file for hs_dd.
# This may be replaced when dependencies are built.
