file(REMOVE_RECURSE
  "CMakeFiles/hs_dd.dir/decomposition.cpp.o"
  "CMakeFiles/hs_dd.dir/decomposition.cpp.o.d"
  "CMakeFiles/hs_dd.dir/geometry.cpp.o"
  "CMakeFiles/hs_dd.dir/geometry.cpp.o.d"
  "CMakeFiles/hs_dd.dir/grid.cpp.o"
  "CMakeFiles/hs_dd.dir/grid.cpp.o.d"
  "CMakeFiles/hs_dd.dir/plan.cpp.o"
  "CMakeFiles/hs_dd.dir/plan.cpp.o.d"
  "libhs_dd.a"
  "libhs_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
