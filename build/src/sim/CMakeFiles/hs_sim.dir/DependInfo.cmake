
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/costmodel.cpp" "src/sim/CMakeFiles/hs_sim.dir/costmodel.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/costmodel.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/hs_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/hs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/hs_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/hs_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/hs_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/stream.cpp" "src/sim/CMakeFiles/hs_sim.dir/stream.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/stream.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/sim/CMakeFiles/hs_sim.dir/sync.cpp.o" "gcc" "src/sim/CMakeFiles/hs_sim.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
