file(REMOVE_RECURSE
  "CMakeFiles/hs_sim.dir/costmodel.cpp.o"
  "CMakeFiles/hs_sim.dir/costmodel.cpp.o.d"
  "CMakeFiles/hs_sim.dir/device.cpp.o"
  "CMakeFiles/hs_sim.dir/device.cpp.o.d"
  "CMakeFiles/hs_sim.dir/engine.cpp.o"
  "CMakeFiles/hs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hs_sim.dir/fabric.cpp.o"
  "CMakeFiles/hs_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/hs_sim.dir/kernel.cpp.o"
  "CMakeFiles/hs_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/hs_sim.dir/machine.cpp.o"
  "CMakeFiles/hs_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hs_sim.dir/stream.cpp.o"
  "CMakeFiles/hs_sim.dir/stream.cpp.o.d"
  "CMakeFiles/hs_sim.dir/sync.cpp.o"
  "CMakeFiles/hs_sim.dir/sync.cpp.o.d"
  "libhs_sim.a"
  "libhs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
