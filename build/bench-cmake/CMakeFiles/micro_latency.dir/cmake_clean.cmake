file(REMOVE_RECURSE
  "../bench/micro_latency"
  "../bench/micro_latency.pdb"
  "CMakeFiles/micro_latency.dir/micro_latency.cpp.o"
  "CMakeFiles/micro_latency.dir/micro_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
