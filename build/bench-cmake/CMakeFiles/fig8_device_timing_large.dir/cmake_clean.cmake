file(REMOVE_RECURSE
  "../bench/fig8_device_timing_large"
  "../bench/fig8_device_timing_large.pdb"
  "CMakeFiles/fig8_device_timing_large.dir/fig8_device_timing_large.cpp.o"
  "CMakeFiles/fig8_device_timing_large.dir/fig8_device_timing_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_device_timing_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
