# Empty compiler generated dependencies file for fig8_device_timing_large.
# This may be replaced when dependencies are built.
