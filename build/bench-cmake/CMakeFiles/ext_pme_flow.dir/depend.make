# Empty dependencies file for ext_pme_flow.
# This may be replaced when dependencies are built.
