file(REMOVE_RECURSE
  "../bench/ext_pme_flow"
  "../bench/ext_pme_flow.pdb"
  "CMakeFiles/ext_pme_flow.dir/ext_pme_flow.cpp.o"
  "CMakeFiles/ext_pme_flow.dir/ext_pme_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pme_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
