file(REMOVE_RECURSE
  "../bench/fig12_schedule_trace"
  "../bench/fig12_schedule_trace.pdb"
  "CMakeFiles/fig12_schedule_trace.dir/fig12_schedule_trace.cpp.o"
  "CMakeFiles/fig12_schedule_trace.dir/fig12_schedule_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_schedule_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
