# Empty compiler generated dependencies file for fig12_schedule_trace.
# This may be replaced when dependencies are built.
