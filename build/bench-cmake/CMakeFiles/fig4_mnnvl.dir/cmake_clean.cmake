file(REMOVE_RECURSE
  "../bench/fig4_mnnvl"
  "../bench/fig4_mnnvl.pdb"
  "CMakeFiles/fig4_mnnvl.dir/fig4_mnnvl.cpp.o"
  "CMakeFiles/fig4_mnnvl.dir/fig4_mnnvl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mnnvl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
