# Empty compiler generated dependencies file for fig4_mnnvl.
# This may be replaced when dependencies are built.
