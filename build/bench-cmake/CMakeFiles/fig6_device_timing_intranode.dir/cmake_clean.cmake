file(REMOVE_RECURSE
  "../bench/fig6_device_timing_intranode"
  "../bench/fig6_device_timing_intranode.pdb"
  "CMakeFiles/fig6_device_timing_intranode.dir/fig6_device_timing_intranode.cpp.o"
  "CMakeFiles/fig6_device_timing_intranode.dir/fig6_device_timing_intranode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_device_timing_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
