# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_device_timing_intranode.
