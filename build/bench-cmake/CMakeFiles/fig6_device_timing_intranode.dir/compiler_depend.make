# Empty compiler generated dependencies file for fig6_device_timing_intranode.
# This may be replaced when dependencies are built.
