file(REMOVE_RECURSE
  "../bench/abl_halo_design"
  "../bench/abl_halo_design.pdb"
  "CMakeFiles/abl_halo_design.dir/abl_halo_design.cpp.o"
  "CMakeFiles/abl_halo_design.dir/abl_halo_design.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_halo_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
