file(REMOVE_RECURSE
  "../bench/fig7_device_timing_small"
  "../bench/fig7_device_timing_small.pdb"
  "CMakeFiles/fig7_device_timing_small.dir/fig7_device_timing_small.cpp.o"
  "CMakeFiles/fig7_device_timing_small.dir/fig7_device_timing_small.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_device_timing_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
