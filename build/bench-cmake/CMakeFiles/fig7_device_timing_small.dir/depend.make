# Empty dependencies file for fig7_device_timing_small.
# This may be replaced when dependencies are built.
