
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_device_timing_small.cpp" "bench-cmake/CMakeFiles/fig7_device_timing_small.dir/fig7_device_timing_small.cpp.o" "gcc" "bench-cmake/CMakeFiles/fig7_device_timing_small.dir/fig7_device_timing_small.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/hs_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/halo/CMakeFiles/hs_halo.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/hs_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/hs_md.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/hs_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hs_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
