# Empty compiler generated dependencies file for fig3_intranode.
# This may be replaced when dependencies are built.
