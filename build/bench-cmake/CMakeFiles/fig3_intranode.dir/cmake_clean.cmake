file(REMOVE_RECURSE
  "../bench/fig3_intranode"
  "../bench/fig3_intranode.pdb"
  "CMakeFiles/fig3_intranode.dir/fig3_intranode.cpp.o"
  "CMakeFiles/fig3_intranode.dir/fig3_intranode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
