file(REMOVE_RECURSE
  "../bench/abl_cuda_graph"
  "../bench/abl_cuda_graph.pdb"
  "CMakeFiles/abl_cuda_graph.dir/abl_cuda_graph.cpp.o"
  "CMakeFiles/abl_cuda_graph.dir/abl_cuda_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cuda_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
