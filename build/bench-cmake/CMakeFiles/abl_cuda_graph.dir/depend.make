# Empty dependencies file for abl_cuda_graph.
# This may be replaced when dependencies are built.
