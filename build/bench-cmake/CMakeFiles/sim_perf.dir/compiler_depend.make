# Empty compiler generated dependencies file for sim_perf.
# This may be replaced when dependencies are built.
