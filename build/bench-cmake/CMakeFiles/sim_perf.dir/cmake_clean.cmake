file(REMOVE_RECURSE
  "../bench/sim_perf"
  "../bench/sim_perf.pdb"
  "CMakeFiles/sim_perf.dir/sim_perf.cpp.o"
  "CMakeFiles/sim_perf.dir/sim_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
