file(REMOVE_RECURSE
  "../bench/abl_proxy_pinning"
  "../bench/abl_proxy_pinning.pdb"
  "CMakeFiles/abl_proxy_pinning.dir/abl_proxy_pinning.cpp.o"
  "CMakeFiles/abl_proxy_pinning.dir/abl_proxy_pinning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_proxy_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
