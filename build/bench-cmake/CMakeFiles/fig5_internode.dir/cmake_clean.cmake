file(REMOVE_RECURSE
  "../bench/fig5_internode"
  "../bench/fig5_internode.pdb"
  "CMakeFiles/fig5_internode.dir/fig5_internode.cpp.o"
  "CMakeFiles/fig5_internode.dir/fig5_internode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_internode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
