# Empty dependencies file for fig5_internode.
# This may be replaced when dependencies are built.
