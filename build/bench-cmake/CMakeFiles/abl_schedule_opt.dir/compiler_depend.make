# Empty compiler generated dependencies file for abl_schedule_opt.
# This may be replaced when dependencies are built.
