file(REMOVE_RECURSE
  "../bench/abl_schedule_opt"
  "../bench/abl_schedule_opt.pdb"
  "CMakeFiles/abl_schedule_opt.dir/abl_schedule_opt.cpp.o"
  "CMakeFiles/abl_schedule_opt.dir/abl_schedule_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_schedule_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
