#!/usr/bin/env bash
# Bench regression gate: run the Figs. 1-2 schedule bench with
# --metrics-json and diff the metrics against the stored baseline with
# tools/bench_diff. The simulator is deterministic, so any drift past the
# threshold is a real model/schedule change — refresh the baseline
# deliberately with --update after reviewing it.
#
#   $ scripts/bench_gate.sh [build-dir] [--update] [--threshold=0.10] [--wall]
#
# --wall additionally runs scripts/perf_smoke.sh, the *wall-clock* smoke
# gate over the google-benchmark binaries (bench/sim_perf,
# bench/md_kernels, which includes per-ISA BM_NonbondedCluster_<isa> rows
# for every host-supported kernel ISA; generous threshold, see that
# script), scripts/md_smoke.sh --skip-asan, the cluster-kernel speedup
# floors (widest-dispatch vs scalar, plus AVX2/AVX-512 4x8 vs SSE2 4x4),
# scripts/telemetry_smoke.sh, the telemetry-export end-to-end check,
# scripts/threads_smoke.sh, the TSan pass over the parallel engine, and
# scripts/sweep_smoke.sh, the campaign sweep determinism/cache gate.
set -euo pipefail

BUILD_DIR="build"
UPDATE=0
WALL=0
THRESHOLD="--threshold=0.10"
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    --wall) WALL=1 ;;
    --threshold=*) THRESHOLD="$arg" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH="$BUILD_DIR/bench/fig12_schedule_trace"
DIFF="$BUILD_DIR/tools/bench_diff"
BASELINE="scripts/baselines/fig12_schedule_trace.json"
for bin in "$BENCH" "$DIFF"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_gate: missing $bin — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT
"$BENCH" "--metrics-json=$OUT" > /dev/null
if [[ ! -s "$OUT" ]]; then
  echo "bench_gate: FAIL — bench wrote no metrics" >&2
  exit 1
fi

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$OUT" "$BASELINE"
  echo "bench_gate: baseline written to $BASELINE"
else
  "$DIFF" "$BASELINE" "$OUT" "$THRESHOLD"
  echo "bench_gate: OK"
fi

if [[ "$WALL" == 1 ]]; then
  WALL_ARGS=("$BUILD_DIR")
  if [[ "$UPDATE" == 1 ]]; then WALL_ARGS+=(--update); fi
  "$REPO_ROOT/scripts/perf_smoke.sh" "${WALL_ARGS[@]}"
  "$REPO_ROOT/scripts/md_smoke.sh" "$BUILD_DIR" --skip-asan
  "$REPO_ROOT/scripts/telemetry_smoke.sh" "$BUILD_DIR"
  "$REPO_ROOT/scripts/threads_smoke.sh"
  "$REPO_ROOT/scripts/sweep_smoke.sh" "$BUILD_DIR"
fi
