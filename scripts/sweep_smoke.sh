#!/usr/bin/env bash
# End-to-end smoke of the campaign sweep service (tools/halo_sweep +
# src/sweep), asserting its three load-bearing guarantees:
#
#   1. Determinism: the same spec run twice renders byte-identical
#      halosim-campaign-v1 JSON and CSV, with the second run served
#      entirely from the content-addressed cache (0 misses).
#   2. Robustness: corrupting a cache entry must make exactly that case
#      re-simulate (a miss, not a crash) and repair the entry.
#   3. Shard-count independence: --shards=4 produces the same merged
#      document as --shards=1.
#
# Plus a --serve round trip: one spec line in, one result line out.
#
#   $ scripts/sweep_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

SWEEP="$BUILD_DIR/tools/halo_sweep"
SPEC="campaigns/smoke.json"
if [[ ! -x "$SWEEP" ]]; then
  echo "sweep_smoke: missing $SWEEP — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
CACHE="$WORK/cache"

fail() { echo "sweep_smoke: FAIL — $*" >&2; exit 1; }

# 1. Cold run, then a warm run that must be all hits and byte-identical.
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run1.json" \
  --csv="$WORK/run1.csv" 2> "$WORK/stderr1.txt"
grep -q " 0 hits, 5 misses" "$WORK/stderr1.txt" \
  || fail "cold run was not 5 misses: $(tail -1 "$WORK/stderr1.txt")"
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run2.json" \
  --csv="$WORK/run2.csv" 2> "$WORK/stderr2.txt"
grep -q " 5 hits, 0 misses" "$WORK/stderr2.txt" \
  || fail "warm run was not 100% cache hits: $(tail -1 "$WORK/stderr2.txt")"
cmp -s "$WORK/run1.json" "$WORK/run2.json" \
  || fail "warm JSON differs from cold JSON (byte-identity broken)"
cmp -s "$WORK/run1.csv" "$WORK/run2.csv" \
  || fail "warm CSV differs from cold CSV"

# 2. Corrupt one entry: the sweep must re-simulate that case (1 miss),
#    still produce identical output, and leave the entry repaired.
VICTIM="$(ls "$CACHE"/*.json | head -1)"
echo "garbage {{{" > "$VICTIM"
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run3.json" \
  2> "$WORK/stderr3.txt"
grep -q " 4 hits, 1 misses" "$WORK/stderr3.txt" \
  || fail "corrupt entry did not read as exactly one miss: $(tail -1 "$WORK/stderr3.txt")"
cmp -s "$WORK/run1.json" "$WORK/run3.json" \
  || fail "output changed after cache-entry corruption"
grep -q '"schema":"halosim-bench-metrics-v1"' "$VICTIM" \
  || fail "corrupt cache entry was not rewritten"

# 3. Shard-count independence against fresh caches.
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_s1" --shards=1 \
  --out="$WORK/s1.json" --quiet 2>/dev/null
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_s4" --shards=4 \
  --out="$WORK/s4.json" --quiet 2>/dev/null
cmp -s "$WORK/s1.json" "$WORK/s4.json" \
  || fail "--shards=1 and --shards=4 disagree"
cmp -s "$WORK/run1.json" "$WORK/s1.json" \
  || fail "sharded run disagrees with the original run"

# 4. Serve mode: one spec line in, one warm-cache answer line out.
SERVE_OUT="$(tr -d '\n' < "$SPEC" | "$SWEEP" --serve --cache-dir="$CACHE" --quiet)"
[[ "$(printf '%s\n' "$SERVE_OUT" | wc -l)" == 1 ]] \
  || fail "--serve did not answer with exactly one line"
printf '%s' "$SERVE_OUT" | grep -q '"schema":"halosim-campaign-v1"' \
  || fail "--serve answer is not a halosim-campaign-v1 line"

echo "sweep_smoke: OK (determinism, cache repair, shard independence, serve)"
