#!/usr/bin/env bash
# End-to-end smoke of the campaign sweep service (tools/halo_sweep +
# src/sweep), asserting its three load-bearing guarantees:
#
#   1. Determinism: the same spec run twice renders byte-identical
#      halosim-campaign-v1 JSON and CSV, with the second run served
#      entirely from the content-addressed cache (0 misses).
#   2. Robustness: corrupting a cache entry must make exactly that case
#      re-simulate (a miss, not a crash) and repair the entry.
#   3. Shard-count independence: --shards=4 produces the same merged
#      document as --shards=1.
#   4. Executor-mode independence: the in-process pool, forked shards
#      (--isolate-shards), and cold prepared state (--no-prepared-state)
#      all render byte-identical documents — on campaigns/smoke.json AND
#      campaigns/fig5_internode.json.
#   5. Warm-state payoff: bench/sweep_throughput's warm_state_speedup
#      (cold wall / warm wall per campaign pass) must be >= 1.5x.
#
# Plus a --serve round trip and a --cache-max-entries eviction check.
#
#   $ scripts/sweep_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

SWEEP="$BUILD_DIR/tools/halo_sweep"
SPEC="campaigns/smoke.json"
if [[ ! -x "$SWEEP" ]]; then
  echo "sweep_smoke: missing $SWEEP — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
CACHE="$WORK/cache"

fail() { echo "sweep_smoke: FAIL — $*" >&2; exit 1; }

# 1. Cold run, then a warm run that must be all hits and byte-identical.
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run1.json" \
  --csv="$WORK/run1.csv" 2> "$WORK/stderr1.txt"
grep -q " 0 hits, 5 misses" "$WORK/stderr1.txt" \
  || fail "cold run was not 5 misses: $(tail -1 "$WORK/stderr1.txt")"
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run2.json" \
  --csv="$WORK/run2.csv" 2> "$WORK/stderr2.txt"
grep -q " 5 hits, 0 misses" "$WORK/stderr2.txt" \
  || fail "warm run was not 100% cache hits: $(tail -1 "$WORK/stderr2.txt")"
cmp -s "$WORK/run1.json" "$WORK/run2.json" \
  || fail "warm JSON differs from cold JSON (byte-identity broken)"
cmp -s "$WORK/run1.csv" "$WORK/run2.csv" \
  || fail "warm CSV differs from cold CSV"

# 2. Corrupt one entry: the sweep must re-simulate that case (1 miss),
#    still produce identical output, and leave the entry repaired.
VICTIM="$(ls "$CACHE"/*.json | head -1)"
echo "garbage {{{" > "$VICTIM"
"$SWEEP" "$SPEC" --cache-dir="$CACHE" --out="$WORK/run3.json" \
  2> "$WORK/stderr3.txt"
grep -q " 4 hits, 1 misses" "$WORK/stderr3.txt" \
  || fail "corrupt entry did not read as exactly one miss: $(tail -1 "$WORK/stderr3.txt")"
cmp -s "$WORK/run1.json" "$WORK/run3.json" \
  || fail "output changed after cache-entry corruption"
grep -q '"schema":"halosim-bench-metrics-v1"' "$VICTIM" \
  || fail "corrupt cache entry was not rewritten"

# 3. Shard-count independence against fresh caches.
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_s1" --shards=1 \
  --out="$WORK/s1.json" --quiet 2>/dev/null
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_s4" --shards=4 \
  --out="$WORK/s4.json" --quiet 2>/dev/null
cmp -s "$WORK/s1.json" "$WORK/s4.json" \
  || fail "--shards=1 and --shards=4 disagree"
cmp -s "$WORK/run1.json" "$WORK/s1.json" \
  || fail "sharded run disagrees with the original run"

# 4. Serve mode: one spec line in, one warm-cache answer line out.
SERVE_OUT="$(tr -d '\n' < "$SPEC" | "$SWEEP" --serve --cache-dir="$CACHE" --quiet)"
[[ "$(printf '%s\n' "$SERVE_OUT" | wc -l)" == 1 ]] \
  || fail "--serve did not answer with exactly one line"
printf '%s' "$SERVE_OUT" | grep -q '"schema":"halosim-campaign-v1"' \
  || fail "--serve answer is not a halosim-campaign-v1 line"

# 5. Executor-mode identity on the smoke campaign: pooled threads, forked
#    processes, and cold prepared state must all render the run-1 bytes.
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_pool" --shards=4 \
  --out="$WORK/pool.json" --quiet 2>/dev/null
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_fork" --shards=4 --isolate-shards \
  --out="$WORK/fork.json" --quiet 2>/dev/null
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_noprep" --shards=4 \
  --no-prepared-state --out="$WORK/noprep.json" --quiet 2>/dev/null
cmp -s "$WORK/run1.json" "$WORK/pool.json" \
  || fail "pooled run disagrees with the original run"
cmp -s "$WORK/pool.json" "$WORK/fork.json" \
  || fail "--isolate-shards disagrees with the in-process pool"
cmp -s "$WORK/pool.json" "$WORK/noprep.json" \
  || fail "--no-prepared-state changed the output bytes"

# 6. Executor-mode identity at scale: the fig5 internode campaign (36
#    cases to 23M atoms / 288 nodes) through the same three modes.
FIG5="campaigns/fig5_internode.json"
"$SWEEP" "$FIG5" --cache-dir="$WORK/fig5_pool" --shards=4 \
  --out="$WORK/fig5_pool.json" --quiet 2>/dev/null
"$SWEEP" "$FIG5" --cache-dir="$WORK/fig5_fork" --shards=4 --isolate-shards \
  --out="$WORK/fig5_fork.json" --quiet 2>/dev/null
"$SWEEP" "$FIG5" --cache-dir="$WORK/fig5_noprep" --shards=4 \
  --no-prepared-state --out="$WORK/fig5_noprep.json" --quiet 2>/dev/null
cmp -s "$WORK/fig5_pool.json" "$WORK/fig5_fork.json" \
  || fail "fig5: --isolate-shards disagrees with the pool"
cmp -s "$WORK/fig5_pool.json" "$WORK/fig5_noprep.json" \
  || fail "fig5: --no-prepared-state changed the output bytes"

# 7. Cache size cap: 5 stores through a 3-entry cache evict 2 (reported
#    on the summary line), keep 3 files, and never change the document.
"$SWEEP" "$SPEC" --cache-dir="$WORK/cache_cap" --cache-max-entries=3 \
  --out="$WORK/cap.json" 2> "$WORK/stderr_cap.txt"
grep -q " 2 dropped" "$WORK/stderr_cap.txt" \
  || fail "size-capped run did not report 2 dropped: $(tail -1 "$WORK/stderr_cap.txt")"
[[ "$(ls "$WORK/cache_cap"/*.json | wc -l)" == 3 ]] \
  || fail "--cache-max-entries=3 left $(ls "$WORK/cache_cap"/*.json | wc -l) entries"
cmp -s "$WORK/run1.json" "$WORK/cap.json" \
  || fail "size-capped run changed the output bytes"

# 8. Warm-state payoff floor: the prepared-state + arena-recycle path
#    must hold a >= 1.5x speedup over cold per-case simulation (the
#    measured margin is ~3x; 1.5 absorbs machine noise).
THROUGHPUT="$BUILD_DIR/bench/sweep_throughput"
if [[ ! -x "$THROUGHPUT" ]]; then
  echo "sweep_smoke: missing $THROUGHPUT — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi
"$THROUGHPUT" "--metrics-json=$WORK/throughput.json" \
  --benchmark_min_time=0.05 \
  '--benchmark_filter=BM_Campaign(Cold|WarmState)' > /dev/null
python3 - "$WORK/throughput.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
speedup = doc["cases"]["sweep_throughput"].get("warm_state_speedup", 0.0)
floor = 1.5
if speedup < floor:
    sys.exit(f"sweep_smoke: FAIL — warm_state_speedup {speedup:.2f} < {floor}")
print(f"sweep_smoke: warm_state_speedup {speedup:.2f} (floor {floor})")
EOF

echo "sweep_smoke: OK (determinism, cache repair, shard independence," \
  "executor-mode identity incl. fig5, cache cap, warm-state floor, serve)"
