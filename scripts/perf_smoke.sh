#!/usr/bin/env bash
# Wall-clock perf smoke: run bench/sim_perf with reduced per-benchmark time,
# dump bench-metrics-v1 JSON, and diff it against the stored baseline
# (scripts/baselines/BENCH_sim_perf.json) with a deliberately generous
# threshold — wall time is noisy (shared machines, turbo, cache state), so
# the gate only catches real regressions (e.g. an accidental O(n) in the
# engine), not jitter. Refresh the baseline with --update after reviewing.
#
#   $ scripts/perf_smoke.sh [build-dir] [--update] [--threshold=0.75]
set -euo pipefail

BUILD_DIR="build"
UPDATE=0
THRESHOLD="--threshold=0.75"
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    --threshold=*) THRESHOLD="$arg" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH="$BUILD_DIR/bench/sim_perf"
DIFF="$BUILD_DIR/tools/bench_diff"
BASELINE="scripts/baselines/BENCH_sim_perf.json"
for bin in "$BENCH" "$DIFF"; do
  if [[ ! -x "$bin" ]]; then
    echo "perf_smoke: missing $bin — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT
# Short per-benchmark runtime: this is a smoke gate, not a measurement.
"$BENCH" "--metrics-json=$OUT" --benchmark_min_time=0.05 > /dev/null
if [[ ! -s "$OUT" ]]; then
  echo "perf_smoke: FAIL — sim_perf wrote no metrics" >&2
  exit 1
fi

if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$OUT" "$BASELINE"
  echo "perf_smoke: baseline written to $BASELINE"
  exit 0
fi

"$DIFF" "$BASELINE" "$OUT" "$THRESHOLD"
echo "perf_smoke: OK"
