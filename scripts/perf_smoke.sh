#!/usr/bin/env bash
# Wall-clock perf smoke: run each google-benchmark binary (bench/sim_perf,
# bench/md_kernels, bench/sweep_throughput) with reduced per-benchmark
# time, dump bench-metrics-v1
# JSON, and diff it against the stored baseline
# (scripts/baselines/BENCH_<name>.json) with a deliberately generous
# threshold — wall time is noisy (shared machines, turbo, cache state), so
# the gate only catches real regressions (e.g. an accidental O(n) in the
# engine, or the cluster kernel losing its SIMD path), not jitter. Only
# `_ns`/`_us`-suffixed keys are gated; derived ratios (e.g.
# nb_cluster_speedup_*) are reported by bench_diff but never gated here —
# scripts/md_smoke.sh asserts the speedup floor. Refresh baselines with
# --update after reviewing.
#
#   $ scripts/perf_smoke.sh [build-dir] [--update] [--threshold=0.75]
set -euo pipefail

BUILD_DIR="build"
UPDATE=0
THRESHOLD="--threshold=0.75"
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    --threshold=*) THRESHOLD="$arg" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

DIFF="$BUILD_DIR/tools/bench_diff"
BENCHES=(sim_perf md_kernels sweep_throughput)
for name in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$name" ]]; then
    echo "perf_smoke: missing $BUILD_DIR/bench/$name — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done
if [[ ! -x "$DIFF" ]]; then
  echo "perf_smoke: missing $DIFF — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT
for name in "${BENCHES[@]}"; do
  BASELINE="scripts/baselines/BENCH_${name}.json"
  # Short per-benchmark runtime: this is a smoke gate, not a measurement.
  "$BUILD_DIR/bench/$name" "--metrics-json=$OUT" --benchmark_min_time=0.05 \
    > /dev/null
  if [[ ! -s "$OUT" ]]; then
    echo "perf_smoke: FAIL — $name wrote no metrics" >&2
    exit 1
  fi
  if [[ "$UPDATE" == 1 || ! -f "$BASELINE" ]]; then
    mkdir -p "$(dirname "$BASELINE")"
    cp "$OUT" "$BASELINE"
    echo "perf_smoke: baseline written to $BASELINE"
  else
    "$DIFF" "$BASELINE" "$OUT" "$THRESHOLD"
    echo "perf_smoke: $name OK"
  fi
done
