#!/usr/bin/env bash
# Telemetry end-to-end smoke: run the Figs. 1-2 schedule bench with every
# telemetry export enabled, then push each artifact through its consumer:
#
#   1. --telemetry-json + --telemetry-csv + --trace-json on
#      fig12_schedule_trace (both transports, partitioned shmem run),
#   2. tools/trace_validate over the Chrome trace — counter (ph:"C")
#      events must have monotone timestamps and land on exported pids,
#   3. tools/halo_top replaying the telemetry document — must render a
#      per-lane table and a verdict line for every run,
#   4. the metrics JSON must embed the telemetry section
#      (halosim-telemetry-v1) and still pass bench_diff against itself.
#
# Everything here is simulated-time telemetry, so the artifacts are
# deterministic; the smoke asserts the plumbing, not timing.
# Wired into scripts/bench_gate.sh --wall.
#
#   $ scripts/telemetry_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH="$BUILD_DIR/bench/fig12_schedule_trace"
VALIDATE="$BUILD_DIR/tools/trace_validate"
HALO_TOP="$BUILD_DIR/tools/halo_top"
DIFF="$BUILD_DIR/tools/bench_diff"
for bin in "$BENCH" "$VALIDATE" "$HALO_TOP" "$DIFF"; do
  if [[ ! -x "$bin" ]]; then
    echo "telemetry_smoke: missing $bin — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BENCH" --workers=2 \
  "--metrics-json=$TMP/metrics.json" \
  "--trace-json=$TMP/trace.json" \
  "--telemetry-json=$TMP/telemetry.json" \
  "--telemetry-csv=$TMP/telemetry.csv" > /dev/null

for f in metrics.json trace.json telemetry.json telemetry.csv; do
  if [[ ! -s "$TMP/$f" ]]; then
    echo "telemetry_smoke: FAIL — bench wrote no $f" >&2
    exit 1
  fi
done

# Chrome trace with counter events must validate (flow pairing, counter
# monotonicity, pid anchoring).
"$VALIDATE" "$TMP/trace.json"

# The replay profiler must produce a report (lane table + verdict) for
# both runs in the document.
TOP_OUT="$TMP/halo_top.out"
"$HALO_TOP" "$TMP/telemetry.json" > "$TOP_OUT"
for needle in "=== mpi ===" "=== shmem ===" "verdict:"; do
  if ! grep -q "$needle" "$TOP_OUT"; then
    echo "telemetry_smoke: FAIL — halo_top output missing '$needle'" >&2
    cat "$TOP_OUT" >&2
    exit 1
  fi
done

# The metrics document embeds the telemetry section and halo_top can read
# it from there too.
if ! grep -q '"telemetry"' "$TMP/metrics.json"; then
  echo "telemetry_smoke: FAIL — metrics JSON lacks the telemetry section" >&2
  exit 1
fi
"$HALO_TOP" "$TMP/metrics.json" --run=shmem > /dev/null

# Telemetry must never affect the diff gate: a document diffed against
# itself is clean.
"$DIFF" "$TMP/metrics.json" "$TMP/metrics.json" > /dev/null

# CSV: header plus at least one row per run label.
head -1 "$TMP/telemetry.csv" | grep -q '^run,metric,kind,unit,device,' || {
  echo "telemetry_smoke: FAIL — bad CSV header" >&2
  exit 1
}
for run in mpi shmem; do
  grep -q "^$run," "$TMP/telemetry.csv" || {
    echo "telemetry_smoke: FAIL — CSV has no rows for run '$run'" >&2
    exit 1
  }
done

echo "telemetry_smoke: OK"
