#!/usr/bin/env bash
# Thread-sanitizer smoke for the parallel (partitioned) engine.
#
# Configures a HALOSIM_SANITIZE=thread tree and runs, under TSan:
#   1. the ParallelDriver unit tests (window protocol, deterministic
#      message injection, error propagation),
#   2. the runner parity suite (workers 1 vs N bit-identity, jitter
#      stress, classic-vs-partitioned canonical equality), and
#   3. one fig-style bench sweep across worker counts (pdes_scaling,
#      small case, telemetry sampling on) so real halo-exchange traffic —
#      and the lane-homed telemetry recording plus the coordinator-side
#      wall-clock reads — crosses lane boundaries with the race detector
#      watching, and
#   4. the sweep pool executor: the prepared-state sharing tests (many
#      threads executing against one shared PreparedCase) and a pooled
#      halo_sweep campaign, so concurrent in-process simulations run under
#      the race detector too.
#
# Any data race in the lane/inbox/window-barrier machinery fails the run.
# Wired into scripts/bench_gate.sh --wall.
#
#   $ scripts/threads_smoke.sh [--tsan-dir=build-tsan]
set -euo pipefail

TSAN_DIR="build-tsan"
for arg in "$@"; do
  case "$arg" in
    --tsan-dir=*) TSAN_DIR="${arg#--tsan-dir=}" ;;
    *) TSAN_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ ! -d "$TSAN_DIR" ]]; then
  cmake -B "$TSAN_DIR" -S . -DHALOSIM_SANITIZE=thread > /dev/null
fi
cmake --build "$TSAN_DIR" -j --target sim_tests runner_tests pdes_scaling \
  sweep_tests halo_sweep > /dev/null

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"$TSAN_DIR/tests/sim/sim_tests" --gtest_brief=1 \
  --gtest_filter='ParallelDriverTest.*'
"$TSAN_DIR/tests/runner/runner_tests" --gtest_brief=1 \
  --gtest_filter='ParallelParity.*'
# Small sweep: the point is TSan coverage of cross-lane traffic, not
# timing. --telemetry-json turns on the per-lane registries and the
# coordinator's post-barrier wall-clock reads, the newest cross-thread
# surface.
TELEM_OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$TELEM_OUT"' EXIT
"$TSAN_DIR/bench/pdes_scaling" --atoms=90000 --steps=3 \
  --workers-list=1,2,4 "--telemetry-json=$TELEM_OUT" > /dev/null
# Sweep pool executor: shared prepared state across case threads, then a
# real pooled campaign (4 workers over the smoke misses, no disk cache).
"$TSAN_DIR/tests/sweep/sweep_tests" --gtest_brief=1 \
  --gtest_filter='PreparedState.*:SweepRunnerTest.Pool*'
"$TSAN_DIR/tools/halo_sweep" campaigns/smoke.json --no-cache --shards=4 \
  --quiet > /dev/null
echo "threads_smoke: OK ($TSAN_DIR)"
