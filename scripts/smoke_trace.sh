#!/usr/bin/env bash
# Observability smoke test: run the Figs. 1-2 bench with --trace-json and
# validate that the output file is non-empty, well-formed Chrome-trace JSON
# with duration events for both transports.
#
#   $ scripts/smoke_trace.sh [build-dir]   # default: build
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH="$BUILD_DIR/bench/fig12_schedule_trace"
VALIDATE="$BUILD_DIR/tools/trace_validate"
for bin in "$BENCH" "$VALIDATE"; do
  if [[ ! -x "$bin" ]]; then
    echo "smoke_trace: missing $bin — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT

"$BENCH" "--trace-json=$OUT" > /dev/null
if [[ ! -s "$OUT" ]]; then
  echo "smoke_trace: FAIL — $OUT is empty" >&2
  exit 1
fi
"$VALIDATE" "$OUT"
# Both transports must be present as named processes in the export.
for label in mpi shmem; do
  if ! grep -q "\"name\":\"$label dev0\"" "$OUT"; then
    echo "smoke_trace: FAIL — no '$label' process in trace" >&2
    exit 1
  fi
done
# The causal span graph must surface as Perfetto flow events.
if ! grep -q '"ph":"s"' "$OUT"; then
  echo "smoke_trace: FAIL — no flow events (causal edges) in trace" >&2
  exit 1
fi
echo "smoke_trace: OK"
