#!/usr/bin/env bash
# MD kernel smoke: exercise the SoA/cluster-pair fast path two ways.
#
#  1. Sanitizer pass — configure a HALOSIM_SANITIZE=ON tree (ASan+UBSan)
#     and run the md + runner test binaries plus a short md_kernels sweep
#     in it, so the masked/batched kernels (pad slots, gather/scatter
#     shims, mask expansion) are exercised under the sanitizers.
#  2. Speedup floor — run md_kernels in the regular (optimized) tree and
#     assert the derived nb_cluster_speedup_<atoms> metrics stay >= the
#     floor at the >= 10k-atom sizes. perf_smoke.sh gates absolute wall
#     times; this asserts the cluster kernel keeps beating the scalar
#     kernel on the same machine, which is noise-robust.
#
#   $ scripts/md_smoke.sh [build-dir] [--asan-dir=build-asan] [--min-speedup=2.0] [--skip-asan]
set -euo pipefail

BUILD_DIR="build"
ASAN_DIR="build-asan"
MIN_SPEEDUP="2.0"
SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --asan-dir=*) ASAN_DIR="${arg#--asan-dir=}" ;;
    --min-speedup=*) MIN_SPEEDUP="${arg#--min-speedup=}" ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ "$SKIP_ASAN" != 1 ]]; then
  if [[ ! -d "$ASAN_DIR" ]]; then
    cmake -B "$ASAN_DIR" -S . -DHALOSIM_SANITIZE=ON > /dev/null
  fi
  cmake --build "$ASAN_DIR" -j --target md_tests runner_tests md_kernels \
    > /dev/null
  "$ASAN_DIR/tests/md/md_tests" --gtest_brief=1
  "$ASAN_DIR/tests/runner/runner_tests" --gtest_brief=1
  # Tiny sweep: the point is sanitizer coverage of the kernels, not timing.
  "$ASAN_DIR/bench/md_kernels" --benchmark_min_time=0.01 \
    --benchmark_filter='/3000$' > /dev/null
  echo "md_smoke: sanitizer pass OK ($ASAN_DIR)"
fi

BENCH="$BUILD_DIR/bench/md_kernels"
if [[ ! -x "$BENCH" ]]; then
  echo "md_smoke: missing $BENCH — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT
"$BENCH" "--metrics-json=$OUT" --benchmark_min_time=0.1 \
  --benchmark_filter='BM_Nonbonded' > /dev/null
if [[ ! -s "$OUT" ]]; then
  echo "md_smoke: FAIL — md_kernels wrote no metrics" >&2
  exit 1
fi

python3 - "$OUT" "$MIN_SPEEDUP" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
floor = float(sys.argv[2])
metrics = report["cases"]["md_kernels"]
failed = False
for atoms in (12000, 48000):
    key = f"nb_cluster_speedup_{atoms}"
    speedup = metrics.get(key)
    if speedup is None:
        print(f"md_smoke: FAIL — {key} missing from metrics")
        failed = True
        continue
    status = "OK" if speedup >= floor else "FAIL"
    print(f"md_smoke: {key} = {speedup:.2f}x (floor {floor:.2f}x) {status}")
    failed = failed or speedup < floor
sys.exit(1 if failed else 0)
EOF
echo "md_smoke: OK"
