#!/usr/bin/env bash
# MD kernel smoke: exercise the SoA/cluster-pair fast path two ways.
#
#  1. Sanitizer pass — configure a HALOSIM_SANITIZE=ON tree (ASan+UBSan)
#     and run the md + runner test binaries plus a short md_kernels sweep
#     in it, once per host-supported kernel ISA (HALOSIM_FORCE_ISA=scalar,
#     sse2, avx2, avx512 — enumerated via `md_kernels --print-isa`), so
#     every lane-block variant (pad slots, gather/scatter shims, mask
#     expansion, 4x8 merged lists) runs under the sanitizers.
#  2. Speedup floor — run md_kernels in the regular (optimized) tree and
#     assert the derived nb_cluster_speedup_<atoms> metrics stay >= the
#     floor at the >= 10k-atom sizes (the default dispatch, i.e. the
#     widest ISA, vs the scalar reference kernel), and that the AVX2/
#     AVX-512 4x8 cluster kernels stay >= the ISA floor vs the SSE2 4x4
#     kernel at 24k atoms when the host supports them. perf_smoke.sh
#     gates absolute wall times; these ratios are noise-robust.
#
#   $ scripts/md_smoke.sh [build-dir] [--asan-dir=build-asan] \
#       [--min-speedup=2.0] [--min-isa-speedup=1.4] [--skip-asan]
set -euo pipefail

BUILD_DIR="build"
ASAN_DIR="build-asan"
MIN_SPEEDUP="2.0"
MIN_ISA_SPEEDUP="1.4"
SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --asan-dir=*) ASAN_DIR="${arg#--asan-dir=}" ;;
    --min-speedup=*) MIN_SPEEDUP="${arg#--min-speedup=}" ;;
    --min-isa-speedup=*) MIN_ISA_SPEEDUP="${arg#--min-isa-speedup=}" ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ "$SKIP_ASAN" != 1 ]]; then
  if [[ ! -d "$ASAN_DIR" ]]; then
    cmake -B "$ASAN_DIR" -S . -DHALOSIM_SANITIZE=ON > /dev/null
  fi
  cmake --build "$ASAN_DIR" -j --target md_tests runner_tests md_kernels \
    > /dev/null
  ISAS="$("$ASAN_DIR/bench/md_kernels" --print-isa | sed -n 's/^supported: //p')"
  for isa in $ISAS; do
    echo "md_smoke: sanitizer pass, HALOSIM_FORCE_ISA=$isa"
    HALOSIM_FORCE_ISA="$isa" "$ASAN_DIR/tests/md/md_tests" --gtest_brief=1
    HALOSIM_FORCE_ISA="$isa" "$ASAN_DIR/tests/runner/runner_tests" \
      --gtest_brief=1
    # Tiny sweep: the point is sanitizer coverage of the kernels, not timing.
    HALOSIM_FORCE_ISA="$isa" "$ASAN_DIR/bench/md_kernels" \
      --benchmark_min_time=0.01 --benchmark_filter='/3000$' > /dev/null
  done
  echo "md_smoke: sanitizer pass OK ($ASAN_DIR; ISAs:$ISAS)"
fi

BENCH="$BUILD_DIR/bench/md_kernels"
if [[ ! -x "$BENCH" ]]; then
  echo "md_smoke: missing $BENCH — build first (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

SUPPORTED="$("$BENCH" --print-isa | sed -n 's/^supported: //p')"
OUT="$(mktemp --suffix=.json)"
trap 'rm -f "$OUT"' EXIT
"$BENCH" "--metrics-json=$OUT" --benchmark_min_time=0.1 \
  --benchmark_filter='BM_Nonbonded' > /dev/null
if [[ ! -s "$OUT" ]]; then
  echo "md_smoke: FAIL — md_kernels wrote no metrics" >&2
  exit 1
fi

python3 - "$OUT" "$MIN_SPEEDUP" "$MIN_ISA_SPEEDUP" "$SUPPORTED" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
floor = float(sys.argv[2])
isa_floor = float(sys.argv[3])
supported = sys.argv[4].split()
metrics = report["cases"]["md_kernels"]
failed = False


def gate(key, minimum):
    global failed
    value = metrics.get(key)
    if value is None:
        print(f"md_smoke: FAIL — {key} missing from metrics")
        failed = True
        return
    status = "OK" if value >= minimum else "FAIL"
    print(f"md_smoke: {key} = {value:.2f}x (floor {minimum:.2f}x) {status}")
    failed = failed or value < minimum


for atoms in (12000, 48000):
    gate(f"nb_cluster_speedup_{atoms}", floor)
# 4x8 lane blocks vs the SSE2 4x4 kernel, when the host has them.
for wide in ("avx2", "avx512"):
    if wide in supported and "sse2" in supported:
        gate(f"nb_{wide}_vs_sse2_speedup_24000", isa_floor)
sys.exit(1 if failed else 0)
EOF
echo "md_smoke: OK"
