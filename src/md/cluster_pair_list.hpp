// Cluster-pair (NxM) neighbour list, GROMACS nbnxm-style.
//
// Atoms are binned into cells of at least `rlist` width and grouped, per
// cell, into i-clusters of kClusterSize (=4) atoms. The list stores, per
// i-cluster, a range of j-cluster entries; each entry carries a 16-bit
// interaction mask with bit (ii*4 + jj) set when the atom pair
// (slot ii of ci, slot jj of cj) must be evaluated. Masks encode the
// topology rules — pad slots, each-unordered-pair-once deduplication,
// the eighth-shell corner ownership for halo-halo pairs — and the rlist
// radius at build time; the runtime cutoff check in the batched kernel
// handles everything that drifts inside the Verlet buffer afterwards.
//
// The masked pair set is exactly the scalar PairList's pair set for the
// same inputs (asserted by tests), so the cluster list inherits the
// Verlet-buffer reuse contract: built with rlist = cutoff + buffer, it
// stays valid until some atom moves farther than buffer/2.
//
// For non-local (home-halo) lists, home atoms and halo atoms are
// clustered separately (zones are never mixed within a cluster, as in
// GROMACS) on two cell grids with identical dimensions; cluster ids are
// global across both zones so one SoA gather covers every cluster the
// kernel touches.
//
// The 4x4 list is canonical. 256/512-bit kernels consume j clusters two
// at a time (the GROMACS 4x8 geometry): i_entries8()/j_entries8() expose
// a lazily built view that merges each i row's entries by j-cluster pair
// (cj8 = cj >> 1; the even cluster fills mask bits jj 0..3, the odd one
// jj 4..7), widening the masks to 32 bits. The view holds exactly the
// canonical pair set, is invalidated by build/prune, and keeps prune's
// bit-neutrality: a dropped 4x4 entry only zeroes nibbles of a wide mask.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/cell_list.hpp"
#include "md/pair_list.hpp"  // ZoneFilter

namespace hs::md {

class ClusterPairList {
 public:
  static constexpr int kClusterSize = 4;
  static constexpr int kMaskBits = kClusterSize * kClusterSize;

  struct JEntry {
    std::int32_t cj = 0;
    std::uint16_t mask = 0;  // bit (ii*kClusterSize + jj)
  };
  struct IEntry {
    std::int32_t ci = 0;
    std::int32_t j_begin = 0;  // range into j_entries()
    std::int32_t j_end = 0;
  };
  /// 4x8 view entry: one pair of adjacent j clusters (2*cj8, 2*cj8+1)
  /// with a 32-bit mask, bit (ii*8 + jj) for jj in [0, 8).
  struct JEntry8 {
    std::int32_t cj8 = 0;
    std::uint32_t mask = 0;
  };

  ClusterPairList() = default;

  /// Build the local list: all pairs (each unordered pair once) within
  /// rlist among positions[0 .. n_home).
  void build_local(const Box& box, std::span<const Vec3> positions, int n_home,
                   double rlist);

  /// Build the non-local list: pairs within rlist with at least one halo
  /// atom. Without a filter only home-halo pairs are listed; with a
  /// ZoneFilter, halo-halo pairs whose minimum corner falls in this
  /// rank's domain are included too (see PairList::build_nonlocal).
  void build_nonlocal(const Box& box, std::span<const Vec3> positions,
                      int n_home, double rlist,
                      const ZoneFilter* filter = nullptr);

  /// Rolling prune: drop j-cluster entries whose masked pairs are all
  /// beyond r_prune (<= rlist) at the current positions. Returns the
  /// number of masked pairs removed. Entry-granular, so the surviving
  /// list produces bit-identical forces (dropped entries contributed
  /// exactly zero for any r_prune >= the force cutoff).
  std::size_t prune(const Box& box, std::span<const Vec3> positions,
                    double r_prune);

  int num_clusters() const { return num_clusters_; }
  double rlist() const { return rlist_; }

  /// Masked-in atom pairs (the cluster analogue of PairList::size()).
  std::size_t pair_count() const { return pair_count_; }

  /// Original atom index per cluster slot (num_clusters * kClusterSize
  /// entries; -1 for pad slots). Use for scatter-add of forces.
  std::span<const std::int32_t> cluster_atoms() const { return atoms_; }

  /// Like cluster_atoms() but with pad slots replaced by the cluster's
  /// first atom: every entry is a valid index, so coordinate/type gathers
  /// need no branch (pad slots are masked out of every interaction).
  std::span<const std::int32_t> gather_atoms() const { return gather_atoms_; }

  std::span<const IEntry> i_entries() const { return i_entries_; }
  std::span<const JEntry> j_entries() const { return j_entries_; }

  /// 4x8 view (i ranges address j_entries8()). Built lazily from the
  /// canonical 4x4 list on first use after a build/prune.
  std::span<const IEntry> i_entries8() const {
    if (!wide_valid_) build_wide();
    return i_entries8_;
  }
  std::span<const JEntry8> j_entries8() const {
    if (!wide_valid_) build_wide();
    return j_entries8_;
  }

  /// Cluster count rounded up to a whole number of j-cluster pairs: 8-wide
  /// kernels stage this many clusters so the last pair's loads stay in
  /// bounds (the pad cluster's mask bits are never set).
  int num_clusters_padded8() const { return (num_clusters_ + 1) & ~1; }

  /// Drop the build-time staging state (cell grids, per-cell scratch,
  /// wide-view sort buffer) while keeping the list itself intact. For
  /// snapshots held as templates and cloned per run (copies are deep, so
  /// a released snapshot clones smaller): prune, the kernels and the 4x8
  /// view never touch the staging, and the next build/rebuild simply
  /// re-creates it. The pair set is unchanged — a released list and its
  /// un-released original produce bit-identical forces and prunes.
  void release_build_scratch();

  /// Invoke fn(i, j) for every masked atom pair (original indices).
  template <typename Fn>
  void for_each_pair(Fn&& fn) const {
    for (const IEntry& ie : i_entries_) {
      for (std::int32_t e = ie.j_begin; e < ie.j_end; ++e) {
        const JEntry& je = j_entries_[static_cast<std::size_t>(e)];
        for (int ii = 0; ii < kClusterSize; ++ii) {
          for (int jj = 0; jj < kClusterSize; ++jj) {
            if ((je.mask >> (ii * kClusterSize + jj)) & 1u) {
              fn(atoms_[static_cast<std::size_t>(ie.ci * kClusterSize + ii)],
                 atoms_[static_cast<std::size_t>(je.cj * kClusterSize + jj)]);
            }
          }
        }
      }
    }
  }

 private:
  void clear_build(double rlist);
  /// Bin `positions[range_begin..range_end)` with `cells` and append one
  /// cluster per <=4 atoms of each cell. `cell_begin` receives, per cell,
  /// the first cluster id (num_cells+1 prefix array).
  void clusterize(CellList& cells, const Box& box,
                  std::span<const Vec3> positions, int range_begin,
                  int range_end, double rlist,
                  std::vector<std::int32_t>& cell_begin);
  void finish_i_entry(std::int32_t ci, std::int32_t j_begin);
  void build_wide() const;

  CellList cells_;       // reused: home (local) / home (nonlocal i-side)
  CellList halo_cells_;  // reused: halo zone (nonlocal builds)
  std::vector<std::int32_t> cell_begin_;       // cluster ranges per cell
  std::vector<std::int32_t> halo_cell_begin_;  // cluster ranges per halo cell
  std::vector<std::int32_t> scratch_;          // per-cell atom staging

  std::vector<std::int32_t> atoms_;
  std::vector<std::int32_t> gather_atoms_;
  std::vector<std::int32_t> cluster_cell_;  // cell id per cluster
  std::vector<IEntry> i_entries_;
  std::vector<JEntry> j_entries_;
  // Lazy 4x8 view caches (logically derived state, hence mutable; lists
  // are used single-threaded per rank).
  mutable std::vector<IEntry> i_entries8_;
  mutable std::vector<JEntry8> j_entries8_;
  mutable std::vector<JEntry> wide_scratch_;  // per-row sort staging
  mutable bool wide_valid_ = false;
  int num_clusters_ = 0;
  double rlist_ = 0.0;
  std::size_t pair_count_ = 0;
};

}  // namespace hs::md
