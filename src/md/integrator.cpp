#include "md/integrator.hpp"

#include <cassert>
#include <cmath>

#include "md/simd/kernels.hpp"

namespace hs::md {

void LeapfrogIntegrator::step(const Box& box, const ForceField& ff,
                              std::span<const int> types,
                              std::span<const Vec3> forces,
                              std::span<Vec3> velocities,
                              std::span<Vec3> positions) const {
  step(box, ff, types, forces, velocities, positions, simd::active_isa());
}

void LeapfrogIntegrator::step(const Box& box, const ForceField& ff,
                              std::span<const int> types,
                              std::span<const Vec3> forces,
                              std::span<Vec3> velocities,
                              std::span<Vec3> positions,
                              simd::KernelIsa isa) const {
  assert(positions.size() == velocities.size() &&
         positions.size() == forces.size() && positions.size() == types.size());
#if defined(HALOSIM_BUILD_AVX2)
  if (isa >= simd::KernelIsa::Avx2 && !positions.empty()) {
    // Per-type inv(m)*dt as float; thread_local so steady-state steps
    // allocate nothing (lists are per-rank but ranks share types).
    thread_local std::vector<float> inv_m_dt;
    inv_m_dt.resize(static_cast<std::size_t>(ff.num_types()));
    for (int t = 0; t < ff.num_types(); ++t) {
      inv_m_dt[static_cast<std::size_t>(t)] =
          static_cast<float>(dt_ / ff.type(t).mass);
    }
    simd::integrate_avx2(types.data(), forces.data(), velocities.data(),
                         positions.data(), positions.size(), inv_m_dt.data(),
                         static_cast<float>(dt_), box.length(0),
                         box.length(1), box.length(2));
    return;
  }
#else
  (void)isa;
#endif
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double inv_m =
        1.0 / ff.type(types[i]).mass;
    Vec3& v = velocities[i];
    const Vec3& f = forces[i];
    v.x = static_cast<float>(v.x + f.x * inv_m * dt_);
    v.y = static_cast<float>(v.y + f.y * inv_m * dt_);
    v.z = static_cast<float>(v.z + f.z * inv_m * dt_);
    Vec3 p = positions[i];
    p.x = static_cast<float>(p.x + v.x * dt_);
    p.y = static_cast<float>(p.y + v.y * dt_);
    p.z = static_cast<float>(p.z + v.z * dt_);
    positions[i] = box.wrap(p);
  }
}

void LeapfrogIntegrator::rescale_velocities(double current_t, double t_ref,
                                            double tau, double dt,
                                            std::span<Vec3> velocities) {
  if (current_t <= 0.0) return;
  const double lambda =
      std::sqrt(1.0 + dt / tau * (t_ref / current_t - 1.0));
  for (auto& v : velocities) v *= static_cast<float>(lambda);
}

}  // namespace hs::md
