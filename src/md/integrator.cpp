#include "md/integrator.hpp"

#include <cassert>
#include <cmath>

namespace hs::md {

void LeapfrogIntegrator::step(const Box& box, const ForceField& ff,
                              std::span<const int> types,
                              std::span<const Vec3> forces,
                              std::span<Vec3> velocities,
                              std::span<Vec3> positions) const {
  assert(positions.size() == velocities.size() &&
         positions.size() == forces.size() && positions.size() == types.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double inv_m =
        1.0 / ff.type(types[i]).mass;
    Vec3& v = velocities[i];
    const Vec3& f = forces[i];
    v.x = static_cast<float>(v.x + f.x * inv_m * dt_);
    v.y = static_cast<float>(v.y + f.y * inv_m * dt_);
    v.z = static_cast<float>(v.z + f.z * inv_m * dt_);
    Vec3 p = positions[i];
    p.x = static_cast<float>(p.x + v.x * dt_);
    p.y = static_cast<float>(p.y + v.y * dt_);
    p.z = static_cast<float>(p.z + v.z * dt_);
    positions[i] = box.wrap(p);
  }
}

void LeapfrogIntegrator::rescale_velocities(double current_t, double t_ref,
                                            double tau, double dt,
                                            std::span<Vec3> velocities) {
  if (current_t <= 0.0) return;
  const double lambda =
      std::sqrt(1.0 + dt / tau * (t_ref / current_t - 1.0));
  for (auto& v : velocities) v *= static_cast<float>(lambda);
}

}  // namespace hs::md
