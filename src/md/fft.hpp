// Minimal self-contained FFT: iterative radix-2 Cooley-Tukey over
// std::complex<double>, plus a 3D transform on a dense grid — the kernel
// under PME's reciprocal-space convolution (the role cuFFT/cuFFTMp plays
// in GROMACS, §2.2).
#pragma once

#include <cassert>
#include <complex>
#include <vector>

namespace hs::md {

using Complex = std::complex<double>;

/// In-place FFT of length n = 2^k. `inverse` applies the conjugate
/// transform *without* the 1/n normalization (callers normalize once).
void fft(std::vector<Complex>& data, bool inverse);
void fft(Complex* data, std::size_t n, bool inverse);

/// Dense 3D complex grid with power-of-two dimensions.
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  Complex& at(int x, int y, int z) {
    return data_[index(x, y, z)];
  }
  const Complex& at(int x, int y, int z) const {
    return data_[index(x, y, z)];
  }

  std::vector<Complex>& data() { return data_; }
  const std::vector<Complex>& data() const { return data_; }

  void fill(Complex value);

  /// Forward/inverse 3D FFT (inverse is unnormalized; scale by 1/size()).
  void fft3(bool inverse);

 private:
  std::size_t index(int x, int y, int z) const {
    assert(x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_);
    return (static_cast<std::size_t>(x) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nz_) +
           static_cast<std::size_t>(z);
  }

  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<Complex> data_;
};

}  // namespace hs::md
