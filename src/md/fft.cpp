#include "md/fft.hpp"

#include <numbers>
#include <stdexcept>

namespace hs::md {

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

void fft(Complex* data, std::size_t n, bool inverse) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: length must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft(std::vector<Complex>& data, bool inverse) {
  fft(data.data(), data.size(), inverse);
}

Grid3D::Grid3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  if (!is_pow2(static_cast<std::size_t>(nx)) ||
      !is_pow2(static_cast<std::size_t>(ny)) ||
      !is_pow2(static_cast<std::size_t>(nz))) {
    throw std::invalid_argument("Grid3D: dimensions must be powers of two");
  }
  data_.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz),
               Complex(0.0, 0.0));
}

void Grid3D::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Grid3D::fft3(bool inverse) {
  // z lines are contiguous.
  for (int x = 0; x < nx_; ++x) {
    for (int y = 0; y < ny_; ++y) {
      fft(&at(x, y, 0), static_cast<std::size_t>(nz_), inverse);
    }
  }
  // y lines: strided gather/scatter.
  std::vector<Complex> line(static_cast<std::size_t>(std::max(ny_, nx_)));
  for (int x = 0; x < nx_; ++x) {
    for (int z = 0; z < nz_; ++z) {
      for (int y = 0; y < ny_; ++y) line[static_cast<std::size_t>(y)] = at(x, y, z);
      fft(line.data(), static_cast<std::size_t>(ny_), inverse);
      for (int y = 0; y < ny_; ++y) at(x, y, z) = line[static_cast<std::size_t>(y)];
    }
  }
  // x lines.
  for (int y = 0; y < ny_; ++y) {
    for (int z = 0; z < nz_; ++z) {
      for (int x = 0; x < nx_; ++x) line[static_cast<std::size_t>(x)] = at(x, y, z);
      fft(line.data(), static_cast<std::size_t>(nx_), inverse);
      for (int x = 0; x < nx_; ++x) at(x, y, z) = line[static_cast<std::size_t>(x)];
    }
  }
}

}  // namespace hs::md
