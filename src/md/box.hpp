// Rectangular periodic simulation box with minimum-image convention.
#pragma once

#include <cassert>
#include <cmath>

#include "md/vec3.hpp"

namespace hs::md {

class Box {
 public:
  Box() = default;
  Box(float lx, float ly, float lz) : len_(lx, ly, lz) {
    assert(lx > 0 && ly > 0 && lz > 0);
  }
  explicit Box(Vec3 lengths) : Box(lengths.x, lengths.y, lengths.z) {}

  const Vec3& lengths() const { return len_; }
  float length(int dim) const { return len_[dim]; }
  double volume() const {
    return static_cast<double>(len_.x) * len_.y * len_.z;
  }

  /// Wrap a position into [0, L) per dimension.
  Vec3 wrap(Vec3 p) const {
    for (int d = 0; d < 3; ++d) {
      const float l = len_[d];
      float v = p[d] - l * std::floor(p[d] / l);
      if (v >= l) v = 0.0f;  // guard the p == L rounding case
      p.set(d, v);
    }
    return p;
  }

  /// Minimum-image displacement a - b (double precision decision).
  Vec3 min_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    for (int dim = 0; dim < 3; ++dim) {
      const double l = len_[dim];
      double v = d[dim];
      v -= l * std::nearbyint(v / l);
      d.set(dim, static_cast<float>(v));
    }
    return d;
  }

  /// Squared minimum-image distance.
  float distance2(const Vec3& a, const Vec3& b) const {
    return norm2(min_image(a, b));
  }

 private:
  Vec3 len_{1.0f, 1.0f, 1.0f};
};

}  // namespace hs::md
