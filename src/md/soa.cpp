#include "md/soa.hpp"

#include <algorithm>
#include <cassert>

#include "md/simd/isa.hpp"
#include "md/simd/kernels.hpp"

namespace hs::md {

// Every shim is an elementwise copy/add, so the SIMD paths are
// bit-identical to the scalar loops (dispatch is free of determinism
// concerns); tails shorter than the 8-lane width fall back to the same
// scalar arithmetic inside the kernels.

void SoaVecs::assign_zero(std::size_t n) {
  x.assign(n, 0.0f);
  y.assign(n, 0.0f);
  z.assign(n, 0.0f);
}

void SoaVecs::gather(std::span<const Vec3> src) {
  resize(src.size());
#if defined(HALOSIM_BUILD_AVX2)
  if (simd::active_isa() >= simd::KernelIsa::Avx2 && !src.empty()) {
    simd::soa_gather_avx2(src.data(), src.size(), x.data(), y.data(),
                          z.data());
    return;
  }
#endif
  for (std::size_t i = 0; i < src.size(); ++i) {
    x[i] = src[i].x;
    y[i] = src[i].y;
    z[i] = src[i].z;
  }
}

void SoaVecs::gather_indexed(std::span<const Vec3> src,
                             std::span<const std::int32_t> idx) {
  resize(idx.size());
#if defined(HALOSIM_BUILD_AVX2)
  if (simd::active_isa() >= simd::KernelIsa::Avx2 && !idx.empty()) {
    simd::soa_gather_indexed_avx2(src.data(), idx.data(), idx.size(),
                                  x.data(), y.data(), z.data());
    return;
  }
#endif
  for (std::size_t k = 0; k < idx.size(); ++k) {
    assert(idx[k] >= 0 &&
           static_cast<std::size_t>(idx[k]) < src.size());
    const Vec3& v = src[static_cast<std::size_t>(idx[k])];
    x[k] = v.x;
    y[k] = v.y;
    z[k] = v.z;
  }
}

void SoaVecs::scatter(std::span<Vec3> dst) const {
  assert(dst.size() == size());
#if defined(HALOSIM_BUILD_AVX2)
  if (simd::active_isa() >= simd::KernelIsa::Avx2 && !dst.empty()) {
    simd::soa_scatter_avx2(x.data(), y.data(), z.data(), dst.size(),
                           dst.data());
    return;
  }
#endif
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = Vec3{x[i], y[i], z[i]};
  }
}

void SoaVecs::scatter_add_indexed(std::span<Vec3> dst,
                                  std::span<const std::int32_t> idx) const {
  assert(idx.size() <= size());
#if defined(HALOSIM_BUILD_AVX512)
  if (simd::active_isa() >= simd::KernelIsa::Avx512 && !idx.empty()) {
    simd::soa_scatter_add_indexed_avx512(x.data(), y.data(), z.data(),
                                         idx.data(), idx.size(), dst.data());
    return;
  }
#endif
  for (std::size_t k = 0; k < idx.size(); ++k) {
    if (idx[k] < 0) continue;
    assert(static_cast<std::size_t>(idx[k]) < dst.size());
    dst[static_cast<std::size_t>(idx[k])] += Vec3{x[k], y[k], z[k]};
  }
}

}  // namespace hs::md
