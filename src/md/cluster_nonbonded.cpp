#include "md/cluster_nonbonded.hpp"

#include <cassert>
#include <cmath>

#include "md/simd/kernels.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace hs::md {

namespace {
constexpr int kC = ClusterPairList::kClusterSize;

#if defined(__SSE2__)
inline float hsum(__m128 v) {
  __m128 s = _mm_add_ps(v, _mm_movehl_ps(v, v));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}
#endif

/// Branchless wrap of one component into [0, l). The bias makes the
/// int-cast truncate like floor for any v > -8l, which covers every
/// stored coordinate (halo image shifts are at most one box length).
inline float wrap1(float v, float l, float inv_l) {
  const float q = v * inv_l + 8.0f;
  float w = v - l * (static_cast<float>(static_cast<int>(q)) - 8.0f);
  w = w < 0.0f ? w + l : w;
  w = w >= l ? w - l : w;
  return w;
}

/// Stage cluster-ordered coordinates, wrapped into [0, L) per component
/// once per slot. With every staged coordinate wrapped, the per-pair
/// minimum image reduces to one branchless half-box select per
/// component — no rounding call in the hot loop.
///
/// 8-wide geometries stage a whole number of j-cluster pairs: when the
/// cluster count is odd, one pad cluster replicates the last real
/// cluster's slots (finite coordinates, valid type indices) so the
/// trailing 8-wide loads stay in bounds. No mask bit ever points at it,
/// so its force accumulators only receive exact +/-0 and the final
/// scatter (which walks cluster_atoms(), the unpadded map) ignores it.
void stage_workspace(const Box& box, const ClusterPairList& list,
                     std::span<const Vec3> positions, std::span<const int> types,
                     NbWorkspace& ws, int j_width) {
  const float lx = box.length(0), ly = box.length(1), lz = box.length(2);
  const float inv_lx = 1.0f / lx, inv_ly = 1.0f / ly, inv_lz = 1.0f / lz;
  const std::span<const std::int32_t> gather = list.gather_atoms();
  const std::size_t staged =
      j_width == 8
          ? static_cast<std::size_t>(list.num_clusters_padded8()) * kC
          : gather.size();
  ws.xc.resize(staged);
  ws.fc.assign_zero(staged);
  ws.tc.resize(staged);
  for (std::size_t k = 0; k < gather.size(); ++k) {
    const Vec3& p = positions[static_cast<std::size_t>(gather[k])];
    ws.xc.x[k] = wrap1(p.x, lx, inv_lx);
    ws.xc.y[k] = wrap1(p.y, ly, inv_ly);
    ws.xc.z[k] = wrap1(p.z, lz, inv_lz);
    ws.tc[k] = types[static_cast<std::size_t>(gather[k])];
  }
  for (std::size_t k = gather.size(); k < staged; ++k) {
    ws.xc.x[k] = ws.xc.x[k - kC];
    ws.xc.y[k] = ws.xc.y[k - kC];
    ws.xc.z[k] = ws.xc.z[k - kC];
    ws.tc[k] = ws.tc[k - kC];
  }
}

#if defined(__SSE2__)
// 4xM lane blocks as SSE vectors: each i slot against its four j slots
// at once. divps/sqrtps are IEEE-exact, so the SIMD and portable paths
// differ only in summation order (covered by the documented kernel
// tolerance, not bit-exactness, versus the reference path).
//
// Nibble -> lane-mask LUT: one aligned 16-byte load per i row replaces
// a scalar mask expansion (and its store-forward stall) per entry.
alignas(16) constexpr float kRowMask[16][4] = {
    {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0},
    {0, 0, 1, 0}, {1, 0, 1, 0}, {0, 1, 1, 0}, {1, 1, 1, 0},
    {0, 0, 0, 1}, {1, 0, 0, 1}, {0, 1, 0, 1}, {1, 1, 0, 1},
    {0, 0, 1, 1}, {1, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1}};

Energies kernel_sse2(const Box& box, const NbParamTable& params,
                     const ClusterPairList& list, NbWorkspace& ws) {
  Energies e;
  const float lx = box.length(0), ly = box.length(1), lz = box.length(2);
  const float hlx = 0.5f * lx, hly = 0.5f * ly, hlz = 0.5f * lz;
  const float rc2 = params.cutoff2();
  const float krf = params.krf();
  const float crf = params.crf();
  double e_lj = 0.0, e_coul = 0.0;
  const std::span<const ClusterPairList::JEntry> jents = list.j_entries();

  const __m128 lxv = _mm_set1_ps(lx), lyv = _mm_set1_ps(ly),
               lzv = _mm_set1_ps(lz);
  const __m128 hlxv = _mm_set1_ps(hlx), hlyv = _mm_set1_ps(hly),
               hlzv = _mm_set1_ps(hlz);
  const __m128 nhlxv = _mm_set1_ps(-hlx), nhlyv = _mm_set1_ps(-hly),
               nhlzv = _mm_set1_ps(-hlz);
  const __m128 rc2v = _mm_set1_ps(rc2), onev = _mm_set1_ps(1.0f);
  const __m128 krfv = _mm_set1_ps(krf), crfv = _mm_set1_ps(crf);
  const __m128 two_krfv = _mm_set1_ps(2.0f * krf);
  const __m128 twelvev = _mm_set1_ps(12.0f), sixv = _mm_set1_ps(6.0f);
  const __m128 zerov = _mm_setzero_ps();

  for (const ClusterPairList::IEntry& ie : list.i_entries()) {
    const std::size_t ib = static_cast<std::size_t>(ie.ci) * kC;
    float xi[kC], yi[kC], zi[kC];
    int ti[kC];
    for (int s = 0; s < kC; ++s) {
      xi[s] = ws.xc.x[ib + s];
      yi[s] = ws.xc.y[ib + s];
      zi[s] = ws.xc.z[ib + s];
      ti[s] = ws.tc[ib + s];
    }
    // Per-i-slot vector force accumulators, horizontally summed once per
    // i entry (not per j entry) — amortizes the shuffle-heavy reduction
    // over every j entry of the row.
    __m128 fixv[kC], fiyv[kC], fizv[kC];
    for (int s = 0; s < kC; ++s) fixv[s] = fiyv[s] = fizv[s] = zerov;
    // Per-i-entry float energy partials; the cross-entry accumulation
    // stays double (the GROMACS GPU-kernel precision split).
    __m128 eljv = zerov, ecoulv = zerov;

    for (std::int32_t en = ie.j_begin; en < ie.j_end; ++en) {
      const ClusterPairList::JEntry& je = jents[static_cast<std::size_t>(en)];
      const std::size_t jb = static_cast<std::size_t>(je.cj) * kC;
      const __m128 xjv = _mm_loadu_ps(ws.xc.x.data() + jb);
      const __m128 yjv = _mm_loadu_ps(ws.xc.y.data() + jb);
      const __m128 zjv = _mm_loadu_ps(ws.xc.z.data() + jb);
      const std::int32_t* tj = ws.tc.data() + jb;
      __m128 fjxv = zerov, fjyv = zerov, fjzv = zerov;

      for (int ii = 0; ii < kC; ++ii) {
        const unsigned nib = (je.mask >> (ii * kC)) & 0xFu;
        // All-masked rows (pad i slots, the empty diagonal row of a
        // self entry) would only add exact +/-0 — skip them. Bit-neutral
        // and well-predicted.
        if (nib == 0) continue;
        // Per-type-pair parameters via register inserts (tiny table,
        // L1-resident; _mm_setr_ps avoids store-forward stalls).
        const NbParamTable::TypePair* trow = params.row(ti[ii]);
        const NbParamTable::TypePair& p0 = trow[tj[0]];
        const NbParamTable::TypePair& p1 = trow[tj[1]];
        const NbParamTable::TypePair& p2 = trow[tj[2]];
        const NbParamTable::TypePair& p3 = trow[tj[3]];
        const __m128 c6 = _mm_setr_ps(p0.c6, p1.c6, p2.c6, p3.c6);
        const __m128 c12 = _mm_setr_ps(p0.c12, p1.c12, p2.c12, p3.c12);
        const __m128 qq = _mm_setr_ps(p0.qq, p1.qq, p2.qq, p3.qq);
        const __m128 wmv = _mm_load_ps(kRowMask[nib]);

        // Minimum image on wrapped coordinates: one half-box select per
        // component (dx is in (-L, L) by construction).
        __m128 dx = _mm_sub_ps(_mm_set1_ps(xi[ii]), xjv);
        __m128 dy = _mm_sub_ps(_mm_set1_ps(yi[ii]), yjv);
        __m128 dz = _mm_sub_ps(_mm_set1_ps(zi[ii]), zjv);
        dx = _mm_add_ps(dx, _mm_and_ps(_mm_cmplt_ps(dx, nhlxv), lxv));
        dx = _mm_sub_ps(dx, _mm_and_ps(_mm_cmpgt_ps(dx, hlxv), lxv));
        dy = _mm_add_ps(dy, _mm_and_ps(_mm_cmplt_ps(dy, nhlyv), lyv));
        dy = _mm_sub_ps(dy, _mm_and_ps(_mm_cmpgt_ps(dy, hlyv), lyv));
        dz = _mm_add_ps(dz, _mm_and_ps(_mm_cmplt_ps(dz, nhlzv), lzv));
        dz = _mm_sub_ps(dz, _mm_and_ps(_mm_cmpgt_ps(dz, hlzv), lzv));
        const __m128 r2 =
            _mm_add_ps(_mm_add_ps(_mm_mul_ps(dx, dx), _mm_mul_ps(dy, dy)),
                       _mm_mul_ps(dz, dz));

        // Branch-free masking: in-range lanes select the stored mask bit;
        // the safe denominator keeps excluded lanes finite so every
        // w * term is exactly +/-0.
        const __m128 in =
            _mm_and_ps(_mm_cmple_ps(r2, rc2v), _mm_cmpneq_ps(r2, zerov));
        const __m128 w = _mm_and_ps(in, wmv);
        const __m128 r2s =
            _mm_or_ps(_mm_and_ps(in, r2), _mm_andnot_ps(in, onev));

        const __m128 rinv2 = _mm_div_ps(onev, r2s);
        const __m128 rinv6 = _mm_mul_ps(_mm_mul_ps(rinv2, rinv2), rinv2);
        const __m128 rinv = _mm_sqrt_ps(rinv2);
        const __m128 rinv12 = _mm_mul_ps(rinv6, rinv6);
        const __m128 elj =
            _mm_sub_ps(_mm_mul_ps(c12, rinv12), _mm_mul_ps(c6, rinv6));
        const __m128 flj = _mm_mul_ps(
            _mm_sub_ps(_mm_mul_ps(twelvev, _mm_mul_ps(c12, rinv12)),
                       _mm_mul_ps(sixv, _mm_mul_ps(c6, rinv6))),
            rinv2);
        const __m128 vqq = _mm_mul_ps(
            qq, _mm_sub_ps(_mm_add_ps(rinv, _mm_mul_ps(krfv, r2s)), crfv));
        const __m128 fqq =
            _mm_mul_ps(qq, _mm_sub_ps(_mm_mul_ps(rinv, rinv2), two_krfv));
        const __m128 fscale = _mm_mul_ps(w, _mm_add_ps(flj, fqq));

        const __m128 fxv = _mm_mul_ps(fscale, dx);
        const __m128 fyv = _mm_mul_ps(fscale, dy);
        const __m128 fzv = _mm_mul_ps(fscale, dz);
        fixv[ii] = _mm_add_ps(fixv[ii], fxv);
        fiyv[ii] = _mm_add_ps(fiyv[ii], fyv);
        fizv[ii] = _mm_add_ps(fizv[ii], fzv);
        fjxv = _mm_sub_ps(fjxv, fxv);
        fjyv = _mm_sub_ps(fjyv, fyv);
        fjzv = _mm_sub_ps(fjzv, fzv);
        eljv = _mm_add_ps(eljv, _mm_mul_ps(w, elj));
        ecoulv = _mm_add_ps(ecoulv, _mm_mul_ps(w, vqq));
      }

      float* fcx = ws.fc.x.data() + jb;
      float* fcy = ws.fc.y.data() + jb;
      float* fcz = ws.fc.z.data() + jb;
      _mm_storeu_ps(fcx, _mm_add_ps(_mm_loadu_ps(fcx), fjxv));
      _mm_storeu_ps(fcy, _mm_add_ps(_mm_loadu_ps(fcy), fjyv));
      _mm_storeu_ps(fcz, _mm_add_ps(_mm_loadu_ps(fcz), fjzv));
    }

    for (int s = 0; s < kC; ++s) {
      ws.fc.x[ib + s] += hsum(fixv[s]);
      ws.fc.y[ib + s] += hsum(fiyv[s]);
      ws.fc.z[ib + s] += hsum(fizv[s]);
    }
    e_lj += static_cast<double>(hsum(eljv));
    e_coul += static_cast<double>(hsum(ecoulv));
  }
  e.lj = e_lj;
  e.coulomb = e_coul;
  return e;
}
#endif  // __SSE2__

// Portable scalar lanes: same masking/minimum-image scheme.
Energies kernel_portable(const Box& box, const NbParamTable& params,
                         const ClusterPairList& list, NbWorkspace& ws) {
  Energies e;
  const float lx = box.length(0), ly = box.length(1), lz = box.length(2);
  const float hlx = 0.5f * lx, hly = 0.5f * ly, hlz = 0.5f * lz;
  const float rc2 = params.cutoff2();
  const float krf = params.krf();
  const float crf = params.crf();
  double e_lj = 0.0, e_coul = 0.0;
  const std::span<const ClusterPairList::JEntry> jents = list.j_entries();

  for (const ClusterPairList::IEntry& ie : list.i_entries()) {
    const std::size_t ib = static_cast<std::size_t>(ie.ci) * kC;
    float xi[kC], yi[kC], zi[kC];
    int ti[kC];
    float fix[kC] = {}, fiy[kC] = {}, fiz[kC] = {};
    for (int s = 0; s < kC; ++s) {
      xi[s] = ws.xc.x[ib + s];
      yi[s] = ws.xc.y[ib + s];
      zi[s] = ws.xc.z[ib + s];
      ti[s] = ws.tc[ib + s];
    }

    for (std::int32_t en = ie.j_begin; en < ie.j_end; ++en) {
      const ClusterPairList::JEntry& je = jents[static_cast<std::size_t>(en)];
      const std::size_t jb = static_cast<std::size_t>(je.cj) * kC;
      const float* xj = ws.xc.x.data() + jb;
      const float* yj = ws.xc.y.data() + jb;
      const float* zj = ws.xc.z.data() + jb;
      float fjx[kC] = {}, fjy[kC] = {}, fjz[kC] = {};
      // Per-entry float energy partials; the cross-entry accumulation
      // stays double (the GROMACS GPU-kernel precision split).
      float elj_e = 0.0f, ecoul_e = 0.0f;

      for (int ii = 0; ii < kC; ++ii) {
        const NbParamTable::TypePair* trow = params.row(ti[ii]);
        const float xii = xi[ii], yii = yi[ii], zii = zi[ii];
        const unsigned row_mask = (je.mask >> (ii * kC)) & 0xFu;
        for (int jj = 0; jj < kC; ++jj) {
          // Minimum image on wrapped coordinates: one half-box select
          // per component (dx is in (-L, L) by construction).
          float dx = xii - xj[jj];
          float dy = yii - yj[jj];
          float dz = zii - zj[jj];
          dx += (dx < -hlx ? lx : 0.0f) - (dx > hlx ? lx : 0.0f);
          dy += (dy < -hly ? ly : 0.0f) - (dy > hly ? ly : 0.0f);
          dz += (dz < -hlz ? lz : 0.0f) - (dz > hlz ? lz : 0.0f);
          const float r2 = dx * dx + dy * dy + dz * dz;

          // Branch-free masking, mirroring the SIMD path.
          const bool in = (r2 <= rc2) & (r2 != 0.0f);
          const float w = in && ((row_mask >> jj) & 1u) ? 1.0f : 0.0f;
          const float r2s = in ? r2 : 1.0f;

          const NbParamTable::TypePair& tp =
              trow[ws.tc[jb + static_cast<std::size_t>(jj)]];
          const float rinv2 = 1.0f / r2s;
          const float rinv6 = rinv2 * rinv2 * rinv2;
          const float rinv = std::sqrt(rinv2);
          const float elj = tp.c12 * rinv6 * rinv6 - tp.c6 * rinv6;
          const float flj =
              (12.0f * tp.c12 * rinv6 * rinv6 - 6.0f * tp.c6 * rinv6) *
              rinv2;
          const float vqq = tp.qq * (rinv + krf * r2s - crf);
          const float fqq = tp.qq * (rinv * rinv2 - 2.0f * krf);
          const float fscale = w * (flj + fqq);

          fix[ii] += fscale * dx;
          fiy[ii] += fscale * dy;
          fiz[ii] += fscale * dz;
          fjx[jj] -= fscale * dx;
          fjy[jj] -= fscale * dy;
          fjz[jj] -= fscale * dz;
          elj_e += w * elj;
          ecoul_e += w * vqq;
        }
      }

      e_lj += static_cast<double>(elj_e);
      e_coul += static_cast<double>(ecoul_e);
      for (int s = 0; s < kC; ++s) {
        ws.fc.x[jb + s] += fjx[s];
        ws.fc.y[jb + s] += fjy[s];
        ws.fc.z[jb + s] += fjz[s];
      }
    }

    for (int s = 0; s < kC; ++s) {
      ws.fc.x[ib + s] += fix[s];
      ws.fc.y[ib + s] += fiy[s];
      ws.fc.z[ib + s] += fiz[s];
    }
  }
  e.lj = e_lj;
  e.coulomb = e_coul;
  return e;
}

}  // namespace

NbParamTable::NbParamTable(const ForceField& ff)
    : ntypes_(ff.num_types()),
      cutoff2_(static_cast<float>(ff.cutoff2())),
      krf_(static_cast<float>(ff.krf())),
      crf_(static_cast<float>(ff.crf())) {
  table_.resize(static_cast<std::size_t>(ntypes_ * ntypes_));
  for (int ti = 0; ti < ntypes_; ++ti) {
    for (int tj = 0; tj < ntypes_; ++tj) {
      const PairParams& p = ff.pair_params(ti, tj);
      TypePair& out = table_[static_cast<std::size_t>(ti * ntypes_ + tj)];
      out.c6 = static_cast<float>(p.c6);
      out.c12 = static_cast<float>(p.c12);
      out.qq = static_cast<float>(kCoulombFactor * ff.type(ti).charge *
                                  ff.type(tj).charge);
    }
  }
}

Energies compute_nonbonded_clusters(const Box& box, const NbParamTable& params,
                                    const ClusterPairList& list,
                                    std::span<const Vec3> positions,
                                    std::span<const int> types,
                                    std::span<Vec3> forces, NbWorkspace& ws,
                                    simd::KernelIsa isa) {
  assert(forces.size() == positions.size());
  assert(types.size() == positions.size());
  Energies e;
  if (list.num_clusters() == 0) return e;

  stage_workspace(box, list, positions, types, ws, simd::j_cluster_width(isa));

  switch (isa) {
    case simd::KernelIsa::Avx512:
#if defined(HALOSIM_BUILD_AVX512)
      e = simd::cluster_kernel_avx512(box, params, list, ws);
      break;
#else
      [[fallthrough]];
#endif
    case simd::KernelIsa::Avx2:
#if defined(HALOSIM_BUILD_AVX2)
      e = simd::cluster_kernel_avx2(box, params, list, ws);
      break;
#else
      [[fallthrough]];
#endif
    case simd::KernelIsa::Sse2:
#if defined(__SSE2__)
      e = kernel_sse2(box, params, list, ws);
      break;
#else
      [[fallthrough]];
#endif
    case simd::KernelIsa::Scalar:
      e = kernel_portable(box, params, list, ws);
      break;
  }

  ws.fc.scatter_add_indexed(forces, list.cluster_atoms());
  return e;
}

Energies compute_nonbonded_clusters(const Box& box, const NbParamTable& params,
                                    const ClusterPairList& list,
                                    std::span<const Vec3> positions,
                                    std::span<const int> types,
                                    std::span<Vec3> forces, NbWorkspace& ws) {
  return compute_nonbonded_clusters(box, params, list, positions, types,
                                    forces, ws, simd::active_isa());
}

}  // namespace hs::md
