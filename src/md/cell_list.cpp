#include "md/cell_list.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hs::md {

void CellList::reset(const Box& box, double min_cell_size) {
  assert(min_cell_size > 0.0);
  box_ = box;
  for (int d = 0; d < 3; ++d) {
    dims_[d] = std::max(
        1, static_cast<int>(std::floor(box.length(d) / min_cell_size)));
  }
  // assign() recycles capacity; an unbuilt list reads as all-empty.
  heads_.assign(static_cast<std::size_t>(num_cells()), -1);
}

void CellList::cell_of(const Vec3& wrapped, int out[3]) const {
  for (int d = 0; d < 3; ++d) {
    int c = static_cast<int>(wrapped[d] / box_.length(d) *
                             static_cast<float>(dims_[d]));
    out[d] = std::clamp(c, 0, dims_[d] - 1);
  }
}

void CellList::build(std::span<const Vec3> positions) {
  std::fill(heads_.begin(), heads_.end(), -1);
  next_.assign(positions.size(), -1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 w = box_.wrap(positions[i]);
    int c[3];
    cell_of(w, c);
    const int cell = (c[0] * dims_[1] + c[1]) * dims_[2] + c[2];
    next_[i] = heads_[static_cast<std::size_t>(cell)];
    heads_[static_cast<std::size_t>(cell)] = static_cast<int>(i);
  }
}

}  // namespace hs::md
