#include "md/ewald.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "md/fft.hpp"

namespace hs::md {

namespace {

constexpr double kPi = std::numbers::pi;

void check_inputs(const Box& box, std::span<const Vec3> positions,
                  std::span<const double> charges, const EwaldParams& params) {
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ewald: positions/charges size mismatch");
  }
  for (int d = 0; d < 3; ++d) {
    if (params.r_cut * 2.0 >= box.length(d)) {
      throw std::invalid_argument("ewald: r_cut must be < min box length / 2");
    }
  }
}

}  // namespace

double bspline(int order, double u) {
  assert(order >= 2);
  if (u <= 0.0 || u >= static_cast<double>(order)) return 0.0;
  if (order == 2) return 1.0 - std::abs(u - 1.0);
  const double n = static_cast<double>(order);
  return u / (n - 1.0) * bspline(order - 1, u) +
         (n - u) / (n - 1.0) * bspline(order - 1, u - 1.0);
}

double bspline_derivative(int order, double u) {
  return bspline(order - 1, u) - bspline(order - 1, u - 1.0);
}

EwaldResult ewald_real_space(const Box& box, std::span<const Vec3> positions,
                             std::span<const double> charges,
                             const EwaldParams& params) {
  check_inputs(box, positions, charges, params);
  const auto n = positions.size();
  EwaldResult result;
  result.forces.assign(n, Vec3d{});
  const double beta = params.beta;
  const double rc2 = params.r_cut * params.r_cut;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 dr = box.min_image(positions[i], positions[j]);
      const double r2 = static_cast<double>(norm2(dr));
      if (r2 > rc2 || r2 == 0.0) continue;
      const double r = std::sqrt(r2);
      const double qq = charges[i] * charges[j];
      result.e_real += qq * std::erfc(beta * r) / r;
      // -d/dr of erfc(beta r)/r, divided by r for the vector form.
      const double f_over_r =
          qq *
          (std::erfc(beta * r) / r +
           2.0 * beta / std::sqrt(kPi) * std::exp(-beta * beta * r2)) /
          r2;
      result.forces[i].x += f_over_r * dr.x;
      result.forces[i].y += f_over_r * dr.y;
      result.forces[i].z += f_over_r * dr.z;
      result.forces[j].x -= f_over_r * dr.x;
      result.forces[j].y -= f_over_r * dr.y;
      result.forces[j].z -= f_over_r * dr.z;
    }
  }
  // Self energy (no force contribution).
  double q2 = 0.0;
  for (double q : charges) q2 += q * q;
  result.e_self = -beta / std::sqrt(kPi) * q2;
  return result;
}

EwaldResult ewald_direct(const Box& box, std::span<const Vec3> positions,
                         std::span<const double> charges,
                         const EwaldParams& params) {
  EwaldResult result = ewald_real_space(box, positions, charges, params);
  const auto n = positions.size();
  const double volume = box.volume();
  const double beta = params.beta;
  const double lx = box.length(0), ly = box.length(1), lz = box.length(2);

  for (int m1 = -params.mmax; m1 <= params.mmax; ++m1) {
    for (int m2 = -params.mmax; m2 <= params.mmax; ++m2) {
      for (int m3 = -params.mmax; m3 <= params.mmax; ++m3) {
        if (m1 == 0 && m2 == 0 && m3 == 0) continue;
        const double mx = m1 / static_cast<double>(lx);
        const double my = m2 / static_cast<double>(ly);
        const double mz = m3 / static_cast<double>(lz);
        const double m2bar = mx * mx + my * my + mz * mz;
        const double g =
            std::exp(-kPi * kPi * m2bar / (beta * beta)) / m2bar;

        // Structure factor S(m) = sum q_i exp(2 pi i m.r_i).
        double s_re = 0.0, s_im = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double phase = 2.0 * kPi * (mx * positions[i].x +
                                            my * positions[i].y +
                                            mz * positions[i].z);
          s_re += charges[i] * std::cos(phase);
          s_im += charges[i] * std::sin(phase);
        }
        result.e_recip +=
            g * (s_re * s_re + s_im * s_im) / (2.0 * kPi * volume);

        // F_i = (2 q_i / V) g(m) mbar Im(conj(S) e^{i phi_i}).
        for (std::size_t i = 0; i < n; ++i) {
          const double phase = 2.0 * kPi * (mx * positions[i].x +
                                            my * positions[i].y +
                                            mz * positions[i].z);
          const double im =
              s_re * std::sin(phase) - s_im * std::cos(phase);
          const double pref = 2.0 * charges[i] * g * im / volume;
          result.forces[i].x += pref * mx;
          result.forces[i].y += pref * my;
          result.forces[i].z += pref * mz;
        }
      }
    }
  }
  return result;
}

EwaldResult pme(const Box& box, std::span<const Vec3> positions,
                std::span<const double> charges, const EwaldParams& params) {
  EwaldResult result = ewald_real_space(box, positions, charges, params);
  const auto n = positions.size();
  const int order = params.spline_order;
  if (order < 2) throw std::invalid_argument("pme: spline_order must be >= 2");
  const int kx = params.grid[0], ky = params.grid[1], kz = params.grid[2];
  const double volume = box.volume();
  const double beta = params.beta;

  // ---- Charge spreading -------------------------------------------------
  Grid3D q_grid(kx, ky, kz);
  struct SplineCoeffs {
    // Per axis: starting grid index and `order` weights + derivatives.
    int start[3];
    std::vector<double> w[3];
    std::vector<double> dw[3];
  };
  std::vector<SplineCoeffs> splines(n);
  const int dims[3] = {kx, ky, kz};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 wrapped = box.wrap(positions[i]);
    for (int axis = 0; axis < 3; ++axis) {
      const double u = static_cast<double>(wrapped[axis]) /
                       static_cast<double>(box.length(axis)) * dims[axis];
      const int base = static_cast<int>(std::floor(u));
      splines[i].start[axis] = base - order + 1;
      auto& w = splines[i].w[axis];
      auto& dw = splines[i].dw[axis];
      w.resize(static_cast<std::size_t>(order));
      dw.resize(static_cast<std::size_t>(order));
      for (int t = 0; t < order; ++t) {
        const double arg = u - static_cast<double>(base - order + 1 + t);
        w[static_cast<std::size_t>(t)] = bspline(order, arg);
        dw[static_cast<std::size_t>(t)] = bspline_derivative(order, arg);
      }
    }
  }
  auto wrap_idx = [](int v, int k) { return ((v % k) + k) % k; };
  for (std::size_t i = 0; i < n; ++i) {
    const auto& sp = splines[i];
    for (int a = 0; a < order; ++a) {
      const int gx = wrap_idx(sp.start[0] + a, kx);
      for (int b = 0; b < order; ++b) {
        const int gy = wrap_idx(sp.start[1] + b, ky);
        const double wxy = sp.w[0][static_cast<std::size_t>(a)] *
                           sp.w[1][static_cast<std::size_t>(b)];
        for (int c = 0; c < order; ++c) {
          const int gz = wrap_idx(sp.start[2] + c, kz);
          q_grid.at(gx, gy, gz) +=
              charges[i] * wxy * sp.w[2][static_cast<std::size_t>(c)];
        }
      }
    }
  }

  // ---- Reciprocal-space convolution --------------------------------------
  q_grid.fft3(/*inverse=*/false);

  // Euler-spline moduli |b(m)|^2 per axis.
  auto bsq = [order](int k) {
    std::vector<double> out(static_cast<std::size_t>(k));
    for (int m = 0; m < k; ++m) {
      double den_re = 0.0, den_im = 0.0;
      for (int j = 0; j <= order - 2; ++j) {
        const double phase = 2.0 * kPi * m * j / static_cast<double>(k);
        const double w = bspline(order, static_cast<double>(j + 1));
        den_re += w * std::cos(phase);
        den_im += w * std::sin(phase);
      }
      const double den2 = den_re * den_re + den_im * den_im;
      out[static_cast<std::size_t>(m)] = den2 > 1e-12 ? 1.0 / den2 : 0.0;
    }
    return out;
  };
  const auto bx = bsq(kx), by = bsq(ky), bz = bsq(kz);

  auto freq = [](int m, int k) { return m <= k / 2 ? m : m - k; };
  double e_recip = 0.0;
  for (int x = 0; x < kx; ++x) {
    const double mx = freq(x, kx) / static_cast<double>(box.length(0));
    for (int y = 0; y < ky; ++y) {
      const double my = freq(y, ky) / static_cast<double>(box.length(1));
      for (int z = 0; z < kz; ++z) {
        if (x == 0 && y == 0 && z == 0) {
          q_grid.at(0, 0, 0) = Complex(0.0, 0.0);
          continue;
        }
        const double mz = freq(z, kz) / static_cast<double>(box.length(2));
        const double m2bar = mx * mx + my * my + mz * mz;
        const double influence =
            std::exp(-kPi * kPi * m2bar / (beta * beta)) / m2bar *
            bx[static_cast<std::size_t>(x)] * by[static_cast<std::size_t>(y)] *
            bz[static_cast<std::size_t>(z)] / (kPi * volume);
        Complex& qm = q_grid.at(x, y, z);
        e_recip += 0.5 * influence * std::norm(qm);
        qm *= influence;  // now the potential grid in reciprocal space
      }
    }
  }
  result.e_recip = e_recip;

  // Unnormalized inverse transform yields the real-space potential grid
  // phi with E = (1/2) sum_k Q(k) phi(k) (see convention note in header).
  q_grid.fft3(/*inverse=*/true);

  // ---- Force gather -------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const auto& sp = splines[i];
    double fx = 0.0, fy = 0.0, fz = 0.0;
    for (int a = 0; a < order; ++a) {
      const int gx = wrap_idx(sp.start[0] + a, kx);
      const double wx = sp.w[0][static_cast<std::size_t>(a)];
      const double dx = sp.dw[0][static_cast<std::size_t>(a)];
      for (int b = 0; b < order; ++b) {
        const int gy = wrap_idx(sp.start[1] + b, ky);
        const double wy = sp.w[1][static_cast<std::size_t>(b)];
        const double dy = sp.dw[1][static_cast<std::size_t>(b)];
        for (int c = 0; c < order; ++c) {
          const int gz = wrap_idx(sp.start[2] + c, kz);
          const double wz = sp.w[2][static_cast<std::size_t>(c)];
          const double dz = sp.dw[2][static_cast<std::size_t>(c)];
          const double phi = q_grid.at(gx, gy, gz).real();
          fx += dx * wy * wz * phi;
          fy += wx * dy * wz * phi;
          fz += wx * wy * dz * phi;
        }
      }
    }
    // d u / d r = K / L per axis; F = -q dE/dr.
    result.forces[i].x -= charges[i] * fx * kx / static_cast<double>(box.length(0));
    result.forces[i].y -= charges[i] * fy * ky / static_cast<double>(box.length(1));
    result.forces[i].z -= charges[i] * fz * kz / static_cast<double>(box.length(2));
  }
  return result;
}

}  // namespace hs::md
