// Non-bonded force evaluation over a pair list.
//
// Forces obey Newton's third law within the kernel: +F on i, -F on j, where
// j may be a halo slot — those contributions are what the force halo
// exchange returns to the owning rank.
#pragma once

#include <span>

#include "md/box.hpp"
#include "md/forcefield.hpp"
#include "md/pair_list.hpp"

namespace hs::md {

struct Energies {
  double lj = 0.0;
  double coulomb = 0.0;
  double total() const { return lj + coulomb; }
};

/// Accumulate forces for all pairs in `list` that are within the force-field
/// cutoff. Distances use the box minimum image (valid because every box
/// dimension exceeds twice the list radius). Returns the pair energies.
Energies compute_nonbonded(const Box& box, const ForceField& ff,
                           std::span<const Vec3> positions,
                           std::span<const int> types, const PairList& list,
                           std::span<Vec3> forces);

/// Reference O(N^2) force computation for validation (all i<j pairs).
Energies compute_nonbonded_reference(const Box& box, const ForceField& ff,
                                     std::span<const Vec3> positions,
                                     std::span<const int> types,
                                     std::span<Vec3> forces);

}  // namespace hs::md
