// Batched cluster-pair nonbonded kernel (the NxM fast path).
//
// Evaluates one i-cluster against its j-cluster entries over SoA
// coordinates, with:
//  * a precomputed per-type-pair parameter table (c6, c12, f*qi*qj) — no
//    per-pair ForceField::pair_params / evaluate indirection;
//  * branch-free cutoff masking: every slot pair of an entry is computed
//    and multiplied by a {0,1} weight combining the stored interaction
//    mask with the runtime cutoff check (pad slots and buffer-shell pairs
//    contribute exactly +/-0.0);
//  * float pair arithmetic (the GROMACS GPU kernels' precision) with
//    double-precision energy accumulation preserved.
//
// The scalar compute_nonbonded() path remains the reference oracle;
// equivalence is tolerance-checked by tests (see DESIGN.md for the
// determinism statement: a fixed list gives bit-stable results, cluster
// vs scalar agreement is tolerance-based).
#pragma once

#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/forcefield.hpp"
#include "md/nonbonded.hpp"
#include "md/simd/isa.hpp"
#include "md/soa.hpp"

namespace hs::md {

/// Flattened force-field constants for the batched kernel: one
/// (c6, c12, qq) triple per ordered type pair, qq = f * q_i * q_j.
class NbParamTable {
 public:
  struct TypePair {
    float c6 = 0.0f;
    float c12 = 0.0f;
    float qq = 0.0f;
  };

  explicit NbParamTable(const ForceField& ff);

  int num_types() const { return ntypes_; }
  const TypePair* row(int ti) const {
    return table_.data() + static_cast<std::size_t>(ti * ntypes_);
  }
  /// Flat table base for vector gathers (float stride 3 per ordered type
  /// pair: c6 at 3*(ti*ntypes + tj), c12 at +1, qq at +2).
  const float* flat() const { return &table_.data()->c6; }
  float cutoff2() const { return cutoff2_; }
  float krf() const { return krf_; }
  float crf() const { return crf_; }

 private:
  int ntypes_;
  std::vector<TypePair> table_;
  float cutoff2_;
  float krf_;
  float crf_;
};

/// Reusable SoA staging buffers (cluster-ordered coordinates, force
/// accumulators, type indices). Keep one per call site so steady-state
/// kernel invocations allocate nothing.
struct NbWorkspace {
  SoaVecs xc;                   // cluster-ordered coordinates
  SoaVecs fc;                   // cluster-ordered force accumulators
  std::vector<std::int32_t> tc; // cluster-ordered type indices
};

/// Cluster-pair counterpart of compute_nonbonded(): accumulate forces for
/// all masked pairs of `list` within the force-field cutoff; returns the
/// pair energies (double accumulation). Forces obey Newton's third law
/// within the kernel, exactly as the scalar path. Dispatches the
/// process-wide active ISA (simd::active_isa()).
Energies compute_nonbonded_clusters(const Box& box, const NbParamTable& params,
                                    const ClusterPairList& list,
                                    std::span<const Vec3> positions,
                                    std::span<const int> types,
                                    std::span<Vec3> forces, NbWorkspace& ws);

/// Explicit-ISA variant: Scalar/Sse2 run the 4x4 geometry, Avx2/Avx512
/// the 4x8 geometry over the wide list view (staging pads the workspace
/// to a whole number of j-cluster pairs; pad slots carry finite duplicate
/// coordinates and zero mask bits, so they contribute exactly +/-0).
/// The caller must pass an available ISA (see simd::isa_available()).
Energies compute_nonbonded_clusters(const Box& box, const NbParamTable& params,
                                    const ClusterPairList& list,
                                    std::span<const Vec3> positions,
                                    std::span<const int> types,
                                    std::span<Vec3> forces, NbWorkspace& ws,
                                    simd::KernelIsa isa);

}  // namespace hs::md
