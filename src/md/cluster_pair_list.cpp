#include "md/cluster_pair_list.hpp"

#include <algorithm>
#include <cassert>

namespace hs::md {

namespace {
constexpr int kC = ClusterPairList::kClusterSize;

int popcount16(std::uint16_t m) {
  int n = 0;
  while (m != 0) {
    m &= static_cast<std::uint16_t>(m - 1);
    ++n;
  }
  return n;
}
}  // namespace

void ClusterPairList::clear_build(double rlist) {
  rlist_ = rlist;
  // clear() keeps capacity: steady-state rebuilds reuse the previous
  // build's high-water storage (plus an explicit reserve for the first
  // build after a size jump).
  const std::size_t prev_j = j_entries_.size();
  const std::size_t prev_i = i_entries_.size();
  atoms_.clear();
  gather_atoms_.clear();
  cluster_cell_.clear();
  i_entries_.clear();
  j_entries_.clear();
  i_entries_.reserve(prev_i);
  j_entries_.reserve(prev_j);
  wide_valid_ = false;
  num_clusters_ = 0;
  pair_count_ = 0;
}

void ClusterPairList::build_wide() const {
  i_entries8_.clear();
  j_entries8_.clear();
  i_entries8_.reserve(i_entries_.size());
  j_entries8_.reserve(j_entries_.size() / 2 + i_entries_.size());
  for (const IEntry& ie : i_entries_) {
    // Sort this row's entries by cj so pair members are adjacent (stencil
    // cells interleave cj ranges; a cj appears at most once per row).
    wide_scratch_.assign(
        j_entries_.begin() + ie.j_begin, j_entries_.begin() + ie.j_end);
    std::sort(wide_scratch_.begin(), wide_scratch_.end(),
              [](const JEntry& a, const JEntry& b) { return a.cj < b.cj; });
    const auto j_begin = static_cast<std::int32_t>(j_entries8_.size());
    for (std::size_t k = 0; k < wide_scratch_.size();) {
      const std::int32_t cj8 = wide_scratch_[k].cj >> 1;
      std::uint32_t m = 0;
      for (; k < wide_scratch_.size() && (wide_scratch_[k].cj >> 1) == cj8;
           ++k) {
        const JEntry& je = wide_scratch_[k];
        const unsigned sub = (je.cj & 1) != 0 ? 4u : 0u;
        for (int ii = 0; ii < kC; ++ii) {
          const std::uint32_t nib = (je.mask >> (ii * kC)) & 0xFu;
          m |= nib << (ii * 2 * kC + static_cast<int>(sub));
        }
      }
      j_entries8_.push_back({cj8, m});
    }
    i_entries8_.push_back(
        {ie.ci, j_begin, static_cast<std::int32_t>(j_entries8_.size())});
  }
  wide_valid_ = true;
}

void ClusterPairList::release_build_scratch() {
  cells_ = CellList{};
  halo_cells_ = CellList{};
  cell_begin_ = {};
  halo_cell_begin_ = {};
  scratch_ = {};
  // The wide caches are derived state; dropping them only means the next
  // i_entries8() call rebuilds the view from the canonical list.
  i_entries8_ = {};
  j_entries8_ = {};
  wide_scratch_ = {};
  wide_valid_ = false;
}

void ClusterPairList::clusterize(CellList& cells, const Box& box,
                                 std::span<const Vec3> positions,
                                 int range_begin, int range_end, double rlist,
                                 std::vector<std::int32_t>& cell_begin) {
  cells.reset(box, rlist);
  cells.build(positions.subspan(static_cast<std::size_t>(range_begin),
                                static_cast<std::size_t>(range_end -
                                                         range_begin)));
  const int ncells = cells.num_cells();
  cell_begin.assign(static_cast<std::size_t>(ncells) + 1, 0);
  for (int c = 0; c < ncells; ++c) {
    cell_begin[static_cast<std::size_t>(c)] = num_clusters_;
    scratch_.clear();
    for (int k = cells.head(c); k >= 0; k = cells.next(k)) {
      scratch_.push_back(range_begin + k);
    }
    for (std::size_t at = 0; at < scratch_.size(); at += kC) {
      const std::size_t take = std::min<std::size_t>(kC, scratch_.size() - at);
      for (std::size_t s = 0; s < kC; ++s) {
        const std::int32_t a = s < take ? scratch_[at + s] : -1;
        atoms_.push_back(a);
        gather_atoms_.push_back(a >= 0 ? a : scratch_[at]);
      }
      cluster_cell_.push_back(c);
      ++num_clusters_;
    }
  }
  cell_begin[static_cast<std::size_t>(ncells)] = num_clusters_;
}

void ClusterPairList::finish_i_entry(std::int32_t ci, std::int32_t j_begin) {
  const auto j_end = static_cast<std::int32_t>(j_entries_.size());
  if (j_end > j_begin) i_entries_.push_back({ci, j_begin, j_end});
}

void ClusterPairList::build_local(const Box& box,
                                  std::span<const Vec3> positions, int n_home,
                                  double rlist) {
  assert(n_home >= 0 && static_cast<std::size_t>(n_home) <= positions.size());
  clear_build(rlist);
  clusterize(cells_, box, positions, 0, n_home, rlist, cell_begin_);

  const float r2 = static_cast<float>(rlist * rlist);
  for (std::int32_t ci = 0; ci < num_clusters_; ++ci) {
    const auto j_begin = static_cast<std::int32_t>(j_entries_.size());
    cells_.for_each_stencil_cell(
        cluster_cell_[static_cast<std::size_t>(ci)], [&](int cell) {
          const std::int32_t lo = cell_begin_[static_cast<std::size_t>(cell)];
          const std::int32_t hi =
              cell_begin_[static_cast<std::size_t>(cell) + 1];
          for (std::int32_t cj = std::max(lo, ci); cj < hi; ++cj) {
            std::uint16_t mask = 0;
            for (int ii = 0; ii < kC; ++ii) {
              const std::int32_t i = atoms_[static_cast<std::size_t>(
                  ci * kC + ii)];
              if (i < 0) break;  // pads are trailing
              const int jj0 = ci == cj ? ii + 1 : 0;
              for (int jj = jj0; jj < kC; ++jj) {
                const std::int32_t j = atoms_[static_cast<std::size_t>(
                    cj * kC + jj)];
                if (j < 0) break;
                if (box.distance2(positions[static_cast<std::size_t>(i)],
                                  positions[static_cast<std::size_t>(j)]) <=
                    r2) {
                  mask |= static_cast<std::uint16_t>(1u << (ii * kC + jj));
                }
              }
            }
            if (mask != 0) {
              j_entries_.push_back({cj, mask});
              pair_count_ += static_cast<std::size_t>(popcount16(mask));
            }
          }
        });
    finish_i_entry(ci, j_begin);
  }
}

void ClusterPairList::build_nonlocal(const Box& box,
                                     std::span<const Vec3> positions,
                                     int n_home, double rlist,
                                     const ZoneFilter* filter) {
  assert(n_home >= 0 && static_cast<std::size_t>(n_home) <= positions.size());
  clear_build(rlist);
  const int n_total = static_cast<int>(positions.size());
  if (n_total == n_home) return;

  clusterize(cells_, box, positions, 0, n_home, rlist, cell_begin_);
  const std::int32_t halo_first = num_clusters_;
  clusterize(halo_cells_, box, positions, n_home, n_total, rlist,
             halo_cell_begin_);
  // Same box, same minimum cell width => identical grids, so a home
  // cluster's cell id addresses the matching halo-grid cell directly.
  for (int d = 0; d < 3; ++d) {
    assert(cells_.cells_per_dim(d) == halo_cells_.cells_per_dim(d));
  }

  const float r2 = static_cast<float>(rlist * rlist);

  // Home-halo entries: i over home clusters, j over halo clusters.
  for (std::int32_t ci = 0; ci < halo_first; ++ci) {
    const auto j_begin = static_cast<std::int32_t>(j_entries_.size());
    halo_cells_.for_each_stencil_cell(
        cluster_cell_[static_cast<std::size_t>(ci)], [&](int cell) {
          const std::int32_t lo =
              halo_cell_begin_[static_cast<std::size_t>(cell)];
          const std::int32_t hi =
              halo_cell_begin_[static_cast<std::size_t>(cell) + 1];
          for (std::int32_t cj = lo; cj < hi; ++cj) {
            std::uint16_t mask = 0;
            for (int ii = 0; ii < kC; ++ii) {
              const std::int32_t i =
                  atoms_[static_cast<std::size_t>(ci * kC + ii)];
              if (i < 0) break;
              for (int jj = 0; jj < kC; ++jj) {
                const std::int32_t j =
                    atoms_[static_cast<std::size_t>(cj * kC + jj)];
                if (j < 0) break;
                if (box.distance2(positions[static_cast<std::size_t>(i)],
                                  positions[static_cast<std::size_t>(j)]) <=
                    r2) {
                  mask |= static_cast<std::uint16_t>(1u << (ii * kC + jj));
                }
              }
            }
            if (mask != 0) {
              j_entries_.push_back({cj, mask});
              pair_count_ += static_cast<std::size_t>(popcount16(mask));
            }
          }
        });
    finish_i_entry(ci, j_begin);
  }

  // Halo-halo entries assigned to this rank by the corner rule.
  if (filter == nullptr) return;
  for (std::int32_t ci = halo_first; ci < num_clusters_; ++ci) {
    const auto j_begin = static_cast<std::int32_t>(j_entries_.size());
    halo_cells_.for_each_stencil_cell(
        cluster_cell_[static_cast<std::size_t>(ci)], [&](int cell) {
          const std::int32_t lo =
              halo_cell_begin_[static_cast<std::size_t>(cell)];
          const std::int32_t hi =
              halo_cell_begin_[static_cast<std::size_t>(cell) + 1];
          for (std::int32_t cj = std::max(lo, ci); cj < hi; ++cj) {
            std::uint16_t mask = 0;
            for (int ii = 0; ii < kC; ++ii) {
              const std::int32_t i =
                  atoms_[static_cast<std::size_t>(ci * kC + ii)];
              if (i < 0) break;
              const int jj0 = ci == cj ? ii + 1 : 0;
              for (int jj = jj0; jj < kC; ++jj) {
                const std::int32_t j =
                    atoms_[static_cast<std::size_t>(cj * kC + jj)];
                if (j < 0) break;
                const Vec3& a = positions[static_cast<std::size_t>(i)];
                const Vec3& b = positions[static_cast<std::size_t>(j)];
                if (box.distance2(a, b) <= r2 && filter->corner_is_mine(a, b)) {
                  mask |= static_cast<std::uint16_t>(1u << (ii * kC + jj));
                }
              }
            }
            if (mask != 0) {
              j_entries_.push_back({cj, mask});
              pair_count_ += static_cast<std::size_t>(popcount16(mask));
            }
          }
        });
    finish_i_entry(ci, j_begin);
  }
}

std::size_t ClusterPairList::prune(const Box& box,
                                   std::span<const Vec3> positions,
                                   double r_prune) {
  assert(r_prune <= rlist_);
  const float r2 = static_cast<float>(r_prune * r_prune);
  std::size_t removed = 0;
  std::vector<IEntry> kept_i;
  std::vector<JEntry> kept_j;
  kept_i.reserve(i_entries_.size());
  kept_j.reserve(j_entries_.size());
  for (const IEntry& ie : i_entries_) {
    const auto j_begin = static_cast<std::int32_t>(kept_j.size());
    for (std::int32_t e = ie.j_begin; e < ie.j_end; ++e) {
      const JEntry& je = j_entries_[static_cast<std::size_t>(e)];
      bool any_near = false;
      for (int ii = 0; ii < kC && !any_near; ++ii) {
        const std::int32_t i =
            atoms_[static_cast<std::size_t>(ie.ci * kC + ii)];
        if (i < 0) break;
        for (int jj = 0; jj < kC; ++jj) {
          if (((je.mask >> (ii * kC + jj)) & 1u) == 0) continue;
          const std::int32_t j =
              atoms_[static_cast<std::size_t>(je.cj * kC + jj)];
          if (box.distance2(positions[static_cast<std::size_t>(i)],
                            positions[static_cast<std::size_t>(j)]) <= r2) {
            any_near = true;
            break;
          }
        }
      }
      if (any_near) {
        kept_j.push_back(je);
      } else {
        removed += static_cast<std::size_t>(popcount16(je.mask));
      }
    }
    const auto j_end = static_cast<std::int32_t>(kept_j.size());
    if (j_end > j_begin) kept_i.push_back({ie.ci, j_begin, j_end});
  }
  i_entries_ = std::move(kept_i);
  j_entries_ = std::move(kept_j);
  wide_valid_ = false;
  pair_count_ -= removed;
  return removed;
}

}  // namespace hs::md
