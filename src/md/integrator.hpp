// Leapfrog integration (the GROMACS default) with optional velocity
// rescaling. Per-component arithmetic in double, storage in float —
// mirroring the mixed-precision update path.
#pragma once

#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/forcefield.hpp"
#include "md/simd/isa.hpp"
#include "md/vec3.hpp"

namespace hs::md {

class LeapfrogIntegrator {
 public:
  explicit LeapfrogIntegrator(double dt_ps) : dt_(dt_ps) {}

  double dt() const { return dt_; }

  /// v += f/m * dt ; x += v * dt ; wrap into the box.
  /// `types`/`ff` supply per-atom masses. Dispatches simd::active_isa().
  void step(const Box& box, const ForceField& ff, std::span<const int> types,
            std::span<const Vec3> forces, std::span<Vec3> velocities,
            std::span<Vec3> positions) const;

  /// Explicit-ISA variant. Scalar/Sse2 keep the legacy double-arithmetic
  /// update (bit-exact with the pre-dispatch behaviour, required by the
  /// forced-sse2 determinism contract); Avx2/Avx512 run the float
  /// lane-block path with a per-type inv(m)*dt table (agrees to float
  /// accumulation tolerance).
  void step(const Box& box, const ForceField& ff, std::span<const int> types,
            std::span<const Vec3> forces, std::span<Vec3> velocities,
            std::span<Vec3> positions, simd::KernelIsa isa) const;

  /// Berendsen-style velocity rescaling toward `t_ref` with coupling time
  /// `tau` (used to keep long functional runs bounded; off by default).
  static void rescale_velocities(double current_t, double t_ref, double tau,
                                 double dt, std::span<Vec3> velocities);

 private:
  double dt_;
};

}  // namespace hs::md
