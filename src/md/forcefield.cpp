#include "md/forcefield.hpp"

#include <cmath>

namespace hs::md {

ForceField::ForceField(std::vector<AtomType> types, double cutoff,
                       double epsilon_rf)
    : types_(std::move(types)), rc_(cutoff), rc2_(cutoff * cutoff) {
  assert(!types_.empty() && cutoff > 0.0);
  const double eps = 1.0;  // relative permittivity inside the cutoff
  if (epsilon_rf <= 0.0) {
    krf_ = 1.0 / (2.0 * rc_ * rc_ * rc_);  // eps_rf -> infinity
  } else {
    krf_ = (epsilon_rf - eps) / (2.0 * epsilon_rf + eps) / (rc_ * rc_ * rc_);
  }
  crf_ = 1.0 / rc_ + krf_ * rc_ * rc_;

  const int n = num_types();
  table_.resize(static_cast<std::size_t>(n * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Lorentz-Berthelot combination (double throughout).
      const double sigma =
          0.5 * (static_cast<double>(types_[static_cast<std::size_t>(i)].sigma) +
                 types_[static_cast<std::size_t>(j)].sigma);
      const double eps_ij =
          std::sqrt(static_cast<double>(types_[static_cast<std::size_t>(i)].epsilon) *
                    types_[static_cast<std::size_t>(j)].epsilon);
      const double s6 = std::pow(sigma, 6.0);
      table_[static_cast<std::size_t>(i * n + j)] =
          PairParams{4.0 * eps_ij * s6, 4.0 * eps_ij * s6 * s6};
    }
  }
}

}  // namespace hs::md
