// Particle system container and the "grappa"-like benchmark builder.
//
// The paper's grappa set is a homogeneous water-ethanol mixture, 45 k to
// 46 M atoms (§6.1). We generate an equivalent homogeneous LJ + partial
// charge mixture on a jittered cubic lattice in a cubic box at a fixed
// number density: computationally it exercises the same code paths
// (uniform short-range pair work, neutral total charge, reaction-field
// electrostatics) without needing the proprietary input files.
#pragma once

#include <cstdint>
#include <vector>

#include "md/box.hpp"
#include "md/forcefield.hpp"
#include "md/soa.hpp"
#include "md/vec3.hpp"

namespace hs::md {

struct System {
  Box box;
  std::vector<Vec3> x;   // positions (nm), wrapped into the box
  std::vector<Vec3> v;   // velocities (nm/ps)
  std::vector<int> type; // atom type index into the force field

  // SoA mirror of the particle data for the batched kernels: split x/y/z
  // coordinate streams plus flat per-atom type/charge arrays. The AoS
  // fields above stay authoritative; call sync_soa() after mutating them
  // (build_grappa and dd::Decomposition::gather do this for you).
  SoaVecs x_soa;
  std::vector<std::int32_t> type_soa;
  std::vector<float> charge_soa;  // filled when a force field is given

  int natoms() const { return static_cast<int>(x.size()); }

  /// Refresh the SoA mirror from the AoS fields. With a force field the
  /// per-atom charge array is (re)derived from the type array too.
  void sync_soa(const ForceField* ff = nullptr);

  /// Write the SoA coordinates back into the AoS positions (the inverse
  /// shim, for code that mutates the SoA view).
  void scatter_soa();
};

struct GrappaSpec {
  int target_atoms = 45000;
  double density = 50.0;       // atoms / nm^3 (functional runs)
  double temperature = 300.0;  // K, for initial velocities
  std::uint64_t seed = 2025;
  double jitter = 0.10;        // lattice jitter as a fraction of spacing
};

/// Atom types used by the grappa-like mixture:
/// [0] W+ (water-ish, +0.1e), [1] W- (water-ish, -0.1e), [2] E (ethanol-ish,
/// neutral, larger sigma). 40/40/20 mixture, overall neutral.
std::vector<AtomType> grappa_atom_types();

/// Build a grappa-like system. The actual atom count is the largest perfect
/// lattice count <= a cubic lattice covering target_atoms (within ~1%).
System build_grappa(const GrappaSpec& spec);

/// Total charge (sanity: ~0 for grappa systems).
double total_charge(const System& sys, const ForceField& ff);

/// Kinetic energy (kJ/mol) and instantaneous temperature (K).
double kinetic_energy(const System& sys, const ForceField& ff);
double temperature(const System& sys, const ForceField& ff);

}  // namespace hs::md
