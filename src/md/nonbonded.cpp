#include "md/nonbonded.hpp"

#include <cassert>

namespace hs::md {

namespace {

inline void accumulate_pair(const Box& box, const ForceField& ff,
                            std::span<const Vec3> x, std::span<const int> types,
                            std::span<Vec3> f, int i, int j, Energies& e) {
  const Vec3 dr = box.min_image(x[static_cast<std::size_t>(i)],
                                x[static_cast<std::size_t>(j)]);
  const double r2 = static_cast<double>(norm2(dr));
  if (r2 > ff.cutoff2() || r2 == 0.0) return;
  const int ti = types[static_cast<std::size_t>(i)];
  const int tj = types[static_cast<std::size_t>(j)];
  const double qq =
      kCoulombFactor * ff.type(ti).charge * ff.type(tj).charge;
  const PairTerm term = ff.evaluate(r2, ff.pair_params(ti, tj), qq);
  const Vec3 fv = dr * static_cast<float>(term.f_over_r);
  f[static_cast<std::size_t>(i)] += fv;
  f[static_cast<std::size_t>(j)] -= fv;
  e.lj += term.e_lj;
  e.coulomb += term.e_coulomb;
}

}  // namespace

Energies compute_nonbonded(const Box& box, const ForceField& ff,
                           std::span<const Vec3> positions,
                           std::span<const int> types, const PairList& list,
                           std::span<Vec3> forces) {
  assert(forces.size() == positions.size());
  Energies e;
  for (const Pair& p : list.pairs()) {
    accumulate_pair(box, ff, positions, types, forces, p.i, p.j, e);
  }
  return e;
}

Energies compute_nonbonded_reference(const Box& box, const ForceField& ff,
                                     std::span<const Vec3> positions,
                                     std::span<const int> types,
                                     std::span<Vec3> forces) {
  assert(forces.size() == positions.size());
  Energies e;
  const int n = static_cast<int>(positions.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      accumulate_pair(box, ff, positions, types, forces, i, j, e);
    }
  }
  return e;
}

}  // namespace hs::md
