// Force field: Lennard-Jones + reaction-field electrostatics.
//
// This is the model the paper's "grappa" benchmarks use ("We use a
// reaction-field model for electrostatics to allow focusing the analysis on
// short-range interactions and halo exchange", §6.1): all interactions are
// cutoff-limited pair interactions, no PME.
//
// Reaction field (GROMACS form):
//   V(r) = f q_i q_j (1/r + k_rf r^2 - c_rf),   r <= r_c
//   k_rf = (eps_rf - eps) / (2 eps_rf + eps) / r_c^3   (eps_rf=inf => 1/(2 r_c^3))
//   c_rf = 1/r_c + k_rf r_c^2
// The force smoothly vanishes at the cutoff, which keeps domain-decomposed
// forces well conditioned at zone boundaries.
#pragma once

#include <cassert>
#include <cmath>
#include <vector>

namespace hs::md {

/// Coulomb conversion factor f = 1/(4 pi eps0) in kJ mol^-1 nm e^-2.
inline constexpr double kCoulombFactor = 138.935458;

struct AtomType {
  float sigma = 0.3f;    // nm
  float epsilon = 0.6f;  // kJ/mol
  float charge = 0.0f;   // e
  float mass = 18.0f;    // u
};

struct PairParams {
  double c6 = 0.0;   // 4 eps sigma^6
  double c12 = 0.0;  // 4 eps sigma^12
};

struct PairTerm {
  double f_over_r = 0.0;  // scalar force / r ; force vector = f_over_r * dr
  double e_lj = 0.0;
  double e_coulomb = 0.0;
};

class ForceField {
 public:
  /// `epsilon_rf` <= 0 means a conducting boundary (eps_rf = infinity).
  ForceField(std::vector<AtomType> types, double cutoff,
             double epsilon_rf = 0.0);

  double cutoff() const { return rc_; }
  double cutoff2() const { return rc2_; }
  double krf() const { return krf_; }
  double crf() const { return crf_; }
  int num_types() const { return static_cast<int>(types_.size()); }
  const AtomType& type(int t) const {
    return types_[static_cast<std::size_t>(t)];
  }

  /// Combined LJ parameters for a type pair (Lorentz-Berthelot).
  const PairParams& pair_params(int ti, int tj) const {
    return table_[static_cast<std::size_t>(ti * num_types() + tj)];
  }

  /// Evaluate one pair at squared distance r2 (must be <= cutoff2).
  PairTerm evaluate(double r2, const PairParams& p, double qq) const {
    assert(r2 > 0.0);
    const double rinv2 = 1.0 / r2;
    const double rinv6 = rinv2 * rinv2 * rinv2;
    const double vlj = p.c12 * rinv6 * rinv6 - p.c6 * rinv6;
    const double flj = (12.0 * p.c12 * rinv6 * rinv6 - 6.0 * p.c6 * rinv6) * rinv2;
    const double rinv = std::sqrt(rinv2);
    const double vqq = qq * (rinv + krf_ * r2 - crf_);
    const double fqq = qq * (rinv * rinv2 - 2.0 * krf_);
    return {flj + fqq, vlj, vqq};
  }

 private:
  std::vector<AtomType> types_;
  std::vector<PairParams> table_;
  double rc_;
  double rc2_;
  double krf_;
  double crf_;
};

}  // namespace hs::md
