// Ewald-summation electrostatics: a classical direct Ewald reference and
// smooth particle-mesh Ewald (SPME, Essmann et al. 1995).
//
// This is the long-range substrate behind GROMACS' PME rank specialization
// (§2.2 of the paper: dedicated ranks computing 3D-FFT-based PME, the part
// whose NVSHMEM-ification the paper leaves as future work, and whose
// symmetric-allocation clash §5.3 documents). The paper's benchmarks use
// reaction field precisely to exclude this path; it is provided here so
// the repository covers the full GROMACS electrostatics story and so the
// PP/PME rank-specialization experiments have real math behind them.
//
// Conventions (unit Coulomb prefactor; multiply energies/forces by
// md::kCoulombFactor for kJ/mol with e charges and nm lengths):
//   E_real  = sum_{i<j} q_i q_j erfc(beta r_ij) / r_ij   (minimum image)
//   E_recip = (1/2piV) sum_{m != 0} exp(-pi^2 mbar^2/beta^2)/mbar^2 |S(m)|^2
//   E_self  = -(beta/sqrt(pi)) sum_i q_i^2
// with mbar = (m1/L1, m2/L2, m3/L3).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/vec3.hpp"

namespace hs::md {

struct EwaldParams {
  double beta = 3.0;    // Ewald splitting parameter (1/nm)
  double r_cut = 0.9;   // real-space cutoff (nm); must be < min(L)/2
  int mmax = 12;        // direct-sum reciprocal cutoff (per axis)
  std::array<int, 3> grid = {32, 32, 32};  // PME mesh (powers of two)
  int spline_order = 4;                    // PME B-spline order (>= 2)
};

/// Double-precision force accumulator (validation-grade).
struct Vec3d {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct EwaldResult {
  double e_real = 0.0;
  double e_recip = 0.0;
  double e_self = 0.0;
  std::vector<Vec3d> forces;  // total (real + recip) per atom

  double total() const { return e_real + e_recip + e_self; }
};

/// Real-space Ewald part (erfc-screened pair sum within r_cut).
EwaldResult ewald_real_space(const Box& box, std::span<const Vec3> positions,
                             std::span<const double> charges,
                             const EwaldParams& params);

/// Direct (naive k-space loop) Ewald: exact up to the mmax cutoff. O(N*M^3);
/// reference for validating PME.
EwaldResult ewald_direct(const Box& box, std::span<const Vec3> positions,
                         std::span<const double> charges,
                         const EwaldParams& params);

/// Smooth particle-mesh Ewald: B-spline spreading, 3D FFT convolution with
/// the B(m)C(m) influence function, analytic B-spline-derivative force
/// gather. Reciprocal part only is mesh-approximated; real/self parts are
/// identical to ewald_direct.
EwaldResult pme(const Box& box, std::span<const Vec3> positions,
                std::span<const double> charges, const EwaldParams& params);

/// Cardinal B-spline M_n(u) on (0, n), zero outside; and its derivative.
double bspline(int order, double u);
double bspline_derivative(int order, double u);

}  // namespace hs::md
