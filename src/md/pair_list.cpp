#include "md/pair_list.hpp"

#include <algorithm>
#include <cassert>

namespace hs::md {

void PairList::clear_build(double rlist) {
  rlist_ = rlist;
  // clear() keeps capacity; the reserve covers the first build after the
  // list object is reused for a larger system, so steady-state rebuilds
  // never reallocate the pair vector.
  const std::size_t prev = pairs_.size();
  pairs_.clear();
  pairs_.reserve(prev);
}

void PairList::build_local(const Box& box, std::span<const Vec3> positions,
                           int n_home, double rlist) {
  assert(n_home >= 0 && static_cast<std::size_t>(n_home) <= positions.size());
  clear_build(rlist);
  const auto home = positions.first(static_cast<std::size_t>(n_home));
  CellList& cells = cells_;
  cells.reset(box, rlist);
  cells.build(home);
  const float r2 = static_cast<float>(rlist * rlist);
  for (int i = 0; i < n_home; ++i) {
    cells.for_each_candidate(home[static_cast<std::size_t>(i)], [&](int j) {
      if (j <= i) return;
      if (box.distance2(home[static_cast<std::size_t>(i)],
                        home[static_cast<std::size_t>(j)]) <= r2) {
        pairs_.push_back({i, j});
      }
    });
  }
}

void PairList::build_nonlocal(const Box& box, std::span<const Vec3> positions,
                              int n_home, double rlist,
                              const ZoneFilter* filter) {
  assert(n_home >= 0 && static_cast<std::size_t>(n_home) <= positions.size());
  clear_build(rlist);
  const int n_total = static_cast<int>(positions.size());
  if (n_total == n_home) return;
  const float r2 = static_cast<float>(rlist * rlist);

  // Bin the halo atoms; query around each home atom (home-halo pairs).
  CellList& halo_cells = cells_;
  halo_cells.reset(box, rlist);
  halo_cells.build(positions.subspan(static_cast<std::size_t>(n_home)));
  for (int i = 0; i < n_home; ++i) {
    halo_cells.for_each_candidate(
        positions[static_cast<std::size_t>(i)], [&](int jh) {
          const int j = n_home + jh;
          if (box.distance2(positions[static_cast<std::size_t>(i)],
                            positions[static_cast<std::size_t>(j)]) <= r2) {
            pairs_.push_back({i, j});
          }
        });
  }

  // Halo-halo pairs assigned to this rank by the corner rule.
  if (filter != nullptr) {
    for (int ih = 0; ih < n_total - n_home; ++ih) {
      const int i = n_home + ih;
      halo_cells.for_each_candidate(
          positions[static_cast<std::size_t>(i)], [&](int jh) {
            const int j = n_home + jh;
            if (j <= i) return;
            if (box.distance2(positions[static_cast<std::size_t>(i)],
                              positions[static_cast<std::size_t>(j)]) > r2) {
              return;
            }
            if (filter->corner_is_mine(positions[static_cast<std::size_t>(i)],
                                       positions[static_cast<std::size_t>(j)])) {
              pairs_.push_back({i, j});
            }
          });
    }
  }
}

std::size_t PairList::prune(const Box& box, std::span<const Vec3> positions,
                            double r_prune) {
  assert(r_prune <= rlist_);
  const float r2 = static_cast<float>(r_prune * r_prune);
  const std::size_t before = pairs_.size();
  std::erase_if(pairs_, [&](const Pair& p) {
    return box.distance2(positions[static_cast<std::size_t>(p.i)],
                         positions[static_cast<std::size_t>(p.j)]) > r2;
  });
  return before - pairs_.size();
}

}  // namespace hs::md
