#include "md/system.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace hs::md {

namespace {
/// Boltzmann constant in kJ mol^-1 K^-1.
constexpr double kBoltzmann = 0.00831446262;
}  // namespace

void System::sync_soa(const ForceField* ff) {
  x_soa.gather(x);
  type_soa.assign(type.begin(), type.end());
  if (ff != nullptr) {
    charge_soa.resize(type.size());
    for (std::size_t i = 0; i < type.size(); ++i) {
      charge_soa[i] = ff->type(type[i]).charge;
    }
  }
}

void System::scatter_soa() {
  assert(x_soa.size() == x.size());
  x_soa.scatter(x);
}

std::vector<AtomType> grappa_atom_types() {
  return {
      AtomType{0.25f, 0.65f, +0.10f, 18.0f},  // W+
      AtomType{0.25f, 0.65f, -0.10f, 18.0f},  // W-
      AtomType{0.34f, 0.85f, 0.00f, 15.0f},   // E
  };
}

System build_grappa(const GrappaSpec& spec) {
  assert(spec.target_atoms > 0 && spec.density > 0.0);
  // Cubic box sized for the target density; atoms on an n^3 lattice.
  const int n = std::max(
      2, static_cast<int>(std::round(std::cbrt(static_cast<double>(spec.target_atoms)))));
  const int natoms = n * n * n;
  const double volume = natoms / spec.density;
  const float box_len = static_cast<float>(std::cbrt(volume));
  const float spacing = box_len / static_cast<float>(n);

  System sys;
  sys.box = Box(box_len, box_len, box_len);
  sys.x.reserve(static_cast<std::size_t>(natoms));
  sys.v.reserve(static_cast<std::size_t>(natoms));
  sys.type.reserve(static_cast<std::size_t>(natoms));

  util::Rng rng(spec.seed);
  const float jitter = spacing * static_cast<float>(spec.jitter);
  const auto types = grappa_atom_types();

  for (int ix = 0; ix < n; ++ix) {
    for (int iy = 0; iy < n; ++iy) {
      for (int iz = 0; iz < n; ++iz) {
        Vec3 p{(static_cast<float>(ix) + 0.5f) * spacing,
               (static_cast<float>(iy) + 0.5f) * spacing,
               (static_cast<float>(iz) + 0.5f) * spacing};
        p.x += static_cast<float>(rng.uniform(-jitter, jitter));
        p.y += static_cast<float>(rng.uniform(-jitter, jitter));
        p.z += static_cast<float>(rng.uniform(-jitter, jitter));
        sys.x.push_back(sys.box.wrap(p));
        // 40/40/20 W+/W-/E mixture; alternate charges for neutrality.
        const std::uint64_t pick = rng.next_below(5);
        const int t = pick < 2 ? 0 : (pick < 4 ? 1 : 2);
        sys.type.push_back(t);
        // Maxwell-Boltzmann velocities at the requested temperature.
        const double m = types[static_cast<std::size_t>(t)].mass;
        const float s = static_cast<float>(std::sqrt(kBoltzmann * spec.temperature / m));
        sys.v.push_back(Vec3{s * static_cast<float>(rng.normal()),
                             s * static_cast<float>(rng.normal()),
                             s * static_cast<float>(rng.normal())});
      }
    }
  }

  // Exact charge neutrality: flip W types until the W+/W- counts balance.
  long wp = 0, wm = 0;
  for (int t : sys.type) {
    wp += t == 0;
    wm += t == 1;
  }
  for (std::size_t i = 0; i < sys.type.size() && wp != wm; ++i) {
    if (wp > wm && sys.type[i] == 0) {
      sys.type[i] = 1;
      --wp;
      ++wm;
    } else if (wm > wp && sys.type[i] == 1) {
      sys.type[i] = 0;
      ++wp;
      --wm;
    }
  }

  // Remove net momentum so the system does not drift.
  double px = 0, py = 0, pz = 0, mass_total = 0;
  for (int i = 0; i < sys.natoms(); ++i) {
    const double m = types[static_cast<std::size_t>(sys.type[static_cast<std::size_t>(i)])].mass;
    px += m * sys.v[static_cast<std::size_t>(i)].x;
    py += m * sys.v[static_cast<std::size_t>(i)].y;
    pz += m * sys.v[static_cast<std::size_t>(i)].z;
    mass_total += m;
  }
  const Vec3 vcm{static_cast<float>(px / mass_total),
                 static_cast<float>(py / mass_total),
                 static_cast<float>(pz / mass_total)};
  for (auto& v : sys.v) v -= vcm;

  sys.sync_soa();
  return sys;
}

double total_charge(const System& sys, const ForceField& ff) {
  double q = 0.0;
  for (int t : sys.type) q += ff.type(t).charge;
  return q;
}

double kinetic_energy(const System& sys, const ForceField& ff) {
  double ke = 0.0;
  for (int i = 0; i < sys.natoms(); ++i) {
    const auto& v = sys.v[static_cast<std::size_t>(i)];
    ke += 0.5 * ff.type(sys.type[static_cast<std::size_t>(i)]).mass *
          static_cast<double>(norm2(v));
  }
  return ke;
}

double temperature(const System& sys, const ForceField& ff) {
  const int ndof = 3 * sys.natoms() - 3;
  if (ndof <= 0) return 0.0;
  return 2.0 * kinetic_energy(sys, ff) / (ndof * kBoltzmann);
}

}  // namespace hs::md
