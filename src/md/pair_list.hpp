// Verlet pair list with buffer and rolling prune.
//
// GROMACS semantics reproduced here:
//  * the list is built with radius rlist = cutoff + buffer and reused for
//    nstlist steps;
//  * "dynamic / rolling pruning" (§5.4) periodically drops pairs that have
//    drifted beyond an inner radius, keeping the working list short between
//    full rebuilds.
//
// Lists come in two flavours for domain decomposition:
//  * local:     i < j, both in the home range [0, n_home);
//  * non-local: pairs with at least one halo atom (j or both in
//    [n_home, n_total)). Halo-halo pairs arise in multi-dimensional
//    decompositions: a pair crossing (+y, -x) diagonally is visible to
//    neither endpoint's rank; the eighth-shell method assigns it to the
//    rank owning the component-wise minimum corner of the pair, which
//    holds one atom in its x-halo and the other in its y-halo. The
//    ZoneFilter implements that corner-ownership predicate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "md/box.hpp"
#include "md/cell_list.hpp"

namespace hs::md {

struct Pair {
  std::int32_t i;
  std::int32_t j;
};

/// Eighth-shell pair assignment: a pair is computed by the rank whose
/// domain contains the component-wise minimum corner of the two (stored,
/// image-shifted) positions. Stored coordinates in decomposed dimensions
/// always lie in [lo_d, hi_d + comm_cutoff), so the corner is at or above
/// lo_d automatically; only the upper bound needs checking.
struct ZoneFilter {
  float hi[3] = {0, 0, 0};
  bool decomposed[3] = {false, false, false};

  bool corner_is_mine(const Vec3& a, const Vec3& b) const {
    for (int d = 0; d < 3; ++d) {
      if (!decomposed[d]) continue;
      if (std::min(a[d], b[d]) >= hi[d]) return false;
    }
    return true;
  }
};

class PairList {
 public:
  PairList() = default;

  std::span<const Pair> pairs() const { return pairs_; }
  std::size_t size() const { return pairs_.size(); }
  double rlist() const { return rlist_; }

  /// Build the local list: all pairs (i < j) within rlist among
  /// positions[0 .. n_home).
  void build_local(const Box& box, std::span<const Vec3> positions, int n_home,
                   double rlist);

  /// Build the non-local list: pairs within rlist with at least one halo
  /// atom. Without a filter only home-halo pairs are listed (sufficient for
  /// 1D decompositions and unit tests); with a ZoneFilter, halo-halo pairs
  /// whose minimum corner falls in this rank's domain are included too —
  /// required for exactly-once coverage in 2D/3D decompositions.
  void build_nonlocal(const Box& box, std::span<const Vec3> positions,
                      int n_home, double rlist,
                      const ZoneFilter* filter = nullptr);

  /// Rolling prune: drop pairs currently beyond r_prune (<= rlist).
  /// Returns the number of pairs removed.
  std::size_t prune(const Box& box, std::span<const Vec3> positions,
                    double r_prune);

  /// Drop the build-time cell grid while keeping the pair set (snapshot
  /// compaction — see ClusterPairList::release_build_scratch). The next
  /// build re-creates it.
  void release_build_scratch() { cells_ = CellList{}; }

 private:
  void clear_build(double rlist);

  CellList cells_;       // reused across builds (home / halo binning)
  std::vector<Pair> pairs_;
  double rlist_ = 0.0;
};

}  // namespace hs::md
