// Minimal 3-vector used for coordinates, velocities, and forces.
// Mixed precision mirrors GROMACS: storage is float, pairwise arithmetic
// that decides interactions is done in double (see nonbonded.cpp).
#pragma once

#include <cmath>

namespace hs::md {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  void set(int i, float v) {
    if (i == 0) x = v;
    else if (i == 1) y = v;
    else z = v;
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, float s) { return a *= s; }
constexpr Vec3 operator*(float s, Vec3 a) { return a *= s; }

constexpr float dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
constexpr float norm2(const Vec3& a) { return dot(a, a); }
inline float norm(const Vec3& a) { return std::sqrt(norm2(a)); }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

}  // namespace hs::md
