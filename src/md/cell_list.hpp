// Uniform-grid cell list for O(N) neighbour searching under PBC.
#pragma once

#include <span>
#include <vector>

#include "md/box.hpp"

namespace hs::md {

class CellList {
 public:
  /// Cells are at least `min_cell_size` wide so a radius-r query with
  /// r <= min_cell_size only needs the 27-cell stencil.
  CellList(const Box& box, double min_cell_size);

  /// Bin the given positions (wrapped into the box for binning; indices
  /// refer to the input span).
  void build(std::span<const Vec3> positions);

  int cells_per_dim(int d) const { return dims_[d]; }
  int num_cells() const { return dims_[0] * dims_[1] * dims_[2]; }

  /// Invoke fn(j) for every binned atom in the 27-cell stencil around
  /// position p (includes p's own cell; caller filters distances/self).
  template <typename Fn>
  void for_each_candidate(const Vec3& p, Fn&& fn) const {
    const Vec3 w = box_.wrap(p);
    int c[3];
    cell_of(w, c);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const int cx = mod(c[0] + dx, dims_[0]);
          const int cy = mod(c[1] + dy, dims_[1]);
          const int cz = mod(c[2] + dz, dims_[2]);
          // With fewer than 3 cells per dim the stencil wraps onto the same
          // cell more than once; visit each distinct cell exactly once.
          if ((dims_[0] == 1 && dx != 0) || (dims_[0] == 2 && dx == 1)) continue;
          if ((dims_[1] == 1 && dy != 0) || (dims_[1] == 2 && dy == 1)) continue;
          if ((dims_[2] == 1 && dz != 0) || (dims_[2] == 2 && dz == 1)) continue;
          const int cell = (cx * dims_[1] + cy) * dims_[2] + cz;
          for (int k = heads_[static_cast<std::size_t>(cell)]; k >= 0;
               k = next_[static_cast<std::size_t>(k)]) {
            fn(k);
          }
        }
      }
    }
  }

 private:
  static int mod(int a, int n) { return ((a % n) + n) % n; }
  void cell_of(const Vec3& wrapped, int out[3]) const;

  Box box_;
  int dims_[3];
  std::vector<int> heads_;  // per cell: first atom index or -1
  std::vector<int> next_;   // per atom: next atom in the same cell or -1
};

}  // namespace hs::md
