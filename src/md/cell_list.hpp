// Uniform-grid cell list for O(N) neighbour searching under PBC.
//
// The object is reusable: `reset()` + `build()` recycle the bin storage
// from the previous build (PairList / ClusterPairList keep CellList
// members alive across rebuilds, so steady-state list builds allocate
// nothing once the vectors have reached their high-water mark).
#pragma once

#include <span>
#include <vector>

#include "md/box.hpp"

namespace hs::md {

class CellList {
 public:
  CellList() = default;

  /// Cells are at least `min_cell_size` wide so a radius-r query with
  /// r <= min_cell_size only needs the 27-cell stencil.
  CellList(const Box& box, double min_cell_size) { reset(box, min_cell_size); }

  /// Re-dimension for a (possibly different) box / cell size, recycling
  /// the per-cell storage of the previous build.
  void reset(const Box& box, double min_cell_size);

  /// Bin the given positions (wrapped into the box for binning; indices
  /// refer to the input span).
  void build(std::span<const Vec3> positions);

  int cells_per_dim(int d) const { return dims_[d]; }
  int num_cells() const { return dims_[0] * dims_[1] * dims_[2]; }

  /// Flat cell index a position bins into.
  int cell_index(const Vec3& p) const {
    const Vec3 w = box_.wrap(p);
    int c[3];
    cell_of(w, c);
    return (c[0] * dims_[1] + c[1]) * dims_[2] + c[2];
  }

  /// First binned atom of a cell (-1 when empty) / next atom in the same
  /// cell (-1 at the end) — the classic linked-cell chain.
  int head(int cell) const { return heads_[static_cast<std::size_t>(cell)]; }
  int next(int atom) const { return next_[static_cast<std::size_t>(atom)]; }

  /// Invoke fn(cell) for every distinct cell of the 27-cell stencil
  /// around `cell` (includes `cell` itself). With fewer than 3 cells per
  /// dim the stencil wraps onto the same cell more than once; each
  /// distinct cell is visited exactly once.
  template <typename Fn>
  void for_each_stencil_cell(int cell, Fn&& fn) const {
    int c[3];
    c[0] = cell / (dims_[1] * dims_[2]);
    c[1] = (cell / dims_[2]) % dims_[1];
    c[2] = cell % dims_[2];
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          if ((dims_[0] == 1 && dx != 0) || (dims_[0] == 2 && dx == 1)) continue;
          if ((dims_[1] == 1 && dy != 0) || (dims_[1] == 2 && dy == 1)) continue;
          if ((dims_[2] == 1 && dz != 0) || (dims_[2] == 2 && dz == 1)) continue;
          const int cx = mod(c[0] + dx, dims_[0]);
          const int cy = mod(c[1] + dy, dims_[1]);
          const int cz = mod(c[2] + dz, dims_[2]);
          fn((cx * dims_[1] + cy) * dims_[2] + cz);
        }
      }
    }
  }

  /// Invoke fn(j) for every binned atom in the 27-cell stencil around
  /// position p (includes p's own cell; caller filters distances/self).
  template <typename Fn>
  void for_each_candidate(const Vec3& p, Fn&& fn) const {
    for_each_stencil_cell(cell_index(p), [&](int cell) {
      for (int k = heads_[static_cast<std::size_t>(cell)]; k >= 0;
           k = next_[static_cast<std::size_t>(k)]) {
        fn(k);
      }
    });
  }

 private:
  static int mod(int a, int n) { return ((a % n) + n) % n; }
  void cell_of(const Vec3& wrapped, int out[3]) const;

  Box box_;
  int dims_[3] = {1, 1, 1};
  std::vector<int> heads_;  // per cell: first atom index or -1
  std::vector<int> next_;   // per atom: next atom in the same cell or -1
};

}  // namespace hs::md
