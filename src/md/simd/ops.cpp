#include "md/simd/ops.hpp"

#include <cassert>

#include "md/simd/kernels.hpp"

namespace hs::md::simd {

// The SIMD shims reinterpret Vec3 arrays as flat float streams.
static_assert(sizeof(Vec3) == 3 * sizeof(float),
              "Vec3 must be three packed floats");

void pack_shifted(std::span<const Vec3> x, std::span<const int> idx,
                  std::size_t first, std::size_t count, Vec3 shift, Vec3* out,
                  KernelIsa isa) {
  assert(first + count <= idx.size());
  const int* ip = idx.data() + first;
#if defined(HALOSIM_BUILD_AVX2)
  if (isa >= KernelIsa::Avx2 && count != 0) {
    pack_shifted_avx2(x.data(), ip, count, shift, out);
    return;
  }
#endif
  (void)isa;
  for (std::size_t k = 0; k < count; ++k) {
    out[k] = x[static_cast<std::size_t>(ip[k])] + shift;
  }
}

void unpack_accumulate(std::span<Vec3> f, std::span<const int> idx,
                       std::span<const Vec3> in, KernelIsa isa) {
  assert(in.size() <= idx.size());
#if defined(HALOSIM_BUILD_AVX512)
  if (isa >= KernelIsa::Avx512 && !in.empty()) {
    unpack_accumulate_avx512(f.data(), idx.data(), in.data(), in.size());
    return;
  }
#endif
  (void)isa;
  for (std::size_t k = 0; k < in.size(); ++k) {
    f[static_cast<std::size_t>(idx[k])] += in[k];
  }
}

void accumulate(std::span<Vec3> dst, std::span<const Vec3> src,
                KernelIsa isa) {
  assert(src.size() <= dst.size());
#if defined(HALOSIM_BUILD_AVX2)
  if (isa >= KernelIsa::Avx2 && !src.empty()) {
    accumulate_avx2(dst.data(), src.data(), src.size());
    return;
  }
#endif
  (void)isa;
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}

void pack_shifted(std::span<const Vec3> x, std::span<const int> idx,
                  std::size_t first, std::size_t count, Vec3 shift,
                  Vec3* out) {
  pack_shifted(x, idx, first, count, shift, out, active_isa());
}

void unpack_accumulate(std::span<Vec3> f, std::span<const int> idx,
                       std::span<const Vec3> in) {
  unpack_accumulate(f, idx, in, active_isa());
}

void accumulate(std::span<Vec3> dst, std::span<const Vec3> src) {
  accumulate(dst, src, active_isa());
}

}  // namespace hs::md::simd
