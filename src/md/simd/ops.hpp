// ISA-dispatched elementwise bulk operations shared by the per-step hot
// loops outside the cluster kernel: halo pack/unpack index gathers and
// the local-force reduction. All three do exactly the scalar arithmetic
// per element, so every ISA produces bit-identical results — safe to
// dispatch unconditionally (unlike the reduction-order-sensitive cluster
// and integrator kernels).
#pragma once

#include <cstdint>
#include <span>

#include "md/simd/isa.hpp"
#include "md/vec3.hpp"

namespace hs::md::simd {

/// out[k] = x[idx[first + k]] + shift for k in [0, count) — the halo
/// send-buffer pack gather (sub-range form for chunked packs).
void pack_shifted(std::span<const Vec3> x, std::span<const int> idx,
                  std::size_t first, std::size_t count, Vec3 shift, Vec3* out,
                  KernelIsa isa);

/// f[idx[k]] += in[k] — the halo receive-side force accumulation.
/// Indices must be unique (halo index maps are ascending unique).
void unpack_accumulate(std::span<Vec3> f, std::span<const int> idx,
                       std::span<const Vec3> in, KernelIsa isa);

/// dst[i] += src[i] over src.size() elements — force reduction.
void accumulate(std::span<Vec3> dst, std::span<const Vec3> src, KernelIsa isa);

/// active_isa() conveniences for call sites without a resolved choice.
void pack_shifted(std::span<const Vec3> x, std::span<const int> idx,
                  std::size_t first, std::size_t count, Vec3 shift, Vec3* out);
void unpack_accumulate(std::span<Vec3> f, std::span<const int> idx,
                       std::span<const Vec3> in);
void accumulate(std::span<Vec3> dst, std::span<const Vec3> src);

}  // namespace hs::md::simd
