// AVX2+FMA lane blocks (compiled with -mavx2 -mfma; see src/md/CMakeLists).
//
// Cluster nonbonded runs the 4x8 geometry: one 256-bit register holds a
// whole j-cluster pair, so each i row evaluates 8 pairs per iteration
// with the same branch-free masking scheme as the SSE2 4x4 kernel
// (cutoff select + stored mask bit -> {0,1} weight, safe denominator).
// Type-pair parameters come from the flat table via 32-bit gathers
// (index tj*3 against the row base — the table is tiny and L1-resident,
// the gather replaces 8 scalar struct loads + inserts per row).
//
// The elementwise kernels (pack, reduce, SoA shims) do exactly the
// scalar arithmetic on 8 lanes, so they are bit-identical to the scalar
// fallbacks at any n; the SoA<->AoS layout change uses the standard
// 3x8 permute/blend transpose (two immediate blends per output register
// around one cross-lane permute each).
#include "md/simd/kernels.hpp"

#if defined(HALOSIM_BUILD_AVX2)

#include <immintrin.h>

#include <cmath>

namespace hs::md::simd {

namespace {
constexpr int kC = ClusterPairList::kClusterSize;

inline float hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// SoA (x,y,z) -> AoS transpose permute indices: each output register is
// one cross-lane permute per source, blended by immediate masks (the x
// components land at stream positions 0,3,6,..., so each output register
// takes 3 (or 2) components from each source).
inline __m256i perm_a() { return _mm256_setr_epi32(0, 0, 0, 1, 1, 1, 2, 2); }
inline __m256i perm_b() { return _mm256_setr_epi32(2, 3, 3, 3, 4, 4, 4, 5); }
inline __m256i perm_c() { return _mm256_setr_epi32(5, 5, 6, 6, 6, 7, 7, 7); }

/// Interleave 8 lanes of (x, y, z) into 24 contiguous floats at `out`.
inline void store_aos8(float* out, __m256 x, __m256 y, __m256 z) {
  const __m256 xa = _mm256_permutevar8x32_ps(x, perm_a());
  const __m256 ya = _mm256_permutevar8x32_ps(y, perm_a());
  const __m256 za = _mm256_permutevar8x32_ps(z, perm_a());
  // out0 = x0 y0 z0 x1 y1 z1 x2 y2 : y at lanes 1,4,7; z at lanes 2,5.
  __m256 o0 = _mm256_blend_ps(xa, ya, 0b10010010);
  o0 = _mm256_blend_ps(o0, za, 0b00100100);

  const __m256 xb = _mm256_permutevar8x32_ps(x, perm_b());
  const __m256 yb = _mm256_permutevar8x32_ps(y, perm_b());
  const __m256 zb = _mm256_permutevar8x32_ps(z, perm_b());
  // out1 = z2 x3 y3 z3 x4 y4 z4 x5 : x at lanes 1,4,7; y at lanes 2,5.
  __m256 o1 = _mm256_blend_ps(zb, xb, 0b10010010);
  o1 = _mm256_blend_ps(o1, yb, 0b00100100);

  const __m256 xc = _mm256_permutevar8x32_ps(x, perm_c());
  const __m256 yc = _mm256_permutevar8x32_ps(y, perm_c());
  const __m256 zc = _mm256_permutevar8x32_ps(z, perm_c());
  // out2 = y5 z5 x6 y6 z6 x7 y7 z7 : z at lanes 1,4,7; x at lanes 2,5.
  __m256 o2 = _mm256_blend_ps(yc, zc, 0b10010010);
  o2 = _mm256_blend_ps(o2, xc, 0b00100100);

  _mm256_storeu_ps(out, o0);
  _mm256_storeu_ps(out + 8, o1);
  _mm256_storeu_ps(out + 16, o2);
}

/// Linear AoS stride-3 gather indices for one 8-lane block.
inline __m256i lin3() { return _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21); }

}  // namespace

Energies cluster_kernel_avx2(const Box& box, const NbParamTable& params,
                             const ClusterPairList& list, NbWorkspace& ws) {
  Energies e;
  const float lx = box.length(0), ly = box.length(1), lz = box.length(2);
  const float hlx = 0.5f * lx, hly = 0.5f * ly, hlz = 0.5f * lz;
  double e_lj = 0.0, e_coul = 0.0;
  const std::span<const ClusterPairList::JEntry8> jents = list.j_entries8();
  const float* tbl = params.flat();
  const int ntypes3 = params.num_types() * 3;

  const __m256 lxv = _mm256_set1_ps(lx), lyv = _mm256_set1_ps(ly),
               lzv = _mm256_set1_ps(lz);
  const __m256 hlxv = _mm256_set1_ps(hlx), hlyv = _mm256_set1_ps(hly),
               hlzv = _mm256_set1_ps(hlz);
  const __m256 nhlxv = _mm256_set1_ps(-hlx), nhlyv = _mm256_set1_ps(-hly),
               nhlzv = _mm256_set1_ps(-hlz);
  const __m256 rc2v = _mm256_set1_ps(params.cutoff2());
  const __m256 onev = _mm256_set1_ps(1.0f);
  const __m256 krfv = _mm256_set1_ps(params.krf());
  const __m256 crfv = _mm256_set1_ps(params.crf());
  const __m256 two_krfv = _mm256_set1_ps(2.0f * params.krf());
  const __m256 twelvev = _mm256_set1_ps(12.0f), sixv = _mm256_set1_ps(6.0f);
  const __m256 zerov = _mm256_setzero_ps();
  // Row-mask expansion without a LUT: broadcast the mask byte, AND with
  // the per-lane bit, compare-equal -> all-ones lanes, AND with 1.0f.
  const __m256i bitsv = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);

  for (const ClusterPairList::IEntry& ie : list.i_entries8()) {
    const std::size_t ib = static_cast<std::size_t>(ie.ci) * kC;
    float xi[kC], yi[kC], zi[kC];
    int ti[kC];
    for (int s = 0; s < kC; ++s) {
      xi[s] = ws.xc.x[ib + s];
      yi[s] = ws.xc.y[ib + s];
      zi[s] = ws.xc.z[ib + s];
      ti[s] = ws.tc[ib + s];
    }
    __m256 fixv[kC], fiyv[kC], fizv[kC];
    for (int s = 0; s < kC; ++s) fixv[s] = fiyv[s] = fizv[s] = zerov;
    __m256 eljv = zerov, ecoulv = zerov;

    for (std::int32_t en = ie.j_begin; en < ie.j_end; ++en) {
      const ClusterPairList::JEntry8& je =
          jents[static_cast<std::size_t>(en)];
      const std::size_t jb = static_cast<std::size_t>(je.cj8) * 2 * kC;
      const __m256 xjv = _mm256_loadu_ps(ws.xc.x.data() + jb);
      const __m256 yjv = _mm256_loadu_ps(ws.xc.y.data() + jb);
      const __m256 zjv = _mm256_loadu_ps(ws.xc.z.data() + jb);
      const __m256i tj = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ws.tc.data() + jb));
      const __m256i tj3 = _mm256_add_epi32(_mm256_add_epi32(tj, tj), tj);
      __m256 fjxv = zerov, fjyv = zerov, fjzv = zerov;

      // Consecutive i slots usually share a type: memoize the gathered
      // parameter row.
      int cached_ti = -1;
      __m256 c6 = zerov, c12 = zerov, qq = zerov;

      for (int ii = 0; ii < kC; ++ii) {
        const unsigned row = (je.mask >> (ii * 2 * kC)) & 0xFFu;
        if (row == 0) continue;
        if (ti[ii] != cached_ti) {
          cached_ti = ti[ii];
          const float* rbase = tbl + cached_ti * ntypes3;
          c6 = _mm256_i32gather_ps(rbase, tj3, 4);
          c12 = _mm256_i32gather_ps(rbase + 1, tj3, 4);
          qq = _mm256_i32gather_ps(rbase + 2, tj3, 4);
        }
        const __m256i rowv = _mm256_set1_epi32(static_cast<int>(row));
        const __m256 wmv = _mm256_and_ps(
            _mm256_castsi256_ps(
                _mm256_cmpeq_epi32(_mm256_and_si256(rowv, bitsv), bitsv)),
            onev);

        __m256 dx = _mm256_sub_ps(_mm256_set1_ps(xi[ii]), xjv);
        __m256 dy = _mm256_sub_ps(_mm256_set1_ps(yi[ii]), yjv);
        __m256 dz = _mm256_sub_ps(_mm256_set1_ps(zi[ii]), zjv);
        dx = _mm256_add_ps(
            dx, _mm256_and_ps(_mm256_cmp_ps(dx, nhlxv, _CMP_LT_OQ), lxv));
        dx = _mm256_sub_ps(
            dx, _mm256_and_ps(_mm256_cmp_ps(dx, hlxv, _CMP_GT_OQ), lxv));
        dy = _mm256_add_ps(
            dy, _mm256_and_ps(_mm256_cmp_ps(dy, nhlyv, _CMP_LT_OQ), lyv));
        dy = _mm256_sub_ps(
            dy, _mm256_and_ps(_mm256_cmp_ps(dy, hlyv, _CMP_GT_OQ), lyv));
        dz = _mm256_add_ps(
            dz, _mm256_and_ps(_mm256_cmp_ps(dz, nhlzv, _CMP_LT_OQ), lzv));
        dz = _mm256_sub_ps(
            dz, _mm256_and_ps(_mm256_cmp_ps(dz, hlzv, _CMP_GT_OQ), lzv));
        const __m256 r2 = _mm256_fmadd_ps(
            dx, dx, _mm256_fmadd_ps(dy, dy, _mm256_mul_ps(dz, dz)));

        const __m256 in =
            _mm256_and_ps(_mm256_cmp_ps(r2, rc2v, _CMP_LE_OQ),
                          _mm256_cmp_ps(r2, zerov, _CMP_NEQ_OQ));
        const __m256 w = _mm256_and_ps(in, wmv);
        const __m256 r2s = _mm256_blendv_ps(onev, r2, in);

        const __m256 rinv2 = _mm256_div_ps(onev, r2s);
        const __m256 rinv6 =
            _mm256_mul_ps(_mm256_mul_ps(rinv2, rinv2), rinv2);
        const __m256 rinv = _mm256_sqrt_ps(rinv2);
        const __m256 rinv12 = _mm256_mul_ps(rinv6, rinv6);
        const __m256 elj =
            _mm256_fmsub_ps(c12, rinv12, _mm256_mul_ps(c6, rinv6));
        const __m256 flj = _mm256_mul_ps(
            _mm256_sub_ps(
                _mm256_mul_ps(twelvev, _mm256_mul_ps(c12, rinv12)),
                _mm256_mul_ps(sixv, _mm256_mul_ps(c6, rinv6))),
            rinv2);
        const __m256 vqq = _mm256_mul_ps(
            qq,
            _mm256_sub_ps(_mm256_add_ps(rinv, _mm256_mul_ps(krfv, r2s)),
                          crfv));
        const __m256 fqq =
            _mm256_mul_ps(qq, _mm256_fmsub_ps(rinv, rinv2, two_krfv));
        const __m256 fscale = _mm256_mul_ps(w, _mm256_add_ps(flj, fqq));

        const __m256 fxv = _mm256_mul_ps(fscale, dx);
        const __m256 fyv = _mm256_mul_ps(fscale, dy);
        const __m256 fzv = _mm256_mul_ps(fscale, dz);
        fixv[ii] = _mm256_add_ps(fixv[ii], fxv);
        fiyv[ii] = _mm256_add_ps(fiyv[ii], fyv);
        fizv[ii] = _mm256_add_ps(fizv[ii], fzv);
        fjxv = _mm256_sub_ps(fjxv, fxv);
        fjyv = _mm256_sub_ps(fjyv, fyv);
        fjzv = _mm256_sub_ps(fjzv, fzv);
        eljv = _mm256_fmadd_ps(w, elj, eljv);
        ecoulv = _mm256_fmadd_ps(w, vqq, ecoulv);
      }

      float* fcx = ws.fc.x.data() + jb;
      float* fcy = ws.fc.y.data() + jb;
      float* fcz = ws.fc.z.data() + jb;
      _mm256_storeu_ps(fcx, _mm256_add_ps(_mm256_loadu_ps(fcx), fjxv));
      _mm256_storeu_ps(fcy, _mm256_add_ps(_mm256_loadu_ps(fcy), fjyv));
      _mm256_storeu_ps(fcz, _mm256_add_ps(_mm256_loadu_ps(fcz), fjzv));
    }

    for (int s = 0; s < kC; ++s) {
      ws.fc.x[ib + s] += hsum8(fixv[s]);
      ws.fc.y[ib + s] += hsum8(fiyv[s]);
      ws.fc.z[ib + s] += hsum8(fizv[s]);
    }
    e_lj += static_cast<double>(hsum8(eljv));
    e_coul += static_cast<double>(hsum8(ecoulv));
  }
  e.lj = e_lj;
  e.coulomb = e_coul;
  return e;
}

void pack_shifted_avx2(const Vec3* x, const std::int32_t* idx,
                       std::size_t count, Vec3 shift, Vec3* out) {
  const float* base = &x->x;
  float* o = &out->x;
  const __m256 sx = _mm256_set1_ps(shift.x);
  const __m256 sy = _mm256_set1_ps(shift.y);
  const __m256 sz = _mm256_set1_ps(shift.z);
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8, o += 24) {
    const __m256i iv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + k));
    const __m256i i3 = _mm256_add_epi32(_mm256_add_epi32(iv, iv), iv);
    const __m256 gx = _mm256_add_ps(_mm256_i32gather_ps(base, i3, 4), sx);
    const __m256 gy = _mm256_add_ps(_mm256_i32gather_ps(base + 1, i3, 4), sy);
    const __m256 gz = _mm256_add_ps(_mm256_i32gather_ps(base + 2, i3, 4), sz);
    store_aos8(o, gx, gy, gz);
  }
  for (; k < count; ++k) {
    out[k] = x[static_cast<std::size_t>(idx[k])] + shift;
  }
}

void accumulate_avx2(Vec3* dst, const Vec3* src, std::size_t n) {
  float* d = &dst->x;
  const float* s = &src->x;
  const std::size_t total = n * 3;
  std::size_t k = 0;
  for (; k + 8 <= total; k += 8) {
    _mm256_storeu_ps(
        d + k, _mm256_add_ps(_mm256_loadu_ps(d + k), _mm256_loadu_ps(s + k)));
  }
  for (; k < total; ++k) d[k] += s[k];
}

void soa_gather_avx2(const Vec3* src, std::size_t n, float* x, float* y,
                     float* z) {
  const float* p = &src->x;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8, p += 24) {
    _mm256_storeu_ps(x + k, _mm256_i32gather_ps(p, lin3(), 4));
    _mm256_storeu_ps(y + k, _mm256_i32gather_ps(p + 1, lin3(), 4));
    _mm256_storeu_ps(z + k, _mm256_i32gather_ps(p + 2, lin3(), 4));
  }
  for (; k < n; ++k) {
    x[k] = src[k].x;
    y[k] = src[k].y;
    z[k] = src[k].z;
  }
}

void soa_gather_indexed_avx2(const Vec3* src, const std::int32_t* idx,
                             std::size_t n, float* x, float* y, float* z) {
  const float* base = &src->x;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i iv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + k));
    const __m256i i3 = _mm256_add_epi32(_mm256_add_epi32(iv, iv), iv);
    _mm256_storeu_ps(x + k, _mm256_i32gather_ps(base, i3, 4));
    _mm256_storeu_ps(y + k, _mm256_i32gather_ps(base + 1, i3, 4));
    _mm256_storeu_ps(z + k, _mm256_i32gather_ps(base + 2, i3, 4));
  }
  for (; k < n; ++k) {
    const Vec3& v = src[static_cast<std::size_t>(idx[k])];
    x[k] = v.x;
    y[k] = v.y;
    z[k] = v.z;
  }
}

void soa_scatter_avx2(const float* x, const float* y, const float* z,
                      std::size_t n, Vec3* dst) {
  float* o = &dst->x;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8, o += 24) {
    store_aos8(o, _mm256_loadu_ps(x + k), _mm256_loadu_ps(y + k),
               _mm256_loadu_ps(z + k));
  }
  for (; k < n; ++k) {
    dst[k] = Vec3{x[k], y[k], z[k]};
  }
}

void integrate_avx2(const std::int32_t* types, const Vec3* f, Vec3* v,
                    Vec3* x, std::size_t n, const float* inv_m_dt, float dt,
                    float lx, float ly, float lz) {
  const float* fp = &f->x;
  float* vp = &v->x;
  float* xp = &x->x;
  const __m256 dtv = _mm256_set1_ps(dt);
  const __m256 zerov = _mm256_setzero_ps();
  // Component-interleaved box lengths for the three registers of an
  // 8-atom block (positions 0..23 cycle x,y,z).
  const __m256 l0 = _mm256_setr_ps(lx, ly, lz, lx, ly, lz, lx, ly);
  const __m256 l1 = _mm256_setr_ps(lz, lx, ly, lz, lx, ly, lz, lx);
  const __m256 l2 = _mm256_setr_ps(ly, lz, lx, ly, lz, lx, ly, lz);
  const __m256 ls[3] = {l0, l1, l2};
  const __m256i perms[3] = {perm_a(), perm_b(), perm_c()};

  std::size_t k = 0;
  for (; k + 8 <= n; k += 8, fp += 24, vp += 24, xp += 24) {
    const __m256i tv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(types + k));
    const __m256 imdt = _mm256_i32gather_ps(inv_m_dt, tv, 4);
    for (int r = 0; r < 3; ++r) {
      const __m256 imr = _mm256_permutevar8x32_ps(imdt, perms[r]);
      const __m256 fv = _mm256_loadu_ps(fp + 8 * r);
      const __m256 vv = _mm256_loadu_ps(vp + 8 * r);
      const __m256 xv = _mm256_loadu_ps(xp + 8 * r);
      const __m256 vn = _mm256_fmadd_ps(fv, imr, vv);
      __m256 xn = _mm256_fmadd_ps(vn, dtv, xv);
      // Box::wrap, vectorized: w = x - l*floor(x/l); w >= l -> 0.
      const __m256 q = _mm256_floor_ps(_mm256_div_ps(xn, ls[r]));
      xn = _mm256_fnmadd_ps(q, ls[r], xn);
      xn = _mm256_blendv_ps(xn, zerov,
                            _mm256_cmp_ps(xn, ls[r], _CMP_GE_OQ));
      _mm256_storeu_ps(vp + 8 * r, vn);
      _mm256_storeu_ps(xp + 8 * r, xn);
    }
  }
  const float lbox[3] = {lx, ly, lz};
  for (; k < n; ++k) {
    const float imdt = inv_m_dt[types[k]];
    for (int d = 0; d < 3; ++d) {
      const float vn = std::fmaf((&f[k].x)[d], imdt, (&v[k].x)[d]);
      float xn = std::fmaf(vn, dt, (&x[k].x)[d]);
      xn = xn - lbox[d] * std::floor(xn / lbox[d]);
      if (xn >= lbox[d]) xn = 0.0f;
      (&v[k].x)[d] = vn;
      (&x[k].x)[d] = xn;
    }
  }
}

}  // namespace hs::md::simd

#endif  // HALOSIM_BUILD_AVX2
