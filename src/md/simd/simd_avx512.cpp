// AVX-512 lane blocks (compiled with -mavx512f/bw/dq/vl -mfma).
//
// Cluster nonbonded keeps the 4x8 geometry but packs two i rows per
// 512-bit register: the j-cluster pair is broadcast to both 256-bit
// halves, each half evaluating a different i slot. The 32-bit wide mask
// maps directly onto __mmask16 per row pair (rows 2r, 2r+1 occupy bits
// [16r, 16r+16)), so masking costs one kmov instead of a broadcast/
// compare sequence, and excluded lanes are zeroed with maskz moves.
//
// The scatter-capable unpack/scatter-add kernels live here too: 256-bit
// masked gathers + scatters (VL) accumulate force contributions through
// an index map without the scalar read-modify-write chain. Indices must
// be unique within the map — halo index maps and cluster slot maps are.
#include "md/simd/kernels.hpp"

#if defined(HALOSIM_BUILD_AVX512)

#include <immintrin.h>

namespace hs::md::simd {

namespace {
constexpr int kC = ClusterPairList::kClusterSize;

inline float hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}
}  // namespace

Energies cluster_kernel_avx512(const Box& box, const NbParamTable& params,
                               const ClusterPairList& list, NbWorkspace& ws) {
  Energies e;
  const float lx = box.length(0), ly = box.length(1), lz = box.length(2);
  const float hlx = 0.5f * lx, hly = 0.5f * ly, hlz = 0.5f * lz;
  double e_lj = 0.0, e_coul = 0.0;
  const std::span<const ClusterPairList::JEntry8> jents = list.j_entries8();
  const float* tbl = params.flat();
  const int ntypes3 = params.num_types() * 3;

  const __m512 lxv = _mm512_set1_ps(lx), lyv = _mm512_set1_ps(ly),
               lzv = _mm512_set1_ps(lz);
  const __m512 hlxv = _mm512_set1_ps(hlx), hlyv = _mm512_set1_ps(hly),
               hlzv = _mm512_set1_ps(hlz);
  const __m512 nhlxv = _mm512_set1_ps(-hlx), nhlyv = _mm512_set1_ps(-hly),
               nhlzv = _mm512_set1_ps(-hlz);
  const __m512 rc2v = _mm512_set1_ps(params.cutoff2());
  const __m512 onev = _mm512_set1_ps(1.0f);
  const __m512 krfv = _mm512_set1_ps(params.krf());
  const __m512 crfv = _mm512_set1_ps(params.crf());
  const __m512 two_krfv = _mm512_set1_ps(2.0f * params.krf());
  const __m512 twelvev = _mm512_set1_ps(12.0f), sixv = _mm512_set1_ps(6.0f);
  const __m512 zerov = _mm512_setzero_ps();

  for (const ClusterPairList::IEntry& ie : list.i_entries8()) {
    const std::size_t ib = static_cast<std::size_t>(ie.ci) * kC;
    float xi[kC], yi[kC], zi[kC];
    int ti[kC];
    for (int s = 0; s < kC; ++s) {
      xi[s] = ws.xc.x[ib + s];
      yi[s] = ws.xc.y[ib + s];
      zi[s] = ws.xc.z[ib + s];
      ti[s] = ws.tc[ib + s];
    }
    // One 512-bit force accumulator per row pair (lo half: row 2r, hi
    // half: row 2r+1), reduced once per i entry.
    __m512 fixv[2], fiyv[2], fizv[2];
    for (int r = 0; r < 2; ++r) fixv[r] = fiyv[r] = fizv[r] = zerov;
    __m512 eljv = zerov, ecoulv = zerov;

    for (std::int32_t en = ie.j_begin; en < ie.j_end; ++en) {
      const ClusterPairList::JEntry8& je =
          jents[static_cast<std::size_t>(en)];
      const std::size_t jb = static_cast<std::size_t>(je.cj8) * 2 * kC;
      const __m512 xjv =
          _mm512_broadcast_f32x8(_mm256_loadu_ps(ws.xc.x.data() + jb));
      const __m512 yjv =
          _mm512_broadcast_f32x8(_mm256_loadu_ps(ws.xc.y.data() + jb));
      const __m512 zjv =
          _mm512_broadcast_f32x8(_mm256_loadu_ps(ws.xc.z.data() + jb));
      const __m256i tj = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ws.tc.data() + jb));
      const __m256i tj3 = _mm256_add_epi32(_mm256_add_epi32(tj, tj), tj);
      __m512 fjxv = zerov, fjyv = zerov, fjzv = zerov;

      for (int r = 0; r < 2; ++r) {
        const unsigned m16 = (je.mask >> (16 * r)) & 0xFFFFu;
        if (m16 == 0) continue;
        const __mmask16 km = static_cast<__mmask16>(m16);

        // Per-half parameter gathers: half h uses i row 2r+h's table row.
        const __m256i idx_lo =
            _mm256_add_epi32(tj3, _mm256_set1_epi32(ti[2 * r] * ntypes3));
        const __m256i idx_hi = _mm256_add_epi32(
            tj3, _mm256_set1_epi32(ti[2 * r + 1] * ntypes3));
        const __m512i idx16 = _mm512_inserti32x8(
            _mm512_castsi256_si512(idx_lo), idx_hi, 1);
        const __m512 c6 = _mm512_i32gather_ps(idx16, tbl, 4);
        const __m512 c12 = _mm512_i32gather_ps(idx16, tbl + 1, 4);
        const __m512 qq = _mm512_i32gather_ps(idx16, tbl + 2, 4);

        const __m512 xiv = _mm512_insertf32x8(
            _mm512_castps256_ps512(_mm256_set1_ps(xi[2 * r])),
            _mm256_set1_ps(xi[2 * r + 1]), 1);
        const __m512 yiv = _mm512_insertf32x8(
            _mm512_castps256_ps512(_mm256_set1_ps(yi[2 * r])),
            _mm256_set1_ps(yi[2 * r + 1]), 1);
        const __m512 ziv = _mm512_insertf32x8(
            _mm512_castps256_ps512(_mm256_set1_ps(zi[2 * r])),
            _mm256_set1_ps(zi[2 * r + 1]), 1);

        __m512 dx = _mm512_sub_ps(xiv, xjv);
        __m512 dy = _mm512_sub_ps(yiv, yjv);
        __m512 dz = _mm512_sub_ps(ziv, zjv);
        dx = _mm512_mask_add_ps(
            dx, _mm512_cmp_ps_mask(dx, nhlxv, _CMP_LT_OQ), dx, lxv);
        dx = _mm512_mask_sub_ps(
            dx, _mm512_cmp_ps_mask(dx, hlxv, _CMP_GT_OQ), dx, lxv);
        dy = _mm512_mask_add_ps(
            dy, _mm512_cmp_ps_mask(dy, nhlyv, _CMP_LT_OQ), dy, lyv);
        dy = _mm512_mask_sub_ps(
            dy, _mm512_cmp_ps_mask(dy, hlyv, _CMP_GT_OQ), dy, lyv);
        dz = _mm512_mask_add_ps(
            dz, _mm512_cmp_ps_mask(dz, nhlzv, _CMP_LT_OQ), dz, lzv);
        dz = _mm512_mask_sub_ps(
            dz, _mm512_cmp_ps_mask(dz, hlzv, _CMP_GT_OQ), dz, lzv);
        const __m512 r2 = _mm512_fmadd_ps(
            dx, dx, _mm512_fmadd_ps(dy, dy, _mm512_mul_ps(dz, dz)));

        const __mmask16 kin =
            _mm512_cmp_ps_mask(r2, rc2v, _CMP_LE_OQ) &
            _mm512_cmp_ps_mask(r2, zerov, _CMP_NEQ_OQ) & km;
        const __m512 r2s = _mm512_mask_blend_ps(kin, onev, r2);

        const __m512 rinv2 = _mm512_div_ps(onev, r2s);
        const __m512 rinv6 =
            _mm512_mul_ps(_mm512_mul_ps(rinv2, rinv2), rinv2);
        const __m512 rinv = _mm512_sqrt_ps(rinv2);
        const __m512 rinv12 = _mm512_mul_ps(rinv6, rinv6);
        const __m512 elj =
            _mm512_fmsub_ps(c12, rinv12, _mm512_mul_ps(c6, rinv6));
        const __m512 flj = _mm512_mul_ps(
            _mm512_sub_ps(
                _mm512_mul_ps(twelvev, _mm512_mul_ps(c12, rinv12)),
                _mm512_mul_ps(sixv, _mm512_mul_ps(c6, rinv6))),
            rinv2);
        const __m512 vqq = _mm512_mul_ps(
            qq,
            _mm512_sub_ps(_mm512_add_ps(rinv, _mm512_mul_ps(krfv, r2s)),
                          crfv));
        const __m512 fqq =
            _mm512_mul_ps(qq, _mm512_fmsub_ps(rinv, rinv2, two_krfv));
        const __m512 fscale =
            _mm512_maskz_mov_ps(kin, _mm512_add_ps(flj, fqq));

        const __m512 fxv = _mm512_mul_ps(fscale, dx);
        const __m512 fyv = _mm512_mul_ps(fscale, dy);
        const __m512 fzv = _mm512_mul_ps(fscale, dz);
        fixv[r] = _mm512_add_ps(fixv[r], fxv);
        fiyv[r] = _mm512_add_ps(fiyv[r], fyv);
        fizv[r] = _mm512_add_ps(fizv[r], fzv);
        fjxv = _mm512_sub_ps(fjxv, fxv);
        fjyv = _mm512_sub_ps(fjyv, fyv);
        fjzv = _mm512_sub_ps(fjzv, fzv);
        eljv = _mm512_add_ps(eljv, _mm512_maskz_mov_ps(kin, elj));
        ecoulv = _mm512_add_ps(ecoulv, _mm512_maskz_mov_ps(kin, vqq));
      }

      // Fold the two halves (rows share the same 8 j slots) and RMW.
      const __m256 fjx8 = _mm256_add_ps(_mm512_castps512_ps256(fjxv),
                                        _mm512_extractf32x8_ps(fjxv, 1));
      const __m256 fjy8 = _mm256_add_ps(_mm512_castps512_ps256(fjyv),
                                        _mm512_extractf32x8_ps(fjyv, 1));
      const __m256 fjz8 = _mm256_add_ps(_mm512_castps512_ps256(fjzv),
                                        _mm512_extractf32x8_ps(fjzv, 1));
      float* fcx = ws.fc.x.data() + jb;
      float* fcy = ws.fc.y.data() + jb;
      float* fcz = ws.fc.z.data() + jb;
      _mm256_storeu_ps(fcx, _mm256_add_ps(_mm256_loadu_ps(fcx), fjx8));
      _mm256_storeu_ps(fcy, _mm256_add_ps(_mm256_loadu_ps(fcy), fjy8));
      _mm256_storeu_ps(fcz, _mm256_add_ps(_mm256_loadu_ps(fcz), fjz8));
    }

    for (int r = 0; r < 2; ++r) {
      ws.fc.x[ib + 2 * r] += hsum8(_mm512_castps512_ps256(fixv[r]));
      ws.fc.x[ib + 2 * r + 1] += hsum8(_mm512_extractf32x8_ps(fixv[r], 1));
      ws.fc.y[ib + 2 * r] += hsum8(_mm512_castps512_ps256(fiyv[r]));
      ws.fc.y[ib + 2 * r + 1] += hsum8(_mm512_extractf32x8_ps(fiyv[r], 1));
      ws.fc.z[ib + 2 * r] += hsum8(_mm512_castps512_ps256(fizv[r]));
      ws.fc.z[ib + 2 * r + 1] += hsum8(_mm512_extractf32x8_ps(fizv[r], 1));
    }
    e_lj += static_cast<double>(
        hsum8(_mm256_add_ps(_mm512_castps512_ps256(eljv),
                            _mm512_extractf32x8_ps(eljv, 1))));
    e_coul += static_cast<double>(
        hsum8(_mm256_add_ps(_mm512_castps512_ps256(ecoulv),
                            _mm512_extractf32x8_ps(ecoulv, 1))));
  }
  e.lj = e_lj;
  e.coulomb = e_coul;
  return e;
}

void unpack_accumulate_avx512(Vec3* f, const std::int32_t* idx, const Vec3* in,
                              std::size_t count) {
  float* fbase = &f->x;
  const float* ibase = &in->x;
  const __m256i lin3 = _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21);
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8, ibase += 24) {
    const __m256i iv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + k));
    const __m256i i3 = _mm256_add_epi32(_mm256_add_epi32(iv, iv), iv);
    const __m256 sx = _mm256_add_ps(_mm256_i32gather_ps(ibase, lin3, 4),
                                    _mm256_i32gather_ps(fbase, i3, 4));
    const __m256 sy = _mm256_add_ps(_mm256_i32gather_ps(ibase + 1, lin3, 4),
                                    _mm256_i32gather_ps(fbase + 1, i3, 4));
    const __m256 sz = _mm256_add_ps(_mm256_i32gather_ps(ibase + 2, lin3, 4),
                                    _mm256_i32gather_ps(fbase + 2, i3, 4));
    _mm256_i32scatter_ps(fbase, i3, sx, 4);
    _mm256_i32scatter_ps(fbase + 1, i3, sy, 4);
    _mm256_i32scatter_ps(fbase + 2, i3, sz, 4);
  }
  for (; k < count; ++k) {
    f[static_cast<std::size_t>(idx[k])] += in[k];
  }
}

void soa_scatter_add_indexed_avx512(const float* x, const float* y,
                                    const float* z, const std::int32_t* idx,
                                    std::size_t n, Vec3* dst) {
  float* base = &dst->x;
  const __m256i neg1 = _mm256_set1_epi32(-1);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i iv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + k));
    // Pad slots carry idx = -1: mask them out of the gather and scatter
    // (masked lanes touch no memory, so the garbage offsets are inert).
    const __mmask8 km = _mm256_cmpgt_epi32_mask(iv, neg1);
    const __m256i i3 = _mm256_add_epi32(_mm256_add_epi32(iv, iv), iv);
    const __m256 zerov = _mm256_setzero_ps();
    const __m256 dx = _mm256_mmask_i32gather_ps(zerov, km, i3, base, 4);
    const __m256 dy = _mm256_mmask_i32gather_ps(zerov, km, i3, base + 1, 4);
    const __m256 dz = _mm256_mmask_i32gather_ps(zerov, km, i3, base + 2, 4);
    _mm256_mask_i32scatter_ps(base, km, i3,
                              _mm256_add_ps(dx, _mm256_loadu_ps(x + k)), 4);
    _mm256_mask_i32scatter_ps(base + 1, km, i3,
                              _mm256_add_ps(dy, _mm256_loadu_ps(y + k)), 4);
    _mm256_mask_i32scatter_ps(base + 2, km, i3,
                              _mm256_add_ps(dz, _mm256_loadu_ps(z + k)), 4);
  }
  for (; k < n; ++k) {
    if (idx[k] < 0) continue;
    dst[static_cast<std::size_t>(idx[k])] += Vec3{x[k], y[k], z[k]};
  }
}

}  // namespace hs::md::simd

#endif  // HALOSIM_BUILD_AVX512
