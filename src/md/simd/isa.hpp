// Runtime CPU dispatch for the MD fast-path kernels.
//
// One process-wide KernelIsa decides which lane-block variant of every
// per-step hot loop runs (cluster nonbonded, halo pack/unpack, leapfrog
// update, force reduction/scatter). The choice is the widest ISA that is
// both compiled in (per-TU -mavx2/-mavx512* flags, see src/md/CMakeLists)
// and reported by cpuid at startup, overridable for determinism:
//
//   HALOSIM_FORCE_ISA=scalar|sse2|avx2|avx512   (env, global)
//   RunConfig::kernel_isa                        (runner knob, MD kernels)
//
// Per-ISA cluster geometry (GROMACS nbnxm NxM scheme): 128-bit paths pair
// each 4-atom i-cluster with 4-atom j-clusters (4x4, 16-bit masks);
// 256/512-bit paths consume j clusters two at a time (4x8, 32-bit masks)
// from the lazily merged wide view of the same canonical list.
//
// Determinism contract: elementwise kernels (pack, unpack, reduce,
// gather/scatter) are bit-identical to scalar at every ISA. Reduction-
// order-sensitive kernels (cluster nonbonded, the float leapfrog path)
// engage only at Avx2/Avx512, so HALOSIM_FORCE_ISA=sse2 reproduces the
// pre-dispatch behaviour bit-exactly.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace hs::md::simd {

enum class KernelIsa { Scalar = 0, Sse2 = 1, Avx2 = 2, Avx512 = 3 };

/// Lowercase name ("scalar", "sse2", "avx2", "avx512").
const char* isa_name(KernelIsa isa);

/// Inverse of isa_name(); nullopt for unknown strings.
std::optional<KernelIsa> parse_isa(std::string_view name);

/// Numeric level for telemetry/metrics (0..3, the enum value).
int isa_level(KernelIsa isa);

/// j-cluster width of the nonbonded kernel geometry: 4 (4x4 layout) for
/// Scalar/Sse2, 8 (4x8 layout) for Avx2/Avx512.
int j_cluster_width(KernelIsa isa);

/// Compiled in AND supported by this CPU.
bool isa_available(KernelIsa isa);

/// Every available ISA, ascending (always starts with Scalar).
std::vector<KernelIsa> supported_isas();

/// Widest available ISA (ignores any override).
KernelIsa detect_best_isa();

/// Resolve the dispatch choice: `override_name` (when non-empty) takes
/// precedence over the HALOSIM_FORCE_ISA environment variable, which
/// takes precedence over detect_best_isa(). Throws std::invalid_argument
/// for unknown names and std::runtime_error when the forced ISA is not
/// available on this host/build. Not cached — callers that need a stable
/// choice should use active_isa().
KernelIsa resolve_isa(std::string_view override_name = {});

/// resolve_isa(name) against an explicit availability list (exposed so
/// the unsupported-force error path is unit-testable on any host).
KernelIsa resolve_isa_checked(std::string_view name,
                              std::span<const KernelIsa> available);

/// Process-wide dispatch choice: resolve_isa("") computed once on first
/// use and cached for the rest of the process.
KernelIsa active_isa();

}  // namespace hs::md::simd
