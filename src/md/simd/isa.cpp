#include "md/simd/isa.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hs::md::simd {

namespace {

bool cpu_has(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar:
      return true;
    case KernelIsa::Sse2:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case KernelIsa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case KernelIsa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
      // The 4x8 kernel uses F (masked math, gathers), DQ (f32x8
      // broadcast/insert), VL (256-bit scatter) and BW-era mask ops.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

bool compiled_in(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar:
      return true;
    case KernelIsa::Sse2:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case KernelIsa::Avx2:
#if defined(HALOSIM_BUILD_AVX2)
      return true;
#else
      return false;
#endif
    case KernelIsa::Avx512:
#if defined(HALOSIM_BUILD_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::string available_names() {
  std::string out;
  for (KernelIsa isa : supported_isas()) {
    if (!out.empty()) out += ", ";
    out += isa_name(isa);
  }
  return out;
}

}  // namespace

const char* isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar:
      return "scalar";
    case KernelIsa::Sse2:
      return "sse2";
    case KernelIsa::Avx2:
      return "avx2";
    case KernelIsa::Avx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<KernelIsa> parse_isa(std::string_view name) {
  if (name == "scalar") return KernelIsa::Scalar;
  if (name == "sse2") return KernelIsa::Sse2;
  if (name == "avx2") return KernelIsa::Avx2;
  if (name == "avx512") return KernelIsa::Avx512;
  return std::nullopt;
}

int isa_level(KernelIsa isa) { return static_cast<int>(isa); }

int j_cluster_width(KernelIsa isa) {
  return isa >= KernelIsa::Avx2 ? 8 : 4;
}

bool isa_available(KernelIsa isa) { return compiled_in(isa) && cpu_has(isa); }

std::vector<KernelIsa> supported_isas() {
  std::vector<KernelIsa> out;
  for (KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse2, KernelIsa::Avx2,
                        KernelIsa::Avx512}) {
    if (isa_available(isa)) out.push_back(isa);
  }
  return out;
}

KernelIsa detect_best_isa() {
  KernelIsa best = KernelIsa::Scalar;
  for (KernelIsa isa : supported_isas()) best = isa;
  return best;
}

KernelIsa resolve_isa_checked(std::string_view name,
                              std::span<const KernelIsa> available) {
  const std::optional<KernelIsa> parsed = parse_isa(name);
  if (!parsed.has_value()) {
    throw std::invalid_argument(
        "unknown kernel ISA '" + std::string(name) +
        "' (HALOSIM_FORCE_ISA / kernel_isa); valid: scalar, sse2, avx2, "
        "avx512");
  }
  for (KernelIsa isa : available) {
    if (isa == *parsed) return *parsed;
  }
  throw std::runtime_error("kernel ISA '" + std::string(name) +
                           "' is not available on this host/build "
                           "(available: " +
                           available_names() + ")");
}

KernelIsa resolve_isa(std::string_view override_name) {
  std::string_view name = override_name;
  if (name.empty()) {
    const char* env = std::getenv("HALOSIM_FORCE_ISA");
    if (env != nullptr && env[0] != '\0') name = env;
  }
  if (name.empty()) return detect_best_isa();
  const std::vector<KernelIsa> available = supported_isas();
  return resolve_isa_checked(name, available);
}

KernelIsa active_isa() {
  static const KernelIsa isa = resolve_isa();
  return isa;
}

}  // namespace hs::md::simd
