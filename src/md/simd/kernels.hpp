// Internal declarations of the per-ISA lane-block kernels. Each family
// lives in its own translation unit compiled with the matching -m flags
// (simd_avx2.cpp, simd_avx512.cpp); dispatchers in the generic TUs
// (cluster_nonbonded.cpp, soa.cpp, integrator.cpp, simd/ops.cpp) switch
// on KernelIsa behind the HALOSIM_BUILD_* guards. Callers must have
// checked isa_available() — these entry points execute wide instructions
// unconditionally.
#pragma once

#include <cstdint>
#include <span>

#include "md/box.hpp"
#include "md/cluster_nonbonded.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/nonbonded.hpp"
#include "md/vec3.hpp"

namespace hs::md::simd {

#if defined(HALOSIM_BUILD_AVX2)
/// 4x8 cluster nonbonded kernel over the staged workspace (see
/// compute_nonbonded_clusters for the staging/padding contract).
Energies cluster_kernel_avx2(const Box& box, const NbParamTable& params,
                             const ClusterPairList& list, NbWorkspace& ws);

/// out[k] = x[idx[k]] + shift (halo pack gather; bit-identical to scalar).
void pack_shifted_avx2(const Vec3* x, const std::int32_t* idx,
                       std::size_t count, Vec3 shift, Vec3* out);

/// dst[i] += src[i] over n Vec3 (force reduction; bit-identical).
void accumulate_avx2(Vec3* dst, const Vec3* src, std::size_t n);

/// AoS -> SoA, same order (bit-identical copy).
void soa_gather_avx2(const Vec3* src, std::size_t n, float* x, float* y,
                     float* z);

/// AoS -> SoA through an index map (all indices valid).
void soa_gather_indexed_avx2(const Vec3* src, const std::int32_t* idx,
                             std::size_t n, float* x, float* y, float* z);

/// SoA -> AoS, same order (bit-identical copy).
void soa_scatter_avx2(const float* x, const float* y, const float* z,
                      std::size_t n, Vec3* dst);

/// Float-arithmetic leapfrog update: v = fma(f, inv_m_dt[type], v);
/// x = fma(v, dt, x); wrap into [0, L). Engages at Avx2+ only (the
/// Scalar/Sse2 dispatch keeps the legacy double-arithmetic path).
void integrate_avx2(const std::int32_t* types, const Vec3* f, Vec3* v,
                    Vec3* x, std::size_t n, const float* inv_m_dt, float dt,
                    float lx, float ly, float lz);
#endif  // HALOSIM_BUILD_AVX2

#if defined(HALOSIM_BUILD_AVX512)
/// 4x8 cluster nonbonded kernel, two i rows per 512-bit register.
Energies cluster_kernel_avx512(const Box& box, const NbParamTable& params,
                               const ClusterPairList& list, NbWorkspace& ws);

/// f[idx[k]] += in[k] via masked gather/scatter. Indices must be unique
/// (halo index maps and cluster slots are); duplicates within an 8-lane
/// block would lose updates.
void unpack_accumulate_avx512(Vec3* f, const std::int32_t* idx,
                              const Vec3* in, std::size_t count);

/// dst[idx[k]] += (x,y,z)[k] for idx[k] >= 0 (pad slots skipped); same
/// uniqueness requirement as unpack_accumulate_avx512.
void soa_scatter_add_indexed_avx512(const float* x, const float* y,
                                    const float* z, const std::int32_t* idx,
                                    std::size_t n, Vec3* dst);
#endif  // HALOSIM_BUILD_AVX512

}  // namespace hs::md::simd
