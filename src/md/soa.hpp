// Structure-of-arrays coordinate/force storage for the batched kernels.
//
// The cluster-pair nonbonded fast path works on x[]/y[]/z[] float arrays
// (GROMACS nbnxm layout): contiguous per-component loads vectorize, and
// gathering a 4-atom cluster touches three short runs instead of twelve
// interleaved Vec3 fields. AoS (`std::vector<Vec3>`) remains the exchange
// format — halo pack/unpack and the dd reference exchanges index single
// atoms — so SoaVecs provides the gather/scatter shims between the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "md/vec3.hpp"

namespace hs::md {

struct SoaVecs {
  std::vector<float> x;
  std::vector<float> y;
  std::vector<float> z;

  std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
  }

  /// Resize to n and zero every component (recycles capacity).
  void assign_zero(std::size_t n);

  Vec3 at(std::size_t i) const { return {x[i], y[i], z[i]}; }
  void set(std::size_t i, const Vec3& v) {
    x[i] = v.x;
    y[i] = v.y;
    z[i] = v.z;
  }

  /// AoS -> SoA, same order (resizes to src.size()).
  void gather(std::span<const Vec3> src);

  /// AoS -> SoA through an index map: slot k holds src[idx[k]]. Every
  /// index must be valid (pad slots are pre-resolved by the caller, see
  /// ClusterPairList::gather_atoms()). Resizes to idx.size().
  void gather_indexed(std::span<const Vec3> src,
                      std::span<const std::int32_t> idx);

  /// SoA -> AoS, same order (dst.size() must equal size()).
  void scatter(std::span<Vec3> dst) const;

  /// dst[idx[k]] += (x,y,z)[k] for every k with idx[k] >= 0; negative
  /// indices (cluster pad slots) are skipped. idx may be shorter than
  /// size() — trailing slots (8-wide kernel padding, which only ever
  /// holds exact +/-0) are ignored. Non-negative indices must be unique
  /// (cluster slot maps are: each atom owns one slot).
  void scatter_add_indexed(std::span<Vec3> dst,
                           std::span<const std::int32_t> idx) const;
};

}  // namespace hs::md
