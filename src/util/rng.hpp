// Deterministic, seedable RNG used throughout halosim.
//
// splitmix64 for seeding and xoshiro256** for the stream: fast, high
// quality, and — unlike std::mt19937 + std::uniform_* — bit-identical
// across standard libraries, which matters for reproducible experiments.
#pragma once

#include <cstdint>
#include <limits>

namespace hs::util {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style rejection-free-enough reduction; bias is negligible for
    // the bounds used here (< 2^40) and determinism is what we care about.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

inline double Rng::normal() {
  // Box-Muller, using two fresh uniforms each call for statelessness.
  const double u1 = next_double();
  const double u2 = next_double();
  const double r = u1 > 0.0 ? u1 : std::numeric_limits<double>::min();
  // sqrt(-2 ln r) * cos(2 pi u2)
  return __builtin_sqrt(-2.0 * __builtin_log(r)) *
         __builtin_cos(6.283185307179586477 * u2);
}

}  // namespace hs::util
