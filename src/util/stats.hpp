// Small numeric-summary helpers used by the timing reports and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hs::util {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // sample stddev; 0 for n < 2
double median(std::span<const double> xs);  // midpoint of sorted copy
/// Linear-interpolated percentile, p in [0, 100]. NaN on an empty span.
double percentile(std::span<const double> xs, double p);

/// Streaming accumulator (Welford) for per-step timing series.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hs::util
