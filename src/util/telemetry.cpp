#include "util/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace hs::util::telemetry {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

/// Export order: by name. Registration order differs between classic and
/// partitioned machines (and between lane-merge layouts), the name order
/// does not.
std::vector<const Metric*> sorted_metrics(const Registry& reg,
                                          bool include_host) {
  std::vector<const Metric*> out;
  out.reserve(reg.size());
  for (const Metric& m : reg.metrics()) {
    if (m.domain == Domain::Host && !include_host) continue;
    out.push_back(&m);
  }
  std::sort(out.begin(), out.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });
  return out;
}

}  // namespace

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

std::string_view to_string(Domain domain) {
  switch (domain) {
    case Domain::Sim: return "sim";
    case Domain::Host: return "host";
  }
  return "?";
}

void Series::record(std::int64_t bucket_index, double v) {
  if (buckets_.empty() || bucket_index > buckets_.back().index) {
    buckets_.push_back(BucketStats{bucket_index});
    buckets_.back().record(v);
    return;
  }
  if (bucket_index == buckets_.back().index) {
    buckets_.back().record(v);
    return;
  }
  // Out-of-order sample (merged registries, host-domain clocks). Binary
  // search keeps the vector sorted; samples older than a window trim()
  // already evicted are dropped rather than resurrecting a partial bucket.
  if (bucket_index < floor_) {
    ++dropped_;
    return;
  }
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), bucket_index,
      [](const BucketStats& b, std::int64_t idx) { return b.index < idx; });
  if (it != buckets_.end() && it->index == bucket_index) {
    it->record(v);
  } else {
    auto inserted = buckets_.insert(it, BucketStats{bucket_index});
    inserted->record(v);
  }
}

void Series::trim(std::size_t capacity) {
  if (buckets_.size() <= capacity) return;
  const std::size_t excess = buckets_.size() - capacity;
  dropped_ += excess;
  buckets_.erase(buckets_.begin(),
                 buckets_.begin() + static_cast<std::ptrdiff_t>(excess));
  if (buckets_.front().index > floor_) floor_ = buckets_.front().index;
}

void Series::merge(const Series& other, std::size_t capacity) {
  if (other.buckets_.empty()) {
    dropped_ += other.dropped_;
    if (other.floor_ > floor_) floor_ = other.floor_;
    return;
  }
  std::vector<BucketStats> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < buckets_.size() || j < other.buckets_.size()) {
    if (j == other.buckets_.size() ||
        (i < buckets_.size() &&
         buckets_[i].index < other.buckets_[j].index)) {
      merged.push_back(buckets_[i++]);
    } else if (i == buckets_.size() ||
               other.buckets_[j].index < buckets_[i].index) {
      merged.push_back(other.buckets_[j++]);
    } else {
      BucketStats b = buckets_[i++];
      b.combine(other.buckets_[j++]);
      merged.push_back(b);
    }
  }
  buckets_ = std::move(merged);
  dropped_ += other.dropped_;
  if (other.floor_ > floor_) floor_ = other.floor_;
  trim(capacity);
}

void Registry::enable(std::int64_t window_ns, std::size_t series_capacity) {
  assert(window_ns >= 1);
  assert(series_capacity >= 1);
  enabled_ = true;
  window_ns_ = window_ns;
  series_capacity_ = series_capacity;
}

MetricId Registry::register_metric(std::string name, Kind kind,
                                   std::string unit, int device,
                                   Domain domain) {
  if (!enabled_) return MetricId{};
  const auto it = index_.find(name);
  if (it != index_.end()) {
    assert(metrics_[it->second].kind == kind &&
           "telemetry metric re-registered with a different kind");
    return MetricId{it->second};
  }
  const auto idx = static_cast<std::uint32_t>(metrics_.size());
  Metric m;
  m.name = std::move(name);
  m.kind = kind;
  m.domain = domain;
  m.unit = std::move(unit);
  m.device = device;
  metrics_.push_back(std::move(m));
  index_.emplace(metrics_.back().name, idx);
  return MetricId{idx};
}

MetricId Registry::counter(std::string name, std::string unit, int device,
                           Domain domain) {
  return register_metric(std::move(name), Kind::Counter, std::move(unit),
                         device, domain);
}

MetricId Registry::gauge(std::string name, std::string unit, int device,
                         Domain domain) {
  return register_metric(std::move(name), Kind::Gauge, std::move(unit),
                         device, domain);
}

MetricId Registry::histogram(std::string name, std::string unit, int device,
                             Domain domain) {
  return register_metric(std::move(name), Kind::Histogram, std::move(unit),
                         device, domain);
}

void Registry::record(MetricId id, std::int64_t t_ns, double value) {
  if (!enabled_ || !id.valid()) return;
  Metric& m = metrics_[id.index];
  if (m.count == 0) {
    m.min = m.max = value;
  } else {
    if (value < m.min) m.min = value;
    if (value > m.max) m.max = value;
  }
  ++m.count;
  m.sum += value;
  m.last = value;
  if (m.kind == Kind::Histogram) m.hist.record(value);
  const std::int64_t bucket = t_ns >= 0 ? t_ns / window_ns_ : 0;
  m.series.record(bucket, value);
  m.series.trim(series_capacity_);
}

const Metric* Registry::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

void Registry::merge(const Registry& other) {
  if (!enabled_ || !other.enabled_) return;
  for (const Metric& om : other.metrics_) {
    const auto it = index_.find(om.name);
    if (it == index_.end()) {
      const auto idx = static_cast<std::uint32_t>(metrics_.size());
      metrics_.push_back(om);
      metrics_.back().series.trim(series_capacity_);
      index_.emplace(metrics_.back().name, idx);
      continue;
    }
    Metric& m = metrics_[it->second];
    assert(m.kind == om.kind && "telemetry merge: kind mismatch");
    if (om.count > 0) {
      if (m.count == 0) {
        m.min = om.min;
        m.max = om.max;
      } else {
        if (om.min < m.min) m.min = om.min;
        if (om.max > m.max) m.max = om.max;
      }
      m.count += om.count;
      m.sum += om.sum;
      m.last = om.last;
    }
    m.hist.merge(om.hist);
    m.series.merge(om.series, series_capacity_);
  }
}

void Registry::reset_values() {
  for (Metric& m : metrics_) {
    m.count = 0;
    m.sum = m.min = m.max = m.last = 0.0;
    m.hist = Histogram{};
    m.series.clear();
  }
}

void Registry::write_json(std::ostream& os, bool include_host) const {
  os << "{\"window_ns\":" << window_ns_ << ",\"metrics\":[";
  bool first = true;
  for (const Metric* m : sorted_metrics(*this, include_host)) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << escape(m->name) << "\",\"kind\":\""
       << to_string(m->kind) << "\",\"domain\":\"" << to_string(m->domain)
       << "\",\"unit\":\"" << escape(m->unit) << "\",\"device\":" << m->device
       << ",\"count\":" << m->count << ",\"total\":" << format_number(m->total());
    if (m->count > 0) {
      os << ",\"min\":" << format_number(m->min)
         << ",\"max\":" << format_number(m->max);
    }
    if (m->kind == Kind::Histogram) {
      os << ",\"hist\":[";
      bool first_b = true;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        if (m->hist.buckets[static_cast<std::size_t>(b)] == 0) continue;
        if (!first_b) os << ",";
        first_b = false;
        os << "[" << b << ","
           << m->hist.buckets[static_cast<std::size_t>(b)] << "]";
      }
      os << "]";
    }
    os << ",\"series\":{\"dropped\":" << m->series.dropped()
       << ",\"buckets\":[";
    bool first_s = true;
    for (const BucketStats& b : m->series.buckets()) {
      if (!first_s) os << ",";
      first_s = false;
      os << "[" << b.index << "," << b.count << "," << format_number(b.sum)
         << "," << format_number(b.min) << "," << format_number(b.max) << "]";
    }
    os << "]}}";
  }
  os << "\n]}";
}

void Registry::write_csv(std::ostream& os, std::string_view run_label,
                         bool include_host, bool with_header) const {
  if (with_header) {
    os << "run,metric,kind,unit,device,bucket_start_ns,count,sum,min,max\n";
  }
  for (const Metric* m : sorted_metrics(*this, include_host)) {
    for (const BucketStats& b : m->series.buckets()) {
      os << run_label << "," << m->name << "," << to_string(m->kind) << ","
         << m->unit << "," << m->device << "," << b.index * window_ns_ << ","
         << b.count << "," << format_number(b.sum) << ","
         << format_number(b.min) << "," << format_number(b.max) << "\n";
    }
  }
}

}  // namespace hs::util::telemetry
