#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hs::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  // NaN, not 0: an empty sample set (e.g. warmup consumed every step) must
  // not masquerade as a measured zero latency.
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hs::util
