// Time-series telemetry registry.
//
// Named counters, gauges, and log2-bucketed histograms, each accumulated
// into a per-window time series keyed by *simulated* time: every sample at
// time t lands in bucket t / window_ns, so the series is a step-resolved
// view of the run (NIC occupancy over time, events per safe window, signal
// stalls per step) rather than an end-of-run total.
//
// Design constraints (see DESIGN.md §"Telemetry"):
//
//  * Deterministic and lane-homed. A partitioned machine gives every lane
//    its own Registry, written lane-locally; the master registry absorbs
//    the lane rows in device order after the run. Samples are keyed by sim
//    time and merged by metric name, so --workers=1 and --workers=N
//    produce byte-identical telemetry (export sorts by name, making the
//    output independent of registration order too).
//  * Sim vs Host domains. Metrics derived from the simulated clock are
//    Domain::Sim and exported by default. Wall-clock measurements (e.g.
//    per-lane barrier wait in the parallel driver) are real time and
//    cannot be deterministic — they are Domain::Host and excluded from
//    the default export (opt in with include_host).
//  * Near-zero overhead when disabled. Instrumented call sites cache a
//    Registry pointer that stays null while telemetry is off, so the hot
//    paths pay one branch; record() itself is a handful of adds.
//  * Bounded memory. Each series is a ring of at most `series_capacity`
//    window buckets; on overflow the oldest buckets are dropped and
//    counted in `dropped`, which the exporters report (no silent caps).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hs::util::telemetry {

inline constexpr std::string_view kSchema = "halosim-telemetry-v1";

enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
enum class Domain : std::uint8_t { Sim, Host };

std::string_view to_string(Kind kind);
std::string_view to_string(Domain domain);

/// Handle returned at registration time; invalid ids (default-constructed)
/// make record calls no-ops, so call sites need no separate "registered"
/// flag.
struct MetricId {
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t index = kInvalid;
  bool valid() const { return index != kInvalid; }
};

/// log2-bucketed value histogram: bucket 0 holds v < 1, bucket b >= 1
/// holds v in [2^(b-1), 2^b). Bucketing uses integer bit width, so
/// boundary values land deterministically (no floating-point log).
struct Histogram {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};

  static int bucket_of(double v) {
    if (!(v >= 1.0)) return 0;  // v < 1, and NaN by convention
    constexpr double kHuge = 9.2e18;  // beyond uint64 -> top bucket
    if (v >= kHuge) return kBuckets - 1;
    const int b = std::bit_width(static_cast<std::uint64_t>(v));
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket b.
  static double bucket_floor(int b) {
    return b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
  }
  void record(double v) { ++buckets[static_cast<std::size_t>(bucket_of(v))]; }
  void merge(const Histogram& other) {
    for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  }
  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto c : buckets) n += c;
    return n;
  }
};

/// One time-window's accumulator within a series.
struct BucketStats {
  std::int64_t index = 0;  // window number: sample_time / window_ns
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void record(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
  }
  void combine(const BucketStats& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// Ring of per-window buckets, ordered by window index. Appends are
/// amortized O(1) (sim time is monotone per lane, so buckets arrive in
/// nondecreasing index order); merge is a sorted two-way merge.
class Series {
 public:
  void record(std::int64_t bucket_index, double v);
  void merge(const Series& other, std::size_t capacity);
  void trim(std::size_t capacity);
  void clear() {
    buckets_.clear();
    dropped_ = 0;
    floor_ = std::numeric_limits<std::int64_t>::min();
  }

  const std::vector<BucketStats>& buckets() const { return buckets_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::vector<BucketStats> buckets_;  // sorted by index, unique
  std::uint64_t dropped_ = 0;         // evicted (oldest) buckets
  // Samples older than this window were evicted by trim(); late arrivals
  // below it are dropped rather than resurrecting a partial bucket.
  std::int64_t floor_ = std::numeric_limits<std::int64_t>::min();
};

struct Metric {
  std::string name;
  Kind kind = Kind::Counter;
  Domain domain = Domain::Sim;
  std::string unit;
  int device = -1;  // device attribution (-1 = machine-global)

  std::uint64_t count = 0;  // samples recorded
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  // most recent value (gauges)
  Histogram hist;     // populated for Kind::Histogram only
  Series series;

  /// Counter -> accumulated sum; gauge -> last set value; histogram ->
  /// sum of observed values.
  double total() const { return kind == Kind::Gauge ? last : sum; }
};

class Registry {
 public:
  /// Default window: 100 simulated microseconds per bucket.
  static constexpr std::int64_t kDefaultWindowNs = 100'000;
  static constexpr std::size_t kDefaultSeriesCapacity = 4096;

  /// Turn sampling on. Must be called before instrumented layers register
  /// their metrics (registration on a disabled registry yields invalid
  /// ids, keeping the disabled hot path free even of id bookkeeping).
  void enable(std::int64_t window_ns = kDefaultWindowNs,
              std::size_t series_capacity = kDefaultSeriesCapacity);
  bool enabled() const { return enabled_; }
  std::int64_t window_ns() const { return window_ns_; }
  std::size_t series_capacity() const { return series_capacity_; }

  // ---- Registration ---------------------------------------------------
  // Re-registering a name returns the existing id (the kind must match).
  MetricId counter(std::string name, std::string unit = {}, int device = -1,
                   Domain domain = Domain::Sim);
  MetricId gauge(std::string name, std::string unit = {}, int device = -1,
                 Domain domain = Domain::Sim);
  MetricId histogram(std::string name, std::string unit = {}, int device = -1,
                     Domain domain = Domain::Sim);

  // ---- Recording (hot path) -------------------------------------------
  /// Counter increment at time t.
  void add(MetricId id, std::int64_t t_ns, double delta = 1.0) {
    record(id, t_ns, delta);
  }
  /// Gauge sample at time t.
  void set(MetricId id, std::int64_t t_ns, double value) {
    record(id, t_ns, value);
  }
  /// Histogram observation at time t.
  void observe(MetricId id, std::int64_t t_ns, double value) {
    record(id, t_ns, value);
  }

  // ---- Introspection --------------------------------------------------
  std::size_t size() const { return metrics_.size(); }
  const Metric& metric(std::size_t i) const { return metrics_[i]; }
  const std::vector<Metric>& metrics() const { return metrics_; }
  const Metric* find(std::string_view name) const;

  // ---- Merge / lifecycle ----------------------------------------------
  /// Additive merge: combines values of same-named metrics and registers
  /// (appends) names this registry has not seen. Associative and
  /// deterministic — merging lane rows in device order yields the same
  /// registry regardless of how lanes were threaded.
  void merge(const Registry& other);
  /// Zero every metric's values and series; definitions (and ids) stay.
  void reset_values();

  // ---- Export ---------------------------------------------------------
  /// One JSON object: {"window_ns":..,"dropped":..,"metrics":[...]},
  /// metrics sorted by name. Host-domain metrics are wall-clock (not
  /// deterministic) and skipped unless include_host.
  void write_json(std::ostream& os, bool include_host = false) const;
  /// CSV series dump, one row per (metric, window bucket), prefixed with
  /// `run_label`. Emits the header row iff with_header.
  void write_csv(std::ostream& os, std::string_view run_label,
                 bool include_host = false, bool with_header = true) const;

 private:
  MetricId register_metric(std::string name, Kind kind, std::string unit,
                           int device, Domain domain);
  void record(MetricId id, std::int64_t t_ns, double value);

  bool enabled_ = false;
  std::int64_t window_ns_ = kDefaultWindowNs;
  std::size_t series_capacity_ = kDefaultSeriesCapacity;
  std::vector<Metric> metrics_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

}  // namespace hs::util::telemetry
