// Bench metrics files and regression diffing.
//
// Benches emit a flat per-case metrics JSON ("halosim-bench-metrics-v1"):
// one object per case label holding scalar metrics. `diff` compares two
// such files and flags regressions — time-like metrics (keys suffixed
// `_us` or `_ns`) whose candidate value grew past the threshold — so CI
// can gate on `tools/bench_diff`'s exit code instead of eyeballing bench
// tables.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hs::util::json {
class Value;
}

namespace hs::util::metrics {

inline constexpr std::string_view kSchema = "halosim-bench-metrics-v1";

struct Case {
  std::string label;
  /// Insertion-ordered metric name -> value pairs.
  std::vector<std::pair<std::string, double>> values;
};

struct Report {
  std::vector<Case> cases;
  /// Pre-rendered `halosim-telemetry-v1` JSON object (the output of
  /// telemetry::Registry::write_json, or a `{"schema":...,"runs":{...}}`
  /// wrapper). Embedded verbatim under a top-level `"telemetry"` key when
  /// non-empty; `diff` only reads `"cases"`, so the section never affects
  /// regression gating.
  std::string telemetry_json;

  /// Append (or extend) the case named `label`.
  Case& case_for(const std::string& label);
  void set(const std::string& label, const std::string& key, double value);
};

/// Serialize as the v1 schema. Non-finite values (NaN empty-percentiles,
/// infinities) are skipped — JSON cannot represent them.
void write_json(std::ostream& os, const Report& report);
/// Returns false if the file cannot be written.
bool write_file(const std::string& path, const Report& report);

/// True for keys the regression gate treats as "lower is better" times.
bool is_time_metric(std::string_view key);

struct Delta {
  std::string case_label;
  std::string key;
  double base = 0.0;
  double cand = 0.0;
  double rel = 0.0;        // (cand - base) / base
  bool regression = false;  // time metric that grew past the threshold
};

struct DiffResult {
  std::vector<Delta> deltas;       // every metric whose |rel| > threshold
  std::vector<std::string> notes;  // missing cases/keys, schema mismatches
  bool regression = false;
};

/// Compare two parsed metrics documents. A case missing from `cand` is a
/// regression (the gate cannot vouch for it), but a *metric key* present
/// in only one document is reported as an added/removed note without
/// failing the gate — benches grow and retire metrics across commits, and
/// a renamed key should not read as a perf regression. Throws
/// std::runtime_error if either document does not follow the v1 schema.
DiffResult diff(const json::Value& base, const json::Value& cand,
                double threshold);

/// Human-readable rendering of a diff (table of deltas plus notes).
void print_diff(std::ostream& os, const DiffResult& result, double threshold);

}  // namespace hs::util::metrics
