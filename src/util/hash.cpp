#include "util/hash.hpp"

namespace hs::util {

std::string hex64(std::uint64_t value) {
  constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace hs::util
