// Minimal leveled logger for the halosim library.
//
// The simulator is single-threaded and deterministic, so the logger is
// deliberately simple: a global level, a sink that defaults to stderr, and
// printf-free iostream formatting. Benches lower the level to Warn so that
// reported tables are the only stdout output.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace hs::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output (default: std::cerr). Pass nullptr to restore.
void set_log_sink(std::ostream* sink);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Composes the message only when the level is enabled.
template <typename Fn>
void log_lazy(LogLevel level, Fn&& fn) {
  if (level < log_level()) return;
  std::ostringstream os;
  fn(os);
  detail::emit(level, os.str());
}

}  // namespace hs::util

#define HS_LOG(level, expr)                                     \
  ::hs::util::log_lazy((level), [&](std::ostream& hs_log_os) {  \
    hs_log_os << expr;                                          \
  })

#define HS_TRACE(expr) HS_LOG(::hs::util::LogLevel::Trace, expr)
#define HS_DEBUG(expr) HS_LOG(::hs::util::LogLevel::Debug, expr)
#define HS_INFO(expr) HS_LOG(::hs::util::LogLevel::Info, expr)
#define HS_WARN(expr) HS_LOG(::hs::util::LogLevel::Warn, expr)
#define HS_ERROR(expr) HS_LOG(::hs::util::LogLevel::Error, expr)
