// Stable content hashing for the result cache.
//
// FNV-1a over bytes: dependency-free, endianness-independent (it walks
// bytes of the *string*, never of in-memory structs), and stable across
// platforms and compilers — the properties a content-addressed on-disk
// store keyed by these hashes needs. Not cryptographic; collisions are
// astronomically unlikely at campaign scale but would only cost a stale
// cache hit, never silent corruption of unrelated data.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hs::util {

/// 64-bit FNV-1a of `data`.
constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Fixed-width lowercase hex rendering (16 chars).
std::string hex64(std::uint64_t value);

}  // namespace hs::util
