// Shared helpers for hand-rolled JSON emitters (metrics, telemetry,
// campaign documents): string escaping and the canonical number format.
// Every writer in the repo must render numbers through `format_number` so
// that a value which round-trips through json::parse re-renders to the
// same bytes — the property the sweep cache's byte-identical-output
// guarantee rests on.
#pragma once

#include <string>

namespace hs::util::json {

/// Escape for embedding inside a JSON string literal (quotes not added).
std::string escape(const std::string& s);

/// Canonical number rendering: integral values without exponent or
/// trailing zeros, everything else the shortest representation that
/// parses back to exactly the same double (std::to_chars), so
/// parse(format(v)) == v for every finite value.
std::string format_number(double v);

}  // namespace hs::util::json
