#include "util/cli.hpp"

#include <cstdlib>

namespace hs::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // boolean switch
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second : fallback;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it != flags_.end() ? std::strtoll(it->second.c_str(), nullptr, 10)
                            : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it != flags_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  }
  return out;
}

}  // namespace hs::util
