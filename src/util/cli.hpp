// Tiny command-line flag parser for the examples and bench drivers.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hs::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace hs::util
