// Minimal JSON parser — just enough to round-trip and validate the
// observability layer's Chrome-trace output (tests and the trace_validate
// tool). Parses the full JSON grammar into a small value tree; not a
// performance-oriented or streaming parser.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hs::util::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double d) : type_(Type::Number), num_(d) {}
  explicit Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::Array), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_bool() const { return type_ == Type::Bool; }

  bool as_bool() const { return require(Type::Bool), bool_; }
  double as_number() const { return require(Type::Number), num_; }
  const std::string& as_string() const { return require(Type::String), str_; }
  const Array& as_array() const { return require(Type::Array), *arr_; }
  const Object& as_object() const { return require(Type::Object), *obj_; }

  /// Object member access; throws std::out_of_range if absent.
  const Value& at(const std::string& key) const { return as_object().at(key); }
  bool contains(const std::string& key) const {
    return is_object() && obj_->count(key) != 0;
  }
  /// Array element access.
  const Value& at(std::size_t i) const { return as_array().at(i); }
  std::size_t size() const {
    return is_array() ? arr_->size() : as_object().size();
  }

 private:
  void require(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong value type");
  }

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document; throws std::runtime_error (with a byte
/// offset in the message) on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace hs::util::json
