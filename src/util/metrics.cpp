#include "util/metrics.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"

namespace hs::util::metrics {

namespace {

using json::escape;
using json::format_number;

const json::Object& cases_of(const json::Value& doc, const char* which) {
  if (!doc.is_object() || !doc.contains("schema") ||
      !doc.at("schema").is_string() || doc.at("schema").as_string() != kSchema ||
      !doc.contains("cases") || !doc.at("cases").is_object()) {
    throw std::runtime_error(std::string("metrics: ") + which +
                             " is not a " + std::string(kSchema) + " document");
  }
  return doc.at("cases").as_object();
}

}  // namespace

Case& Report::case_for(const std::string& label) {
  for (Case& c : cases) {
    if (c.label == label) return c;
  }
  cases.push_back({label, {}});
  return cases.back();
}

void Report::set(const std::string& label, const std::string& key,
                 double value) {
  case_for(label).values.emplace_back(key, value);
}

void write_json(std::ostream& os, const Report& report) {
  os << "{\"schema\":\"" << kSchema << "\",\"cases\":{";
  bool first_case = true;
  for (const Case& c : report.cases) {
    if (!first_case) os << ",";
    first_case = false;
    os << "\n  \"" << escape(c.label) << "\":{";
    bool first_kv = true;
    for (const auto& [key, value] : c.values) {
      if (!std::isfinite(value)) continue;  // JSON cannot hold NaN/inf
      if (!first_kv) os << ",";
      first_kv = false;
      os << "\"" << escape(key) << "\":" << format_number(value);
    }
    os << "}";
  }
  os << "\n}";
  if (!report.telemetry_json.empty()) {
    os << ",\n\"telemetry\":" << report.telemetry_json;
  }
  os << "}\n";
}

bool write_file(const std::string& path, const Report& report) {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os, report);
  return static_cast<bool>(os);
}

bool is_time_metric(std::string_view key) {
  return key.ends_with("_us") || key.ends_with("_ns");
}

DiffResult diff(const json::Value& base, const json::Value& cand,
                double threshold) {
  const json::Object& base_cases = cases_of(base, "baseline");
  const json::Object& cand_cases = cases_of(cand, "candidate");
  // A baseline with zero cases vouches for nothing: a truncated or
  // hand-edited file would otherwise sail through the gate with exit 0.
  if (base_cases.empty()) {
    throw std::runtime_error(
        "metrics: baseline has an empty \"cases\" object — refusing to gate "
        "against a baseline that vouches for nothing (regenerate it with "
        "the bench's --metrics-json or bench_gate.sh --update)");
  }

  DiffResult result;
  for (const auto& [label, base_case] : base_cases) {
    const auto cand_it = cand_cases.find(label);
    if (cand_it == cand_cases.end()) {
      result.notes.push_back("case '" + label + "' missing from candidate");
      result.regression = true;
      continue;
    }
    const json::Object& cand_case = cand_it->second.as_object();
    // Keys in only one document are schema drift, not perf movement:
    // report them as added/removed so a rename or a new series does not
    // fail the gate (a whole missing *case* above still does).
    for (const auto& [key, cand_val] : cand_case) {
      if (!cand_val.is_number()) continue;
      const auto bv = base_case.as_object().find(key);
      if (bv == base_case.as_object().end() || !bv->second.is_number()) {
        result.notes.push_back("metric '" + label + "." + key +
                               "' added in candidate");
      }
    }
    for (const auto& [key, base_val] : base_case.as_object()) {
      if (!base_val.is_number()) continue;
      const auto kv = cand_case.find(key);
      if (kv == cand_case.end() || !kv->second.is_number()) {
        result.notes.push_back("metric '" + label + "." + key +
                               "' removed in candidate");
        continue;
      }
      const double b = base_val.as_number();
      const double c = kv->second.as_number();
      double rel = 0.0;
      if (b != 0.0) {
        rel = (c - b) / b;
      } else if (c != 0.0) {
        rel = std::numeric_limits<double>::infinity();
      }
      if (std::fabs(rel) <= threshold) continue;
      Delta d;
      d.case_label = label;
      d.key = key;
      d.base = b;
      d.cand = c;
      d.rel = rel;
      d.regression = is_time_metric(key) && rel > threshold;
      if (d.regression) result.regression = true;
      result.deltas.push_back(std::move(d));
    }
  }
  return result;
}

void print_diff(std::ostream& os, const DiffResult& result, double threshold) {
  if (result.deltas.empty() && result.notes.empty()) {
    os << "bench_diff: no metric moved more than "
       << Table::fmt(100.0 * threshold, 1) << "%\n";
  }
  if (!result.deltas.empty()) {
    Table table({"case", "metric", "base", "cand", "delta %", "verdict"});
    for (const Delta& d : result.deltas) {
      table.add_row({d.case_label, d.key, Table::fmt(d.base, 3),
                     Table::fmt(d.cand, 3),
                     (std::isinf(d.rel) ? std::string("inf")
                                        : Table::fmt(100.0 * d.rel, 1)),
                     d.regression ? "REGRESSION"
                                  : (is_time_metric(d.key) ? "improved"
                                                           : "changed")});
    }
    table.print(os);
  }
  for (const std::string& note : result.notes) {
    os << "note: " << note << "\n";
  }
  os << (result.regression ? "bench_diff: REGRESSION past "
                           : "bench_diff: OK within ")
     << Table::fmt(100.0 * threshold, 1) << "% threshold\n";
}

}  // namespace hs::util::metrics
