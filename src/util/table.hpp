// Aligned plain-text table printer used by the bench harnesses so that
// every figure reproduction prints the same row/series layout the paper
// reports, in a form that is both human-readable and trivially parseable
// (CSV dump available via to_csv()).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with the given precision.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt(long long value);

  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;
  /// Render as CSV (header + rows).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hs::util
