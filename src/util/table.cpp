#include "util/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << std::left << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
  return os.str();
}

}  // namespace hs::util
