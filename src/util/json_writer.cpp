#include "util/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace hs::util::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  // Integral values print without an exponent or trailing ".000000".
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    const int n = std::snprintf(buf, sizeof buf, "%lld",
                                static_cast<long long>(v));
    return std::string(buf, static_cast<std::size_t>(n));
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace hs::util::json
