#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace hs::util::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (basic multilingual plane only — surrogate pairs
          // do not appear in the trace output this parser serves).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // JSON forbids leading zeros ("01"), which strtod would accept.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace hs::util::json
