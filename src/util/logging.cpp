#include "util/logging.hpp"

#include <iostream>

namespace hs::util {

namespace {
LogLevel g_level = LogLevel::Warn;
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(std::ostream* sink) { g_sink = sink; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace hs::util
