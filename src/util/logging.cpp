#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hs::util {

namespace {
// The level is read on every HS_LOG site, including from parallel-engine
// worker threads; the sink is written by tests that capture output. Keep the
// level lock-free (relaxed is fine: there is no ordering contract between a
// level change and in-flight messages) and serialize sink swaps + emission
// under one mutex so concurrent messages never interleave bytes.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::ostream* g_sink = nullptr;
std::mutex g_sink_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = sink;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Compose the full line first so the sink sees a single << of one string:
  // even a shared stringstream sink then receives whole lines, never spliced
  // fragments from two threads.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << line;
}
}  // namespace detail

}  // namespace hs::util
