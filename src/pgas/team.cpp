#include "pgas/team.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "pgas/world.hpp"

namespace hs::pgas {

Team::Team(World& world, std::vector<int> members, std::size_t heap_bytes)
    : world_(&world), members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("team needs at least one member PE");
  }
  for (int pe : members_) {
    if (pe < 0 || pe >= world.n_pes()) {
      throw std::invalid_argument("team member out of PE range");
    }
  }
  // Members must be unique (an ordered subset, like nvshmem_team_split).
  std::vector<int> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("duplicate PE in team");
  }
  heap_ = std::make_unique<SymmetricHeap>(size(), heap_bytes);
}

int Team::index_of(int world_pe) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_pe) return static_cast<int>(i);
  }
  return -1;
}


}  // namespace hs::pgas
