// Symmetric heap: the PGAS allocation model.
//
// Every PE owns a byte arena; symmetric allocation reserves the same offset
// range on every PE ("collective symmetric allocation across all PEs",
// §2.3), so a handle resolves to the same logical object on any PE. This
// also reproduces the paper's constraint discussion: symmetric allocation
// is world-wide, which is why rank specialization (PP vs PME) clashes with
// it — exercised in the tests.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace hs::pgas {

/// Handle to a symmetric allocation: identical offset on every PE.
struct SymHandle {
  std::size_t offset = 0;
  std::size_t bytes = 0;
  bool valid() const { return bytes > 0; }
};

/// Recycled arena storage for symmetric-heap reuse across simulations.
///
/// A SymmetricHeap constructed over a pool draws its per-PE arenas from
/// it and returns them on destruction. Recycled vectors come back
/// logically empty but keep their committed capacity, so the zero-fill
/// that `alloc` performs lands on already-faulted pages — the dominant
/// per-case setup cost in back-to-back sweep runs. Every allocated byte
/// is still value-initialized exactly as in a fresh arena: pooled and
/// unpooled heaps are observationally identical. Not thread-safe; use
/// one pool per worker thread (runner::CaseScratch).
class ArenaPool {
 public:
  /// An empty arena, with warm capacity when one is available.
  std::vector<std::byte> acquire() {
    if (free_.empty()) return {};
    std::vector<std::byte> arena = std::move(free_.back());
    free_.pop_back();
    arena.clear();  // keeps capacity; alloc() zero-fills on resize
    return arena;
  }
  void recycle(std::vector<std::byte>&& arena) {
    if (arena.capacity() > 0) free_.push_back(std::move(arena));
  }
  std::size_t size() const { return free_.size(); }

 private:
  std::vector<std::vector<std::byte>> free_;
};

class SymmetricHeap {
 public:
  /// `n_pes` arenas of `capacity` bytes each. With a pool, arenas are
  /// acquired from it now and recycled into it on destruction; the pool
  /// must outlive the heap.
  SymmetricHeap(int n_pes, std::size_t capacity, ArenaPool* pool = nullptr);
  ~SymmetricHeap();

  SymmetricHeap(const SymmetricHeap&) = delete;
  SymmetricHeap& operator=(const SymmetricHeap&) = delete;

  int n_pes() const { return static_cast<int>(arenas_.size()); }
  std::size_t capacity() const { return capacity_; }
  std::size_t allocated() const { return top_; }

  /// Collective symmetric allocation (same offset on every PE). Arena
  /// storage is committed lazily: PEs only pay for what is allocated.
  SymHandle alloc(std::size_t bytes, std::size_t align = 64);

  /// Reset the allocator (frees everything; handles become invalid).
  void release_all() { top_ = 0; }

  std::byte* base(int pe) {
    return arenas_[static_cast<std::size_t>(pe)].data();
  }

  template <typename T>
  std::span<T> view(SymHandle h, int pe) {
    assert(h.valid() && h.offset + h.bytes <= capacity_);
    assert(h.bytes % sizeof(T) == 0);
    return {reinterpret_cast<T*>(base(pe) + h.offset), h.bytes / sizeof(T)};
  }

 private:
  std::size_t capacity_;
  std::size_t top_ = 0;
  std::vector<std::vector<std::byte>> arenas_;
  ArenaPool* pool_ = nullptr;
};

}  // namespace hs::pgas
