#include "pgas/symmetric_heap.hpp"

#include <stdexcept>

namespace hs::pgas {

SymmetricHeap::SymmetricHeap(int n_pes, std::size_t capacity, ArenaPool* pool)
    : capacity_(capacity), pool_(pool) {
  assert(n_pes > 0);
  arenas_.resize(static_cast<std::size_t>(n_pes));
  if (pool_ != nullptr) {
    for (auto& arena : arenas_) arena = pool_->acquire();
  }
}

SymmetricHeap::~SymmetricHeap() {
  if (pool_ == nullptr) return;
  for (auto& arena : arenas_) pool_->recycle(std::move(arena));
}

SymHandle SymmetricHeap::alloc(std::size_t bytes, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0 && "align must be a power of 2");
  const std::size_t offset = (top_ + align - 1) & ~(align - 1);
  if (offset + bytes > capacity_) {
    throw std::bad_alloc();
  }
  top_ = offset + bytes;
  for (auto& arena : arenas_) {
    if (arena.size() < top_) arena.resize(top_);
  }
  return SymHandle{offset, bytes};
}

}  // namespace hs::pgas
