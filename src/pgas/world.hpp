// PGAS world: the NVSHMEM-like communication layer bound to the simulated
// cluster. One PE per device.
//
// API correspondence (NVSHMEM -> hs::pgas::World):
//   nvshmem_malloc                 -> alloc / heap().alloc (world-collective)
//   nvshmem_ptr(ptr, pe)           -> remote_ptr (non-null iff NVLink-reachable)
//   nvshmem_float_put_signal_nbi   -> put_signal_nbi
//   nvshmem_signal_wait_until      -> signal(...).wait_ge (sim::Signal)
//   nvshmemx_buffer_register       -> register_buffer (sources may be
//                                     non-symmetric; destinations may not)
//   proxy thread                   -> ProxyPlacement + fabric slowdown (§5.5)
//   TMA cp.async.bulk              -> tma_store_async / tma_load_async
//
// Ops take a `copy` closure that performs the real data movement at
// delivery time: the layer is functional (bytes actually move between PE
// buffers), while the fabric decides when.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pgas/counters.hpp"
#include "pgas/symmetric_heap.hpp"
#include "sim/machine.hpp"
#include "util/telemetry.hpp"

namespace hs::pgas {

/// Where the NVSHMEM proxy thread lands (§5.5). ReservedCore is the paper's
/// fix (OMP_NUM_THREADS-1 + dedicated init thread); RankPinned is rank-level
/// pinning with the proxy floating inside the rank's cores (the paper found
/// it performs the same); ContendedCore pins the proxy onto a busy core and
/// reproduces the up-to-50x degradation.
enum class ProxyPlacement { ReservedCore, RankPinned, ContendedCore };

class World {
 public:
  /// With `arena_pool`, the world's symmetric heap draws its per-PE
  /// arenas from the pool and recycles them on destruction (warm-state
  /// reuse across back-to-back simulations; see ArenaPool). Team heaps
  /// are never pooled.
  World(sim::Machine& machine, std::size_t heap_bytes_per_pe = 64u << 20,
        ArenaPool* arena_pool = nullptr);
  ~World();  // out-of-line: Team is incomplete here

  int n_pes() const { return machine_->device_count(); }
  int device_of(int pe) const { return pe; }
  sim::Machine& machine() { return *machine_; }
  SymmetricHeap& heap() { return *heap_; }

  /// Collective symmetric allocation; same offset on every PE.
  SymHandle alloc(std::size_t bytes, std::size_t align = 64) {
    return heap_->alloc(bytes, align);
  }

  /// Local view of a symmetric object on `pe`.
  template <typename T>
  std::span<T> view(SymHandle h, int pe) {
    return heap_->view<T>(h, pe);
  }

  /// nvshmem_ptr analogue: direct load/store access to `to_pe`'s copy of a
  /// symmetric object, valid only when `to_pe` is NVLink-reachable from
  /// `from_pe`. Returns nullptr otherwise — the Algorithm 1 isNVLinkAccess
  /// predicate.
  template <typename T>
  T* remote_ptr(SymHandle h, int from_pe, int to_pe) {
    if (!nvlink_reachable(from_pe, to_pe)) return nullptr;
    return heap_->view<T>(h, to_pe).data();
  }

  bool nvlink_reachable(int from_pe, int to_pe) const;

  // ---- Signals ------------------------------------------------------
  /// A symmetric array of device-visible signal words.
  struct SignalArray {
    int id = -1;
    int count = 0;
  };
  /// `name` labels the array's Wait spans in the causal trace (each PE's
  /// slot is bound to the trace with its owning device).
  SignalArray alloc_signals(int count, const std::string& name = "sig");
  sim::Signal& signal(SignalArray arr, int pe, int index);
  /// Raw value reset on every PE (between runs; not a synchronizing store).
  void reset_signals(SignalArray arr, std::int64_t value = 0);

  // ---- Proxy thread model (§5.5) -------------------------------------
  void set_proxy_placement(int pe, ProxyPlacement placement);
  ProxyPlacement proxy_placement(int pe) const {
    return proxy_[static_cast<std::size_t>(pe)];
  }
  /// Slowdown factor applied to IB per-message service for this placement.
  static double proxy_slowdown_factor(ProxyPlacement placement);

  // ---- Device-initiated data movement --------------------------------
  /// Non-blocking put of `bytes` from src_pe to dst_pe. `copy` performs the
  /// real data movement at delivery time. `on_delivered` (optional) runs
  /// after delivery on the simulated timeline.
  void put_nbi(int src_pe, int dst_pe, std::size_t bytes,
               std::function<void()> copy,
               std::function<void()> on_delivered = {});

  /// Put + fused receiver notification: after the data is delivered, the
  /// signal word on the *destination* PE is set to sig_value
  /// (nvshmem_float_put_signal_nbi semantics).
  void put_signal_nbi(int src_pe, int dst_pe, std::size_t bytes,
                      std::function<void()> copy, sim::Signal& signal,
                      std::int64_t sig_value,
                      std::function<void()> on_delivered = {});

  /// Signal-only op (nvshmemx_signal_op analogue) — still a network message
  /// on IB, a plain remote store on NVLink.
  void signal_op(int src_pe, int dst_pe, sim::Signal& signal,
                 std::int64_t sig_value);

  /// TMA-like bulk async store over NVLink: fine-grained chunked transfer,
  /// no SM occupancy while in flight. Precondition: NVLink-reachable.
  void tma_store_async(int src_pe, int dst_pe, std::size_t bytes,
                       std::function<void()> copy,
                       std::function<void()> on_complete = {});

  /// TMA-like bulk async load (get) over NVLink into local (shared) memory.
  void tma_load_async(int dst_pe, int src_pe, std::size_t bytes,
                      std::function<void()> copy,
                      std::function<void()> on_complete = {});

  // ---- Teams (the §7 team-based allocation extension) -----------------
  /// Create a team over an ordered subset of PEs with its own symmetric
  /// heap (nvshmem_team_split + team-scoped nvshmem_malloc analogue).
  /// The world owns the team.
  class Team& create_team(std::vector<int> members,
                          std::size_t heap_bytes = 16u << 20);

  // ---- Buffer registration (nvshmemx_buffer_register) -----------------
  /// Register a local (non-symmetric) buffer so it may be used as a put
  /// *source* (§5.3: "the source buffer can be non-symmetric allocation
  /// registered using nvshmemx_buffer_register"). Destinations must remain
  /// symmetric; this registry exists for API fidelity and assertions.
  void register_buffer(int pe, const void* base, std::size_t bytes);
  void unregister_buffer(int pe, const void* base);
  bool is_registered(int pe, const void* ptr) const;

  // ---- Host-side collectives -----------------------------------------
  /// Awaitable world barrier for host tasks (the paper's CPU-based PE sync
  /// used to curb SM resource competition, §7).
  auto barrier_all() { return host_barrier_->arrive_and_wait(); }

  // ---- Observability ---------------------------------------------------
  /// Per-op call/byte totals since construction (or the last reset).
  /// SignalWait counts acquire-waits on world-owned signal words, summed
  /// at query time.
  WorldCounters counters() const;
  /// One issuing PE's raw counter row, before the signal-wait fold-in that
  /// counters() performs. Rows are lane-homed, so workers=1 and workers=N
  /// must produce identical rows per PE (asserted by parallel_parity_test).
  const WorldCounters& counter_row_of(int pe) const {
    return counter_rows_[static_cast<std::size_t>(pe)];
  }
  void reset_counters();

 private:
  int messages_for(std::size_t bytes, int chunk_bytes) const;
  /// Account an op to the *issuing* PE's counter row. Rows are per PE so
  /// that partitioned lanes never write a shared accumulator; counters()
  /// sums them in PE order (deterministic either way).
  void count(int pe, PgasOp op, std::size_t bytes);
  /// Issue the fabric transfer for a put-shaped op (shared by put_nbi,
  /// put_signal_nbi, and signal_op so each counts as its own op). The
  /// optional signal rides on the TransferRequest — the fabric stores it
  /// after delivery, so no composed closure is needed per put-with-signal.
  void issue_put(int src_pe, int dst_pe, std::size_t bytes,
                 std::function<void()> deliver,
                 std::function<void()> on_delivered, const char* label,
                 sim::Signal* signal = nullptr, std::int64_t sig_value = 0);

  sim::Machine* machine_;
  std::unique_ptr<SymmetricHeap> heap_;
  std::vector<std::unique_ptr<sim::Signal>> signals_;  // id*n_pes + pe layout
  std::vector<int> signal_array_offsets_;              // id -> first slot
  std::vector<ProxyPlacement> proxy_;
  struct Registration {
    const void* base;
    std::size_t bytes;
  };
  std::vector<std::vector<Registration>> registered_;  // per PE
  std::unique_ptr<sim::BlockBarrier> host_barrier_;
  std::vector<std::unique_ptr<class Team>> teams_;
  std::vector<WorldCounters> counter_rows_;  // per issuing PE
  std::uint64_t wait_base_ = 0;  // signal waits consumed by reset_counters

  /// Telemetry ids for one issuing PE's lane registry (mirrors
  /// counter_rows_; empty = machine telemetry disabled at construction).
  /// Op series use *global* names (`pgas.<op>.calls`) so the lane rows
  /// merge into world totals; the signal-wait stall histogram is
  /// device-qualified (`pgas.d<pe>.signal_wait_ns`) and handed to every
  /// signal word the PE owns.
  struct PeTelemetry {
    util::telemetry::Registry* reg = nullptr;
    std::array<util::telemetry::MetricId, kPgasOpCount> calls;
    std::array<util::telemetry::MetricId, kPgasOpCount> bytes;
    util::telemetry::MetricId signal_wait;
  };
  std::vector<PeTelemetry> telemetry_;
};

}  // namespace hs::pgas
