// PGAS teams: collective allocation restricted to a subset of PEs.
//
// The paper (§5.3) hits NVSHMEM's world-wide symmetric-allocation model
// head on: "NVSHMEM's COMM_WORLD-wide symmetric allocation model prevents
// selective PP/PME participation: PP-only symmetric destination buffers
// would require redundant PME allocations and vice versa", and §7 hopes
// "that this drawback can be resolved with a team-based allocation
// extension in NVSHMEM". This module implements that extension in the
// simulated PGAS layer: a Team is an ordered subset of world PEs with its
// own symmetric heap, so PP-only buffers cost nothing on PME PEs.
#pragma once

#include <memory>
#include <vector>

#include "pgas/symmetric_heap.hpp"
#include "pgas/world.hpp"

namespace hs::pgas {

class Team {
 public:
  /// Created via World::create_team.
  Team(World& world, std::vector<int> members, std::size_t heap_bytes);

  int size() const { return static_cast<int>(members_.size()); }
  const std::vector<int>& members() const { return members_; }

  /// World PE id of team member `index`.
  int world_pe(int index) const {
    return members_[static_cast<std::size_t>(index)];
  }
  /// Team index of a world PE, or -1 if not a member
  /// (nvshmem_team_my_pe analogue).
  int index_of(int world_pe) const;
  bool contains(int world_pe) const { return index_of(world_pe) >= 0; }

  /// Team-collective symmetric allocation: reserves storage on member PEs
  /// only. Handles are valid only with this team's view/remote_ptr.
  SymHandle alloc(std::size_t bytes, std::size_t align = 64) {
    return heap_->alloc(bytes, align);
  }

  /// Local view on team member `index`.
  template <typename T>
  std::span<T> view(SymHandle h, int index) {
    return heap_->view<T>(h, index);
  }

  /// Direct pointer to member `to_index`'s copy iff NVLink-reachable from
  /// member `from_index` (nvshmem_ptr over a team).
  template <typename T>
  T* remote_ptr(SymHandle h, int from_index, int to_index) {
    if (!world_->nvlink_reachable(world_pe(from_index), world_pe(to_index))) {
      return nullptr;
    }
    return heap_->view<T>(h, to_index).data();
  }

  /// Bytes committed per member PE (tests / accounting).
  std::size_t allocated_bytes() const { return heap_->allocated(); }

 private:
  World* world_;
  std::vector<int> members_;
  std::unique_ptr<SymmetricHeap> heap_;  // one arena per member
};

}  // namespace hs::pgas
