#include "pgas/world.hpp"

#include "pgas/team.hpp"

#include <cassert>
#include <ostream>

namespace hs::pgas {

std::string to_string(PgasOp op) {
  switch (op) {
    case PgasOp::Put: return "put";
    case PgasOp::PutSignal: return "put_signal_nbi";
    case PgasOp::Get: return "get";
    case PgasOp::TmaStore: return "tma_store";
    case PgasOp::SignalOp: return "signal_op";
    case PgasOp::SignalWait: return "signal_wait";
  }
  return "?";
}

void print_counters(std::ostream& os, const WorldCounters& counters) {
  os << "pgas counters:\n";
  for (int i = 0; i < kPgasOpCount; ++i) {
    const auto op = static_cast<PgasOp>(i);
    const OpCounters& c = counters.op(op);
    if (c.calls == 0) continue;
    os << "  " << to_string(op) << ": " << c.calls << " calls";
    if (op != PgasOp::SignalWait) os << ", " << c.bytes << " bytes";
    os << "\n";
  }
  if (counters.total_calls() == 0) os << "  (no operations)\n";
}

World::World(sim::Machine& machine, std::size_t heap_bytes_per_pe,
             ArenaPool* arena_pool)
    : machine_(&machine),
      heap_(std::make_unique<SymmetricHeap>(machine.device_count(),
                                            heap_bytes_per_pe, arena_pool)),
      proxy_(static_cast<std::size_t>(machine.device_count()),
             ProxyPlacement::RankPinned),
      registered_(static_cast<std::size_t>(machine.device_count())),
      host_barrier_(std::make_unique<sim::BlockBarrier>(machine.engine(),
                                                        machine.device_count())),
      counter_rows_(static_cast<std::size_t>(machine.device_count())) {
  if (machine.telemetry_enabled()) {
    telemetry_.resize(static_cast<std::size_t>(n_pes()));
    for (int pe = 0; pe < n_pes(); ++pe) {
      PeTelemetry& t = telemetry_[static_cast<std::size_t>(pe)];
      t.reg = &machine.telemetry_row(pe);
      for (int i = 0; i < kPgasOpCount; ++i) {
        const auto op = static_cast<PgasOp>(i);
        if (op == PgasOp::SignalWait) continue;  // tracked via stall hist
        const std::string base = "pgas." + to_string(op);
        t.calls[static_cast<std::size_t>(i)] =
            t.reg->counter(base + ".calls", "ops");
        t.bytes[static_cast<std::size_t>(i)] =
            t.reg->counter(base + ".bytes", "bytes");
      }
      t.signal_wait = t.reg->histogram(
          "pgas.d" + std::to_string(pe) + ".signal_wait_ns", "ns", pe);
    }
  }
}

World::~World() = default;

bool World::nvlink_reachable(int from_pe, int to_pe) const {
  return machine_->topology().link(device_of(from_pe), device_of(to_pe)) !=
         sim::LinkType::IB;
}

World::SignalArray World::alloc_signals(int count, const std::string& name) {
  assert(count > 0);
  SignalArray arr;
  arr.id = static_cast<int>(signal_array_offsets_.size());
  arr.count = count;
  signal_array_offsets_.push_back(
      static_cast<int>(signals_.size() / static_cast<std::size_t>(n_pes())));
  for (int i = 0; i < count * n_pes(); ++i) {
    // Slot layout is index-major (slot*n_pes + pe): PE i%n_pes owns this
    // word — it lives on that PE's lane engine (waits and wakes are
    // lane-local; remote setters reach it via the fabric), and its blocked
    // waits show up on that device in the trace.
    const int owner = i % n_pes();
    auto sig = std::make_unique<sim::Signal>(machine_->device_engine(owner));
    sig->bind_trace(&machine_->device_trace(owner), owner,
                    name + "[" + std::to_string(i / n_pes()) + "]");
    if (!telemetry_.empty()) {
      const PeTelemetry& t = telemetry_[static_cast<std::size_t>(owner)];
      sig->bind_telemetry(t.reg, t.signal_wait);
    }
    signals_.push_back(std::move(sig));
  }
  return arr;
}

sim::Signal& World::signal(SignalArray arr, int pe, int index) {
  assert(arr.id >= 0 && index >= 0 && index < arr.count);
  assert(pe >= 0 && pe < n_pes());
  const int slot = signal_array_offsets_[static_cast<std::size_t>(arr.id)] + index;
  return *signals_[static_cast<std::size_t>(slot * n_pes() + pe)];
}

void World::reset_signals(SignalArray arr, std::int64_t value) {
  for (int pe = 0; pe < n_pes(); ++pe) {
    for (int i = 0; i < arr.count; ++i) signal(arr, pe, i).reset(value);
  }
}

void World::set_proxy_placement(int pe, ProxyPlacement placement) {
  proxy_[static_cast<std::size_t>(pe)] = placement;
  machine_->fabric().set_proxy_slowdown(device_of(pe),
                                        proxy_slowdown_factor(placement));
}

double World::proxy_slowdown_factor(ProxyPlacement placement) {
  switch (placement) {
    case ProxyPlacement::ReservedCore: return 1.0;
    // The paper saw no benefit of thread-level pinning over rank-level
    // pinning (low OS noise; no socket crossing), so both are healthy.
    case ProxyPlacement::RankPinned: return 1.0;
    // "up to 50x slowdown in our multi-node tests" (§5.5).
    case ProxyPlacement::ContendedCore: return 50.0;
  }
  return 1.0;
}

int World::messages_for(std::size_t bytes, int chunk_bytes) const {
  if (bytes == 0) return 1;
  const auto chunk = static_cast<std::size_t>(chunk_bytes);
  return static_cast<int>((bytes + chunk - 1) / chunk);
}

void World::count(int pe, PgasOp op, std::size_t bytes) {
  OpCounters& c = counter_rows_[static_cast<std::size_t>(pe)].op(op);
  ++c.calls;
  c.bytes += bytes;
  if (!telemetry_.empty()) {
    const PeTelemetry& t = telemetry_[static_cast<std::size_t>(pe)];
    const auto now = machine_->device_engine(pe).now();
    t.reg->add(t.calls[static_cast<std::size_t>(static_cast<int>(op))], now,
               1.0);
    t.reg->add(t.bytes[static_cast<std::size_t>(static_cast<int>(op))], now,
               static_cast<double>(bytes));
  }
}

WorldCounters World::counters() const {
  WorldCounters out;
  for (const auto& row : counter_rows_) {
    for (int i = 0; i < kPgasOpCount; ++i) {
      const auto op = static_cast<PgasOp>(i);
      out.op(op).calls += row.op(op).calls;
      out.op(op).bytes += row.op(op).bytes;
    }
  }
  std::uint64_t waits = 0;
  for (const auto& sig : signals_) waits += sig->wait_count();
  out.op(PgasOp::SignalWait).calls = waits - wait_base_;
  return out;
}

void World::reset_counters() {
  wait_base_ = 0;
  for (const auto& sig : signals_) wait_base_ += sig->wait_count();
  for (auto& row : counter_rows_) row = WorldCounters{};
}

void World::issue_put(int src_pe, int dst_pe, std::size_t bytes,
                      std::function<void()> deliver,
                      std::function<void()> on_delivered, const char* label,
                      sim::Signal* signal, std::int64_t sig_value) {
  sim::TransferRequest req;
  req.src_device = device_of(src_pe);
  req.dst_device = device_of(dst_pe);
  req.bytes = bytes;
  req.num_messages = 1;  // one contiguous RDMA write / remote store burst
  req.label = label;
  req.deliver = std::move(deliver);
  req.signal = signal;
  req.signal_value = sig_value;
  machine_->fabric().transfer(std::move(req), std::move(on_delivered));
}

void World::put_nbi(int src_pe, int dst_pe, std::size_t bytes,
                    std::function<void()> copy,
                    std::function<void()> on_delivered) {
  count(src_pe, PgasOp::Put, bytes);
  issue_put(src_pe, dst_pe, bytes, std::move(copy), std::move(on_delivered),
            "put");
}

void World::put_signal_nbi(int src_pe, int dst_pe, std::size_t bytes,
                           std::function<void()> copy, sim::Signal& signal,
                           std::int64_t sig_value,
                           std::function<void()> on_delivered) {
  count(src_pe, PgasOp::PutSignal, bytes);
  // The signal is delivered with (after) the data in one fused operation —
  // this is the nvshmem put-with-signal completion order guarantee. The
  // fabric enforces the order; no composed closure per call.
  issue_put(src_pe, dst_pe, bytes, std::move(copy), std::move(on_delivered),
            "put_signal", &signal, sig_value);
}

void World::signal_op(int src_pe, int dst_pe, sim::Signal& signal,
                      std::int64_t sig_value) {
  count(src_pe, PgasOp::SignalOp, sizeof(std::int64_t));
  issue_put(src_pe, dst_pe, sizeof(std::int64_t), {}, {}, "signal_op",
            &signal, sig_value);
}

void World::tma_store_async(int src_pe, int dst_pe, std::size_t bytes,
                            std::function<void()> copy,
                            std::function<void()> on_complete) {
  assert(nvlink_reachable(src_pe, dst_pe) &&
         "TMA remote store requires NVLink reachability");
  count(src_pe, PgasOp::TmaStore, bytes);
  sim::TransferRequest req;
  req.src_device = device_of(src_pe);
  req.dst_device = device_of(dst_pe);
  req.bytes = bytes;
  req.num_messages = messages_for(bytes, machine_->cost().tma_chunk_bytes);
  req.label = "tma_store";
  req.deliver = std::move(copy);
  machine_->fabric().transfer(std::move(req), std::move(on_complete));
}

void World::tma_load_async(int dst_pe, int src_pe, std::size_t bytes,
                           std::function<void()> copy,
                           std::function<void()> on_complete) {
  assert(nvlink_reachable(dst_pe, src_pe) &&
         "TMA remote load requires NVLink reachability");
  count(dst_pe, PgasOp::Get, bytes);
  sim::TransferRequest req;
  // A get is modelled as a transfer from the remote source device, but the
  // *destination* PE executes the TMA load — it is the issuing lane.
  req.src_device = device_of(src_pe);
  req.dst_device = device_of(dst_pe);
  req.issue_device = device_of(dst_pe);
  req.bytes = bytes;
  req.num_messages = messages_for(bytes, machine_->cost().tma_chunk_bytes);
  req.label = "tma_get";
  req.deliver = std::move(copy);
  machine_->fabric().transfer(std::move(req), std::move(on_complete));
}

Team& World::create_team(std::vector<int> members, std::size_t heap_bytes) {
  teams_.push_back(std::make_unique<Team>(*this, std::move(members), heap_bytes));
  return *teams_.back();
}

void World::register_buffer(int pe, const void* base, std::size_t bytes) {
  registered_[static_cast<std::size_t>(pe)].push_back({base, bytes});
}

void World::unregister_buffer(int pe, const void* base) {
  auto& regs = registered_[static_cast<std::size_t>(pe)];
  std::erase_if(regs, [base](const Registration& r) { return r.base == base; });
}

bool World::is_registered(int pe, const void* ptr) const {
  for (const auto& r : registered_[static_cast<std::size_t>(pe)]) {
    const auto* lo = static_cast<const std::byte*>(r.base);
    const auto* p = static_cast<const std::byte*>(ptr);
    if (p >= lo && p < lo + r.bytes) return true;
  }
  return false;
}

}  // namespace hs::pgas
