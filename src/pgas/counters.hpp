// PGAS-operation observability counters.
//
// Calls and bytes per NVSHMEM-analogue op, the taxonomy "Demystifying
// NVSHMEM" uses: puts, fused put-with-signal, gets (TMA loads), TMA remote
// stores, signal-only ops, and signal waits. Fabric-level link/NIC
// accounting lives in sim::FabricCounters; this layer attributes the same
// traffic to API operations.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hs::pgas {

enum class PgasOp {
  Put,         // put_nbi
  PutSignal,   // put_signal_nbi (fused data + notification)
  Get,         // tma_load_async (device-initiated bulk get)
  TmaStore,    // tma_store_async (bulk async remote store)
  SignalOp,    // signal_op (notification-only message)
  SignalWait,  // signal_wait_until analogue (waits on world signals)
};
inline constexpr int kPgasOpCount = 6;

std::string to_string(PgasOp op);

struct OpCounters {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};

struct WorldCounters {
  std::array<OpCounters, kPgasOpCount> by_op{};

  OpCounters& op(PgasOp o) { return by_op[static_cast<std::size_t>(o)]; }
  const OpCounters& op(PgasOp o) const {
    return by_op[static_cast<std::size_t>(o)];
  }

  std::uint64_t total_calls() const {
    std::uint64_t n = 0;
    for (const auto& c : by_op) n += c.calls;
    return n;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& c : by_op) n += c.bytes;
    return n;
  }
};

void print_counters(std::ostream& os, const WorldCounters& counters);

}  // namespace hs::pgas
