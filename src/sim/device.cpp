#include "sim/device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hs::sim {

namespace {
// Work below this many nominal nanoseconds counts as finished; absorbs the
// dust left by integer-ns completion rounding.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

Device::Device(Engine& engine, int id, int node, double sm_capacity)
    : engine_(&engine), id_(id), node_(node), sm_capacity_(sm_capacity) {
  assert(sm_capacity_ > 0.0);
}

const Device::Span* Device::find_span(SpanId id) const {
  const auto it = std::lower_bound(
      spans_.begin(), spans_.end(), id,
      [](const Span& s, SpanId target) { return s.id < target; });
  return it != spans_.end() && it->id == id ? &*it : nullptr;
}

Device::Span* Device::find_span(SpanId id) {
  return const_cast<Span*>(std::as_const(*this).find_span(id));
}

void Device::refresh_tier(int priority) {
  // Sum member demands in id order — spans_ is id-sorted, so this is the
  // same left-to-right summation the old per-recompute map walk produced,
  // keeping the cached value bit-identical to a fresh derivation.
  double demand = 0.0;
  bool present = false;
  for (const Span& s : spans_) {
    if (s.priority == priority) {
      demand += s.demand;
      present = true;
    }
  }
  const auto it = std::lower_bound(
      tiers_.begin(), tiers_.end(), priority,
      [](const Tier& t, int target) { return t.priority > target; });
  if (!present) {
    if (it != tiers_.end() && it->priority == priority) tiers_.erase(it);
    return;
  }
  if (it != tiers_.end() && it->priority == priority) {
    it->demand = demand;
  } else {
    tiers_.insert(it, Tier{priority, demand, 0.0});
  }
}

Device::SpanId Device::begin_span(double work_ns, double demand, int priority,
                                  InlineTask on_done) {
  assert(work_ns >= 0.0 && demand > 0.0);
  settle();
  const SpanId id = next_id_++;
  spans_.push_back(
      Span{id, work_ns, demand, priority, 1.0, kNever, std::move(on_done)});
  refresh_tier(priority);
  recompute();
  schedule_check();
  return id;
}

Device::SpanId Device::begin_hold(double demand, int priority) {
  assert(demand > 0.0);
  settle();
  const SpanId id = next_id_++;
  // Infinite remaining work: never completes on its own.
  spans_.push_back(Span{id, std::numeric_limits<double>::infinity(), demand,
                        priority, 1.0, kNever, nullptr});
  refresh_tier(priority);
  recompute();
  schedule_check();
  return id;
}

void Device::end_hold(SpanId id) {
  settle();
  Span* span = find_span(id);
  assert(span != nullptr && "end_hold on unknown span");
  const int priority = span->priority;
  spans_.erase(spans_.begin() + (span - spans_.data()));
  refresh_tier(priority);
  recompute();
  schedule_check();
}

double Device::resident_demand() const {
  double total = 0.0;
  for (const Span& s : spans_) total += s.demand;
  return total;
}

double Device::span_speed(SpanId id) const {
  const Span* span = find_span(id);
  return span != nullptr ? span->speed : 0.0;
}

void Device::settle() {
  const SimTime now = engine_->now();
  const SimTime elapsed = now - last_settle_;
  if (elapsed > 0) {
    for (Span& s : spans_) {
      s.remaining -= static_cast<double>(elapsed) * s.speed;
      if (s.remaining < 0.0) s.remaining = 0.0;
    }
  }
  last_settle_ = now;
}

void Device::recompute() {
  // Priority-tiered proportional sharing: serve tiers from highest priority
  // down; within a tier every span runs at the same fraction of its demand.
  // The per-tier demand sums are already cached; this pass only cascades
  // the capacity allocation (O(tiers)) and refreshes span speeds/finish
  // times (O(spans), no allocation).
  double capacity = sm_capacity_;
  for (Tier& tier : tiers_) {
    const double alloc = std::min(capacity, tier.demand);
    tier.scale = tier.demand > 0.0 ? alloc / tier.demand : 0.0;
    capacity -= alloc;
  }

  const SimTime now = engine_->now();
  min_finish_ = kNever;
  for (Span& s : spans_) {
    // Tier lookup is a linear probe: realistic schedules use <= 3 stream
    // priorities, so this beats any associative structure.
    double scale = 0.0;
    for (const Tier& tier : tiers_) {
      if (tier.priority == s.priority) {
        scale = tier.scale;
        break;
      }
    }
    s.speed = scale;
    if (s.remaining <= kWorkEpsilon) {
      s.finish_at = now;
    } else if (s.speed <= 0.0 || !std::isfinite(s.remaining)) {
      s.finish_at = kNever;  // starved, or an open-ended hold
    } else {
      s.finish_at = now + static_cast<SimTime>(std::ceil(s.remaining / s.speed));
    }
    min_finish_ = std::min(min_finish_, s.finish_at);
  }
}

void Device::schedule_check() {
  if (min_finish_ == kNever) return;
  const std::uint64_t gen = ++sched_gen_;
  engine_->schedule_at(min_finish_, [this, gen] { on_check(gen); });
}

void Device::on_check(std::uint64_t gen) {
  if (gen != sched_gen_) return;  // superseded by a later recompute
  settle();
  const SimTime now = engine_->now();

  // Collect due spans in id order (deterministic), remove them, then fire
  // their callbacks. Callbacks may start new spans reentrantly; that is
  // safe because each mutation re-settles and reschedules. The scratch
  // vector is swapped out (not referenced in place) so its capacity is
  // reused across checks without aliasing reentrant ones.
  std::vector<InlineTask> done = std::move(done_scratch_);
  done.clear();
  bool tiers_dirty[3] = {};  // common case; fallback flag for exotic prios
  std::vector<int> dirty_other;
  const auto due = [&](const Span& s) {
    if (s.finish_at > now) return false;
    if (s.priority >= 0 && s.priority < 3) {
      tiers_dirty[s.priority] = true;
    } else {
      dirty_other.push_back(s.priority);
    }
    return true;
  };
  std::size_t kept = 0;
  for (Span& s : spans_) {
    if (due(s)) {
      done.push_back(std::move(s.on_done));
    } else {
      if (kept != static_cast<std::size_t>(&s - spans_.data())) {
        spans_[kept] = std::move(s);
      }
      ++kept;
    }
  }
  spans_.resize(kept);
  for (int p = 0; p < 3; ++p) {
    if (tiers_dirty[p]) refresh_tier(p);
  }
  for (const int p : dirty_other) refresh_tier(p);
  recompute();
  schedule_check();
  for (InlineTask& fn : done) {
    if (fn) fn();
  }
  done.clear();
  if (done_scratch_.capacity() < done.capacity()) done_scratch_ = std::move(done);
}

}  // namespace hs::sim
