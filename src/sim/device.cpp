#include "sim/device.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace hs::sim {

namespace {
// Work below this many nominal nanoseconds counts as finished; absorbs the
// dust left by integer-ns completion rounding.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

Device::Device(Engine& engine, int id, int node, double sm_capacity)
    : engine_(&engine), id_(id), node_(node), sm_capacity_(sm_capacity) {
  assert(sm_capacity_ > 0.0);
}

Device::SpanId Device::begin_span(double work_ns, double demand, int priority,
                                  std::function<void()> on_done) {
  assert(work_ns >= 0.0 && demand > 0.0);
  settle();
  const SpanId id = next_id_++;
  spans_.emplace(id, Span{work_ns, demand, priority, 1.0, kNever, std::move(on_done)});
  recompute();
  schedule_check();
  return id;
}

Device::SpanId Device::begin_hold(double demand, int priority) {
  assert(demand > 0.0);
  settle();
  const SpanId id = next_id_++;
  // Infinite remaining work: never completes on its own.
  spans_.emplace(id, Span{std::numeric_limits<double>::infinity(), demand,
                          priority, 1.0, kNever, nullptr});
  recompute();
  schedule_check();
  return id;
}

void Device::end_hold(SpanId id) {
  settle();
  const auto it = spans_.find(id);
  assert(it != spans_.end() && "end_hold on unknown span");
  spans_.erase(it);
  recompute();
  schedule_check();
}

double Device::resident_demand() const {
  double total = 0.0;
  for (const auto& [_, s] : spans_) total += s.demand;
  return total;
}

double Device::span_speed(SpanId id) const {
  const auto it = spans_.find(id);
  return it != spans_.end() ? it->second.speed : 0.0;
}

void Device::settle() {
  const SimTime now = engine_->now();
  const SimTime elapsed = now - last_settle_;
  if (elapsed > 0) {
    for (auto& [_, s] : spans_) {
      s.remaining -= static_cast<double>(elapsed) * s.speed;
      if (s.remaining < 0.0) s.remaining = 0.0;
    }
  }
  last_settle_ = now;
}

void Device::recompute() {
  // Priority-tiered proportional sharing: serve tiers from highest priority
  // down; within a tier every span runs at the same fraction of its demand.
  std::vector<int> priorities;
  for (const auto& [_, s] : spans_) priorities.push_back(s.priority);
  std::sort(priorities.begin(), priorities.end(), std::greater<>());
  priorities.erase(std::unique(priorities.begin(), priorities.end()),
                   priorities.end());

  double capacity = sm_capacity_;
  const SimTime now = engine_->now();
  for (int prio : priorities) {
    double tier_demand = 0.0;
    for (const auto& [_, s] : spans_) {
      if (s.priority == prio) tier_demand += s.demand;
    }
    const double alloc = std::min(capacity, tier_demand);
    const double scale = tier_demand > 0.0 ? alloc / tier_demand : 0.0;
    capacity -= alloc;
    for (auto& [_, s] : spans_) {
      if (s.priority != prio) continue;
      s.speed = scale;
      if (s.remaining <= kWorkEpsilon) {
        s.finish_at = now;
      } else if (s.speed <= 0.0 || !std::isfinite(s.remaining)) {
        s.finish_at = kNever;  // starved, or an open-ended hold
      } else {
        s.finish_at = now + static_cast<SimTime>(std::ceil(s.remaining / s.speed));
      }
    }
  }
}

void Device::schedule_check() {
  SimTime next = kNever;
  for (const auto& [_, s] : spans_) next = std::min(next, s.finish_at);
  if (next == kNever) return;
  const std::uint64_t gen = ++sched_gen_;
  engine_->schedule_at(next, [this, gen] { on_check(gen); });
}

void Device::on_check(std::uint64_t gen) {
  if (gen != sched_gen_) return;  // superseded by a later recompute
  settle();
  const SimTime now = engine_->now();

  // Collect due spans in id order (deterministic), remove them, then fire
  // their callbacks. Callbacks may start new spans reentrantly; that is
  // safe because each mutation re-settles and reschedules.
  std::vector<std::function<void()>> done;
  for (auto it = spans_.begin(); it != spans_.end();) {
    if (it->second.finish_at <= now) {
      done.push_back(std::move(it->second.on_done));
      it = spans_.erase(it);
    } else {
      ++it;
    }
  }
  recompute();
  schedule_check();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

}  // namespace hs::sim
