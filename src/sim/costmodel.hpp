// The calibrated cost model.
//
// Every latency/throughput constant the simulation uses lives here, with
// its paper provenance. Defaults target the paper's H100 Eos numbers
// (§3 launch/API overheads; §6.3 per-kernel device timings); a calibration
// test asserts the assembled model lands on the published values.
#pragma once

#include "sim/fabric.hpp"
#include "sim/time.hpp"

namespace hs::sim {

struct CostModel {
  // ---- CPU-side API costs (§3: launches 2-10 us, event mgmt < 1 us) ----
  SimTime kernel_launch_ns = 4000;  // one kernel-launch API call
  SimTime event_api_ns = 600;       // event record/wait/query API call
  SimTime stream_sync_ns = 4000;    // blocking CPU sync entry/exit overhead
  SimTime mpi_call_ns = 4000;       // CPU cost of one MPI send+recv pair
  // Per-message GPU-aware MPI library overhead (rendezvous handshake,
  // progress, staging), applied by msg::Comm on top of the wire time.
  // The intra-node (NVLink) path is markedly slower per message than the
  // tuned IB RDMA path — Open MPI/UCX routes device buffers through the
  // CUDA-IPC staging machinery — which is what makes the paper's intra-node
  // MPI halo so expensive at small sizes (Fig. 6: 116 us for one pulse).
  SimTime mpi_protocol_nvlink_ns = 14000;
  SimTime mpi_protocol_ib_ns = 7000;
  SimTime host_step_overhead_ns = 2000;  // per-step CPU bookkeeping
  SimTime graph_launch_ns = 7000;
  // Device-side per-kernel dispatch overhead (grid setup between the stream
  // becoming ready and the kernel starting). Pre-instantiated graph nodes
  // dispatch much faster — the device-side half of the CUDA-graph benefit.
  SimTime kernel_dispatch_ns = 1200;
  SimTime graph_dispatch_ns = 250;   // one cudaGraphLaunch replacing the
                                    // step's ~20 launch + ~30 event calls
                                    // (§3: CUDA-graph scheduling of a step)

  // ---- Non-bonded force kernels (§6.3: 1.7-2.0 ns/atom local) ----
  double nb_local_ns_per_atom = 1.65;
  double nb_local_overhead_ns = 3500;
  // Non-local pairs involve halo atoms; per-halo-atom cost is higher since
  // pair density at the boundary is similar but list efficiency is lower.
  double nb_nonlocal_ns_per_atom = 1.6;
  double nb_nonlocal_overhead_ns = 9000;
  double bonded_ns_per_atom = 0.18;
  double bonded_overhead_ns = 3000;

  // ---- Pack/unpack and per-step service kernels ----
  double pack_ns_per_atom = 0.25;      // per packed halo atom
  double pack_overhead_ns = 5000;      // kernel ramp-up/down
  double unpack_ns_per_atom = 0.35;    // unpack/accumulate (atomicAdd)
  double unpack_overhead_ns = 5000;
  double integrate_ns_per_atom = 0.30;
  double integrate_overhead_ns = 12000;
  double reduce_ns_per_atom = 0.15;
  double reduce_overhead_ns = 6000;
  double prune_ns_per_atom = 0.25;
  double prune_overhead_ns = 4000;
  double clear_ns_per_atom = 0.06;
  double clear_overhead_ns = 4000;

  // ---- SM demands (fractions of the device) ----
  // At the benchmarked sizes (<= ~100k atoms/GPU) the force kernels do not
  // saturate an H100; co-resident kernels mostly fill idle SMs, so demands
  // sum near 1 and mutual stretching is mild (the latency-hiding the paper
  // leans on).
  double nb_demand = 0.50;        // each force kernel
  double service_demand = 0.30;   // integrate/reduce/prune/clear
  double comm_demand = 0.12;      // fused halo kernels: "NVSHMEM's SM
                                  // resource-sharing overhead" (§6)
  double pack_demand = 0.35;      // MPI-path pack/unpack kernels

  // ---- Device-initiated communication (NVSHMEM-style) ----
  SimTime signal_release_ns = 1000;  // st.release.sys.global
  SimTime signal_relaxed_ns = 400;  // st.relaxed.sys.global
  SimTime signal_poll_ns = 1500;     // acquire-wait granularity: the gap
                                    // between a signal landing and the
                                    // polling warp observing it
  SimTime tma_issue_ns = 500;       // warp-leader cp.async.bulk issue
  SimTime shmem_put_issue_ns = 2000; // device-side nvshmem put ring/doorbell
  int tma_chunk_bytes = 2048 * 12;  // bufLength floats3 per block chunk
  int ib_stage_bytes = 1 << 16;     // staging-buffer coarsening granularity
  double sm_copy_bytes_per_ns = 150.0;  // SM-driven remote-store throughput
                                        // (the non-TMA ablation path)

  // ---- PME kernels (rank-specialized long-range solve, §2.2) ----
  double pme_spread_ns_per_atom = 0.6;   // B-spline charge spreading
  double pme_gather_ns_per_atom = 0.8;   // force interpolation
  double pme_fft_ns_per_point = 0.08;    // one full 3D FFT over the mesh
                                         // (cuFFT-class: 128^3 in ~170 us)
  double pme_conv_ns_per_point = 0.02;   // reciprocal-space convolution
  double pme_kernel_overhead_ns = 4000;

  // ---- Host-initiated copies (thread-MPI DMA / staging) ----
  SimTime dma_setup_ns = 4500;      // copy-engine enqueue-to-start latency
                                    // (the per-pulse overhead the paper says
                                    // the NVSHMEM design eliminates)

  // ---- Fabric link parameters ----
  FabricParams fabric{};

  /// Kernel duration helpers (nominal ns at full speed).
  double nb_local_cost(int local_atoms) const {
    return nb_local_overhead_ns + nb_local_ns_per_atom * local_atoms;
  }
  double nb_nonlocal_cost(int halo_atoms) const {
    return nb_nonlocal_overhead_ns + nb_nonlocal_ns_per_atom * halo_atoms;
  }
  double bonded_cost(int local_atoms) const {
    return bonded_overhead_ns + bonded_ns_per_atom * local_atoms;
  }
  double pack_cost(int atoms) const {
    return pack_overhead_ns + pack_ns_per_atom * atoms;
  }
  double unpack_cost(int atoms) const {
    return unpack_overhead_ns + unpack_ns_per_atom * atoms;
  }
  double integrate_cost(int atoms) const {
    return integrate_overhead_ns + integrate_ns_per_atom * atoms;
  }
  double reduce_cost(int atoms) const {
    return reduce_overhead_ns + reduce_ns_per_atom * atoms;
  }
  double prune_cost(int atoms) const {
    return prune_overhead_ns + prune_ns_per_atom * atoms;
  }
  double clear_cost(int atoms) const {
    return clear_overhead_ns + clear_ns_per_atom * atoms;
  }

  /// Preset tuned against the paper's Eos (DGX-H100, NDR400 IB) numbers.
  static CostModel h100_eos();
  /// Preset for the GB200 NVL72 runs (Fig. 4): faster GPUs, NVLink 5.
  static CostModel gb200_nvl72();
};

}  // namespace hs::sim
