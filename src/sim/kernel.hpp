// Kernel abstraction: a named unit of device work, launched on a stream,
// whose body is a coroutine that may spawn concurrent block-group tasks.
//
// A fused halo-exchange kernel (Algorithm 3/6) is a kernel whose body
// spawns one task per pulse block-group; the kernel completes when all of
// them have finished, which is exactly the semantics of a CUDA grid.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/device.hpp"
#include "sim/inline_task.hpp"
#include "sim/task.hpp"

namespace hs::sim {

class KernelContext;
class KernelInstance;

struct KernelSpec {
  std::string name;
  /// Default SM demand (fraction of the device) charged by Compute awaits
  /// issued from this kernel's tasks unless they override it.
  double sm_demand = 0.5;
  /// The kernel body; runs as a coroutine on the owning device.
  std::function<Task(KernelContext&)> body;
  /// Optional hook invoked when the kernel (body + all spawned block
  /// groups) completes — used e.g. to release occupancy holds.
  std::function<void()> on_complete;
  /// Trace annotation (the MD step this launch belongs to); -1 = untagged.
  std::int64_t tag = -1;
  /// Device-side dispatch overhead before the body starts (grid setup).
  SimTime dispatch_ns = 0;
};

/// co_await Compute{work_ns, demand}: occupy SMs for `work_ns` nominal
/// nanoseconds at the given demand; the actual elapsed time stretches under
/// processor sharing. Perform any real data work *after* the co_await
/// resumes — simulated time is then the span's completion time.
///
/// Deliberately holds no std::function payload: GCC 12 miscompiles
/// coroutine awaitable temporaries with non-trivial function members
/// (double destruction at a shifted address), so awaitables in this
/// codebase carry only trivially-destructible state.
struct Compute {
  double work_ns = 0.0;
  double demand = -1.0;  // < 0: use the kernel's default demand

  bool await_ready() const { return false; }
  void await_suspend(Task::Handle h) const {
    auto& p = h.promise();
    assert(p.ctx.device != nullptr && "Compute awaited outside a device task");
    const double d = demand < 0.0 ? default_demand_hint : demand;
    p.ctx.device->begin_span(work_ns, d, p.ctx.priority, [h] { h.resume(); });
  }
  void await_resume() const {}

  // Populated by KernelContext::compute() so plain Compute{} awaits inside
  // kernels pick up the kernel's declared demand.
  double default_demand_hint = 0.5;
};

/// Handle given to a kernel body: identifies the engine/device/priority and
/// allows spawning concurrent block-group tasks belonging to this kernel.
class KernelContext {
 public:
  Engine& engine() { return *exec_.engine; }
  Device& device() { return *exec_.device; }
  int priority() const { return exec_.priority; }
  double sm_demand() const { return sm_demand_; }
  SimTime now() const { return exec_.engine->now(); }
  const std::string& name() const { return name_; }

  /// Add a concurrent task to this kernel (a "block group"). The kernel
  /// completes only when the body and all spawned tasks are done.
  void spawn(Task task);

  /// Convenience: a Compute awaitable pre-filled with this kernel's demand.
  Compute compute(double work_ns) const {
    Compute c;
    c.work_ns = work_ns;
    c.default_demand_hint = sm_demand_;
    return c;
  }
  Compute compute_with_demand(double work_ns, double demand) const {
    Compute c;
    c.work_ns = work_ns;
    c.demand = demand;
    c.default_demand_hint = sm_demand_;
    return c;
  }

 private:
  friend class KernelInstance;
  ExecContext exec_;
  double sm_demand_ = 0.5;
  std::string name_;
  KernelInstance* instance_ = nullptr;
};

/// Internal: a launched kernel in flight. Owned by the stream, which reuses
/// one instance per stream across launches (see reset) so back-to-back
/// kernels perform no per-launch heap allocation for the instance itself.
class KernelInstance {
 public:
  KernelInstance(Engine& engine, Device& device, int priority, KernelSpec spec,
                 InlineTask on_complete);

  /// Rebind a completed (or never-started) instance to a new launch,
  /// reusing the task-vector storage. The engine/device/priority binding is
  /// fixed at construction — an instance is only ever reused by its own
  /// stream.
  void reset(KernelSpec spec, InlineTask on_complete);

  /// Start the body coroutine. Called by the stream when the kernel reaches
  /// the head of the queue.
  void start();

  void add_task(Task task);

  const std::string& name() const { return spec_.name; }
  /// Transfer the kernel name out (for the trace record of a finished
  /// kernel; the spec is dead weight after completion).
  std::string take_name() { return std::move(spec_.name); }
  std::int64_t tag() const { return spec_.tag; }
  SimTime dispatch_ns() const { return spec_.dispatch_ns; }
  SimTime started_at() const { return started_at_; }

 private:
  void task_finished();

  Engine* engine_;
  KernelContext ctx_;
  KernelSpec spec_;
  InlineTask on_complete_;
  std::vector<Task> tasks_;
  int pending_ = 0;
  bool body_started_ = false;
  SimTime started_at_ = -1;
};

inline void KernelContext::spawn(Task task) { instance_->add_task(std::move(task)); }

}  // namespace hs::sim
