#include "sim/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

namespace hs::sim {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome-trace timestamps are microseconds; keep ns resolution as
// fractional microseconds without floating-point formatting surprises.
std::string us(SimTime ns) {
  const SimTime whole = ns / 1000;
  const SimTime frac = ns % 1000;
  std::string out = std::to_string(whole);
  if (frac != 0) {
    std::string f = std::to_string(frac);
    out += "." + std::string(3 - f.size(), '0') + f;
  }
  return out;
}

// Counter values: integers print exactly (the common case — event counts,
// byte totals), anything else round-trips through %.17g.
std::string num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -9.0e15 && v < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void ChromeTraceWriter::add(const Trace& trace, std::string label) {
  Source src;
  src.records = trace.records();
  src.edges = trace.edges();
  src.label = std::move(label);
  src.pid_base = next_pid_;
  for (const auto& rec : src.records) {
    src.max_device = std::max(src.max_device, rec.device);
  }
  next_pid_ += src.max_device + 2;  // disjoint pid range per source
  sources_.push_back(std::move(src));
}

void ChromeTraceWriter::add_counters(
    const util::telemetry::Registry& registry) {
  if (sources_.empty() || !registry.enabled()) return;
  Source& src = sources_.back();
  const SimTime window = registry.window_ns();
  // A counter naming a device the trace never saw still needs a pid inside
  // this source's range — grow it up front (valid while this source is the
  // last one, which attaching to sources_.back() guarantees) so the global
  // pseudo-pid below is stable across metrics.
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& m = registry.metric(i);
    if (m.domain == util::telemetry::Domain::Host) continue;
    if (m.device > src.max_device) {
      next_pid_ += m.device - src.max_device;
      src.max_device = m.device;
    }
  }
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& m = registry.metric(i);
    if (m.domain == util::telemetry::Domain::Host) continue;
    // Device-qualified counters ride their device's pid; device -1
    // (global) rides the pseudo-process one past the last device.
    const int pid = m.device >= 0 ? src.pid_base + m.device
                                  : src.pid_base + src.max_device + 1;
    for (const auto& b : m.series.buckets()) {
      const double value =
          m.kind == util::telemetry::Kind::Gauge && b.count > 0
              ? b.sum / static_cast<double>(b.count)
              : b.sum;
      src.counters.push_back(
          CounterSample{m.name, pid, b.index * window, value});
    }
  }
}

std::size_t ChromeTraceWriter::event_count() const {
  std::size_t n = 0;
  for (const auto& src : sources_) n += src.records.size();
  return n;
}

std::size_t ChromeTraceWriter::edge_count() const {
  std::size_t n = 0;
  for (const auto& src : sources_) n += src.edges.size();
  return n;
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  std::uint64_t flow_id = 1;  // unique per s/f pair across all sources
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& src : sources_) {
    // tids per (pid, stream name), in first-appearance order (stable across
    // runs because the trace itself is deterministic).
    std::map<std::pair<int, std::string>, int> tids;
    std::map<int, int> tids_used;
    for (const auto& rec : src.records) {
      const int pid = src.pid_base + rec.device;
      auto [it, inserted] = tids.try_emplace({pid, rec.stream}, 0);
      if (inserted) {
        it->second = ++tids_used[pid];
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << it->second << ",\"args\":{\"name\":\""
           << escape(rec.stream) << "\"}}";
      }
    }
    // Process-name metadata for every device that appeared (in records or
    // counter samples; the global telemetry pseudo-pid sits one past the
    // last device).
    std::map<int, bool> pids;
    for (const auto& rec : src.records) pids[src.pid_base + rec.device] = true;
    for (const auto& c : src.counters) pids[c.pid] = true;
    for (const auto& [pid, _] : pids) {
      const int device = pid - src.pid_base;
      std::string name = device == src.max_device + 1
                             ? "telemetry"
                             : "dev" + std::to_string(device);
      if (!src.label.empty()) name = src.label + " " + name;
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"args\":{\"name\":\"" << escape(name) << "\"}}";
    }
    for (const auto& c : src.counters) {
      sep();
      os << "{\"name\":\"" << escape(c.name)
         << "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":" << us(c.ts)
         << ",\"pid\":" << c.pid << ",\"args\":{\"value\":" << num(c.value)
         << "}}";
    }
    std::map<std::uint64_t, const TraceRecord*> by_span;
    for (const auto& rec : src.records) {
      const int pid = src.pid_base + rec.device;
      const int tid = tids.at({pid, rec.stream});
      if (rec.span != 0) by_span.emplace(rec.span, &rec);
      const char* cat = "kernel";
      if (rec.kind == SpanKind::Transfer) cat = "transfer";
      if (rec.kind == SpanKind::Wait) cat = "wait";
      sep();
      os << "{\"name\":\"" << escape(rec.name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"X\",\"ts\":" << us(rec.begin)
         << ",\"dur\":" << us(rec.end - rec.begin) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"step\":" << rec.step
         << ",\"span\":" << rec.span << "}}";
    }
    // Causal edges as Perfetto flow pairs: the start binds to the end of
    // the producing span, the finish (bp:"e" = enclosing slice) to the
    // start of the consumer.
    for (const auto& edge : src.edges) {
      const auto s = by_span.find(edge.src);
      const auto f = by_span.find(edge.dst);
      if (s == by_span.end() || f == by_span.end()) continue;
      const auto emit = [&](const char* ph, const TraceRecord& rec,
                            SimTime ts) {
        const int pid = src.pid_base + rec.device;
        const int tid = tids.at({pid, rec.stream});
        sep();
        os << "{\"name\":\"" << to_string(edge.kind)
           << "\",\"cat\":\"flow\",\"ph\":\"" << ph << "\",\"id\":" << flow_id;
        if (ph[0] == 'f') os << ",\"bp\":\"e\"";
        os << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << us(ts)
           << "}";
      };
      // Keep the pair time-ordered (a wait span begins before the transfer
      // that releases it ends) while still binding inside the dst slice.
      const SimTime f_ts = std::min(
          std::max(f->second->begin, s->second->end), f->second->end);
      emit("s", *s->second, s->second->end);
      emit("f", *f->second, f_ts);
      ++flow_id;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

void write_chrome_trace(const Trace& trace, std::ostream& os) {
  ChromeTraceWriter writer;
  writer.add(trace);
  writer.write(os);
}

}  // namespace hs::sim
