#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

namespace hs::sim {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome-trace timestamps are microseconds; keep ns resolution as
// fractional microseconds without floating-point formatting surprises.
std::string us(SimTime ns) {
  const SimTime whole = ns / 1000;
  const SimTime frac = ns % 1000;
  std::string out = std::to_string(whole);
  if (frac != 0) {
    std::string f = std::to_string(frac);
    out += "." + std::string(3 - f.size(), '0') + f;
  }
  return out;
}

}  // namespace

void ChromeTraceWriter::add(const Trace& trace, std::string label) {
  Source src;
  src.records = trace.records();
  src.label = std::move(label);
  src.pid_base = next_pid_;
  int max_device = -1;
  for (const auto& rec : src.records) {
    max_device = std::max(max_device, rec.device);
  }
  next_pid_ += max_device + 2;  // disjoint pid range per source
  sources_.push_back(std::move(src));
}

std::size_t ChromeTraceWriter::event_count() const {
  std::size_t n = 0;
  for (const auto& src : sources_) n += src.records.size();
  return n;
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& src : sources_) {
    // tids per (pid, stream name), in first-appearance order (stable across
    // runs because the trace itself is deterministic).
    std::map<std::pair<int, std::string>, int> tids;
    std::map<int, int> tids_used;
    for (const auto& rec : src.records) {
      const int pid = src.pid_base + rec.device;
      auto [it, inserted] = tids.try_emplace({pid, rec.stream}, 0);
      if (inserted) {
        it->second = ++tids_used[pid];
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << it->second << ",\"args\":{\"name\":\""
           << escape(rec.stream) << "\"}}";
      }
    }
    // Process-name metadata for every device that appeared.
    std::map<int, bool> pids;
    for (const auto& rec : src.records) pids[src.pid_base + rec.device] = true;
    for (const auto& [pid, _] : pids) {
      const int device = pid - src.pid_base;
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"args\":{\"name\":\""
         << escape(src.label.empty()
                       ? "dev" + std::to_string(device)
                       : src.label + " dev" + std::to_string(device))
         << "\"}}";
    }
    for (const auto& rec : src.records) {
      const int pid = src.pid_base + rec.device;
      const int tid = tids.at({pid, rec.stream});
      sep();
      os << "{\"name\":\"" << escape(rec.name)
         << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":" << us(rec.begin)
         << ",\"dur\":" << us(rec.end - rec.begin) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"step\":" << rec.step << "}}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

void write_chrome_trace(const Trace& trace, std::ostream& os) {
  ChromeTraceWriter writer;
  writer.add(trace);
  writer.write(os);
}

}  // namespace hs::sim
