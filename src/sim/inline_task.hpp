// InlineTask: the simulator's move-only callback type.
//
// The DES hot path (engine events, span completions, signal wakes) fires
// tens of millions of one-shot callbacks per figure reproduction. A
// std::function there costs a heap allocation whenever the capture exceeds
// the library's tiny SBO (16 bytes on libstdc++) and a manager-dispatched
// move every time the binary heap rebalances. InlineTask fixes the size
// for the common case instead:
//
//  * captures up to kInlineBytes (48) with a nothrow move constructor are
//    stored inline — no allocation, and trivially-copyable captures
//    relocate with a plain memcpy (manage_ == nullptr);
//  * larger captures go to a slab: fixed 128-byte blocks carved from
//    chunks and recycled through a free list, so even the overflow path
//    settles into zero steady-state allocations. Each Engine owns a slab
//    and installs it (TaskSlab::Scope) while constructing or running
//    events, so partitioned parallel runs keep slab traffic lane-local;
//    code with no engine context falls back to one process-wide slab.
//    Every block carries a header naming its owning slab, so a task
//    allocated under one engine and destroyed under another (or on the
//    coordinator thread) still returns its block to the right free list.
//    Captures above the slab block size fall back to operator new.
//
// InlineTask converts implicitly from any callable — including a moved-in
// std::function, which at 32 bytes lands inline — so it is a drop-in
// replacement for std::function<void()> parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hs::sim {

namespace detail {

/// Free-list slab for InlineTask overflow captures. Instances are owned by
/// Engines (one slab per lane in partitioned runs) and installed via Scope;
/// allocate()/deallocate() route through the installed slab, falling back
/// to a process-wide slab when no engine context is active (setup code,
/// standalone tests). Each block is prefixed by a header naming its owning
/// slab, so deallocation always returns the block to the slab that carved
/// it — regardless of which thread or engine context performs the free.
/// Free-list operations take the owning slab's mutex; the overflow path is
/// off the hot path (captures ≤ 48 bytes stay inline), so the uncontended
/// lock is noise.
class TaskSlab {
 public:
  static constexpr std::size_t kBlockBytes = 128;
  static constexpr std::size_t kBlocksPerChunk = 64;

  TaskSlab() = default;
  TaskSlab(const TaskSlab&) = delete;
  TaskSlab& operator=(const TaskSlab&) = delete;

  static void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > kBlockBytes || align > alignof(std::max_align_t)) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    TaskSlab* slab = t_current != nullptr ? t_current : &fallback();
    return slab->allocate_block();
  }

  static void deallocate(void* p, std::size_t bytes,
                         std::size_t align) noexcept {
    if (bytes > kBlockBytes || align > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t{align});
      return;
    }
    // The header, not the installed slab, decides where the block goes
    // back: tasks may outlive the engine context they were created under.
    Header* header = reinterpret_cast<Header*>(
        static_cast<std::byte*>(p) - sizeof(Header));
    header->owner->release_block(p);
  }

  /// Blocks currently sitting in the free list of the slab allocate()
  /// would use right now (introspection for tests).
  static std::size_t free_blocks() {
    TaskSlab* slab = t_current != nullptr ? t_current : &fallback();
    return slab->free_block_count();
  }

  std::size_t free_block_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (Block* b = free_; b != nullptr; b = b->next) ++n;
    return n;
  }

  /// Installs a slab as the allocation target for the current thread while
  /// in scope (engines wrap event construction and execution in one).
  class Scope {
   public:
    explicit Scope(TaskSlab* slab) noexcept : prev_(t_current) {
      t_current = slab;
    }
    ~Scope() { t_current = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TaskSlab* prev_;
  };

  /// The process-wide slab used when no engine context is installed.
  static TaskSlab& fallback() {
    static TaskSlab slab;
    return slab;
  }

 private:
  // Blocks are carved with a max_align_t-aligned header in front of the
  // payload; the payload pointer is what allocate() hands out, so payload
  // alignment stays alignof(max_align_t).
  struct Header {
    TaskSlab* owner;
    void* reserved;  // pads the header to 16 bytes / max_align_t
  };
  static constexpr std::size_t kStride = sizeof(Header) + kBlockBytes;
  static_assert(sizeof(Header) % alignof(std::max_align_t) == 0);

  struct Block {
    Block* next;
  };
  struct ChunkDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
    }
  };

  void* allocate_block() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_ == nullptr) grow();
    Block* block = free_;
    free_ = block->next;
    return block;
  }

  void release_block(void* payload) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    Block* block = static_cast<Block*>(payload);
    block->next = free_;
    free_ = block;
  }

  void grow() {
    auto* raw = static_cast<std::byte*>(::operator new(
        kStride * kBlocksPerChunk,
        std::align_val_t{alignof(std::max_align_t)}));
    chunks_.emplace_back(raw);
    for (std::size_t i = kBlocksPerChunk; i-- > 0;) {
      auto* header = reinterpret_cast<Header*>(raw + i * kStride);
      header->owner = this;
      auto* block =
          reinterpret_cast<Block*>(raw + i * kStride + sizeof(Header));
      block->next = free_;
      free_ = block;
    }
  }

  inline static thread_local TaskSlab* t_current = nullptr;

  mutable std::mutex mu_;
  Block* free_ = nullptr;
  std::vector<std::unique_ptr<std::byte, ChunkDeleter>> chunks_;
};

}  // namespace detail

class InlineTask {
 public:
  /// Captures up to this size (with a nothrow move) are stored inline.
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() noexcept = default;
  InlineTask(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineTask(F&& f) {  // NOLINT: implicit, drop-in for std::function params
    construct(std::forward<F>(f));
  }

  /// Assign a callable in place (used by the engine's slot pool to build
  /// the capture directly in its slot, skipping intermediate moves).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineTask& operator=(F&& f) {
    reset();
    construct(std::forward<F>(f));
    return *this;
  }

 private:
  template <typename F>
  void construct(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      if constexpr (sizeof(Fn) < kInlineBytes) {
        // Moves relocate the whole fixed-size buffer (one unrolled memcpy,
        // no per-type dispatch); zero the tail so they read defined bytes.
        std::memset(storage_.inline_bytes + sizeof(Fn), 0,
                    kInlineBytes - sizeof(Fn));
      }
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(f));
      invoke_ = [](InlineTask& self) {
        (*std::launder(
            reinterpret_cast<Fn*>(self.storage_.inline_bytes)))();
      };
      if constexpr (!trivially_relocatable<Fn>()) {
        manage_ = [](Action action, InlineTask& self, InlineTask* other) {
          Fn* fn =
              std::launder(reinterpret_cast<Fn*>(self.storage_.inline_bytes));
          if (action == Action::kMove) {
            ::new (static_cast<void*>(other->storage_.inline_bytes))
                Fn(std::move(*fn));
          }
          fn->~Fn();
        };
      }
    } else {
      void* mem = detail::TaskSlab::allocate(sizeof(Fn), alignof(Fn));
      storage_.heap = ::new (mem) Fn(std::forward<F>(f));
      heap_ = true;
      invoke_ = [](InlineTask& self) {
        (*static_cast<Fn*>(self.storage_.heap))();
      };
      manage_ = [](Action action, InlineTask& self, InlineTask* other) {
        if (action == Action::kMove) {
          other->storage_.heap = self.storage_.heap;
          return;  // ownership transferred; no destruction
        }
        Fn* fn = static_cast<Fn*>(self.storage_.heap);
        fn->~Fn();
        detail::TaskSlab::deallocate(fn, sizeof(Fn), alignof(Fn));
      };
    }
  }

 public:
  InlineTask(InlineTask&& other) noexcept { move_from(other); }
  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;
  ~InlineTask() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(*this); }

  /// True when the capture lives in the inline buffer (tests).
  bool is_inline() const noexcept { return invoke_ != nullptr && !heap_; }

  /// True when this object can be relocated by copying its bytes and
  /// abandoning the source without running its destructor: empty tasks,
  /// trivially-copyable inline captures (manage_ == nullptr), and slab
  /// captures (a pointer transfer). The engine's slot pool grows with a
  /// plain memcpy for such slots instead of per-element move dispatch.
  bool memcpy_relocatable() const noexcept {
    return manage_ == nullptr || heap_;
  }

  /// Compile-time form of memcpy_relocatable() for a capture type: true
  /// unless Fn lands inline with a non-trivial manager. Lets the engine
  /// count "sticky" (non-relocatable) slots incrementally instead of
  /// scanning the pool on every growth.
  template <typename Fn>
  static constexpr bool capture_memcpy_relocatable() {
    return !fits_inline<Fn>() || trivially_relocatable<Fn>();
  }

 private:
  enum class Action : std::uint8_t { kMove, kDestroy };
  using InvokeFn = void (*)(InlineTask&);
  using ManageFn = void (*)(Action, InlineTask&, InlineTask*);

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }
  template <typename Fn>
  static constexpr bool trivially_relocatable() {
    return std::is_trivially_copyable_v<Fn> &&
           std::is_trivially_destructible_v<Fn>;
  }

  void move_from(InlineTask& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        // Trivially relocatable inline capture.
        std::memcpy(storage_.inline_bytes, other.storage_.inline_bytes,
                    kInlineBytes);
      } else {
        other.manage_(Action::kMove, other, this);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Action::kDestroy, *this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

  union Storage {
    alignas(std::max_align_t) std::byte inline_bytes[kInlineBytes];
    void* heap;
  };
  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool heap_ = false;
};

}  // namespace hs::sim
