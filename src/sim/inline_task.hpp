// InlineTask: the simulator's move-only callback type.
//
// The DES hot path (engine events, span completions, signal wakes) fires
// tens of millions of one-shot callbacks per figure reproduction. A
// std::function there costs a heap allocation whenever the capture exceeds
// the library's tiny SBO (16 bytes on libstdc++) and a manager-dispatched
// move every time the binary heap rebalances. InlineTask fixes the size
// for the common case instead:
//
//  * captures up to kInlineBytes (48) with a nothrow move constructor are
//    stored inline — no allocation, and trivially-copyable captures
//    relocate with a plain memcpy (manage_ == nullptr);
//  * larger captures go to a thread-local slab: fixed 128-byte blocks
//    carved from 8 KiB chunks and recycled through a free list, so even
//    the overflow path settles into zero steady-state allocations. Blocks
//    above the slab size (rare; asserts in debug that you notice) fall
//    back to operator new.
//
// InlineTask converts implicitly from any callable — including a moved-in
// std::function, which at 32 bytes lands inline — so it is a drop-in
// replacement for std::function<void()> parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hs::sim {

namespace detail {

/// Thread-local free-list slab for InlineTask overflow captures. The
/// simulator is single-threaded per Engine, so thread_local state needs no
/// locking; memory is returned to the OS at thread exit (keeps the
/// sanitizer build leak-clean).
class TaskSlab {
 public:
  static constexpr std::size_t kBlockBytes = 128;
  static constexpr std::size_t kBlocksPerChunk = 64;

  static void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > kBlockBytes || align > alignof(std::max_align_t)) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    TaskSlab& slab = instance();
    if (slab.free_ == nullptr) slab.grow();
    Block* block = slab.free_;
    slab.free_ = block->next;
    return block;
  }

  static void deallocate(void* p, std::size_t bytes,
                         std::size_t align) noexcept {
    if (bytes > kBlockBytes || align > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t{align});
      return;
    }
    TaskSlab& slab = instance();
    Block* block = static_cast<Block*>(p);
    block->next = slab.free_;
    slab.free_ = block;
  }

  /// Blocks currently sitting in the free list (introspection for tests).
  static std::size_t free_blocks() {
    std::size_t n = 0;
    for (Block* b = instance().free_; b != nullptr; b = b->next) ++n;
    return n;
  }

 private:
  struct Block {
    Block* next;
  };
  struct ChunkDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
    }
  };

  static TaskSlab& instance() {
    static thread_local TaskSlab slab;
    return slab;
  }

  void grow() {
    auto* raw = static_cast<std::byte*>(::operator new(
        kBlockBytes * kBlocksPerChunk,
        std::align_val_t{alignof(std::max_align_t)}));
    chunks_.emplace_back(raw);
    for (std::size_t i = kBlocksPerChunk; i-- > 0;) {
      auto* block = reinterpret_cast<Block*>(raw + i * kBlockBytes);
      block->next = free_;
      free_ = block;
    }
  }

  Block* free_ = nullptr;
  std::vector<std::unique_ptr<std::byte, ChunkDeleter>> chunks_;
};

}  // namespace detail

class InlineTask {
 public:
  /// Captures up to this size (with a nothrow move) are stored inline.
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() noexcept = default;
  InlineTask(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineTask(F&& f) {  // NOLINT: implicit, drop-in for std::function params
    construct(std::forward<F>(f));
  }

  /// Assign a callable in place (used by the engine's slot pool to build
  /// the capture directly in its slot, skipping intermediate moves).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineTask& operator=(F&& f) {
    reset();
    construct(std::forward<F>(f));
    return *this;
  }

 private:
  template <typename F>
  void construct(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      if constexpr (sizeof(Fn) < kInlineBytes) {
        // Moves relocate the whole fixed-size buffer (one unrolled memcpy,
        // no per-type dispatch); zero the tail so they read defined bytes.
        std::memset(storage_.inline_bytes + sizeof(Fn), 0,
                    kInlineBytes - sizeof(Fn));
      }
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(f));
      invoke_ = [](InlineTask& self) {
        (*std::launder(
            reinterpret_cast<Fn*>(self.storage_.inline_bytes)))();
      };
      if constexpr (!trivially_relocatable<Fn>()) {
        manage_ = [](Action action, InlineTask& self, InlineTask* other) {
          Fn* fn =
              std::launder(reinterpret_cast<Fn*>(self.storage_.inline_bytes));
          if (action == Action::kMove) {
            ::new (static_cast<void*>(other->storage_.inline_bytes))
                Fn(std::move(*fn));
          }
          fn->~Fn();
        };
      }
    } else {
      void* mem = detail::TaskSlab::allocate(sizeof(Fn), alignof(Fn));
      storage_.heap = ::new (mem) Fn(std::forward<F>(f));
      heap_ = true;
      invoke_ = [](InlineTask& self) {
        (*static_cast<Fn*>(self.storage_.heap))();
      };
      manage_ = [](Action action, InlineTask& self, InlineTask* other) {
        if (action == Action::kMove) {
          other->storage_.heap = self.storage_.heap;
          return;  // ownership transferred; no destruction
        }
        Fn* fn = static_cast<Fn*>(self.storage_.heap);
        fn->~Fn();
        detail::TaskSlab::deallocate(fn, sizeof(Fn), alignof(Fn));
      };
    }
  }

 public:
  InlineTask(InlineTask&& other) noexcept { move_from(other); }
  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;
  ~InlineTask() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(*this); }

  /// True when the capture lives in the inline buffer (tests).
  bool is_inline() const noexcept { return invoke_ != nullptr && !heap_; }

  /// True when this object can be relocated by copying its bytes and
  /// abandoning the source without running its destructor: empty tasks,
  /// trivially-copyable inline captures (manage_ == nullptr), and slab
  /// captures (a pointer transfer). The engine's slot pool grows with a
  /// plain memcpy for such slots instead of per-element move dispatch.
  bool memcpy_relocatable() const noexcept {
    return manage_ == nullptr || heap_;
  }

  /// Compile-time form of memcpy_relocatable() for a capture type: true
  /// unless Fn lands inline with a non-trivial manager. Lets the engine
  /// count "sticky" (non-relocatable) slots incrementally instead of
  /// scanning the pool on every growth.
  template <typename Fn>
  static constexpr bool capture_memcpy_relocatable() {
    return !fits_inline<Fn>() || trivially_relocatable<Fn>();
  }

 private:
  enum class Action : std::uint8_t { kMove, kDestroy };
  using InvokeFn = void (*)(InlineTask&);
  using ManageFn = void (*)(Action, InlineTask&, InlineTask*);

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }
  template <typename Fn>
  static constexpr bool trivially_relocatable() {
    return std::is_trivially_copyable_v<Fn> &&
           std::is_trivially_destructible_v<Fn>;
  }

  void move_from(InlineTask& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        // Trivially relocatable inline capture.
        std::memcpy(storage_.inline_bytes, other.storage_.inline_bytes,
                    kInlineBytes);
      } else {
        other.manage_(Action::kMove, other, this);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Action::kDestroy, *this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

  union Storage {
    alignas(std::max_align_t) std::byte inline_bytes[kInlineBytes];
    void* heap;
  };
  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool heap_ = false;
};

}  // namespace hs::sim
