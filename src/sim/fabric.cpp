#include "sim/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <utility>

#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace hs::sim {

std::string to_string(LinkType type) {
  switch (type) {
    case LinkType::Loopback: return "loopback";
    case LinkType::NVLink: return "nvlink";
    case LinkType::IB: return "ib";
  }
  return "?";
}

Fabric::Fabric(Engine& engine, Topology topology, FabricParams params)
    : engine_(&engine),
      topology_(topology),
      params_(params),
      nic_busy_until_(static_cast<std::size_t>(topology.device_count()), 0),
      last_nic_span_(static_cast<std::size_t>(topology.device_count()), 0),
      proxy_slowdown_(static_cast<std::size_t>(topology.device_count()), 1.0) {
  reset_counters();
}

void Fabric::bind_trace(Trace* trace) { trace_ = trace; }

void Fabric::reset_counters() {
  counters_ = FabricCounters{};
  const auto n = static_cast<std::size_t>(topology_.device_count());
  counters_.nic_busy_ns.assign(n, 0);
  counters_.nic_queue_ns.assign(n, 0);
  counters_.proxy_delay_ns.assign(n, 0);
}

const LinkParams& Fabric::params_for(LinkType type) const {
  switch (type) {
    case LinkType::Loopback: return params_.loopback;
    case LinkType::NVLink: return params_.nvlink;
    case LinkType::IB: return params_.ib;
  }
  return params_.loopback;
}

SimTime Fabric::estimate(int src, int dst, std::size_t bytes,
                         int num_messages) const {
  const LinkType type = link(src, dst);
  const LinkParams& p = params_for(type);
  double service = static_cast<double>(p.per_message_ns) * num_messages +
                   static_cast<double>(bytes) / p.bytes_per_ns;
  if (type == LinkType::IB) service *= proxy_slowdown_[src];
  return p.latency_ns + static_cast<SimTime>(std::llround(service));
}

void Fabric::transfer(TransferRequest req, std::function<void()> on_complete) {
  assert(req.num_messages >= 1);
  const LinkType type = link(req.src_device, req.dst_device);
  const LinkParams& p = params_for(type);

  double msg_overhead = static_cast<double>(p.per_message_ns) * req.num_messages;
  const double wire = static_cast<double>(req.bytes) / p.bytes_per_ns;

  LinkCounters& lc = counters_.link(type);
  ++lc.transfers;
  lc.messages += static_cast<std::uint64_t>(req.num_messages);
  lc.bytes += req.bytes;

  SimTime jitter = 0;
  if (max_jitter_ns_ > 0) {
    // Deterministic per-transfer jitter (splitmix64 stream).
    jitter = static_cast<SimTime>(
        util::splitmix64(jitter_state_) %
        static_cast<std::uint64_t>(max_jitter_ns_ + 1));
  }

  SimTime complete_at;
  SimTime span_queue = 0;  // NIC queueing before service starts
  SimTime span_proxy = 0;  // proxy-induced extra service time
  if (type == LinkType::IB) {
    // NIC occupancy (bandwidth + per-message issue) serializes per source
    // device; wire latency pipelines. A contended proxy thread inflates the
    // whole message service — the proxy drives every byte (§5.5). Jitter is
    // part of the occupancy window: a slowed wire holds the NIC, so a
    // follow-up transfer cannot start before the jittered one drained.
    const auto src = static_cast<std::size_t>(req.src_device);
    const double slow = proxy_slowdown_[req.src_device];
    const SimTime service =
        static_cast<SimTime>(std::llround((msg_overhead + wire) * slow));
    const SimTime occupancy = service + jitter;
    SimTime& busy = nic_busy_until_[req.src_device];
    const SimTime start = std::max(engine_->now(), busy);
    busy = start + occupancy;
    complete_at = start + occupancy + p.latency_ns;

    counters_.nic_busy_ns[src] += static_cast<std::uint64_t>(occupancy);
    counters_.nic_queue_ns[src] +=
        static_cast<std::uint64_t>(start - engine_->now());
    counters_.proxy_delay_ns[src] += static_cast<std::uint64_t>(
        service - static_cast<SimTime>(std::llround(msg_overhead + wire)));
    span_queue = start - engine_->now();
    span_proxy = service - static_cast<SimTime>(std::llround(msg_overhead + wire));
  } else {
    complete_at = engine_->now() + p.latency_ns + jitter +
                  static_cast<SimTime>(std::llround(msg_overhead + wire));
  }

  std::uint64_t span = 0;
  if (trace_ != nullptr && trace_->enabled()) {
    std::string name =
        (req.label == nullptr || *req.label == '\0') ? "xfer" : req.label;
    name += " " + to_string(type) + " ->d" + std::to_string(req.dst_device);
    span = trace_->record(req.src_device, "fabric", std::move(name),
                          engine_->now(), complete_at, -1, SpanKind::Transfer,
                          span_queue, span_proxy, req.dst_device);
    if (type == LinkType::IB) {
      auto& last = last_nic_span_[static_cast<std::size_t>(req.src_device)];
      if (span_queue > 0) trace_->add_edge(last, span, EdgeKind::NicQueue);
      last = span;
    }
  }

  std::uint32_t slot;
  if (!free_ops_.empty()) {
    slot = free_ops_.back();
    free_ops_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  PendingOp& op = pending_[slot];
  op.deliver = std::move(req.deliver);
  op.done = std::move(on_complete);
  op.signal = req.signal;
  op.signal_value = req.signal_value;

  engine_->schedule_with_cause(complete_at, span,
                               [this, slot] { complete_op(slot); });
}

void Fabric::complete_op(std::uint32_t slot) {
  // Move the record out and free the slot first: the callbacks may issue
  // new transfers (or grow pending_), so the slot reference would dangle.
  PendingOp& op = pending_[slot];
  auto deliver = std::move(op.deliver);
  auto done = std::move(op.done);
  Signal* const signal = op.signal;
  const std::int64_t signal_value = op.signal_value;
  op.deliver = nullptr;
  op.done = nullptr;
  op.signal = nullptr;
  free_ops_.push_back(slot);

  if (deliver) deliver();
  // Put-with-signal completion order: the signal becomes visible only after
  // the data landed (nvshmem_putmem_signal_nbi semantics).
  if (signal != nullptr) signal->store(signal_value);
  if (done) done();
}

void Fabric::set_timing_jitter(std::uint64_t seed, SimTime max_jitter_ns) {
  jitter_state_ = seed;
  max_jitter_ns_ = max_jitter_ns;
}

void Fabric::set_proxy_slowdown(int device, double factor) {
  assert(factor >= 1.0);
  proxy_slowdown_[device] = factor;
}

void print_counters(std::ostream& os, const FabricCounters& counters) {
  os << "fabric counters:\n";
  for (LinkType type : {LinkType::Loopback, LinkType::NVLink, LinkType::IB}) {
    const LinkCounters& c = counters.link(type);
    if (c.transfers == 0) continue;
    os << "  " << to_string(type) << ": " << c.transfers << " transfers, "
       << c.messages << " messages, " << c.bytes << " bytes\n";
  }
  if (counters.total_transfers() == 0) os << "  (no transfers)\n";
  for (std::size_t d = 0; d < counters.nic_busy_ns.size(); ++d) {
    if (counters.nic_busy_ns[d] == 0 && counters.nic_queue_ns[d] == 0) continue;
    os << "  nic[dev" << d << "]: busy " << counters.nic_busy_ns[d]
       << " ns, queued " << counters.nic_queue_ns[d] << " ns, proxy delay "
       << counters.proxy_delay_ns[d] << " ns\n";
  }
}

}  // namespace hs::sim
