#include "sim/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <utility>

#include "sim/parallel.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace hs::sim {

std::string to_string(LinkType type) {
  switch (type) {
    case LinkType::Loopback: return "loopback";
    case LinkType::NVLink: return "nvlink";
    case LinkType::IB: return "ib";
  }
  return "?";
}

Fabric::Fabric(Engine& engine, Topology topology, FabricParams params)
    : engine_(&engine),
      topology_(topology),
      params_(params),
      nic_busy_until_(static_cast<std::size_t>(topology.device_count()), 0),
      last_nic_span_(static_cast<std::size_t>(topology.device_count()), 0),
      proxy_slowdown_(static_cast<std::size_t>(topology.device_count()), 1.0),
      pending_(static_cast<std::size_t>(topology.device_count())),
      free_ops_(static_cast<std::size_t>(topology.device_count())) {
  reset_counters();
}

void Fabric::bind_trace(Trace* trace) { trace_ = trace; }

void Fabric::bind_telemetry(
    const std::vector<util::telemetry::Registry*>& rows) {
  assert(rows.size() == static_cast<std::size_t>(topology_.device_count()));
  telemetry_.clear();
  telemetry_.resize(rows.size());
  for (std::size_t d = 0; d < rows.size(); ++d) {
    TelemetryRow& row = telemetry_[d];
    row.reg = rows[d];
    // Link series share one name across devices — they merge into global
    // per-link rates, matching the classic single-registry layout. NIC
    // series are per-device by construction (the NIC belongs to the
    // issuing device), so the name carries the device.
    for (const LinkType type :
         {LinkType::Loopback, LinkType::NVLink, LinkType::IB}) {
      const auto i = static_cast<std::size_t>(type);
      const std::string prefix = "fabric." + to_string(type) + ".";
      row.link_transfers[i] = row.reg->counter(prefix + "transfers", "ops");
      row.link_bytes[i] = row.reg->counter(prefix + "bytes", "bytes");
    }
    const std::string dev = "fabric.d" + std::to_string(d) + ".";
    const int device = static_cast<int>(d);
    row.nic_busy = row.reg->counter(dev + "nic_busy_ns", "ns", device);
    row.nic_queue = row.reg->counter(dev + "nic_queue_ns", "ns", device);
    row.proxy_delay = row.reg->counter(dev + "proxy_delay_ns", "ns", device);
  }
}

void Fabric::configure_partitioned(std::vector<Engine*> lane_engines,
                                   std::vector<Trace*> lane_traces,
                                   ParallelDriver* driver) {
  assert(lane_engines.size() ==
         static_cast<std::size_t>(topology_.device_count()));
  assert(lane_traces.size() == lane_engines.size());
  lane_engines_ = std::move(lane_engines);
  lane_traces_ = std::move(lane_traces);
  driver_ = driver;
  lane_jitter_.assign(lane_engines_.size(), 0);
  reset_counters();
}

namespace {
void zero_counters(FabricCounters& c, std::size_t devices) {
  c = FabricCounters{};
  c.nic_busy_ns.assign(devices, 0);
  c.nic_queue_ns.assign(devices, 0);
  c.proxy_delay_ns.assign(devices, 0);
}
}  // namespace

void Fabric::reset_counters() {
  const auto n = static_cast<std::size_t>(topology_.device_count());
  zero_counters(counters_, n);
  if (partitioned()) {
    lane_counters_.resize(n);
    for (auto& row : lane_counters_) zero_counters(row, n);
  }
}

const FabricCounters& Fabric::counters() const {
  if (!partitioned()) return counters_;
  // Lane rows are written lane-locally during the run; summing them here
  // (reporting path) in device order is deterministic.
  const auto n = static_cast<std::size_t>(topology_.device_count());
  zero_counters(counters_agg_, n);
  for (const auto& row : lane_counters_) {
    for (std::size_t l = 0; l < row.by_link.size(); ++l) {
      counters_agg_.by_link[l].transfers += row.by_link[l].transfers;
      counters_agg_.by_link[l].messages += row.by_link[l].messages;
      counters_agg_.by_link[l].bytes += row.by_link[l].bytes;
    }
    for (std::size_t d = 0; d < n; ++d) {
      counters_agg_.nic_busy_ns[d] += row.nic_busy_ns[d];
      counters_agg_.nic_queue_ns[d] += row.nic_queue_ns[d];
      counters_agg_.proxy_delay_ns[d] += row.proxy_delay_ns[d];
    }
  }
  return counters_agg_;
}

const LinkParams& Fabric::params_for(LinkType type) const {
  switch (type) {
    case LinkType::Loopback: return params_.loopback;
    case LinkType::NVLink: return params_.nvlink;
    case LinkType::IB: return params_.ib;
  }
  return params_.loopback;
}

SimTime Fabric::estimate(int src, int dst, std::size_t bytes,
                         int num_messages) const {
  const LinkType type = link(src, dst);
  const LinkParams& p = params_for(type);
  double service = static_cast<double>(p.per_message_ns) * num_messages +
                   static_cast<double>(bytes) / p.bytes_per_ns;
  if (type == LinkType::IB) service *= proxy_slowdown_[src];
  return p.latency_ns + static_cast<SimTime>(std::llround(service));
}

void Fabric::transfer(TransferRequest req, std::function<void()> on_complete) {
  assert(req.num_messages >= 1);
  const int issue =
      req.issue_device >= 0 ? req.issue_device : req.src_device;
  Engine& eng = engine_for(issue);
  Trace* tr = trace_for(issue);
  const LinkType type = link(req.src_device, req.dst_device);
  const LinkParams& p = params_for(type);

  double msg_overhead = static_cast<double>(p.per_message_ns) * req.num_messages;
  const double wire = static_cast<double>(req.bytes) / p.bytes_per_ns;

  FabricCounters& row = counter_row(issue);
  LinkCounters& lc = row.link(type);
  ++lc.transfers;
  lc.messages += static_cast<std::uint64_t>(req.num_messages);
  lc.bytes += req.bytes;

  TelemetryRow* telem =
      telemetry_.empty() ? nullptr
                         : &telemetry_[static_cast<std::size_t>(issue)];
  if (telem != nullptr) {
    const auto li = static_cast<std::size_t>(type);
    telem->reg->add(telem->link_transfers[li], eng.now(), 1.0);
    telem->reg->add(telem->link_bytes[li], eng.now(),
                    static_cast<double>(req.bytes));
  }

  SimTime jitter = 0;
  if (max_jitter_ns_ > 0) {
    // Deterministic per-transfer jitter. Classic mode draws from one
    // splitmix64 stream; partitioned mode draws from a per-lane stream so
    // the sequence a lane sees is independent of other lanes' activity
    // (and therefore of the worker count).
    std::uint64_t& state =
        partitioned() ? lane_jitter_[static_cast<std::size_t>(issue)]
                      : jitter_state_;
    jitter = static_cast<SimTime>(
        util::splitmix64(state) %
        static_cast<std::uint64_t>(max_jitter_ns_ + 1));
  }

  SimTime complete_at;
  SimTime span_queue = 0;  // NIC queueing before service starts
  SimTime span_proxy = 0;  // proxy-induced extra service time
  if (type == LinkType::IB) {
    // NIC occupancy (bandwidth + per-message issue) serializes per source
    // device; wire latency pipelines. A contended proxy thread inflates the
    // whole message service — the proxy drives every byte (§5.5). Jitter is
    // part of the occupancy window: a slowed wire holds the NIC, so a
    // follow-up transfer cannot start before the jittered one drained.
    // The NIC being modeled belongs to the source device, so IB transfers
    // must be issued from their source lane.
    assert(issue == req.src_device);
    const auto src = static_cast<std::size_t>(req.src_device);
    const double slow = proxy_slowdown_[req.src_device];
    const SimTime service =
        static_cast<SimTime>(std::llround((msg_overhead + wire) * slow));
    const SimTime occupancy = service + jitter;
    SimTime& busy = nic_busy_until_[req.src_device];
    const SimTime start = std::max(eng.now(), busy);
    busy = start + occupancy;
    complete_at = start + occupancy + p.latency_ns;

    row.nic_busy_ns[src] += static_cast<std::uint64_t>(occupancy);
    row.nic_queue_ns[src] += static_cast<std::uint64_t>(start - eng.now());
    row.proxy_delay_ns[src] += static_cast<std::uint64_t>(
        service - static_cast<SimTime>(std::llround(msg_overhead + wire)));
    span_queue = start - eng.now();
    span_proxy = service - static_cast<SimTime>(std::llround(msg_overhead + wire));
    if (telem != nullptr) {
      telem->reg->add(telem->nic_busy, eng.now(),
                      static_cast<double>(occupancy));
      telem->reg->add(telem->nic_queue, eng.now(),
                      static_cast<double>(span_queue));
      telem->reg->add(telem->proxy_delay, eng.now(),
                      static_cast<double>(span_proxy));
    }
  } else {
    complete_at = eng.now() + p.latency_ns + jitter +
                  static_cast<SimTime>(std::llround(msg_overhead + wire));
  }

  std::uint64_t span = 0;
  if (tr != nullptr && tr->enabled()) {
    std::string name =
        (req.label == nullptr || *req.label == '\0') ? "xfer" : req.label;
    name += " " + to_string(type) + " ->d" + std::to_string(req.dst_device);
    span = tr->record(req.src_device, "fabric", std::move(name),
                      eng.now(), complete_at, -1, SpanKind::Transfer,
                      span_queue, span_proxy, req.dst_device);
    if (type == LinkType::IB) {
      auto& last = last_nic_span_[static_cast<std::size_t>(req.src_device)];
      if (span_queue > 0) tr->add_edge(last, span, EdgeKind::NicQueue);
      last = span;
    }
  }

  if (partitioned() && req.dst_device != issue) {
    // Cross-lane completion. The receiver-side effects (data landing, then
    // the fused signal) run on the destination lane via the conservative
    // inbox protocol; complete_at carries at least the link latency beyond
    // the current window horizon, so the post is always safe. The issuer's
    // on_complete (local bookkeeping, e.g. NIC-free notifications) stays on
    // the issuing lane at the same timestamp.
    if (req.deliver || req.signal != nullptr) {
      driver_->post(
          issue, req.dst_device, complete_at, span,
          [deliver = std::move(req.deliver), signal = req.signal,
           value = req.signal_value]() mutable {
            if (deliver) deliver();
            if (signal != nullptr) signal->store(value);
          });
    }
    if (on_complete) {
      eng.schedule_with_cause(complete_at, span,
                              [done = std::move(on_complete)]() mutable {
                                done();
                              });
    }
    return;
  }

  auto& free_list = free_ops_[static_cast<std::size_t>(issue)];
  auto& pool = pending_[static_cast<std::size_t>(issue)];
  std::uint32_t slot;
  if (!free_list.empty()) {
    slot = free_list.back();
    free_list.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
  }
  PendingOp& op = pool[slot];
  op.deliver = std::move(req.deliver);
  op.done = std::move(on_complete);
  op.signal = req.signal;
  op.signal_value = req.signal_value;

  eng.schedule_with_cause(complete_at, span, [this, issue, slot] {
    complete_op(issue, slot);
  });
}

void Fabric::complete_op(int device, std::uint32_t slot) {
  // Move the record out and free the slot first: the callbacks may issue
  // new transfers (or grow the pool), so the slot reference would dangle.
  PendingOp& op = pending_[static_cast<std::size_t>(device)][slot];
  auto deliver = std::move(op.deliver);
  auto done = std::move(op.done);
  Signal* const signal = op.signal;
  const std::int64_t signal_value = op.signal_value;
  op.deliver = nullptr;
  op.done = nullptr;
  op.signal = nullptr;
  free_ops_[static_cast<std::size_t>(device)].push_back(slot);

  if (deliver) deliver();
  // Put-with-signal completion order: the signal becomes visible only after
  // the data landed (nvshmem_putmem_signal_nbi semantics).
  if (signal != nullptr) signal->store(signal_value);
  if (done) done();
}

void Fabric::set_timing_jitter(std::uint64_t seed, SimTime max_jitter_ns) {
  jitter_state_ = seed;
  jitter_seed_ = seed;
  max_jitter_ns_ = max_jitter_ns;
  if (partitioned()) {
    // Decorrelated per-lane streams derived from the one seed.
    for (std::size_t d = 0; d < lane_jitter_.size(); ++d) {
      lane_jitter_[d] = seed ^ (0x9e3779b97f4a7c15ull * (d + 1));
    }
  }
}

void Fabric::set_proxy_slowdown(int device, double factor) {
  assert(factor >= 1.0);
  proxy_slowdown_[device] = factor;
}

void print_counters(std::ostream& os, const FabricCounters& counters) {
  os << "fabric counters:\n";
  for (LinkType type : {LinkType::Loopback, LinkType::NVLink, LinkType::IB}) {
    const LinkCounters& c = counters.link(type);
    if (c.transfers == 0) continue;
    os << "  " << to_string(type) << ": " << c.transfers << " transfers, "
       << c.messages << " messages, " << c.bytes << " bytes\n";
  }
  if (counters.total_transfers() == 0) os << "  (no transfers)\n";
  for (std::size_t d = 0; d < counters.nic_busy_ns.size(); ++d) {
    if (counters.nic_busy_ns[d] == 0 && counters.nic_queue_ns[d] == 0) continue;
    os << "  nic[dev" << d << "]: busy " << counters.nic_busy_ns[d]
       << " ns, queued " << counters.nic_queue_ns[d] << " ns, proxy delay "
       << counters.proxy_delay_ns[d] << " ns\n";
  }
}

}  // namespace hs::sim
