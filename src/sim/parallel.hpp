// Conservative parallel discrete-event coordinator (PDES).
//
// Partitions a Machine's devices into lanes — one Engine + Trace per device
// — and advances all lanes in *safe windows* of width equal to the fabric's
// minimum cross-device link latency (the lookahead, after "Parallelizing a
// modern GPU simulator", arXiv 2502.14691):
//
//   1. window base  W = min over lanes of next_event_time()
//   2. every lane runs run_until(W + L - 1) — all events in [W, W+L)
//   3. barrier; cross-lane interactions produced during the window
//      (fabric deliveries, pgas signal stores) were queued as timestamped
//      outbox messages; they are sorted by (arrival, send_time, src_lane,
//      msg_seq) and injected into their destination lanes
//   4. repeat until every lane is idle and no messages remain
//
// Why this is safe: any cross-lane effect issued at time t inside the
// window arrives no earlier than t + L >= W + L, i.e. strictly after the
// horizon every lane ran to — no lane can ever receive a message in its
// past. Why this is deterministic: lanes are fixed per *device* (never per
// worker), each lane's intra-window execution is sequential on one engine
// with lane-local (time, seq) order, and the inter-window injection order
// is a total order independent of how lanes were assigned to threads. The
// worker count therefore only chooses how many OS threads claim lanes
// inside a window — --workers=1 and --workers=N produce bit-identical
// simulations by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/time.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

class Engine;

class ParallelDriver {
 public:
  /// `engines[d]` is device d's lane. `lookahead` must be a lower bound on
  /// every cross-lane interaction latency (>= 1). `workers` is the number
  /// of OS threads that execute lanes inside a window (clamped to
  /// [1, lanes]).
  ParallelDriver(std::vector<Engine*> engines, SimTime lookahead,
                 int workers);
  ~ParallelDriver();
  ParallelDriver(const ParallelDriver&) = delete;
  ParallelDriver& operator=(const ParallelDriver&) = delete;

  /// Queue a cross-lane interaction: run `fn` on lane `dst_lane` at
  /// absolute time `arrival` (with the given ambient trace cause). Must be
  /// called from within `src_lane`'s window execution, and `arrival` must
  /// be >= the current window horizon + 1 — i.e. the interaction must
  /// carry at least the lookahead of simulated latency.
  void post(int src_lane, int dst_lane, SimTime arrival,
            std::uint64_t cause, std::function<void()> fn);

  /// Drive all lanes to completion. Returns the maximum lane time (the
  /// simulation's final clock). Rethrows the first lane error, picking the
  /// lowest lane index when several lanes fail in one window so the choice
  /// is deterministic.
  SimTime run();

  /// Attach per-window telemetry. Coordinator-side series (window count /
  /// width / injected messages, all Domain::Sim — deterministic) land in
  /// `master`; per-lane series land in `lanes[L]`: events per window
  /// (lookahead utilization, Sim) plus wall-clock busy / barrier-wait
  /// accumulators (Domain::Host — real time, excluded from the default
  /// export because it can never be worker-count independent). All
  /// recording is done by the coordinator between windows, except the
  /// per-lane wall stopwatch written by whichever worker claimed the lane
  /// (one writer per lane per window; the window barrier orders it before
  /// the coordinator reads).
  void bind_telemetry(util::telemetry::Registry* master,
                      const std::vector<util::telemetry::Registry*>& lanes);

  SimTime lookahead() const { return lookahead_; }
  int workers() const { return workers_; }
  /// Cross-lane messages injected so far (introspection for tests).
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Safe windows executed so far (introspection for tests).
  std::uint64_t windows_run() const { return windows_; }

 private:
  struct Message {
    SimTime arrival = 0;
    SimTime sent = 0;
    std::uint32_t src_lane = 0;
    std::uint32_t dst_lane = 0;
    std::uint64_t seq = 0;  // per-src-lane counter: ties break determinate
    std::uint64_t cause = 0;
    std::function<void()> fn;
  };

  struct LaneTelemetry {
    util::telemetry::Registry* reg = nullptr;
    util::telemetry::MetricId window_events;  // hist: events per window
    util::telemetry::MetricId busy_wall;      // counter (Host): lane run time
    util::telemetry::MetricId barrier_wall;   // counter (Host): barrier wait
  };
  struct TelemetryState {
    util::telemetry::Registry* master = nullptr;
    util::telemetry::MetricId windows;          // counter
    util::telemetry::MetricId window_width;     // hist: horizon - base + 1
    util::telemetry::MetricId window_messages;  // hist: inbox depth drained
    util::telemetry::MetricId window_wall;      // hist (Host): window wall ns
    std::vector<LaneTelemetry> lanes;
    std::vector<std::uint64_t> prev_events;    // per lane, last window's total
    std::vector<std::int64_t> lane_wall_ns;    // per lane, this window
  };

  void run_window(SimTime horizon);
  void claim_lanes(SimTime horizon);
  void worker_main();
  void drain_outboxes();
  void record_window_telemetry(SimTime base, SimTime horizon,
                               std::uint64_t injected,
                               std::int64_t window_wall_ns);

  std::vector<Engine*> engines_;
  SimTime lookahead_;
  int workers_;

  // Per-src-lane outboxes: written lock-free by the (single) worker
  // currently executing that lane, drained by the coordinator between
  // windows.
  std::vector<std::vector<Message>> outbox_;
  std::vector<std::uint64_t> msg_seq_;
  std::vector<Message> inject_scratch_;
  std::vector<std::exception_ptr> lane_error_;
  std::uint64_t delivered_ = 0;
  std::uint64_t windows_ = 0;
  std::unique_ptr<TelemetryState> telemetry_;  // null = disabled

  // Persistent worker pool (spawned only when workers > 1). Generation
  // counter + condvars form the window barrier; the atomic lane cursor
  // load-balances lanes across the threads inside a window.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int active_ = 0;
  bool stop_ = false;
  SimTime window_horizon_ = 0;
  std::atomic<std::uint32_t> lane_cursor_{0};
  std::vector<std::thread> threads_;
};

}  // namespace hs::sim
