// Fabric-level observability counters.
//
// Every transfer that crosses the fabric is accounted here, split by
// LinkType, plus per-device NIC accumulators for the IB path: how long the
// NIC was occupied, how long transfers queued waiting for it, and how much
// extra service time the proxy-thread slowdown injected (§5.5). These are
// the simulated analogue of the per-operation counters "Demystifying
// NVSHMEM" uses to explain NVLink-vs-IB behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/topology.hpp"

namespace hs::sim {

struct LinkCounters {
  std::uint64_t transfers = 0;  // fabric transfer() calls
  std::uint64_t messages = 0;   // wire messages (chunked transfers count all)
  std::uint64_t bytes = 0;      // payload bytes
};

struct FabricCounters {
  /// Indexed by static_cast<int>(LinkType).
  std::array<LinkCounters, 3> by_link{};

  // Per source device, IB path only.
  std::vector<std::uint64_t> nic_busy_ns;     // NIC occupancy (service time)
  std::vector<std::uint64_t> nic_queue_ns;    // waiting for a busy NIC
  std::vector<std::uint64_t> proxy_delay_ns;  // extra service from slowdown

  LinkCounters& link(LinkType type) {
    return by_link[static_cast<std::size_t>(type)];
  }
  const LinkCounters& link(LinkType type) const {
    return by_link[static_cast<std::size_t>(type)];
  }

  std::uint64_t total_transfers() const {
    std::uint64_t n = 0;
    for (const auto& c : by_link) n += c.transfers;
    return n;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& c : by_link) n += c.bytes;
    return n;
  }
};

/// One-line-per-link human-readable summary (plus NIC/proxy accumulators
/// for devices that used the IB path).
void print_counters(std::ostream& os, const FabricCounters& counters);

}  // namespace hs::sim
