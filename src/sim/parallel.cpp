#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace hs::sim {

ParallelDriver::ParallelDriver(std::vector<Engine*> engines,
                               SimTime lookahead, int workers)
    : engines_(std::move(engines)),
      lookahead_(lookahead),
      workers_(workers) {
  if (engines_.empty()) {
    throw std::invalid_argument("ParallelDriver: no lanes");
  }
  if (lookahead_ < 1) {
    throw std::invalid_argument(
        "ParallelDriver: lookahead must be >= 1 ns (zero-latency fabrics "
        "admit no conservative window)");
  }
  workers_ = std::max(1, std::min<int>(workers_,
                                       static_cast<int>(engines_.size())));
  outbox_.resize(engines_.size());
  msg_seq_.assign(engines_.size(), 0);
  lane_error_.assign(engines_.size(), nullptr);
  // The coordinator thread is worker 0; spawn the rest as a persistent
  // pool parked on the window condvar.
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

ParallelDriver::~ParallelDriver() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelDriver::bind_telemetry(
    util::telemetry::Registry* master,
    const std::vector<util::telemetry::Registry*>& lanes) {
  namespace tm = util::telemetry;
  auto state = std::make_unique<TelemetryState>();
  state->master = master;
  state->windows = master->counter("pdes.windows", "windows");
  state->window_width = master->histogram("pdes.window_width_ns", "ns");
  state->window_messages =
      master->histogram("pdes.window_messages", "messages");
  state->window_wall = master->histogram("pdes.window_wall_ns", "ns", -1,
                                         tm::Domain::Host);
  // Lookahead as a gauge so a telemetry file is self-describing: window
  // width and lane events can be read against the bound without the run
  // config at hand.
  master->set(master->gauge("pdes.lookahead_ns", "ns"), 0,
              static_cast<double>(lookahead_));
  state->lanes.reserve(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const std::string prefix = "pdes.lane" + std::to_string(l) + ".";
    const int device = static_cast<int>(l);
    LaneTelemetry lt;
    lt.reg = lanes[l];
    lt.window_events =
        lt.reg->histogram(prefix + "window_events", "events", device);
    lt.busy_wall = lt.reg->counter(prefix + "busy_wall_ns", "ns", device,
                                   tm::Domain::Host);
    lt.barrier_wall = lt.reg->counter(prefix + "barrier_wall_ns", "ns",
                                      device, tm::Domain::Host);
    state->lanes.push_back(lt);
  }
  state->prev_events.assign(engines_.size(), 0);
  state->lane_wall_ns.assign(engines_.size(), 0);
  telemetry_ = std::move(state);
}

void ParallelDriver::post(int src_lane, int dst_lane, SimTime arrival,
                          std::uint64_t cause, std::function<void()> fn) {
  if (arrival <= window_horizon_) {
    // A message landing inside (or before) the current window would have
    // to be injected into a lane's past — the producer under-declared its
    // latency relative to the lookahead. Fail loudly: silently accepting
    // it would corrupt causality.
    throw std::logic_error(
        "ParallelDriver::post: arrival " + std::to_string(arrival) +
        " is not beyond the window horizon " +
        std::to_string(window_horizon_) + " (lookahead " +
        std::to_string(lookahead_) + ")");
  }
  auto& box = outbox_[static_cast<std::size_t>(src_lane)];
  box.push_back(Message{arrival, engines_[static_cast<std::size_t>(src_lane)]->now(),
                        static_cast<std::uint32_t>(src_lane),
                        static_cast<std::uint32_t>(dst_lane),
                        msg_seq_[static_cast<std::size_t>(src_lane)]++, cause,
                        std::move(fn)});
}

void ParallelDriver::drain_outboxes() {
  inject_scratch_.clear();
  for (auto& box : outbox_) {
    for (auto& m : box) inject_scratch_.push_back(std::move(m));
    box.clear();
  }
  if (inject_scratch_.empty()) return;
  // Total order: (arrival, send time, src lane, per-src seq). The last two
  // components make the key unique, so the injection order — and with it
  // each destination engine's (time, seq) numbering — is independent of
  // lane-to-thread assignment and worker count.
  std::sort(inject_scratch_.begin(), inject_scratch_.end(),
            [](const Message& a, const Message& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.sent != b.sent) return a.sent < b.sent;
              if (a.src_lane != b.src_lane) return a.src_lane < b.src_lane;
              return a.seq < b.seq;
            });
  for (auto& m : inject_scratch_) {
    engines_[m.dst_lane]->schedule_with_cause(m.arrival, m.cause,
                                              std::move(m.fn));
  }
  delivered_ += inject_scratch_.size();
  inject_scratch_.clear();
}

void ParallelDriver::claim_lanes(SimTime horizon) {
  const auto n = static_cast<std::uint32_t>(engines_.size());
  for (;;) {
    const std::uint32_t lane = lane_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (lane >= n) break;
    if (telemetry_ != nullptr) {
      // Per-lane wall stopwatch (Host domain). Exactly one worker claims a
      // lane per window, and the window barrier sequences this store
      // before the coordinator reads it — same pattern as lane_error_.
      const auto t0 = std::chrono::steady_clock::now();
      try {
        engines_[lane]->run_until(horizon);
      } catch (...) {
        lane_error_[lane] = std::current_exception();
      }
      telemetry_->lane_wall_ns[lane] =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      continue;
    }
    try {
      engines_[lane]->run_until(horizon);
    } catch (...) {
      lane_error_[lane] = std::current_exception();
    }
  }
}

void ParallelDriver::worker_main() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const SimTime horizon = window_horizon_;
    lock.unlock();
    claim_lanes(horizon);
    lock.lock();
    if (--active_ == 0) cv_done_.notify_one();
  }
}

void ParallelDriver::run_window(SimTime horizon) {
  lane_cursor_.store(0, std::memory_order_relaxed);
  window_horizon_ = horizon;
  if (threads_.empty()) {
    claim_lanes(horizon);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    cv_start_.notify_all();
    claim_lanes(horizon);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
  }
  ++windows_;
}

void ParallelDriver::record_window_telemetry(SimTime base, SimTime horizon,
                                             std::uint64_t injected,
                                             std::int64_t window_wall_ns) {
  TelemetryState& t = *telemetry_;
  // All series are sampled at the window base — a deterministic simulated
  // timestamp, identical for every worker count.
  t.master->add(t.windows, base, 1.0);
  t.master->observe(t.window_width, base,
                    static_cast<double>(horizon - base + 1));
  t.master->observe(t.window_messages, base, static_cast<double>(injected));
  t.master->observe(t.window_wall, base,
                    static_cast<double>(window_wall_ns));
  for (std::size_t l = 0; l < engines_.size(); ++l) {
    const std::uint64_t total = engines_[l]->events_processed();
    LaneTelemetry& lt = t.lanes[l];
    lt.reg->observe(lt.window_events, base,
                    static_cast<double>(total - t.prev_events[l]));
    t.prev_events[l] = total;
    const std::int64_t busy = t.lane_wall_ns[l];
    lt.reg->add(lt.busy_wall, base, static_cast<double>(busy));
    lt.reg->add(lt.barrier_wall, base,
                static_cast<double>(std::max<std::int64_t>(
                    0, window_wall_ns - busy)));
    t.lane_wall_ns[l] = 0;
  }
}

SimTime ParallelDriver::run() {
  for (;;) {
    // Inject pending cross-lane messages first: the previous window's
    // outboxes (or setup-time posts) feed the next window's base.
    const std::uint64_t delivered_before = delivered_;
    drain_outboxes();
    SimTime base = kNever;
    for (const Engine* e : engines_) {
      base = std::min(base, e->next_event_time());
    }
    if (base == kNever) break;
    const SimTime horizon =
        base > kNever - lookahead_ ? kNever : base + lookahead_ - 1;
    if (telemetry_ != nullptr) {
      const auto w0 = std::chrono::steady_clock::now();
      run_window(horizon);
      const auto wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - w0)
              .count();
      record_window_telemetry(base, horizon, delivered_ - delivered_before,
                              wall_ns);
    } else {
      run_window(horizon);
    }
    for (std::size_t lane = 0; lane < lane_error_.size(); ++lane) {
      if (lane_error_[lane]) {
        auto err = std::exchange(lane_error_[lane], nullptr);
        std::rethrow_exception(err);
      }
    }
  }
  SimTime end = 0;
  for (const Engine* e : engines_) end = std::max(end, e->now());
  return end;
}

}  // namespace hs::sim
