// Simulated GPU device: an SM pool with priority-tiered processor sharing.
//
// Every piece of in-flight device compute is a "span" with a nominal work
// amount (ns of execution when the span receives its full SM demand) and a
// demand (fraction of the device's SMs it wants). When the sum of demands
// at a priority tier exceeds what is left after higher tiers are served,
// all spans in that tier stretch proportionally.
//
// This is the mechanism behind two paper observations:
//   * "NVSHMEM uses SM resources for communications, overlapping local work
//     is slowed down" (§6.3): comm-kernel spans share the device with the
//     local non-bonded kernel.
//   * §5.4's three-priority stream setup: a medium-priority reduction span
//     preempts (starves) the low-priority rolling-prune span.
//
// Storage is flat (DESIGN.md §2.1): spans live in a vector sorted by their
// monotonically increasing id (append keeps it sorted; lookup is a binary
// search), and the per-priority demand sums are cached in a small tier
// vector so a span begin/end refreshes only the affected tier instead of
// re-deriving the whole priority list. Tier demand refreshes sum member
// demands in id order — the same order the previous std::map-based
// implementation used — so every speed and finish time is bit-identical to
// the old model.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace hs::sim {

class Device {
 public:
  /// `sm_capacity` is the device's total compute throughput in demand
  /// units; kernels express demand as a fraction of a full device (1.0).
  Device(Engine& engine, int id, int node, double sm_capacity = 1.0);

  int id() const { return id_; }
  int node() const { return node_; }
  double sm_capacity() const { return sm_capacity_; }

  using SpanId = std::uint64_t;

  /// Begin a compute span. `on_done` runs (synchronously from an engine
  /// event) when the span's work is finished. Higher `priority` wins SMs.
  SpanId begin_span(double work_ns, double demand, int priority,
                    InlineTask on_done);

  /// Begin an open-ended occupancy hold: contributes `demand` to the
  /// sharing computation (slowing co-resident kernels) without doing work.
  /// Models SMs held by a resident communication kernel that is packing,
  /// polling signals, or driving transfers — the §6 "NVSHMEM SM
  /// resource-sharing overhead". Must be ended with end_hold().
  SpanId begin_hold(double demand, int priority);
  void end_hold(SpanId id);

  /// Total demand currently resident (for tests / introspection).
  double resident_demand() const;
  int resident_spans() const { return static_cast<int>(spans_.size()); }

  /// Current execution speed (0..1) of a span; 1 = full nominal speed.
  double span_speed(SpanId id) const;

  Engine& engine() { return *engine_; }

 private:
  struct Span {
    SpanId id;
    double remaining;  // nominal ns of work left
    double demand;
    int priority;
    double speed = 1.0;
    SimTime finish_at = kNever;
    InlineTask on_done;
  };
  /// Cached per-priority aggregate; tiers_ is sorted by priority
  /// descending and holds only priorities with resident spans.
  struct Tier {
    int priority;
    double demand;  // sum over member spans in id order
    double scale;   // current allocation / demand
  };

  const Span* find_span(SpanId id) const;
  Span* find_span(SpanId id);
  /// Recompute the affected tier's cached demand sum (summing member
  /// demands in span-id order, matching the old full-model arithmetic);
  /// drops the tier when its last member left.
  void refresh_tier(int priority);
  void settle();
  void recompute();
  void schedule_check();
  void on_check(std::uint64_t gen);

  Engine* engine_;
  int id_;
  int node_;
  double sm_capacity_;
  std::vector<Span> spans_;  // sorted by id => deterministic iteration
  std::vector<Tier> tiers_;  // sorted by priority descending
  std::vector<InlineTask> done_scratch_;  // reused by on_check
  SimTime min_finish_ = kNever;           // min over spans_.finish_at
  SpanId next_id_ = 1;
  std::uint64_t sched_gen_ = 0;
  SimTime last_settle_ = 0;
};

}  // namespace hs::sim
