#include "sim/kernel.hpp"

#include <cassert>

namespace hs::sim {

KernelInstance::KernelInstance(Engine& engine, Device& device, int priority,
                               KernelSpec spec, InlineTask on_complete)
    : engine_(&engine), spec_(std::move(spec)), on_complete_(std::move(on_complete)) {
  ctx_.exec_ = ExecContext{&engine, &device, priority};
  ctx_.sm_demand_ = spec_.sm_demand;
  ctx_.name_ = spec_.name;
  ctx_.instance_ = this;
}

void KernelInstance::reset(KernelSpec spec, InlineTask on_complete) {
  assert(pending_ == 0 && "reset of a kernel still in flight");
  tasks_.clear();  // destroys the previous kernel's coroutine frames
  spec_ = std::move(spec);
  on_complete_ = std::move(on_complete);
  ctx_.sm_demand_ = spec_.sm_demand;
  ctx_.name_ = spec_.name;
  body_started_ = false;
  started_at_ = -1;
}

void KernelInstance::start() {
  assert(!body_started_);
  body_started_ = true;
  started_at_ = engine_->now();
  add_task(spec_.body(ctx_));
}

void KernelInstance::add_task(Task task) {
  ++pending_;
  task.bind(ctx_.exec_);
  task.set_on_complete([this] { task_finished(); });
  tasks_.push_back(std::move(task));
  tasks_.back().start();
}

void KernelInstance::task_finished() {
  assert(pending_ > 0);
  if (--pending_ == 0) {
    if (spec_.on_complete) spec_.on_complete();
    // May destroy this instance; must be the last thing we do.
    auto done = std::move(on_complete_);
    done();
  }
}

}  // namespace hs::sim
