// Simulated-time primitives.
//
// All simulator time is integer nanoseconds on a single global clock.
// Helper literals keep cost-model constants readable (e.g. 4_us).
#pragma once

#include <cstdint>

namespace hs::sim {

/// Nanoseconds on the simulated clock.
using SimTime = std::int64_t;

constexpr SimTime kNever = INT64_MAX;

namespace time_literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000 * 1000;
}
}  // namespace time_literals

constexpr double to_us(SimTime t) { return static_cast<double>(t) * 1e-3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) * 1e-6; }
constexpr double to_s(SimTime t) { return static_cast<double>(t) * 1e-9; }

}  // namespace hs::sim
