// Coroutine task type for simulated device and host code.
//
// Device "kernels" and host threads are written as C++20 coroutines over
// simulated time. A Task is lazily started: the owner binds an execution
// context (engine, optional device, priority) and a completion callback,
// then calls start(). Awaitables (Delay, Compute, signal/event/barrier
// waits) suspend the coroutine and arrange resumption through the engine,
// so all interleaving is deterministic.
//
// This is what lets Algorithms 3-6 of the paper transcribe almost
// line-for-line: `co_await ctx.signal[k].wait_ge(v)` is the simulated
// equivalent of an acquire-wait loop in a CUDA kernel.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace hs::sim {

class Device;

/// Where a task executes: which engine drives it, which device (nullptr for
/// host tasks) charges its Compute spans, and at what stream priority.
struct ExecContext {
  Engine* engine = nullptr;
  Device* device = nullptr;
  int priority = 0;
};

class Task {
 public:
  struct promise_type {
    ExecContext ctx;
    std::function<void()> on_complete;
    std::exception_ptr error;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        promise_type& p = h.promise();
        if (p.error && p.ctx.engine != nullptr) p.ctx.engine->record_error(p.error);
        if (p.on_complete) {
          // Deferred via the engine so the frame is fully suspended before
          // the owner is allowed to destroy it.
          p.ctx.engine->schedule_now(std::move(p.on_complete));
        }
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  void bind(ExecContext ctx) {
    assert(handle_ && !started_);
    handle_.promise().ctx = ctx;
  }
  void set_on_complete(std::function<void()> fn) {
    assert(handle_ && !started_);
    handle_.promise().on_complete = std::move(fn);
  }

  /// Resume from the initial suspension point. The execution context must
  /// be bound first.
  void start() {
    assert(handle_ && !started_);
    assert(handle_.promise().ctx.engine != nullptr && "bind() before start()");
    started_ = true;
    handle_.resume();
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  Handle handle_;
  bool started_ = false;
};

/// co_await Delay{dt}: advance this task's local time by dt.
struct Delay {
  SimTime dt;
  bool await_ready() const { return dt <= 0; }
  void await_suspend(Task::Handle h) const {
    h.promise().ctx.engine->schedule_after(dt, [h] { h.resume(); });
  }
  void await_resume() const {}
};

// NOTE: awaitables in this codebase keep trivially-destructible state only.
// GCC 12 miscompiles co_await expressions whose awaitable temporaries hold
// members with non-trivial destructors (std::function, Task): an extra
// destructor call fires at a shifted address. Structured "join a child
// coroutine" is therefore expressed by spawning the child and awaiting a
// completion event (see Machine::spawn_host_task + GpuEvent) instead of a
// Task-holding awaitable.

/// Fetch this task's execution context (engine/device/priority).
struct CurrentContext {
  ExecContext ctx;
  bool await_ready() const { return false; }
  bool await_suspend(Task::Handle h) {
    ctx = h.promise().ctx;
    return false;  // resume immediately with the context captured
  }
  ExecContext await_resume() const { return ctx; }
};

}  // namespace hs::sim
