// GPU stream: an in-order queue of kernels, event records/waits, and
// asynchronous copy-engine operations, bound to one device.
//
// Priorities mirror CUDA stream priorities and drive the device's
// processor-sharing tiers: the §5.4 schedule optimization needs three
// (high = halo/non-local, medium = reduction/update, low = rolling prune).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "sim/inline_task.hpp"
#include "sim/kernel.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace hs::sim {

/// Stream priority tiers (higher value preempts lower on the SM pool).
struct StreamPriority {
  static constexpr int kLow = 0;
  static constexpr int kMedium = 1;
  static constexpr int kHigh = 2;
};

class Stream {
 public:
  Stream(Engine& engine, Device& device, Trace* trace, std::string name,
         int priority);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device& device() { return *device_; }
  int priority() const { return priority_; }
  const std::string& name() const { return name_; }

  /// Enqueue a kernel launch (device-side; the CPU launch cost is modelled
  /// by the host thread before calling this).
  void launch(KernelSpec spec);

  /// Enqueue an event record; the event completes when all prior work on
  /// this stream has finished.
  void record(GpuEventPtr event);
  GpuEventPtr record();  // convenience: create + record

  /// Enqueue a wait: later operations do not start until `event` completes.
  void wait(GpuEventPtr event);

  /// Enqueue a generic async operation (e.g. a DMA copy through the fabric
  /// or a fixed-duration copy-engine transfer). `op` receives a completion
  /// callback it must invoke exactly once.
  void enqueue_async(std::string name,
                     std::function<void(std::function<void()> done)> op);

  /// Enqueue a zero-duration host-visible callback (stream-ordered).
  void enqueue_callback(InlineTask fn);

  bool idle() const { return ops_.empty() && !busy_; }
  GpuEventPtr make_event() { return std::make_shared<GpuEvent>(*engine_); }

 private:
  struct Op {
    enum class Type { Kernel, Record, Wait, Async, Callback };
    Type type;
    KernelSpec spec;              // Kernel
    GpuEventPtr event;            // Record / Wait
    std::string name;             // Async
    std::function<void(std::function<void()>)> async_op;  // Async
    InlineTask callback;                                  // Callback
  };

  void pump();
  void on_kernel_done();
  void finish_current(SimTime started, std::string kernel_name,
                      std::int64_t tag, SimTime queue_ns);

  Engine* engine_;
  Device* device_;
  Trace* trace_;
  std::string name_;
  int priority_;
  std::deque<Op> ops_;
  std::uint64_t last_span_ = 0;  // previous op's trace span (stream order)
  std::vector<std::uint64_t> pending_wait_spans_;  // EventWait producers
  bool busy_ = false;
  std::string async_name_;  // in-flight Async op name (one at a time)
  std::unique_ptr<KernelInstance> current_;
  std::unique_ptr<KernelInstance> retired_;  // parked for reuse by next launch
};

}  // namespace hs::sim
