#include "sim/engine.hpp"

#include <algorithm>
#include <string>

#include "sim/trace.hpp"

namespace hs::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  schedule_with_cause(t, 0, std::move(fn));
}

void Engine::schedule_with_cause(SimTime t, std::uint64_t cause_span,
                                 std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Engine::schedule_at: t=" + std::to_string(t) +
                                " is before now=" + std::to_string(now_));
  }
  queue_.push_back(Item{t, next_seq_++, std::move(fn), cause_span});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Engine::step_one() {
  // pop_heap moves the earliest item to the back; take it out before
  // calling, since the callback may schedule more events.
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Item item = std::move(queue_.back());
  queue_.pop_back();
  now_ = item.t;
  ++processed_;
  if (trace_ != nullptr) trace_->set_cause(item.cause);
  try {
    item.fn();
  } catch (...) {
    record_error(std::current_exception());
  }
  if (trace_ != nullptr) trace_->set_cause(0);
}

SimTime Engine::run() {
  while (!queue_.empty() && !first_error_) step_one();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return now_;
}

bool Engine::run_until(SimTime horizon) {
  while (!queue_.empty() && !first_error_) {
    if (queue_.front().t > horizon) return false;
    step_one();
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return true;
}

void Engine::record_error(std::exception_ptr error) {
  if (!first_error_) first_error_ = std::move(error);
}

}  // namespace hs::sim
