#include "sim/engine.hpp"

#include <cassert>

namespace hs::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Item{t, next_seq_++, std::move(fn)});
}

void Engine::step_one() {
  // Move out of the queue before calling: the callback may schedule more.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  now_ = item.t;
  ++processed_;
  item.fn();
}

SimTime Engine::run() {
  while (!queue_.empty() && !first_error_) step_one();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return now_;
}

bool Engine::run_until(SimTime horizon) {
  while (!queue_.empty() && !first_error_) {
    if (queue_.top().t > horizon) return false;
    step_one();
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return true;
}

void Engine::record_error(std::exception_ptr error) {
  if (!first_error_) first_error_ = std::move(error);
}

}  // namespace hs::sim
