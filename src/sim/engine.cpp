#include "sim/engine.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>

#include "sim/trace.hpp"

namespace hs::sim {

Engine::~Engine() {
  // Slots are placement-constructed lazily in raw storage; destroy every
  // one that was ever handed out (free or pending). Destruction runs under
  // this engine's slab scope so debris drains to the right free lists
  // (blocks find their owner via their header either way).
  detail::TaskSlab::Scope slab_scope(&slab_);
  for (std::uint32_t s = 0; s < slot_count_; ++s) slots_[s].~Slot();
  std::free(slots_);
}

void Engine::grow_slots() {
  // 4x growth: slots recycle through the free list, so capacity converges
  // on the peak number of in-flight events and each growth step is a
  // relocation event worth avoiding — fewer, larger steps measured faster
  // than doubling on the event-throughput benchmark.
  const std::uint32_t new_cap = slot_cap_ == 0 ? 1024 : slot_cap_ * 4;
  static_assert(alignof(Slot) <= alignof(std::max_align_t));

  if (sticky_slots_ == 0) {
    // Every live callback tolerates byte-wise relocation, so the allocator
    // may move the whole block itself: realloc extends large blocks in
    // place (mremap), making growth free of copying in the common case.
    // This path alone was worth ~40 ns/event in the throughput benchmark.
    void* fresh =
        std::realloc(static_cast<void*>(slots_), sizeof(Slot) * new_cap);
    if (fresh == nullptr) throw std::bad_alloc{};
    slots_ = static_cast<Slot*>(fresh);
  } else {
    auto* fresh = static_cast<Slot*>(std::malloc(sizeof(Slot) * new_cap));
    if (fresh == nullptr) throw std::bad_alloc{};
    for (std::uint32_t s = 0; s < slot_count_; ++s) {
      Slot& src = slots_[s];
      if (src.fn.memcpy_relocatable()) {
        // Abandoned, not destroyed (for slab captures this transfers the
        // pointer to the copy).
        std::memcpy(static_cast<void*>(fresh + s),
                    static_cast<const void*>(&src), sizeof(Slot));
      } else {
        ::new (static_cast<void*>(fresh + s))
            Slot{std::move(src.fn), src.cause};
        src.~Slot();
      }
    }
    std::free(slots_);
    slots_ = fresh;
  }
  slot_cap_ = new_cap;
}

void Engine::bucket_grow() {
  const std::size_t old_cap = bucket_.size();
  const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<BucketItem> grown(new_cap);
  for (std::size_t i = 0; i < bucket_count_; ++i) {
    grown[i] = bucket_[(bucket_head_ + i) & (old_cap - 1)];
  }
  bucket_ = std::move(grown);
  bucket_head_ = 0;
}

void Engine::step_one() {
  // Pick the earliest (time, seq) across the two levels. Bucket items are
  // always at now_; the heap top is at now_ or later, so the bucket wins
  // unless the heap top is a same-time event scheduled earlier (smaller
  // seq) — that comparison preserves the exact single-queue FIFO order.
  bool from_bucket;
  if (bucket_count_ == 0) {
    from_bucket = false;
  } else if (heap_.empty()) {
    from_bucket = true;
  } else {
    const HeapKey& top = heap_.front();
    from_bucket = top.t > now_ || top.seq > bucket_front().seq;
  }

  std::uint32_t slot;
  if (from_bucket) {
    slot = bucket_front().slot;
    bucket_pop();
  } else {
    const HeapKey key = heap_pop();
    now_ = key.t;
    slot = key.slot;
  }

  // Move the callback out before running it: the callback may schedule
  // more events, which can grow slots_ (invalidating references) and may
  // immediately reuse the freed slot.
  Slot& s = slot_ref(slot);
  if (!s.fn.memcpy_relocatable()) --sticky_slots_;
  InlineTask fn = std::move(s.fn);
  const std::uint64_t cause = s.cause;
  free_slots_.push_back(slot);

  ++processed_;
  if (telemetry_.registry != nullptr) {
    telemetry_.registry->add(telemetry_.events, now_, 1.0);
    // Queue depth is a coarse load gauge; sampling every 64 events keeps
    // the series (and the cost) proportional to work done, not to time.
    if ((processed_ & 63u) == 0) {
      telemetry_.registry->set(
          telemetry_.queue_depth, now_,
          static_cast<double>(heap_.size() + bucket_count_));
    }
  }
  if (trace_ != nullptr) trace_->set_cause(cause);
  try {
    fn();
  } catch (...) {
    record_error(std::current_exception());
  }
  if (trace_ != nullptr) trace_->set_cause(0);
}

SimTime Engine::run() {
  // Events run under this engine's slab scope: callbacks that create
  // InlineTasks outside a schedule_* call (signal waiters, stream ops)
  // allocate from the lane-local slab rather than the shared fallback.
  detail::TaskSlab::Scope slab_scope(&slab_);
  while (!idle() && !first_error_) step_one();
  rethrow_pending_error();
  return now_;
}

bool Engine::run_until(SimTime horizon) {
  detail::TaskSlab::Scope slab_scope(&slab_);
  while (!idle() && !first_error_) {
    if (next_time() > horizon) break;
    step_one();
  }
  // Surface a recorded error at this return, whether stepping stopped on
  // it, the horizon, or an empty queue — callers must not have to wait for
  // the next run() to learn the simulation already failed.
  rethrow_pending_error();
  return idle();
}

void Engine::rethrow_pending_error() {
  if (!first_error_) return;
  auto err = std::exchange(first_error_, nullptr);
  std::rethrow_exception(err);
}

void Engine::record_error(std::exception_ptr error) {
  if (!first_error_) first_error_ = std::move(error);
}

void Engine::throw_past_schedule(SimTime t) const {
  throw std::invalid_argument("Engine::schedule_at: t=" + std::to_string(t) +
                              " is before now=" + std::to_string(now_));
}

}  // namespace hs::sim
