// Execution trace and device-side timing.
//
// Every kernel (and DMA copy) start/end lands here, tagged with the device,
// stream, and the runner's current MD step. This is the simulated analogue
// of the paper's %%globaltimer instrumentation (§6.3): the timing figures
// (Figs 6-8) are computed from these records, and the schedule-illustration
// bench (Figs 1-2) renders them as a timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hs::sim {

struct TraceRecord {
  int device = -1;
  std::string stream;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  std::int64_t step = -1;
};

class Trace {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void set_step(std::int64_t step) { step_ = step; }
  std::int64_t step() const { return step_; }

  /// `tag` >= 0 overrides the ambient step annotation (kernels carry their
  /// MD step explicitly because host loops launch several steps ahead).
  void record(int device, std::string stream, std::string name, SimTime begin,
              SimTime end, std::int64_t tag = -1) {
    if (!enabled_) return;
    records_.push_back({device, std::move(stream), std::move(name), begin, end,
                        tag >= 0 ? tag : step_});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  bool enabled_ = false;
  std::int64_t step_ = -1;
  std::vector<TraceRecord> records_;
};

}  // namespace hs::sim
