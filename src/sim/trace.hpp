// Execution trace and device-side timing.
//
// Every kernel (and DMA copy) start/end lands here, tagged with the device,
// stream, and the runner's current MD step. This is the simulated analogue
// of the paper's %%globaltimer instrumentation (§6.3): the timing figures
// (Figs 6-8) are computed from these records, and the schedule-illustration
// bench (Figs 1-2) renders them as a timeline.
//
// Beyond flat records, the trace is a causal event graph: every record is a
// span with a unique id, and producers register typed dependency edges
// between spans (stream order, event waits, signal set->wait, fabric
// delivery, NIC queueing). The graph is what runner/critical_path walks to
// attribute exchange latency to the paper's categories, and what the Chrome
// export renders as Perfetto flow arrows.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/logging.hpp"

namespace hs::sim {

/// What a span measures. Kernel spans are stream-resident work (kernels and
/// DMA copy-engine ops), Transfer spans are fabric occupancy windows, Wait
/// spans are blocked signal acquire-waits.
enum class SpanKind : std::uint8_t { Kernel, Transfer, Wait };

/// Why a span could not start (or finish) earlier.
enum class EdgeKind : std::uint8_t {
  StreamOrder,    // previous op on the same stream
  EventWait,      // cudaStreamWaitEvent: recorded span -> waiting span
  SignalSetWait,  // signal store/add -> the wait it released
  FabricTransfer, // fabric delivery -> work completed by it
  NicQueue,       // previous NIC occupant -> queued IB transfer
};

inline const char* to_string(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::StreamOrder: return "stream_order";
    case EdgeKind::EventWait: return "event_wait";
    case EdgeKind::SignalSetWait: return "signal_wait";
    case EdgeKind::FabricTransfer: return "fabric_transfer";
    case EdgeKind::NicQueue: return "nic_queue";
  }
  return "?";
}

struct TraceRecord {
  int device = -1;
  std::string stream;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  std::int64_t step = -1;
  std::uint64_t span = 0;  // unique id; 0 = invalid/disabled
  SpanKind kind = SpanKind::Kernel;
  /// Kernel: launch/dispatch overhead preceding `begin`. Transfer: time the
  /// request sat in the source NIC's queue after `begin`.
  SimTime queue_ns = 0;
  /// Transfer only: extra service time induced by a contended proxy thread.
  SimTime proxy_ns = 0;
  /// Transfer only: destination device (device is the source).
  int peer = -1;
};

/// Directed dependency: `src` had to happen(-ish) before `dst`.
struct TraceEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  EdgeKind kind = EdgeKind::StreamOrder;
};

class Trace {
 public:
  /// Default soft cap on the record count (see set_soft_cap).
  static constexpr std::size_t kDefaultSoftCap = 4'000'000;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void set_step(std::int64_t step) { step_ = step; }
  std::int64_t step() const { return step_; }

  /// `tag` >= 0 overrides the ambient step annotation (kernels carry their
  /// MD step explicitly because host loops launch several steps ahead).
  /// Returns the new span id (0 when tracing is disabled).
  std::uint64_t record(int device, std::string stream, std::string name,
                       SimTime begin, SimTime end, std::int64_t tag = -1,
                       SpanKind kind = SpanKind::Kernel, SimTime queue_ns = 0,
                       SimTime proxy_ns = 0, int peer = -1) {
    if (!enabled_) return 0;
    const std::uint64_t span = ++next_span_;
    records_.push_back({device, std::move(stream), std::move(name), begin, end,
                        tag >= 0 ? tag : step_, span, kind, queue_ns, proxy_ns,
                        peer});
    if (records_.size() > soft_cap_ && !cap_warned_) {
      cap_warned_ = true;
      HS_WARN("trace: record count exceeded soft cap (" << soft_cap_
              << "); long runs should disable tracing or raise the cap "
                 "(Trace::set_soft_cap)");
    }
    return span;
  }

  /// Register a causal edge between two spans. No-ops on disabled tracing,
  /// invalid (0) endpoints, or self-edges, so callers can pass candidate
  /// ids unconditionally.
  void add_edge(std::uint64_t src, std::uint64_t dst, EdgeKind kind) {
    if (!enabled_ || src == 0 || dst == 0 || src == dst) return;
    edges_.push_back({src, dst, kind});
  }

  /// Ambient causality context: the span whose completion scheduled the
  /// currently-running engine event (0 = none). Set by the engine around
  /// each event dispatched via schedule_with_cause; instrumentation points
  /// read it to attribute downstream effects (e.g. a signal store performed
  /// by a fabric delivery) to the transfer that caused them.
  void set_cause(std::uint64_t span) { cause_ = span; }
  std::uint64_t cause() const { return cause_; }

  /// Pre-size the record storage (e.g. steps * ranks * kernels-per-step).
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Records beyond the soft cap still land, but the first crossing logs a
  /// one-time warning — long runs with tracing left on should not balloon
  /// memory silently.
  void set_soft_cap(std::size_t cap) { soft_cap_ = cap; }
  std::size_t soft_cap() const { return soft_cap_; }

  const std::vector<TraceRecord>& records() const { return records_; }
  const std::vector<TraceEdge>& edges() const { return edges_; }

  /// Start span numbering at `base` — partitioned runs give each lane's
  /// Trace a disjoint id range (lane L starts at (L+1) << 32; a lane
  /// records far fewer than 2^32 spans, and merged ids stay below 2^53 so
  /// they survive a round-trip through JSON doubles). The partition of a
  /// merged span is thus recoverable as span >> 32.
  void set_span_base(std::uint64_t base) { next_span_ = base; }

  /// Deterministically fold per-lane traces into this one (the parallel
  /// coordinator calls this once at end of run). Records merge sorted by
  /// (begin, span) — span ids are unique, so the order is a total one and
  /// independent of lane count or thread schedule; edges concatenate in
  /// lane order. The lanes are drained (cleared) so a second run() does not
  /// re-merge stale spans; their span counters keep counting upward in
  /// their own ranges.
  void merge_from(const std::vector<Trace*>& lanes) {
    std::size_t extra_records = 0;
    std::size_t extra_edges = 0;
    for (Trace* lane : lanes) {
      extra_records += lane->records_.size();
      extra_edges += lane->edges_.size();
    }
    records_.reserve(records_.size() + extra_records);
    edges_.reserve(edges_.size() + extra_edges);
    const std::size_t merged_begin = records_.size();
    for (Trace* lane : lanes) {
      for (auto& r : lane->records_) records_.push_back(std::move(r));
      for (const auto& e : lane->edges_) edges_.push_back(e);
      lane->records_.clear();
      lane->edges_.clear();
    }
    std::sort(records_.begin() + static_cast<std::ptrdiff_t>(merged_begin),
              records_.end(), [](const TraceRecord& a, const TraceRecord& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.span < b.span;
              });
  }

  /// Drop all records/edges and reset the ambient step to "no step", so a
  /// reused trace does not tag new records with the previous run's last
  /// step. Span ids keep counting up: ids stay unique across clears.
  void clear() {
    records_.clear();
    edges_.clear();
    step_ = -1;
    cause_ = 0;
    cap_warned_ = false;
  }

 private:
  bool enabled_ = false;
  std::int64_t step_ = -1;
  std::uint64_t next_span_ = 0;
  std::uint64_t cause_ = 0;
  std::size_t soft_cap_ = kDefaultSoftCap;
  bool cap_warned_ = false;
  std::vector<TraceRecord> records_;
  std::vector<TraceEdge> edges_;
};

}  // namespace hs::sim
