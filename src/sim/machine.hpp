// Composition root of the simulated cluster: engine + topology + devices +
// fabric + trace, plus stream and host-task lifetime management.
//
// Two execution modes (see DESIGN.md §"Parallel engine"):
//
//  * classic (workers == 0, the default): one Engine drives every device
//    with a single global (time, seq) order — the correctness oracle;
//  * partitioned (workers >= 1): one Engine + Trace *per device* ("lane"),
//    advanced in conservative safe windows by a ParallelDriver. The lane
//    structure is fixed by the device count, never by the worker count, so
//    --workers=1 and --workers=N are bit-identical by construction.
#pragma once

#include <memory>
#include <vector>

#include "sim/costmodel.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/fabric.hpp"
#include "sim/parallel.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

struct MachineOptions {
  /// 0 = classic sequential engine. >= 1 = partitioned parallel mode with
  /// that many worker threads (1 runs the partitioned protocol on a single
  /// thread — the determinism oracle for higher counts).
  int workers = 0;
};

class Machine {
 public:
  Machine(Topology topology, CostModel cost_model,
          MachineOptions options = {});

  /// The classic global engine. In partitioned mode this engine is dormant
  /// (per-device code must use device_engine); it remains valid so that
  /// setup-time helpers which never schedule (e.g. unused barriers) keep
  /// working.
  Engine& engine() { return engine_; }
  Fabric& fabric() { return *fabric_; }
  /// The master trace: records land here directly in classic mode, and are
  /// deterministically merged here from the per-lane traces at the end of
  /// each partitioned run().
  Trace& trace() { return trace_; }
  const CostModel& cost() const { return cost_model_; }
  const Topology& topology() const { return fabric_->topology(); }

  bool partitioned() const { return !lanes_.empty(); }
  int workers() const { return options_.workers; }

  /// The engine that advances device `d`: the lane engine in partitioned
  /// mode, the global engine otherwise. All simulation objects owned by a
  /// device (streams, events, signals, pending host work) must schedule
  /// through this.
  Engine& device_engine(int d) {
    return partitioned() ? lanes_[static_cast<std::size_t>(d)]->engine
                         : engine_;
  }
  /// The trace that device `d`'s instrumentation records into.
  Trace& device_trace(int d) {
    return partitioned() ? lanes_[static_cast<std::size_t>(d)]->trace
                         : trace_;
  }

  int device_count() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }

  /// Create a stream on device `device_id`; the machine owns it.
  Stream& create_stream(int device_id, std::string name, int priority);

  /// Run a host-side coroutine (a rank's CPU thread). The machine keeps the
  /// frame alive for its own lifetime. `on_complete`, if given, runs when
  /// the task finishes (the event-based "join" pattern; see task.hpp).
  void spawn_host_task(Task task, std::function<void()> on_complete = {});

  /// spawn_host_task, homed on a device's lane: the coroutine's engine (and
  /// thus every event it schedules) is device_engine(device_id). In classic
  /// mode this is identical to spawn_host_task.
  void spawn_host_task_on(int device_id, Task task,
                          std::function<void()> on_complete = {});

  /// Drive the simulation until all scheduled work has drained. Partitioned
  /// mode runs the conservative window protocol and then merges the lane
  /// traces into trace().
  SimTime run();

  /// Total events processed (across lanes in partitioned mode).
  std::uint64_t events_processed() const;
  /// Final simulated clock: engine().now() in classic mode, the max lane
  /// clock in partitioned mode.
  SimTime final_time() const;

  /// The conservative lookahead: the minimum cross-device link latency in
  /// the fabric (>= 1 ns). Exposed for tests and benches.
  SimTime lookahead() const { return lookahead_; }
  const ParallelDriver* driver() const { return driver_.get(); }

  // ---- Telemetry -------------------------------------------------------
  /// Turn on per-window time-series telemetry (util/telemetry). Must be
  /// called before constructing instrumented layers (pgas::World,
  /// MdRunner, ...) — they register their metrics at construction time.
  /// Binds the engine / fabric / parallel-driver probes: classic mode
  /// records straight into telemetry(); partitioned mode records into
  /// per-lane registries that run() merges into telemetry() in device
  /// order (deterministic, so --workers=1 ≡ --workers=N byte-identical).
  void enable_telemetry(
      std::int64_t window_ns = util::telemetry::Registry::kDefaultWindowNs,
      std::size_t series_capacity =
          util::telemetry::Registry::kDefaultSeriesCapacity);
  bool telemetry_enabled() const { return telemetry_.enabled(); }
  /// The master registry (merged from lane rows after partitioned runs).
  util::telemetry::Registry& telemetry() { return telemetry_; }
  const util::telemetry::Registry& telemetry() const { return telemetry_; }
  /// The registry device `d`'s instrumentation must record into: the lane
  /// row in partitioned mode, the master registry otherwise.
  util::telemetry::Registry& telemetry_row(int d) {
    return partitioned() ? lanes_[static_cast<std::size_t>(d)]->telemetry
                         : telemetry_;
  }

 private:
  struct Lane {
    Engine engine;
    Trace trace;
    util::telemetry::Registry telemetry;
    // Host-task frames spawned on this lane. Lane-homed (not the shared
    // host_tasks_) because transports spawn host tasks mid-run from lane
    // coroutines, and two worker threads may do so concurrently.
    std::vector<Task> host_tasks;
  };

  SimTime compute_lookahead(const Topology& topology) const;

  MachineOptions options_;
  Engine engine_;
  Trace trace_;
  util::telemetry::Registry telemetry_;
  CostModel cost_model_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // one per device (partitioned)
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<ParallelDriver> driver_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<Task> host_tasks_;
  SimTime lookahead_ = 1;
};

}  // namespace hs::sim
