// Composition root of the simulated cluster: engine + topology + devices +
// fabric + trace, plus stream and host-task lifetime management.
#pragma once

#include <memory>
#include <vector>

#include "sim/costmodel.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/fabric.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"

namespace hs::sim {

class Machine {
 public:
  Machine(Topology topology, CostModel cost_model);

  Engine& engine() { return engine_; }
  Fabric& fabric() { return *fabric_; }
  Trace& trace() { return trace_; }
  const CostModel& cost() const { return cost_model_; }
  const Topology& topology() const { return fabric_->topology(); }

  int device_count() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }

  /// Create a stream on device `device_id`; the machine owns it.
  Stream& create_stream(int device_id, std::string name, int priority);

  /// Run a host-side coroutine (a rank's CPU thread). The machine keeps the
  /// frame alive for its own lifetime. `on_complete`, if given, runs when
  /// the task finishes (the event-based "join" pattern; see task.hpp).
  void spawn_host_task(Task task, std::function<void()> on_complete = {});

  /// Drive the simulation until all scheduled work has drained.
  SimTime run() { return engine_.run(); }

 private:
  Engine engine_;
  Trace trace_;
  CostModel cost_model_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<Task> host_tasks_;
};

}  // namespace hs::sim
