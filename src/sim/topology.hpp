// Cluster topology: which GPUs share an NVLink domain and which must talk
// over InfiniBand.
//
// Two presets match the paper's testbeds:
//  * dgx_h100(): NVLink/NVSwitch domain == one node (Eos, Figs 3/5-8);
//  * gb200_nvl72(): rack-scale multi-node NVLink domain (Fig 4, 36x2 NVL72,
//    up to 72 GPUs all NVLink-reachable).
#pragma once

#include <cassert>
#include <string>

namespace hs::sim {

enum class LinkType {
  Loopback,  // same device
  NVLink,    // same NVLink/NVSwitch domain
  IB,        // InfiniBand between NVLink domains
};

std::string to_string(LinkType type);

class Topology {
 public:
  Topology(int num_nodes, int gpus_per_node, int nvlink_domain_nodes)
      : num_nodes_(num_nodes),
        gpus_per_node_(gpus_per_node),
        nvlink_domain_nodes_(nvlink_domain_nodes) {
    assert(num_nodes_ > 0 && gpus_per_node_ > 0 && nvlink_domain_nodes_ > 0);
  }

  /// DGX-H100-like: NVLink domain is a single node; IB between nodes.
  static Topology dgx_h100(int num_nodes, int gpus_per_node = 4) {
    return Topology(num_nodes, gpus_per_node, 1);
  }

  /// GB200 NVL72-like: all nodes of one rack share an NVLink domain. The
  /// paper's machine is a 36x2 rack used with 4 GPUs/node; every tested
  /// node count fits inside one rack, so the whole job is NVLink-reachable.
  static Topology gb200_nvl72(int num_nodes, int gpus_per_node = 4) {
    return Topology(num_nodes, gpus_per_node, num_nodes);
  }

  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int device_count() const { return num_nodes_ * gpus_per_node_; }

  int node_of(int device) const {
    assert(device >= 0 && device < device_count());
    return device / gpus_per_node_;
  }
  int nvlink_domain_of(int device) const {
    return node_of(device) / nvlink_domain_nodes_;
  }
  bool same_nvlink_domain(int a, int b) const {
    return nvlink_domain_of(a) == nvlink_domain_of(b);
  }

  LinkType link(int src, int dst) const {
    if (src == dst) return LinkType::Loopback;
    return same_nvlink_domain(src, dst) ? LinkType::NVLink : LinkType::IB;
  }

 private:
  int num_nodes_;
  int gpus_per_node_;
  int nvlink_domain_nodes_;
};

}  // namespace hs::sim
