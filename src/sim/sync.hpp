// Synchronization objects visible to simulated device and host code.
//
//  * Signal        — device-visible 64-bit counter with threshold waiters;
//                    the simulated analogue of NVSHMEM signal words and the
//                    paper's per-pulse ctx.signal[p] (Algorithm 1, line 4).
//  * GpuEvent      — CUDA-event analogue: one-shot completion with waiters.
//  * BlockBarrier  — reusable arrive_and_wait barrier, the analogue of the
//                    shared-memory barriers coordinating TMA loads
//                    (indexMapLoadBarrier / forceBufLoadBarrier).
//
// Waking is always funneled through the engine (schedule_now) in waiter
// registration order, which keeps the simulation deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_task.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

/// Memory-ordering flavour of a signal store. The simulator is sequential,
/// so this does not change visibility — it exists because the cost model
/// charges a system-scope release store more than a relaxed store (§5.2:
/// system_release_store vs system_relaxed_store).
enum class SignalOrder { Relaxed, Release };

class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(&engine) {}

  /// Opt this signal into causal tracing: every *blocked* acquire-wait
  /// becomes a Wait span on `device` (stream "sync") from registration to
  /// release, with a SignalSetWait edge from the releasing store's ambient
  /// cause (e.g. the fabric transfer that delivered the put-with-signal).
  /// Immediately-satisfied waits emit nothing — they cost nothing.
  void bind_trace(Trace* trace, int device, std::string name) {
    trace_ = trace;
    device_ = device;
    name_ = std::move(name);
  }

  /// Record every *blocked* acquire-wait's stall (registration ->
  /// release, in sim ns) into a telemetry histogram — the signal-wait
  /// stall series. The registry should be the owning device's lane row
  /// (pgas::World binds it when machine telemetry is on).
  void bind_telemetry(util::telemetry::Registry* registry,
                      util::telemetry::MetricId stall_ns) {
    telemetry_ = registry;
    stall_ns_ = stall_ns;
  }

  std::int64_t value() const { return value_; }

  void store(std::int64_t v) {
    value_ = v;
    wake();
  }
  void add(std::int64_t delta) {
    value_ += delta;
    wake();
  }
  void reset(std::int64_t v = 0) { value_ = v; }  // no wake: reuse between steps

  /// Invoke fn (via the engine) once value() >= threshold.
  void when_ge(std::int64_t threshold, InlineTask fn);

  /// Number of acquire-waits started on this signal (wait_ge + when_ge),
  /// including those satisfied immediately. Observability: the simulated
  /// analogue of counting nvshmem_signal_wait_until calls.
  std::uint64_t wait_count() const { return wait_count_; }

  /// Awaitable acquire-wait: co_await sig.wait_ge(v).
  auto wait_ge(std::int64_t threshold) {
    ++wait_count_;
    struct Awaiter {
      Signal* sig;
      std::int64_t threshold;
      bool await_ready() const { return sig->value_ >= threshold; }
      void await_suspend(Task::Handle h) {
        sig->waiters_.push_back(
            {threshold, [h] { h.resume(); }, sig->engine_->now()});
      }
      void await_resume() const {}
    };
    return Awaiter{this, threshold};
  }

 private:
  void wake();

  Engine* engine_;
  Trace* trace_ = nullptr;
  util::telemetry::Registry* telemetry_ = nullptr;
  util::telemetry::MetricId stall_ns_;
  int device_ = -1;
  std::string name_;
  std::int64_t value_ = 0;
  std::uint64_t wait_count_ = 0;
  struct Waiter {
    std::int64_t threshold;
    InlineTask fn;
    SimTime since = 0;  // registration time, for the Wait span
  };
  std::vector<Waiter> waiters_;
  std::vector<InlineTask> ready_scratch_;  // reused by wake(), no per-wake alloc
};

class GpuEvent {
 public:
  explicit GpuEvent(Engine& engine) : engine_(&engine) {}

  bool is_complete() const { return complete_; }
  SimTime completed_at() const { return completed_at_; }

  /// Trace span whose completion this event marks (set by Stream on the
  /// Record op; 0 = unknown). Lets a later stream-wait draw an EventWait
  /// edge back to the producing work.
  void set_origin_span(std::uint64_t span) { origin_span_ = span; }
  std::uint64_t origin_span() const { return origin_span_; }

  void complete();
  void when_complete(InlineTask fn);

  auto wait() {
    struct Awaiter {
      GpuEvent* ev;
      bool await_ready() const { return ev->complete_; }
      void await_suspend(Task::Handle h) {
        ev->waiters_.push_back([h] { h.resume(); });
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool complete_ = false;
  SimTime completed_at_ = -1;
  std::uint64_t origin_span_ = 0;
  std::vector<InlineTask> waiters_;
};

using GpuEventPtr = std::shared_ptr<GpuEvent>;

/// Reusable barrier over a fixed participant count.
class BlockBarrier {
 public:
  BlockBarrier(Engine& engine, int expected)
      : engine_(&engine), expected_(expected) {}

  int expected() const { return expected_; }

  auto arrive_and_wait() {
    struct Awaiter {
      BlockBarrier* bar;
      bool await_ready() const { return false; }
      bool await_suspend(Task::Handle h) {
        if (++bar->arrived_ == bar->expected_) {
          bar->arrived_ = 0;
          auto waiters = std::move(bar->waiters_);
          bar->waiters_.clear();
          for (auto& fn : waiters) bar->engine_->schedule_now(std::move(fn));
          return false;  // last arriver proceeds immediately
        }
        bar->waiters_.push_back([h] { h.resume(); });
        return true;
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  int expected_;
  int arrived_ = 0;
  std::vector<InlineTask> waiters_;
};

}  // namespace hs::sim
