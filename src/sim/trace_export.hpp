// Chrome/Perfetto trace_events export for sim::Trace.
//
// Renders the simulated %%globaltimer records as a Chrome-trace JSON file
// (chrome://tracing, Perfetto UI, or speedscope all load it): one process
// per simulated device (pid), one thread per stream (tid), and every
// kernel/copy as a complete duration event (ph:"X") tagged with its MD
// step. Causal trace edges become Perfetto flow events (ph:"s"/"f" pairs),
// so dependency arrows — signal set->wait, NIC queueing, fabric deliveries
// — render in the viewer. Several traces (e.g. one per transport in a
// comparison bench) can land in one file — each add() gets a disjoint pid
// range and a process name prefixed with its label.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

class ChromeTraceWriter {
 public:
  /// Snapshot `trace`'s records under process names "<label> dev<N>"
  /// ("dev<N>" when the label is empty). Call once per run/machine.
  void add(const Trace& trace, std::string label = {});

  /// Interleave a telemetry registry's Sim-domain series into the most
  /// recently add()ed source as Chrome counter events (ph:"C"): one
  /// counter track per metric, one sample per series bucket (bucket sum;
  /// mean for gauges). Device-qualified metrics land on the device's pid;
  /// global metrics (device = -1) land on a "telemetry" pseudo-process at
  /// the top of the source's pid range. Host-domain metrics are skipped —
  /// wall-clock series would break trace determinism. Call after add().
  void add_counters(const util::telemetry::Registry& registry);

  std::size_t event_count() const;
  std::size_t edge_count() const;
  bool empty() const { return event_count() == 0; }

  /// Emit the whole trace_events JSON document.
  void write(std::ostream& os) const;
  /// Convenience: write to `path`; returns false if the file cannot be
  /// opened.
  bool write_file(const std::string& path) const;

 private:
  struct CounterSample {
    std::string name;
    int pid = 0;
    SimTime ts = 0;
    double value = 0.0;
  };
  struct Source {
    std::vector<TraceRecord> records;
    std::vector<TraceEdge> edges;
    std::vector<CounterSample> counters;
    std::string label;
    int pid_base = 0;
    int max_device = -1;
  };
  std::vector<Source> sources_;
  int next_pid_ = 0;
};

/// One-shot export of a single trace.
void write_chrome_trace(const Trace& trace, std::ostream& os);

}  // namespace hs::sim
