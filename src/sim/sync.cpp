#include "sim/sync.hpp"

namespace hs::sim {

void Signal::when_ge(std::int64_t threshold, std::function<void()> fn) {
  ++wait_count_;
  if (value_ >= threshold) {
    engine_->schedule_now(std::move(fn));
    return;
  }
  waiters_.push_back({threshold, std::move(fn), engine_->now()});
}

void Signal::wake() {
  // Collect satisfied waiters in registration order, then hand them to the
  // engine. Swap-out first: a woken waiter may register new waiters.
  std::vector<Waiter> keep;
  std::vector<std::function<void()>> ready;
  keep.reserve(waiters_.size());
  for (auto& w : waiters_) {
    if (value_ >= w.threshold) {
      if (trace_ != nullptr && trace_->enabled()) {
        // The wait span covers registration -> release; the releasing
        // store's ambient cause (a fabric transfer, when the store came
        // from a put-with-signal delivery) becomes the producer edge.
        const std::uint64_t span =
            trace_->record(device_, "sync", name_, w.since, engine_->now(),
                           -1, SpanKind::Wait);
        trace_->add_edge(trace_->cause(), span, EdgeKind::SignalSetWait);
      }
      ready.push_back(std::move(w.fn));
    } else {
      keep.push_back(std::move(w));
    }
  }
  waiters_ = std::move(keep);
  for (auto& fn : ready) engine_->schedule_now(std::move(fn));
}

void GpuEvent::complete() {
  if (complete_) return;
  complete_ = true;
  completed_at_ = engine_->now();
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& fn : waiters) engine_->schedule_now(std::move(fn));
}

void GpuEvent::when_complete(std::function<void()> fn) {
  if (complete_) {
    engine_->schedule_now(std::move(fn));
    return;
  }
  waiters_.push_back(std::move(fn));
}

}  // namespace hs::sim
