#include "sim/sync.hpp"

namespace hs::sim {

void Signal::when_ge(std::int64_t threshold, InlineTask fn) {
  ++wait_count_;
  if (value_ >= threshold) {
    engine_->schedule_now(std::move(fn));
    return;
  }
  waiters_.push_back({threshold, std::move(fn), engine_->now()});
}

void Signal::wake() {
  if (waiters_.empty()) return;
  // Collect satisfied waiters in registration order, compacting the rest
  // in place (stable). No user code runs inside this loop — releases are
  // deferred through the engine — so neither vector can be mutated
  // reentrantly, and ready_scratch_ is safely reused across wakes.
  std::size_t kept = 0;
  for (Waiter& w : waiters_) {
    if (value_ >= w.threshold) {
      if (telemetry_ != nullptr) {
        telemetry_->observe(stall_ns_, engine_->now(),
                            static_cast<double>(engine_->now() - w.since));
      }
      if (trace_ != nullptr && trace_->enabled()) {
        // The wait span covers registration -> release; the releasing
        // store's ambient cause (a fabric transfer, when the store came
        // from a put-with-signal delivery) becomes the producer edge.
        const std::uint64_t span =
            trace_->record(device_, "sync", name_, w.since, engine_->now(),
                           -1, SpanKind::Wait);
        trace_->add_edge(trace_->cause(), span, EdgeKind::SignalSetWait);
      }
      ready_scratch_.push_back(std::move(w.fn));
    } else {
      if (kept != static_cast<std::size_t>(&w - waiters_.data())) {
        waiters_[kept] = std::move(w);
      }
      ++kept;
    }
  }
  waiters_.resize(kept);
  for (InlineTask& fn : ready_scratch_) engine_->schedule_now(std::move(fn));
  ready_scratch_.clear();
}

void GpuEvent::complete() {
  if (complete_) return;
  complete_ = true;
  completed_at_ = engine_->now();
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (InlineTask& fn : waiters) engine_->schedule_now(std::move(fn));
}

void GpuEvent::when_complete(InlineTask fn) {
  if (complete_) {
    engine_->schedule_now(std::move(fn));
    return;
  }
  waiters_.push_back(std::move(fn));
}

}  // namespace hs::sim
