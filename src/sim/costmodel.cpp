#include "sim/costmodel.hpp"

namespace hs::sim {

CostModel CostModel::h100_eos() {
  CostModel cm;  // defaults are the H100 calibration
  cm.fabric.loopback = LinkParams{100, 0, 1500.0};
  // NVLink 4.0: 450 GB/s/dir peak, ~300 GB/s effective => 300 B/ns.
  cm.fabric.nvlink = LinkParams{1200, 250, 300.0};
  // ConnectX-7 NDR 400G: 50 GB/s peak, ~45 B/ns effective; rendezvous-ish
  // per-message overhead.
  cm.fabric.ib = LinkParams{3000, 1500, 45.0};
  return cm;
}

CostModel CostModel::gb200_nvl72() {
  CostModel cm = h100_eos();
  // GB200: ~1.8x H100 effective FP32 throughput on these kernels.
  const double speedup = 1.35;
  cm.nb_local_ns_per_atom /= speedup;
  cm.nb_nonlocal_ns_per_atom /= speedup;
  cm.bonded_ns_per_atom /= speedup;
  cm.pack_ns_per_atom /= speedup;
  cm.unpack_ns_per_atom /= speedup;
  cm.integrate_ns_per_atom /= speedup;
  cm.reduce_ns_per_atom /= speedup;
  cm.prune_ns_per_atom /= speedup;
  // NVLink 5: ~2x bandwidth, slightly lower latency; rack-scale NVSwitch
  // adds a hop vs in-node.
  cm.fabric.nvlink = LinkParams{1100, 140, 550.0};
  return cm;
}

}  // namespace hs::sim
