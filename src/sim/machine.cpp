#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace hs::sim {

Machine::Machine(Topology topology, CostModel cost_model,
                 MachineOptions options)
    : options_(options), cost_model_(cost_model) {
  if (options_.workers < 0) {
    throw std::invalid_argument("MachineOptions::workers must be >= 0");
  }
  lookahead_ = compute_lookahead(topology);
  if (options_.workers > 0) {
    // One lane per device, regardless of worker count: the partition is a
    // property of the simulated machine, so the lane-local (time, seq)
    // orders — and with them every observable output — are identical for
    // every worker count. Span id ranges are disjoint per lane (and
    // disjoint from the master trace's own range, which keeps base 0).
    lanes_.reserve(static_cast<std::size_t>(topology.device_count()));
    for (int d = 0; d < topology.device_count(); ++d) {
      lanes_.push_back(std::make_unique<Lane>());
      lanes_.back()->trace.set_span_base(
          (static_cast<std::uint64_t>(d) + 1) << 32);
      lanes_.back()->engine.bind_trace(&lanes_.back()->trace);
    }
  }
  for (int d = 0; d < topology.device_count(); ++d) {
    devices_.push_back(
        std::make_unique<Device>(device_engine(d), d, topology.node_of(d)));
  }
  fabric_ = std::make_unique<Fabric>(engine_, topology, cost_model_.fabric);
  engine_.bind_trace(&trace_);
  fabric_->bind_trace(&trace_);
  if (partitioned()) {
    std::vector<Engine*> engines;
    std::vector<Trace*> traces;
    for (auto& lane : lanes_) {
      engines.push_back(&lane->engine);
      traces.push_back(&lane->trace);
    }
    driver_ = std::make_unique<ParallelDriver>(engines, lookahead_,
                                               options_.workers);
    fabric_->configure_partitioned(std::move(engines), std::move(traces),
                                   driver_.get());
  }
}

SimTime Machine::compute_lookahead(const Topology& topology) const {
  // The conservative window width: no cross-device interaction can take
  // effect sooner than the fastest cross-device link's latency. Loopback
  // never crosses lanes (src == dst), so it does not bound the window.
  SimTime lookahead = kNever;
  bool cross = false;
  for (int src = 0; src < topology.device_count(); ++src) {
    for (int dst = 0; dst < topology.device_count(); ++dst) {
      if (src == dst) continue;
      cross = true;
      const LinkType type = topology.link(src, dst);
      const SimTime latency =
          type == LinkType::NVLink ? cost_model_.fabric.nvlink.latency_ns
                                   : cost_model_.fabric.ib.latency_ns;
      lookahead = std::min(lookahead, latency);
    }
  }
  if (!cross) return 1;  // single-device machine: window width is moot
  return std::max<SimTime>(1, lookahead);
}

void Machine::enable_telemetry(std::int64_t window_ns,
                               std::size_t series_capacity) {
  telemetry_.enable(window_ns, series_capacity);
  std::vector<util::telemetry::Registry*> rows;
  rows.reserve(devices_.size());
  if (partitioned()) {
    // One registry per lane, written lane-locally during the run. Engine
    // metrics carry the device in the name: in partitioned mode each
    // device *is* an engine, so the per-lane series is the interesting
    // signal (lane imbalance, per-lane churn).
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      Lane& lane = *lanes_[d];
      lane.telemetry.enable(window_ns, series_capacity);
      rows.push_back(&lane.telemetry);
      const std::string prefix = "engine.d" + std::to_string(d) + ".";
      EngineTelemetry probe;
      probe.registry = &lane.telemetry;
      probe.events = lane.telemetry.counter(prefix + "events", "events",
                                            static_cast<int>(d));
      probe.schedule_now = lane.telemetry.counter(
          prefix + "schedule_now", "events", static_cast<int>(d));
      probe.queue_depth = lane.telemetry.gauge(prefix + "queue_depth",
                                               "events", static_cast<int>(d));
      lane.engine.bind_telemetry(probe);
    }
    driver_->bind_telemetry(&telemetry_, rows);
  } else {
    EngineTelemetry probe;
    probe.registry = &telemetry_;
    probe.events = telemetry_.counter("engine.events", "events");
    probe.schedule_now = telemetry_.counter("engine.schedule_now", "events");
    probe.queue_depth = telemetry_.gauge("engine.queue_depth", "events");
    engine_.bind_telemetry(probe);
    rows.assign(devices_.size(), &telemetry_);
  }
  fabric_->bind_telemetry(rows);
}

Stream& Machine::create_stream(int device_id, std::string name, int priority) {
  streams_.push_back(std::make_unique<Stream>(
      device_engine(device_id), device(device_id), &device_trace(device_id),
      std::move(name), priority));
  return *streams_.back();
}

void Machine::spawn_host_task(Task task, std::function<void()> on_complete) {
  if (partitioned()) {
    throw std::logic_error(
        "Machine::spawn_host_task: partitioned mode requires a lane — use "
        "spawn_host_task_on(device, ...)");
  }
  task.bind(ExecContext{&engine_, nullptr, 0});
  if (on_complete) task.set_on_complete(std::move(on_complete));
  host_tasks_.push_back(std::move(task));
  host_tasks_.back().start();
}

void Machine::spawn_host_task_on(int device_id, Task task,
                                 std::function<void()> on_complete) {
  task.bind(ExecContext{&device_engine(device_id), nullptr, 0});
  if (on_complete) task.set_on_complete(std::move(on_complete));
  // Partitioned lanes spawn host tasks mid-run from their own worker
  // threads (e.g. the thread-MPI coordination phases), so the frames live
  // in the lane — the shared host_tasks_ vector would race.
  std::vector<Task>& tasks =
      partitioned() ? lanes_[static_cast<std::size_t>(device_id)]->host_tasks
                    : host_tasks_;
  tasks.push_back(std::move(task));
  tasks.back().start();
}

SimTime Machine::run() {
  if (!partitioned()) return engine_.run();
  // Lane traces inherit enablement at the start of every run (the caller
  // may toggle trace().set_enabled between runs), and fold back into the
  // master trace at the end, in a deterministic (begin, span) order.
  std::vector<Trace*> lane_traces;
  lane_traces.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    lane->trace.set_enabled(trace_.enabled());
    lane->trace.set_soft_cap(trace_.soft_cap());
    lane_traces.push_back(&lane->trace);
  }
  const SimTime end = driver_->run();
  trace_.merge_from(lane_traces);
  if (telemetry_.enabled()) {
    // Fold lane rows into the master registry in device order — a
    // deterministic merge (samples are keyed by sim time and combined by
    // metric name), then reset the rows so repeated runs don't double
    // count. Coordinator-side driver metrics are already in telemetry_.
    for (auto& lane : lanes_) {
      telemetry_.merge(lane->telemetry);
      lane->telemetry.reset_values();
    }
  }
  return end;
}

std::uint64_t Machine::events_processed() const {
  if (!partitioned()) return engine_.events_processed();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->engine.events_processed();
  return total;
}

SimTime Machine::final_time() const {
  if (!partitioned()) return engine_.now();
  SimTime end = 0;
  for (const auto& lane : lanes_) end = std::max(end, lane->engine.now());
  return end;
}

}  // namespace hs::sim
