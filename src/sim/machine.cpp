#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace hs::sim {

Machine::Machine(Topology topology, CostModel cost_model,
                 MachineOptions options)
    : options_(options), cost_model_(cost_model) {
  if (options_.workers < 0) {
    throw std::invalid_argument("MachineOptions::workers must be >= 0");
  }
  lookahead_ = compute_lookahead(topology);
  if (options_.workers > 0) {
    // One lane per device, regardless of worker count: the partition is a
    // property of the simulated machine, so the lane-local (time, seq)
    // orders — and with them every observable output — are identical for
    // every worker count. Span id ranges are disjoint per lane (and
    // disjoint from the master trace's own range, which keeps base 0).
    lanes_.reserve(static_cast<std::size_t>(topology.device_count()));
    for (int d = 0; d < topology.device_count(); ++d) {
      lanes_.push_back(std::make_unique<Lane>());
      lanes_.back()->trace.set_span_base(
          (static_cast<std::uint64_t>(d) + 1) << 32);
      lanes_.back()->engine.bind_trace(&lanes_.back()->trace);
    }
  }
  for (int d = 0; d < topology.device_count(); ++d) {
    devices_.push_back(
        std::make_unique<Device>(device_engine(d), d, topology.node_of(d)));
  }
  fabric_ = std::make_unique<Fabric>(engine_, topology, cost_model_.fabric);
  engine_.bind_trace(&trace_);
  fabric_->bind_trace(&trace_);
  if (partitioned()) {
    std::vector<Engine*> engines;
    std::vector<Trace*> traces;
    for (auto& lane : lanes_) {
      engines.push_back(&lane->engine);
      traces.push_back(&lane->trace);
    }
    driver_ = std::make_unique<ParallelDriver>(engines, lookahead_,
                                               options_.workers);
    fabric_->configure_partitioned(std::move(engines), std::move(traces),
                                   driver_.get());
  }
}

SimTime Machine::compute_lookahead(const Topology& topology) const {
  // The conservative window width: no cross-device interaction can take
  // effect sooner than the fastest cross-device link's latency. Loopback
  // never crosses lanes (src == dst), so it does not bound the window.
  SimTime lookahead = kNever;
  bool cross = false;
  for (int src = 0; src < topology.device_count(); ++src) {
    for (int dst = 0; dst < topology.device_count(); ++dst) {
      if (src == dst) continue;
      cross = true;
      const LinkType type = topology.link(src, dst);
      const SimTime latency =
          type == LinkType::NVLink ? cost_model_.fabric.nvlink.latency_ns
                                   : cost_model_.fabric.ib.latency_ns;
      lookahead = std::min(lookahead, latency);
    }
  }
  if (!cross) return 1;  // single-device machine: window width is moot
  return std::max<SimTime>(1, lookahead);
}

Stream& Machine::create_stream(int device_id, std::string name, int priority) {
  streams_.push_back(std::make_unique<Stream>(
      device_engine(device_id), device(device_id), &device_trace(device_id),
      std::move(name), priority));
  return *streams_.back();
}

void Machine::spawn_host_task(Task task, std::function<void()> on_complete) {
  if (partitioned()) {
    throw std::logic_error(
        "Machine::spawn_host_task: partitioned mode requires a lane — use "
        "spawn_host_task_on(device, ...)");
  }
  task.bind(ExecContext{&engine_, nullptr, 0});
  if (on_complete) task.set_on_complete(std::move(on_complete));
  host_tasks_.push_back(std::move(task));
  host_tasks_.back().start();
}

void Machine::spawn_host_task_on(int device_id, Task task,
                                 std::function<void()> on_complete) {
  task.bind(ExecContext{&device_engine(device_id), nullptr, 0});
  if (on_complete) task.set_on_complete(std::move(on_complete));
  host_tasks_.push_back(std::move(task));
  host_tasks_.back().start();
}

SimTime Machine::run() {
  if (!partitioned()) return engine_.run();
  // Lane traces inherit enablement at the start of every run (the caller
  // may toggle trace().set_enabled between runs), and fold back into the
  // master trace at the end, in a deterministic (begin, span) order.
  std::vector<Trace*> lane_traces;
  lane_traces.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    lane->trace.set_enabled(trace_.enabled());
    lane->trace.set_soft_cap(trace_.soft_cap());
    lane_traces.push_back(&lane->trace);
  }
  const SimTime end = driver_->run();
  trace_.merge_from(lane_traces);
  return end;
}

std::uint64_t Machine::events_processed() const {
  if (!partitioned()) return engine_.events_processed();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->engine.events_processed();
  return total;
}

SimTime Machine::final_time() const {
  if (!partitioned()) return engine_.now();
  SimTime end = 0;
  for (const auto& lane : lanes_) end = std::max(end, lane->engine.now());
  return end;
}

}  // namespace hs::sim
