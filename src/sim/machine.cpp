#include "sim/machine.hpp"

namespace hs::sim {

Machine::Machine(Topology topology, CostModel cost_model)
    : cost_model_(cost_model) {
  for (int d = 0; d < topology.device_count(); ++d) {
    devices_.push_back(
        std::make_unique<Device>(engine_, d, topology.node_of(d)));
  }
  fabric_ = std::make_unique<Fabric>(engine_, topology, cost_model_.fabric);
  engine_.bind_trace(&trace_);
  fabric_->bind_trace(&trace_);
}

Stream& Machine::create_stream(int device_id, std::string name, int priority) {
  streams_.push_back(std::make_unique<Stream>(
      engine_, device(device_id), &trace_, std::move(name), priority));
  return *streams_.back();
}

void Machine::spawn_host_task(Task task, std::function<void()> on_complete) {
  task.bind(ExecContext{&engine_, nullptr, 0});
  if (on_complete) task.set_on_complete(std::move(on_complete));
  host_tasks_.push_back(std::move(task));
  host_tasks_.back().start();
}

}  // namespace hs::sim
