// Discrete-event engine.
//
// A single min-heap of (time, sequence) ordered callbacks. The sequence
// number makes ordering of same-time events FIFO and therefore the whole
// simulation deterministic — a property the tests rely on (same seed =>
// bit-identical traces).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace hs::sim {

class Trace;

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Attach the trace that receives the ambient causality context: while an
  /// event scheduled via schedule_with_cause runs, trace->cause() returns
  /// the span that scheduled it. Optional; unbound engines skip the
  /// bookkeeping entirely.
  void bind_trace(Trace* trace) { trace_ = trace; }

  /// Schedule fn at absolute time t. Scheduling into the past corrupts
  /// causality, so t < now() throws std::invalid_argument (in every build
  /// type — a release-mode assert would let the corruption through
  /// silently). When thrown from inside a running event, step_one routes
  /// the error through record_error and run() rethrows it.
  void schedule_at(SimTime t, std::function<void()> fn);
  /// schedule_at, plus: while fn runs, the bound trace's ambient cause is
  /// `cause_span` (the span whose completion made this event happen — e.g.
  /// a fabric transfer delivering data). 0 behaves like schedule_at.
  void schedule_with_cause(SimTime t, std::uint64_t cause_span,
                           std::function<void()> fn);
  /// Schedule fn dt nanoseconds from now.
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }
  /// Schedule fn at the current time, after already-queued same-time events.
  void schedule_now(std::function<void()> fn) { schedule_at(now_, std::move(fn)); }

  /// Run until the event queue is empty. Returns the final time.
  SimTime run();

  /// Run until the event queue is empty or `horizon` is reached (events at
  /// exactly `horizon` are processed). Returns true if the queue drained.
  bool run_until(SimTime horizon);

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

  /// Record a simulation error (e.g. an exception escaping a device task).
  /// run() rethrows the first recorded error once the queue settles.
  void record_error(std::exception_ptr error);

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::uint64_t cause = 0;  // ambient trace span while fn runs
  };
  // std::push_heap/pop_heap comparator: max-heap under "later" puts the
  // earliest (time, seq) at the front. The comparator touches only the POD
  // ordering key, never the callback, so heap rebalancing (which moves
  // elements) is safe — unlike the previous std::priority_queue setup,
  // which required a const_cast move out of top() before pop().
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void step_one();

  std::vector<Item> queue_;  // binary heap ordered by Later
  Trace* trace_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hs::sim
