// Discrete-event engine.
//
// A single min-heap of (time, sequence) ordered callbacks. The sequence
// number makes ordering of same-time events FIFO and therefore the whole
// simulation deterministic — a property the tests rely on (same seed =>
// bit-identical traces).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace hs::sim {

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Schedule fn at absolute time t (must be >= now()).
  void schedule_at(SimTime t, std::function<void()> fn);
  /// Schedule fn dt nanoseconds from now.
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }
  /// Schedule fn at the current time, after already-queued same-time events.
  void schedule_now(std::function<void()> fn) { schedule_at(now_, std::move(fn)); }

  /// Run until the event queue is empty. Returns the final time.
  SimTime run();

  /// Run until the event queue is empty or `horizon` is reached (events at
  /// exactly `horizon` are processed). Returns true if the queue drained.
  bool run_until(SimTime horizon);

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

  /// Record a simulation error (e.g. an exception escaping a device task).
  /// run() rethrows the first recorded error once the queue settles.
  void record_error(std::exception_ptr error);

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void step_one();

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hs::sim
