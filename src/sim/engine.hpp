// Discrete-event engine.
//
// Events are totally ordered by (time, sequence); the sequence number makes
// same-time events FIFO and therefore the whole simulation deterministic —
// a property the tests rely on (same seed => bit-identical traces).
//
// Internally the queue is two-level (see DESIGN.md §2.1):
//
//  * a 4-ary min-heap of 24-byte POD keys (time, seq, slot) for events in
//    the future — rebalancing moves only the keys, never a callback, and
//    the wide nodes halve the levels touched per pop vs a binary heap;
//  * an O(1) FIFO ring bucket for events scheduled at the *current* time
//    (schedule_now / schedule_after(0)), which dominate stream-pump and
//    signal-delivery churn and would otherwise pay two heap walks each.
//
// Callbacks live in a chunked slot pool (recycled through a free list) as
// InlineTask values constructed in place — scheduling a lambda performs no
// allocation and no intermediate callback moves in the steady state, and
// growing the pool never relocates live callbacks (chunks have stable
// addresses; relocating a vector of InlineTasks element-wise was measured
// to cost more than the heap operations themselves). The pop order is
// decided by comparing the bucket head's sequence number with the heap
// top's (time, seq) key, which preserves the exact (time, seq) total order
// of the single-heap implementation bit-for-bit ((time, seq) keys are
// unique, so the heap arity cannot change the pop order either).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_task.hpp"
#include "sim/time.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

class Trace;

/// Telemetry instrumentation bound to an engine (see Machine's
/// enable_telemetry). A null registry disables everything — the hot paths
/// pay one pointer compare.
struct EngineTelemetry {
  util::telemetry::Registry* registry = nullptr;
  util::telemetry::MetricId events;        // counter: events executed
  util::telemetry::MetricId schedule_now;  // counter: same-time churn
  util::telemetry::MetricId queue_depth;   // gauge, sampled every 64 events
};

class Engine {
  /// Constrains the schedule_* templates to void() callables (including
  /// InlineTask itself, which is moved into the slot).
  template <typename F>
  using EnableIfTask =
      std::enable_if_t<std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>;

 public:
  Engine() = default;
  ~Engine();  // destroys lazily-constructed pool slots
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Attach the trace that receives the ambient causality context: while an
  /// event scheduled via schedule_with_cause runs, trace->cause() returns
  /// the span that scheduled it. Optional; unbound engines skip the
  /// bookkeeping entirely.
  void bind_trace(Trace* trace) { trace_ = trace; }

  /// Attach telemetry probes (events / schedule-now / queue-depth). The
  /// registry must outlive the engine; {} detaches.
  void bind_telemetry(const EngineTelemetry& telemetry) {
    telemetry_ = telemetry;
  }

  /// Schedule fn at absolute time t. Scheduling into the past corrupts
  /// causality, so t < now() throws std::invalid_argument (in every build
  /// type — a release-mode assert would let the corruption through
  /// silently). When thrown from inside a running event, step_one routes
  /// the error through record_error and run() rethrows it.
  ///
  /// Accepts any void() callable (including InlineTask); the capture is
  /// constructed directly in the engine's slot pool, so scheduling a
  /// lambda performs no intermediate callback moves.
  template <typename F, typename = EnableIfTask<F>>
  void schedule_at(SimTime t, F&& fn) {
    schedule_with_cause(t, 0, std::forward<F>(fn));
  }

  /// schedule_at, plus: while fn runs, the bound trace's ambient cause is
  /// `cause_span` (the span whose completion made this event happen — e.g.
  /// a fabric transfer delivering data). 0 behaves like schedule_at.
  template <typename F, typename = EnableIfTask<F>>
  void schedule_with_cause(SimTime t, std::uint64_t cause_span, F&& fn) {
    if (t < now_) throw_past_schedule(t);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    try {
      // Route any overflow-capture slab traffic to this engine's slab, so
      // cross-engine scheduling (the parallel coordinator injecting inbox
      // messages) never touches another lane's allocator.
      detail::TaskSlab::Scope slab_scope(&slab_);
      s.fn = std::forward<F>(fn);
    } catch (...) {
      free_slots_.push_back(slot);
      throw;
    }
    using Fn = std::remove_cvref_t<F>;
    if constexpr (std::is_same_v<Fn, InlineTask>) {
      // A moved-in InlineTask's relocatability is runtime state.
      if (!s.fn.memcpy_relocatable()) ++sticky_slots_;
    } else if constexpr (!InlineTask::capture_memcpy_relocatable<Fn>()) {
      ++sticky_slots_;
    }
    s.cause = cause_span;
    const std::uint64_t seq = next_seq_++;
    if (t == now_) {
      if (telemetry_.registry != nullptr) {
        telemetry_.registry->add(telemetry_.schedule_now, now_, 1.0);
      }
      bucket_push(BucketItem{seq, slot});
    } else {
      heap_push(HeapKey{t, seq, slot});
    }
  }

  /// Schedule fn dt nanoseconds from now.
  template <typename F, typename = EnableIfTask<F>>
  void schedule_after(SimTime dt, F&& fn) {
    schedule_at(now_ + dt, std::forward<F>(fn));
  }
  /// Schedule fn at the current time, after already-queued same-time
  /// events. Goes straight to the FIFO bucket — the fast path.
  template <typename F, typename = EnableIfTask<F>>
  void schedule_now(F&& fn) {
    schedule_at(now_, std::forward<F>(fn));
  }

  /// Run until the event queue is empty. Returns the final time.
  SimTime run();

  /// Run until the event queue is empty or `horizon` is reached (events at
  /// exactly `horizon` are processed). Returns true if the queue drained.
  /// An error recorded while (or before) running is rethrown here — it
  /// does not linger until the next run()/run_until().
  bool run_until(SimTime horizon);

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return heap_.empty() && bucket_count_ == 0; }

  /// Earliest pending event time, or kNever when idle. The parallel
  /// coordinator uses this to compute the next safe window's base.
  SimTime next_event_time() const { return idle() ? kNever : next_time(); }

  /// Record a simulation error (e.g. an exception escaping a device task).
  /// run()/run_until() rethrow the first recorded error once they stop
  /// stepping.
  void record_error(std::exception_ptr error);

 private:
  // 24-byte POD ordering key; the callback stays put in its slot while the
  // heap rebalances.
  struct HeapKey {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct BucketItem {
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    InlineTask fn;
    std::uint64_t cause = 0;  // ambient trace span while fn runs
  };
  static bool earlier(const HeapKey& a, const HeapKey& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  // ---- 4-ary min-heap over HeapKey ------------------------------------
  // Children of i are 4i+1 .. 4i+4 (root at 0). Wider nodes mean half the
  // levels of a binary heap, and all four children share 1-2 cache lines.
  void heap_push(HeapKey key) {
    std::size_t i = heap_.size();
    heap_.push_back(key);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(key, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = key;
  }

  HeapKey heap_pop() {
    const HeapKey top = heap_.front();
    const HeapKey last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  // ---- Slot pool ------------------------------------------------------
  // A flat buffer of Slots, recycled through free_slots_. Growth relocates
  // with memcpy wherever the InlineTask allows it (see memcpy_relocatable)
  // — a vector<Slot> pays per-element move dispatch plus destruction on
  // every reallocation, which measured as expensive as the heap operations
  // themselves. Slots are placement-constructed lazily on first hand-out.
  Slot& slot_ref(std::uint32_t slot) { return slots_[slot]; }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    if (slot_count_ == slot_cap_) grow_slots();
    ::new (static_cast<void*>(slots_ + slot_count_)) Slot();
    return slot_count_++;
  }
  void grow_slots();

  // ---- FIFO ring bucket (events at t == now_) -------------------------
  void bucket_push(BucketItem item) {
    if (bucket_count_ == bucket_.size()) bucket_grow();
    bucket_[(bucket_head_ + bucket_count_) & (bucket_.size() - 1)] = item;
    ++bucket_count_;
  }
  const BucketItem& bucket_front() const {
    return bucket_[bucket_head_];
  }
  void bucket_pop() {
    bucket_head_ = (bucket_head_ + 1) & (bucket_.size() - 1);
    --bucket_count_;
  }
  void bucket_grow();

  /// Earliest pending (time, seq); callers must check !idle() first.
  SimTime next_time() const {
    return bucket_count_ > 0 ? now_ : heap_.front().t;
  }

  void step_one();
  void rethrow_pending_error();
  [[noreturn]] void throw_past_schedule(SimTime t) const;

  std::vector<HeapKey> heap_;            // 4-ary min-heap of ordering keys
  std::vector<BucketItem> bucket_;       // power-of-two ring buffer
  std::size_t bucket_head_ = 0;
  std::size_t bucket_count_ = 0;
  Slot* slots_ = nullptr;                // callback pool (raw storage)
  std::uint32_t slot_count_ = 0;         // slots constructed so far
  std::uint32_t slot_cap_ = 0;
  std::uint32_t sticky_slots_ = 0;       // live slots not memcpy-relocatable
  std::vector<std::uint32_t> free_slots_;
  detail::TaskSlab slab_;  // overflow-capture pool for this engine's events
  EngineTelemetry telemetry_;
  Trace* trace_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hs::sim
