// Interconnect model.
//
// A transfer costs latency + bytes/bandwidth + per-message overhead, where
// the link parameters depend on the topology (NVLink vs IB). InfiniBand
// transfers additionally serialize on the source device's NIC: bandwidth
// occupancy queues, while latency pipelines — this is what makes staged,
// coarse-grained IB puts preferable to many fine-grained ones, exactly the
// adaptive-strategy trade-off in §5.1.
//
// Transfers carry a `deliver` closure that performs the real data movement
// (memcpy between rank buffers) at completion time, so the simulation is
// functional, not just a timing skeleton.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "util/telemetry.hpp"

namespace hs::sim {

struct LinkParams {
  SimTime latency_ns = 0;      // one-shot wire latency per transfer
  SimTime per_message_ns = 0;  // per-message issue/packet overhead
  double bytes_per_ns = 1.0;   // bandwidth
};

struct FabricParams {
  LinkParams loopback{100, 0, 1500.0};   // device-local copy
  LinkParams nvlink{900, 150, 300.0};    // NVLink 4.0-ish effective
  LinkParams ib{4500, 900, 45.0};        // NDR400-ish effective
};

class Signal;
class ParallelDriver;

struct TransferRequest {
  int src_device = 0;
  int dst_device = 0;
  /// The device on whose lane (engine/trace/counters) the transfer is
  /// issued and timed. Defaults (-1) to src_device — correct for puts. Get
  /// semantics (e.g. TMA loads, where the *destination* PE executes the
  /// operation) must set this to the issuing device. IB transfers must be
  /// issued from their source device (the NIC being modeled is src's).
  int issue_device = -1;
  std::size_t bytes = 0;
  int num_messages = 1;
  /// Trace label (e.g. the PGAS op that issued the transfer); all call
  /// sites pass string literals, so this is a borrowed pointer. Null or
  /// empty uses "xfer <link>".
  const char* label = nullptr;
  /// Performs the real data movement; runs at delivery time.
  std::function<void()> deliver;
  /// Fused receiver-side notification (put-with-signal): stored with
  /// `signal_value` after `deliver` runs, before the issuer's on_complete.
  /// Carrying the pair here instead of folding the store into `deliver`
  /// keeps the common put-with-signal path free of a composed closure.
  Signal* signal = nullptr;
  std::int64_t signal_value = 0;
};

class Fabric {
 public:
  Fabric(Engine& engine, Topology topology, FabricParams params);

  const Topology& topology() const { return topology_; }
  const FabricParams& params() const { return params_; }
  LinkType link(int src, int dst) const { return topology_.link(src, dst); }

  /// Unqueued cost of a transfer (no NIC contention).
  SimTime estimate(int src, int dst, std::size_t bytes, int num_messages = 1) const;

  /// Start an asynchronous transfer; `on_complete` runs after `deliver`.
  void transfer(TransferRequest req, std::function<void()> on_complete = {});

  /// Attach a trace: every transfer becomes a Transfer span on the source
  /// device (stream "fabric") covering issue -> delivery, with the NIC
  /// queueing and proxy-induced service delay recorded as queue_ns /
  /// proxy_ns. Queued IB transfers get a NicQueue edge from the previous
  /// NIC occupant, and the delivery event runs under the span's cause.
  void bind_trace(Trace* trace);

  /// Switch the fabric to partitioned (parallel) mode: each device's
  /// transfers are issued on its lane engine, recorded in its lane trace,
  /// and counted in a lane-local counter row (aggregated on demand by
  /// counters()). Cross-lane completions (deliver + signal on the
  /// destination) route through the driver's timestamped inbox protocol;
  /// the issuer's on_complete stays on the issuing lane.
  void configure_partitioned(std::vector<Engine*> lane_engines,
                             std::vector<Trace*> lane_traces,
                             ParallelDriver* driver);
  bool partitioned() const { return driver_ != nullptr; }

  /// Scale the per-message cost of IB transfers issued from `device`
  /// (models a contended NVSHMEM proxy thread, §5.5). Factor 1 = healthy.
  void set_proxy_slowdown(int device, double factor);
  double proxy_slowdown(int device) const { return proxy_slowdown_[device]; }

  /// Timing-fault injection: add deterministic pseudo-random extra latency
  /// (uniform in [0, max_jitter_ns]) to every transfer. Used by robustness
  /// tests to show the halo signal/event protocols produce identical data
  /// under arbitrary message reordering; 0 disables (default). On IB the
  /// jitter extends the NIC occupancy window (a slow wire keeps the NIC
  /// busy), so back-to-back transfers still serialize correctly.
  void set_timing_jitter(std::uint64_t seed, SimTime max_jitter_ns);

  /// Transfer/byte accounting since construction (or the last reset). In
  /// partitioned mode this aggregates the lane-local rows on each call
  /// (post-run / reporting path, not hot).
  const FabricCounters& counters() const;
  void reset_counters();
  /// The lane-local counter row for transfers issued by `device`
  /// (classic mode: the single shared accumulator). Exposed so tests can
  /// assert the per-lane rows themselves — not just their sum — are
  /// worker-count independent.
  const FabricCounters& counter_row_of(int device) const {
    return partitioned() ? lane_counters_[static_cast<std::size_t>(device)]
                         : counters_;
  }

  /// Attach per-window telemetry: `rows[d]` receives the series for
  /// transfers *issued by* device d (per-link transfer/byte counters plus
  /// the per-device NIC busy/queue/proxy-delay streams). Partitioned
  /// machines pass the lane registries — lane-homed like the counter
  /// rows; classic machines pass the master registry for every device.
  /// Registration happens here; an empty vector (default) disables the
  /// hot-path sampling entirely.
  void bind_telemetry(const std::vector<util::telemetry::Registry*>& rows);

 private:
  const LinkParams& params_for(LinkType type) const;
  void complete_op(int device, std::uint32_t slot);
  Engine& engine_for(int device) {
    return partitioned() ? *lane_engines_[static_cast<std::size_t>(device)]
                         : *engine_;
  }
  Trace* trace_for(int device) {
    return partitioned() ? lane_traces_[static_cast<std::size_t>(device)]
                         : trace_;
  }
  FabricCounters& counter_row(int device) {
    return partitioned() ? lane_counters_[static_cast<std::size_t>(device)]
                         : counters_;
  }

  /// Telemetry ids for one issuing device's registry (mirrors the
  /// counter_row pattern; empty telemetry_ = disabled).
  struct TelemetryRow {
    util::telemetry::Registry* reg = nullptr;
    std::array<util::telemetry::MetricId, 3> link_transfers;  // by LinkType
    std::array<util::telemetry::MetricId, 3> link_bytes;
    util::telemetry::MetricId nic_busy;
    util::telemetry::MetricId nic_queue;
    util::telemetry::MetricId proxy_delay;
  };

  /// An in-flight transfer's completion record. Pooled per issuing device
  /// (free-list) so the steady state allocates nothing per transfer, the
  /// engine event only captures {this, device, slot} — small enough to
  /// stay inline — and partitioned lanes never share a pool.
  struct PendingOp {
    std::function<void()> deliver;
    std::function<void()> done;
    Signal* signal = nullptr;
    std::int64_t signal_value = 0;
  };

  Engine* engine_;
  Trace* trace_ = nullptr;
  Topology topology_;
  FabricParams params_;
  std::vector<SimTime> nic_busy_until_;   // per source device, IB only
  std::vector<std::uint64_t> last_nic_span_;  // NicQueue edge producers
  std::vector<double> proxy_slowdown_;    // per source device, IB only
  std::uint64_t jitter_state_ = 0;        // splitmix64 state; 0 = off
  std::uint64_t jitter_seed_ = 0;
  SimTime max_jitter_ns_ = 0;
  std::vector<std::vector<PendingOp>> pending_;   // per issue device
  std::vector<std::vector<std::uint32_t>> free_ops_;
  FabricCounters counters_;

  // Partitioned mode: lane plumbing + lane-local accounting.
  std::vector<Engine*> lane_engines_;
  std::vector<Trace*> lane_traces_;
  ParallelDriver* driver_ = nullptr;
  std::vector<FabricCounters> lane_counters_;    // row per issue device
  std::vector<std::uint64_t> lane_jitter_;       // per-lane splitmix64 state
  mutable FabricCounters counters_agg_;          // counters() scratch
  std::vector<TelemetryRow> telemetry_;          // row per issue device
};

}  // namespace hs::sim
