#include "sim/stream.hpp"

#include <cassert>

namespace hs::sim {

Stream::Stream(Engine& engine, Device& device, Trace* trace, std::string name,
               int priority)
    : engine_(&engine),
      device_(&device),
      trace_(trace),
      name_(std::move(name)),
      priority_(priority) {}

Stream::~Stream() = default;

void Stream::launch(KernelSpec spec) {
  Op op;
  op.type = Op::Type::Kernel;
  op.spec = std::move(spec);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::record(GpuEventPtr event) {
  assert(event);
  Op op;
  op.type = Op::Type::Record;
  op.event = std::move(event);
  ops_.push_back(std::move(op));
  pump();
}

GpuEventPtr Stream::record() {
  auto ev = make_event();
  record(ev);
  return ev;
}

void Stream::wait(GpuEventPtr event) {
  assert(event);
  Op op;
  op.type = Op::Type::Wait;
  op.event = std::move(event);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::enqueue_async(std::string name,
                           std::function<void(std::function<void()>)> op_fn) {
  Op op;
  op.type = Op::Type::Async;
  op.name = std::move(name);
  op.async_op = std::move(op_fn);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::enqueue_callback(InlineTask fn) {
  Op op;
  op.type = Op::Type::Callback;
  op.callback = std::move(fn);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::on_kernel_done() {
  // Park the instance for reuse by the next launch; its coroutine frames
  // stay alive until then (deferred destruction — the completing frame is
  // still on the stack below us).
  retired_ = std::move(current_);
  finish_current(retired_->started_at(), retired_->take_name(),
                 retired_->tag(), retired_->dispatch_ns());
}

void Stream::finish_current(SimTime started, std::string kernel_name,
                            std::int64_t tag, SimTime queue_ns) {
  if (trace_ != nullptr) {
    const std::uint64_t span =
        trace_->record(device_->id(), name_, std::move(kernel_name), started,
                       engine_->now(), tag, SpanKind::Kernel, queue_ns);
    if (span != 0) {
      trace_->add_edge(last_span_, span, EdgeKind::StreamOrder);
      for (const std::uint64_t producer : pending_wait_spans_) {
        trace_->add_edge(producer, span, EdgeKind::EventWait);
      }
      // Async ops completed by a fabric delivery inherit its cause: the
      // DMA copy's span depends on the transfer that carried its bytes.
      trace_->add_edge(trace_->cause(), span, EdgeKind::FabricTransfer);
      last_span_ = span;
    }
    pending_wait_spans_.clear();
  }
  busy_ = false;
  assert(!ops_.empty());
  ops_.pop_front();
  pump();
}

void Stream::pump() {
  while (!busy_ && !ops_.empty()) {
    Op& front = ops_.front();
    switch (front.type) {
      case Op::Type::Record:
        front.event->set_origin_span(last_span_);
        front.event->complete();
        ops_.pop_front();
        break;
      case Op::Type::Callback:
        front.callback();
        ops_.pop_front();
        break;
      case Op::Type::Wait: {
        if (front.event->is_complete()) {
          ops_.pop_front();
          break;
        }
        busy_ = true;
        const GpuEventPtr ev = front.event;
        front.event->when_complete([this, ev] {
          // The next op on this stream was gated on the event: remember the
          // producing span so its record gets an EventWait edge.
          if (ev->origin_span() != 0) {
            pending_wait_spans_.push_back(ev->origin_span());
          }
          busy_ = false;
          ops_.pop_front();
          pump();
        });
        return;
      }
      case Op::Type::Kernel: {
        busy_ = true;
        // Reuse the retired instance (its frames can be destroyed now);
        // only the first launch on a stream allocates one.
        if (retired_ != nullptr) {
          current_ = std::move(retired_);
          current_->reset(std::move(front.spec), [this] { on_kernel_done(); });
        } else {
          current_ = std::make_unique<KernelInstance>(
              *engine_, *device_, priority_, std::move(front.spec),
              [this] { on_kernel_done(); });
        }
        if (current_->dispatch_ns() > 0) {
          engine_->schedule_after(current_->dispatch_ns(),
                                  [this] { current_->start(); });
        } else {
          current_->start();
        }
        return;
      }
      case Op::Type::Async: {
        busy_ = true;
        const SimTime started = engine_->now();
        async_name_ = std::move(front.name);
        auto op_fn = std::move(front.async_op);
        // 16-byte capture: lands in the std::function SBO, no allocation.
        op_fn([this, started] {
          finish_current(started, std::move(async_name_), -1, 0);
        });
        return;
      }
    }
  }
}

}  // namespace hs::sim
