// Decomposition: owns the global-system <-> per-rank-domain mapping and the
// exchange plan, and provides the untimed reference MD step used as the
// correctness oracle for the transport implementations.
#pragma once

#include <span>
#include <vector>

#include "dd/plan.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/integrator.hpp"
#include "md/nonbonded.hpp"
#include "md/pair_list.hpp"
#include "md/system.hpp"

namespace hs::dd {

class Decomposition {
 public:
  /// Decompose `global` over `dims` with halo width `comm_cutoff`
  /// (typically the pair-list radius, cutoff + Verlet buffer).
  Decomposition(md::System global, GridDims dims, double comm_cutoff);

  const DomainGrid& grid() const { return grid_; }
  const ExchangePlan& plan() const { return plan_; }
  ExchangePlan& plan() { return plan_; }
  double comm_cutoff() const { return comm_cutoff_; }
  int num_ranks() const { return grid_.num_ranks(); }
  int global_atoms() const { return global_atoms_; }

  std::vector<DomainState>& states() { return states_; }
  const std::vector<DomainState>& states() const { return states_; }

  /// Reassemble the global system from home atoms (by global id).
  md::System gather() const;

  /// Re-scatter atoms to owners based on current positions and rebuild the
  /// exchange plan (the GROMACS DD step, every nstlist steps).
  void repartition();

  /// Untimed reference exchanges (delegate to plan.cpp helpers).
  void exchange_coordinates() { exchange_coordinates_reference(plan_, states_); }
  void exchange_forces() { exchange_forces_reference(plan_, states_); }

 private:
  void scatter(const md::System& global);

  DomainGrid grid_;
  double comm_cutoff_;
  ExchangePlan plan_;
  std::vector<DomainState> states_;
  md::Box box_;
  int global_atoms_ = 0;
};

/// Per-rank pair lists for a decomposed step: the local lists cover
/// home-home pairs, the non-local lists home-halo (and corner-rule
/// halo-halo) pairs. Scalar and cluster flavours describe the same pair
/// set; the runner picks one per RunConfig::use_cluster_kernels. The
/// rank's ZoneFilter is kept so drifted lists can be rebuilt in place.
struct RankPairLists {
  md::PairList local;
  md::PairList nonlocal;
  md::ClusterPairList cluster_local;
  md::ClusterPairList cluster_nonlocal;
  md::ZoneFilter filter;

  /// Rebuild all four lists from the rank's current positions.
  void rebuild(const md::Box& box, std::span<const md::Vec3> positions,
               int n_home, double rlist);

  /// Compact all four lists into snapshot form (drop build staging, keep
  /// the pair sets — see ClusterPairList::release_build_scratch). Used
  /// for prepared-state templates that are cloned per run.
  void release_build_scratch() {
    local.release_build_scratch();
    nonlocal.release_build_scratch();
    cluster_local.release_build_scratch();
    cluster_nonlocal.release_build_scratch();
  }
};

/// Build both lists for every rank. `rlist` must equal the plan's
/// comm_cutoff for the halo to cover every listed pair.
std::vector<RankPairLists> build_pair_lists(const Decomposition& dd,
                                            double rlist);

/// Lower-level overload for callers holding a grid + states directly
/// (e.g. the runner, which owns a Workload rather than a Decomposition).
std::vector<RankPairLists> build_pair_lists(
    const DomainGrid& grid, const std::vector<DomainState>& states,
    double comm_cutoff, double rlist);

}  // namespace hs::dd
