// Halo-exchange plan: the neutral-territory, forwarding-based ("staged")
// communication structure of the GROMACS eighth-shell DD (§2.2).
//
// Terminology follows the paper:
//  * communication phases are the sequential z, then y, then x sweeps;
//  * pulses are the per-dimension steps (up to two when the slab is
//    thinner than the communication cutoff);
//  * the global pulse order concatenates dimensions [Z.., Y.., X..].
//
// Data flows toward the -dim neighbour: a rank sends the slab within
// comm_cutoff of its low boundary and receives, from its +dim neighbour,
// the atoms just above its high boundary. Because later phases select from
// everything already present (home atoms + halo received in earlier
// phases), corner regions are forwarded transitively, and
// np(x)+np(y)+np(z) steps reach all np(x)*np(y)*np(z)-1 neighbours.
//
// PulseData mirrors Algorithm 1 of the paper: indexMap entries below
// depOffset (== n_home) reference home atoms and are independent; entries
// at or above it reference atoms received in earlier pulses and must wait
// for those pulses (dependency partitioning, §5.1).
#pragma once

#include <vector>

#include "dd/grid.hpp"
#include "md/system.hpp"

namespace hs::dd {

/// Per-rank, per-step particle storage: home atoms first, then halo zones
/// in global pulse order. Halo coordinates are refreshed by the (timed)
/// halo exchange every step; types/ids are fixed until repartitioning.
struct DomainState {
  int rank = 0;
  int n_home = 0;
  std::vector<md::Vec3> x;        // home + halo
  std::vector<md::Vec3> f;        // home + halo (halo entries returned by
                                  // the force halo exchange)
  std::vector<md::Vec3> v;        // home only
  std::vector<int> type;          // home + halo
  std::vector<int> global_id;     // home + halo

  int n_total() const { return static_cast<int>(x.size()); }
  int n_halo() const { return n_total() - n_home; }
};

/// Algorithm 1's PulseData (algorithmic part; transports add buffers).
struct PulseData {
  int dim = 0;    // 0=x, 1=y, 2=z
  int pulse = 0;  // index within the dimension
  int send_rank = -1;
  int recv_rank = -1;
  int send_size = 0;  // atoms this rank packs and sends
  int recv_size = 0;  // atoms this rank receives
  int atom_offset = 0;  // where received atoms land in the local arrays
  std::vector<int> index_map;  // local indices to pack, ascending
  int dep_offset = 0;     // index_map[i] <  dep_offset: independent (home)
                          // index_map[i] >= dep_offset: waits on prior pulses
  int num_dependent = 0;  // count of dependent index-map entries
  int first_dependent_pulse = -1;  // earliest global pulse referenced, or -1
  md::Vec3 coord_shift;   // periodic shift applied when packing
};

struct RankPlan {
  int rank = 0;
  int n_home = 0;
  int n_total = 0;
  std::vector<PulseData> pulses;  // global pulse order [Z.., Y.., X..]
};

struct ExchangePlan {
  DomainGrid grid;
  double comm_cutoff = 0.0;
  std::vector<int> pulse_dims;    // dim of each global pulse
  std::vector<RankPlan> ranks;

  int total_pulses() const { return static_cast<int>(pulse_dims.size()); }
  int num_pulses(int dim) const;
};

/// Number of pulses a dimension needs: 1 if the slab is at least as wide as
/// the cutoff, 2 otherwise (the supported maximum, as in the paper).
int pulses_for_dim(const DomainGrid& grid, int dim, double comm_cutoff);

/// Build the exchange plan from the current home-atom distribution and
/// extend every DomainState with its halo atoms (coordinates, types, ids).
/// This models the DD / neighbour-search-time setup communication, which is
/// off the per-step critical path.
ExchangePlan build_exchange_plan(const DomainGrid& grid, double comm_cutoff,
                                 std::vector<DomainState>& states);

/// Reference (untimed) per-step exchanges used as test oracles and by the
/// transports' correctness tests.
void exchange_coordinates_reference(const ExchangePlan& plan,
                                    std::vector<DomainState>& states);
void exchange_forces_reference(const ExchangePlan& plan,
                               std::vector<DomainState>& states);

}  // namespace hs::dd
