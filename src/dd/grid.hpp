// Domain-decomposition grid: how ranks tile the simulation box.
//
// The decomposition-dimensionality policy reproduces the mapping the paper
// reports (§6.3: 4/8 ranks -> 1D, 16 -> 2D, 32+ -> 3D, with all large-scale
// configurations 3D):
//   * n <= 8  : 1D,
//   * n <= 16 : 2D,
//   * else    : 3D,
// escalating to more dimensions if a slab would be thinner than half the
// communication cutoff (two pulses is the supported maximum, as in
// GROMACS). Within a dimensionality the most balanced factorization is
// used, with larger factors on x. An explicit grid can be forced (the
// equivalent of gmx mdrun -dd).
#pragma once

#include <array>
#include <optional>

#include "md/box.hpp"
#include "md/vec3.hpp"

namespace hs::dd {

struct GridDims {
  int nx = 1;
  int ny = 1;
  int nz = 1;

  int total() const { return nx * ny * nz; }
  int along(int dim) const { return dim == 0 ? nx : (dim == 1 ? ny : nz); }
  /// Number of decomposed dimensions (the paper's "1D/2D/3D DD").
  int dimensionality() const {
    return (nx > 1) + (ny > 1) + (nz > 1);
  }
};

/// Choose a DD grid for n_ranks (see policy above). `comm_cutoff` is the
/// halo communication distance (pair-list radius).
GridDims choose_grid(const md::Box& box, int n_ranks, double comm_cutoff);

/// The box tiled by a grid of equal-size rectangular domains.
class DomainGrid {
 public:
  /// Default: a unit box with a single rank (placeholder before assignment).
  DomainGrid() = default;
  DomainGrid(const md::Box& box, GridDims dims);

  const md::Box& box() const { return box_; }
  const GridDims& dims() const { return dims_; }
  int num_ranks() const { return dims_.total(); }

  /// Rank <-> cell-coordinate mapping (x-major).
  int rank_of_cell(int cx, int cy, int cz) const;
  std::array<int, 3> cell_of_rank(int rank) const;

  /// Domain bounds of `rank` along `dim`.
  float lo(int rank, int dim) const;
  float hi(int rank, int dim) const;
  float domain_width(int dim) const {
    return box_.length(dim) / static_cast<float>(dims_.along(dim));
  }

  /// The rank owning a (wrapped) position. Ownership is half-open
  /// [lo, hi) per dimension, so every position has exactly one owner.
  int rank_of_position(const md::Vec3& wrapped) const;

  /// Neighbour of `rank` at offset `step` cells along `dim` (periodic).
  int neighbour(int rank, int dim, int step) const;

 private:
  md::Box box_{};
  GridDims dims_{};
};

}  // namespace hs::dd
