#include "dd/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hs::dd {

namespace {

/// All factorizations of n into k factors, each > 1 unless k forces 1s,
/// sorted descending (nx >= ny >= nz).
void factorizations(int n, int k, std::vector<std::array<int, 3>>& out) {
  if (k == 1) {
    out.push_back({n, 1, 1});
    return;
  }
  for (int a = 1; a <= n; ++a) {
    if (n % a != 0) continue;
    if (k == 2) {
      out.push_back({a, n / a, 1});
    } else {
      for (int b = 1; b <= n / a; ++b) {
        if ((n / a) % b != 0) continue;
        out.push_back({a, b, n / (a * b)});
      }
    }
  }
}

bool feasible(const md::Box& box, const std::array<int, 3>& f,
              double comm_cutoff) {
  // Two pulses maximum: slabs thinner than cutoff/2 are not supported.
  for (int d = 0; d < 3; ++d) {
    if (f[static_cast<std::size_t>(d)] < 2) continue;
    const double width = box.length(d) / f[static_cast<std::size_t>(d)];
    if (width < comm_cutoff / 2.0) return false;
  }
  return true;
}

double balance_score(const std::array<int, 3>& f) {
  const int mx = std::max({f[0], f[1], f[2]});
  const int mn = std::min({f[0], f[1], f[2]});
  return static_cast<double>(mx) / mn;
}

}  // namespace

GridDims choose_grid(const md::Box& box, int n_ranks, double comm_cutoff) {
  assert(n_ranks >= 1);
  if (n_ranks == 1) return GridDims{1, 1, 1};

  // Paper-matching dimensionality policy (see header).
  int preferred_dims = n_ranks <= 8 ? 1 : (n_ranks <= 16 ? 2 : 3);
  for (int k = preferred_dims; k <= 3; ++k) {
    std::vector<std::array<int, 3>> candidates;
    factorizations(n_ranks, k, candidates);
    bool found = false;
    std::array<int, 3> best{};
    for (const auto& c : candidates) {
      // Require the requested dimensionality exactly.
      const int dims_used = (c[0] > 1) + (c[1] > 1) + (c[2] > 1);
      if (dims_used != k) continue;
      // Larger factors go on x (x decomposed most, like GROMACS).
      std::array<int, 3> sorted = c;
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      if (!feasible(box, sorted, comm_cutoff)) continue;
      if (!found || balance_score(sorted) < balance_score(best)) {
        best = sorted;
        found = true;
      }
    }
    if (found) return GridDims{best[0], best[1], best[2]};
  }
  // Fall back to lower dimensionality (e.g. prime rank counts > 16 have no
  // exact 3D factorization).
  for (int k = preferred_dims - 1; k >= 1; --k) {
    std::vector<std::array<int, 3>> candidates;
    factorizations(n_ranks, k, candidates);
    for (auto c : candidates) {
      std::sort(c.begin(), c.end(), std::greater<>());
      if ((c[0] > 1) + (c[1] > 1) + (c[2] > 1) == k &&
          feasible(box, c, comm_cutoff)) {
        return GridDims{c[0], c[1], c[2]};
      }
    }
  }
  throw std::runtime_error(
      "choose_grid: no feasible DD grid (box too small for this rank count "
      "and cutoff)");
}

DomainGrid::DomainGrid(const md::Box& box, GridDims dims)
    : box_(box), dims_(dims) {
  assert(dims.nx >= 1 && dims.ny >= 1 && dims.nz >= 1);
}

int DomainGrid::rank_of_cell(int cx, int cy, int cz) const {
  assert(cx >= 0 && cx < dims_.nx);
  assert(cy >= 0 && cy < dims_.ny);
  assert(cz >= 0 && cz < dims_.nz);
  return (cx * dims_.ny + cy) * dims_.nz + cz;
}

std::array<int, 3> DomainGrid::cell_of_rank(int rank) const {
  assert(rank >= 0 && rank < num_ranks());
  const int cz = rank % dims_.nz;
  const int cy = (rank / dims_.nz) % dims_.ny;
  const int cx = rank / (dims_.nz * dims_.ny);
  return {cx, cy, cz};
}

float DomainGrid::lo(int rank, int dim) const {
  const auto c = cell_of_rank(rank);
  return static_cast<float>(c[static_cast<std::size_t>(dim)]) *
         domain_width(dim);
}

float DomainGrid::hi(int rank, int dim) const {
  const auto c = cell_of_rank(rank);
  return static_cast<float>(c[static_cast<std::size_t>(dim)] + 1) *
         domain_width(dim);
}

int DomainGrid::rank_of_position(const md::Vec3& wrapped) const {
  int c[3];
  for (int d = 0; d < 3; ++d) {
    const int n = dims_.along(d);
    int idx = static_cast<int>(wrapped[d] / box_.length(d) *
                               static_cast<float>(n));
    c[d] = std::clamp(idx, 0, n - 1);
  }
  return rank_of_cell(c[0], c[1], c[2]);
}

int DomainGrid::neighbour(int rank, int dim, int step) const {
  auto c = cell_of_rank(rank);
  const int n = dims_.along(dim);
  c[static_cast<std::size_t>(dim)] =
      ((c[static_cast<std::size_t>(dim)] + step) % n + n) % n;
  return rank_of_cell(c[0], c[1], c[2]);
}

}  // namespace hs::dd
