#include "dd/plan.hpp"

#include <cassert>
#include <stdexcept>

namespace hs::dd {

int ExchangePlan::num_pulses(int dim) const {
  int n = 0;
  for (int d : pulse_dims) n += d == dim;
  return n;
}

int pulses_for_dim(const DomainGrid& grid, int dim, double comm_cutoff) {
  if (grid.dims().along(dim) < 2) return 0;
  const double width = grid.domain_width(dim);
  if (width >= comm_cutoff) return 1;
  if (width >= comm_cutoff / 2.0) return 2;
  throw std::runtime_error(
      "halo exchange supports at most two pulses per dimension "
      "(domain width < comm_cutoff / 2)");
}

ExchangePlan build_exchange_plan(const DomainGrid& grid, double comm_cutoff,
                                 std::vector<DomainState>& states) {
  assert(static_cast<int>(states.size()) == grid.num_ranks());

  ExchangePlan plan{grid, comm_cutoff, {}, {}};
  plan.ranks.resize(states.size());
  for (std::size_t r = 0; r < states.size(); ++r) {
    plan.ranks[r].rank = static_cast<int>(r);
    plan.ranks[r].n_home = states[r].n_home;
  }

  // Global pulse order: z, then y, then x (paper §2.2).
  struct DimPulse {
    int dim;
    int pulse;
  };
  std::vector<DimPulse> order;
  for (int dim : {2, 1, 0}) {
    const int np = pulses_for_dim(grid, dim, comm_cutoff);
    for (int p = 0; p < np; ++p) order.push_back({dim, p});
  }
  for (const auto& dp : order) plan.pulse_dims.push_back(dp.dim);

  struct Shipment {  // one rank's outgoing data for the current pulse
    std::vector<md::Vec3> x;
    std::vector<int> type;
    std::vector<int> gid;
  };

  for (std::size_t gp = 0; gp < order.size(); ++gp) {
    const int dim = order[gp].dim;
    const int pulse = order[gp].pulse;

    // Phase 1: every rank selects its send set from its *current* arrays.
    std::vector<Shipment> outgoing(states.size());
    for (std::size_t r = 0; r < states.size(); ++r) {
      DomainState& st = states[r];
      RankPlan& rp = plan.ranks[r];

      PulseData pd;
      pd.dim = dim;
      pd.pulse = pulse;
      pd.send_rank = grid.neighbour(static_cast<int>(r), dim, -1);
      pd.recv_rank = grid.neighbour(static_cast<int>(r), dim, +1);
      pd.dep_offset = st.n_home;

      // Periodic shift: a rank at the low edge wraps; its atoms must appear
      // just above the receiver's high boundary.
      const auto cell = grid.cell_of_rank(static_cast<int>(r));
      if (cell[static_cast<std::size_t>(dim)] == 0) {
        pd.coord_shift.set(dim, grid.box().length(dim));
      }

      // Source range: pulse 0 selects from everything currently present
      // (home + earlier-dimension halo); pulse 1 forwards only atoms that
      // arrived in this dimension's pulse 0.
      int src_begin = 0;
      int src_end = st.n_total();
      if (pulse == 1) {
        const PulseData& p0 = rp.pulses[gp - 1];
        assert(p0.dim == dim && p0.pulse == 0);
        src_begin = p0.atom_offset;
        src_end = p0.atom_offset + p0.recv_size;
      }

      const float threshold =
          grid.lo(static_cast<int>(r), dim) + static_cast<float>(comm_cutoff);
      for (int i = src_begin; i < src_end; ++i) {
        if (st.x[static_cast<std::size_t>(i)][dim] < threshold) {
          pd.index_map.push_back(i);
        }
      }
      pd.send_size = static_cast<int>(pd.index_map.size());

      // Dependency partition: index-map entries referencing halo slots.
      for (int idx : pd.index_map) {
        if (idx >= pd.dep_offset) {
          ++pd.num_dependent;
          // Which earlier pulse owns this slot?
          for (std::size_t q = 0; q < rp.pulses.size(); ++q) {
            const PulseData& prev = rp.pulses[q];
            if (idx >= prev.atom_offset &&
                idx < prev.atom_offset + prev.recv_size) {
              if (pd.first_dependent_pulse < 0 ||
                  static_cast<int>(q) < pd.first_dependent_pulse) {
                pd.first_dependent_pulse = static_cast<int>(q);
              }
              break;
            }
          }
        }
      }

      Shipment& ship = outgoing[r];
      ship.x.reserve(pd.index_map.size());
      for (int idx : pd.index_map) {
        ship.x.push_back(st.x[static_cast<std::size_t>(idx)] + pd.coord_shift);
        ship.type.push_back(st.type[static_cast<std::size_t>(idx)]);
        ship.gid.push_back(st.global_id[static_cast<std::size_t>(idx)]);
      }
      rp.pulses.push_back(std::move(pd));
    }

    // Phase 2: deliveries. Rank r receives what its +dim neighbour sent.
    for (std::size_t r = 0; r < states.size(); ++r) {
      DomainState& st = states[r];
      PulseData& pd = plan.ranks[r].pulses[gp];
      const Shipment& in = outgoing[static_cast<std::size_t>(pd.recv_rank)];
      pd.atom_offset = st.n_total();
      pd.recv_size = static_cast<int>(in.x.size());
      st.x.insert(st.x.end(), in.x.begin(), in.x.end());
      st.type.insert(st.type.end(), in.type.begin(), in.type.end());
      st.global_id.insert(st.global_id.end(), in.gid.begin(), in.gid.end());
    }
  }

  for (std::size_t r = 0; r < states.size(); ++r) {
    states[r].f.assign(states[r].x.size(), md::Vec3{});
    plan.ranks[r].n_total = states[r].n_total();
  }
  return plan;
}

void exchange_coordinates_reference(const ExchangePlan& plan,
                                    std::vector<DomainState>& states) {
  for (int gp = 0; gp < plan.total_pulses(); ++gp) {
    // All sends of a pulse read pre-pulse state on the sender, but pulses
    // are sequential, so processing rank-by-rank per pulse is exact as long
    // as we buffer each pulse's shipments before delivering.
    std::vector<std::vector<md::Vec3>> shipments(states.size());
    for (std::size_t r = 0; r < states.size(); ++r) {
      const PulseData& pd = plan.ranks[r].pulses[static_cast<std::size_t>(gp)];
      auto& out = shipments[r];
      out.reserve(pd.index_map.size());
      for (int idx : pd.index_map) {
        out.push_back(states[r].x[static_cast<std::size_t>(idx)] +
                      pd.coord_shift);
      }
    }
    for (std::size_t r = 0; r < states.size(); ++r) {
      const PulseData& pd = plan.ranks[r].pulses[static_cast<std::size_t>(gp)];
      const auto& in = shipments[static_cast<std::size_t>(pd.recv_rank)];
      assert(static_cast<int>(in.size()) == pd.recv_size);
      std::copy(in.begin(), in.end(),
                states[r].x.begin() + pd.atom_offset);
    }
  }
}

void exchange_forces_reference(const ExchangePlan& plan,
                               std::vector<DomainState>& states) {
  // Reverse order: later pulses' contributions accumulate into earlier
  // pulses' halo slots before those are sent back.
  for (int gp = plan.total_pulses() - 1; gp >= 0; --gp) {
    std::vector<std::vector<md::Vec3>> shipments(states.size());
    for (std::size_t r = 0; r < states.size(); ++r) {
      const PulseData& pd = plan.ranks[r].pulses[static_cast<std::size_t>(gp)];
      auto& out = shipments[r];
      out.assign(states[r].f.begin() + pd.atom_offset,
                 states[r].f.begin() + pd.atom_offset + pd.recv_size);
    }
    for (std::size_t r = 0; r < states.size(); ++r) {
      const PulseData& pd = plan.ranks[r].pulses[static_cast<std::size_t>(gp)];
      // Forces travel the reverse path: I receive contributions for the
      // atoms I *sent* in this pulse, from the rank I sent them to.
      const auto& in = shipments[static_cast<std::size_t>(pd.send_rank)];
      assert(static_cast<int>(in.size()) == pd.send_size);
      for (std::size_t k = 0; k < in.size(); ++k) {
        states[r].f[static_cast<std::size_t>(pd.index_map[k])] += in[k];
      }
    }
  }
}

}  // namespace hs::dd
