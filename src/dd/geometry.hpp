// Analytic halo-size model for homogeneous systems.
//
// The bench harnesses reproduce the paper's figures at sizes up to 23 M
// atoms; holding real particle arrays at that scale is pointless for a
// timing study, so the benches run the exact same schedules and kernels in
// "skeleton" mode, with per-pulse halo sizes predicted analytically from
// the DD geometry and the system's number density. For homogeneous grappa
// systems the prediction matches the functional plan to within a few
// percent (asserted by tests).
#pragma once

#include <vector>

#include "dd/grid.hpp"

namespace hs::dd {

struct PulseSizeEstimate {
  int dim = 0;
  int pulse = 0;
  double send_atoms = 0.0;  // expected atoms per rank in this pulse
};

/// Per-global-pulse expected send sizes (same for every rank, homogeneous
/// system). Order matches the exchange plan: [Z.., Y.., X..].
std::vector<PulseSizeEstimate> estimate_pulse_sizes(const DomainGrid& grid,
                                                    double comm_cutoff,
                                                    double density);

/// Expected total halo atoms per rank.
double estimate_halo_atoms(const DomainGrid& grid, double comm_cutoff,
                           double density);

/// Expected home atoms per rank.
double estimate_home_atoms(const DomainGrid& grid, double density);

}  // namespace hs::dd
