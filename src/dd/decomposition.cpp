#include "dd/decomposition.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hs::dd {

Decomposition::Decomposition(md::System global, GridDims dims,
                             double comm_cutoff)
    : grid_(global.box, dims),
      comm_cutoff_(comm_cutoff),
      plan_{grid_, comm_cutoff, {}, {}},
      box_(global.box),
      global_atoms_(global.natoms()) {
  scatter(global);
  plan_ = build_exchange_plan(grid_, comm_cutoff_, states_);
}

void Decomposition::scatter(const md::System& global) {
  states_.assign(static_cast<std::size_t>(grid_.num_ranks()), DomainState{});
  for (std::size_t r = 0; r < states_.size(); ++r) {
    states_[r].rank = static_cast<int>(r);
  }
  for (int i = 0; i < global.natoms(); ++i) {
    const md::Vec3 w = global.box.wrap(global.x[static_cast<std::size_t>(i)]);
    const int r = grid_.rank_of_position(w);
    DomainState& st = states_[static_cast<std::size_t>(r)];
    st.x.push_back(w);
    st.v.push_back(global.v[static_cast<std::size_t>(i)]);
    st.type.push_back(global.type[static_cast<std::size_t>(i)]);
    st.global_id.push_back(i);
  }
  for (auto& st : states_) {
    st.n_home = st.n_total();
    st.f.assign(st.x.size(), md::Vec3{});
  }
}

md::System Decomposition::gather() const {
  md::System out;
  out.box = box_;
  out.x.resize(static_cast<std::size_t>(global_atoms_));
  out.v.resize(static_cast<std::size_t>(global_atoms_));
  out.type.resize(static_cast<std::size_t>(global_atoms_));
  std::vector<bool> seen(static_cast<std::size_t>(global_atoms_), false);
  for (const auto& st : states_) {
    for (int i = 0; i < st.n_home; ++i) {
      const auto gid = static_cast<std::size_t>(st.global_id[static_cast<std::size_t>(i)]);
      assert(!seen[gid] && "atom owned by two ranks");
      seen[gid] = true;
      out.x[gid] = st.x[static_cast<std::size_t>(i)];
      out.v[gid] = st.v[static_cast<std::size_t>(i)];
      out.type[gid] = st.type[static_cast<std::size_t>(i)];
    }
  }
  if (std::find(seen.begin(), seen.end(), false) != seen.end()) {
    throw std::runtime_error("gather: lost atoms during decomposition");
  }
  out.sync_soa();
  return out;
}

void Decomposition::repartition() {
  const md::System global = gather();
  scatter(global);
  plan_ = build_exchange_plan(grid_, comm_cutoff_, states_);
}

std::vector<RankPairLists> build_pair_lists(const Decomposition& dd,
                                            double rlist) {
  return build_pair_lists(dd.grid(), dd.states(), dd.comm_cutoff(), rlist);
}

std::vector<RankPairLists> build_pair_lists(
    const DomainGrid& grid, const std::vector<DomainState>& states,
    double comm_cutoff, double rlist) {
  // Guard the image-consistency precondition of the corner rule: stored
  // halo placements must be the minimum image for every in-range pair.
  for (int d = 0; d < 3; ++d) {
    if (grid.dims().along(d) < 2) continue;
    assert(grid.box().length(d) >= grid.domain_width(d) + comm_cutoff + rlist &&
           "box too small for corner-rule pair assignment");
  }
  (void)comm_cutoff;

  std::vector<RankPairLists> lists(states.size());
  for (std::size_t r = 0; r < states.size(); ++r) {
    const DomainState& st = states[r];
    md::ZoneFilter& filter = lists[r].filter;
    for (int d = 0; d < 3; ++d) {
      filter.decomposed[d] = grid.dims().along(d) > 1;
      filter.hi[d] = grid.hi(static_cast<int>(r), d);
    }
    lists[r].rebuild(grid.box(), st.x, st.n_home, rlist);
  }
  return lists;
}

void RankPairLists::rebuild(const md::Box& box,
                            std::span<const md::Vec3> positions, int n_home,
                            double rlist) {
  local.build_local(box, positions, n_home, rlist);
  nonlocal.build_nonlocal(box, positions, n_home, rlist, &filter);
  cluster_local.build_local(box, positions, n_home, rlist);
  cluster_nonlocal.build_nonlocal(box, positions, n_home, rlist, &filter);
}

}  // namespace hs::dd
