#include "dd/geometry.hpp"

#include <algorithm>

#include "dd/plan.hpp"

namespace hs::dd {

std::vector<PulseSizeEstimate> estimate_pulse_sizes(const DomainGrid& grid,
                                                    double comm_cutoff,
                                                    double density) {
  // Walk dimensions in communication order (z, y, x). The cross-section a
  // pulse ships grows as earlier dimensions' halos are forwarded: after a
  // dimension is processed, the region a rank holds extends by the cutoff
  // above its high boundary in that dimension.
  double extent[3];
  for (int d = 0; d < 3; ++d) extent[d] = grid.domain_width(d);

  std::vector<PulseSizeEstimate> out;
  for (int dim : {2, 1, 0}) {
    const int np = pulses_for_dim(grid, dim, comm_cutoff);
    if (np == 0) continue;
    const double width = grid.domain_width(dim);
    double cross_section = 1.0;
    for (int d = 0; d < 3; ++d) {
      if (d != dim) cross_section *= extent[d];
    }
    const double t0 = std::min(comm_cutoff, width);
    const double t1 = comm_cutoff - t0;
    out.push_back({dim, 0, density * t0 * cross_section});
    if (np == 2) out.push_back({dim, 1, density * t1 * cross_section});
    extent[dim] += comm_cutoff;
  }
  return out;
}

double estimate_halo_atoms(const DomainGrid& grid, double comm_cutoff,
                           double density) {
  double total = 0.0;
  for (const auto& p : estimate_pulse_sizes(grid, comm_cutoff, density)) {
    total += p.send_atoms;
  }
  return total;
}

double estimate_home_atoms(const DomainGrid& grid, double density) {
  return density * grid.box().volume() / grid.num_ranks();
}

}  // namespace hs::dd
