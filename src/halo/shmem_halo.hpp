// GPU-initiated, fused halo exchange over the PGAS layer — the paper's
// primary contribution (Algorithms 1-6).
//
// Coordinate halo (FusedPackCommX, Algs 3-4): one kernel launch processes
// all pulses as concurrent block-group tasks. Each pulse packs its
// independent (home) entries immediately; dependent entries (forwarded
// halo) wait on the arrival signals of the pulses that produce them
// (dependency partitioning via depOffset). Transport adapts per pulse at
// runtime: NVLink-reachable peers get zero-copy TMA bulk stores directly
// into the remote coordinate array; InfiniBand peers get a staged
// put-with-signal (nvshmem_float_put_signal_nbi). Receiver notification is
// fused with the data (release store / put-with-signal, §5.2).
//
// Force halo (FusedCommUnpackF, Algs 5-6): runs the dependency chain
// backwards. Every pulse's incoming forces unpack in parallel with
// atomicAdd; only the *outgoing* shipment of pulse p waits until later
// pulses' unpacks have accumulated into p's slots (DEP_MGMT forwarding).
// NVLink uses receiver-driven TMA gets after a readiness signal from the
// peer; InfiniBand uses staged put-with-signal.
//
// Kernels hold a small SM share for their lifetime (Device::begin_hold),
// reproducing the resource-sharing slowdown of co-resident local compute.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "halo/tuning.hpp"
#include "halo/workload.hpp"
#include "msg/comm.hpp"
#include "pgas/world.hpp"
#include "sim/machine.hpp"

namespace hs::halo {

class ShmemHaloExchange {
 public:
  ShmemHaloExchange(sim::Machine& machine, pgas::World& world,
                    Workload workload, HaloTuning tuning = {});

  const Workload& workload() const { return workload_; }
  int total_pulses() const { return workload_.plan.total_pulses(); }

  /// Kernel(s) implementing the coordinate halo for `rank` at `step`.
  /// Fused: a single FusedPackCommX kernel. With tuning.fuse_pulses off:
  /// one serialized kernel per pulse (launch them in order).
  std::vector<sim::KernelSpec> coord_kernels(int rank, std::int64_t step);

  /// Kernel(s) implementing the force halo for `rank` at `step`.
  std::vector<sim::KernelSpec> force_kernels(int rank, std::int64_t step);

  /// True if rank has any pulse using the InfiniBand path (needs a healthy
  /// proxy thread, §5.5).
  bool uses_ib(int rank) const;

 private:
  struct PulseRt {
    bool nvlink_out_coord = false;  // to send_rank (coordinate puts)
    bool nvlink_in_coord = false;   // from recv_rank (coordinate arrivals)
    bool nvlink_out_force = false;  // to recv_rank (force returns)
    bool nvlink_in_force = false;   // from send_rank (force arrivals)
  };

  const dd::PulseData& pulse(int rank, int p) const {
    return workload_.plan.ranks[static_cast<std::size_t>(rank)]
        .pulses[static_cast<std::size_t>(p)];
  }
  dd::DomainState* state(int rank) {
    return workload_.functional()
               ? &(*workload_.states)[static_cast<std::size_t>(rank)]
               : nullptr;
  }

  sim::Task coord_pulse_task(sim::KernelContext& ctx, int rank, int p,
                             std::int64_t sigval);
  sim::Task force_pulse_task(sim::KernelContext& ctx, int rank, int p,
                             std::int64_t sigval);

  /// Transfer issued for a packed coordinate segment (NVLink TMA path or
  /// SM-store fallback). Completion increments `pending` and wakes waiters.
  void issue_coord_segment(sim::KernelContext& ctx, int rank, int p,
                           int first_entry, int count,
                           const std::shared_ptr<sim::Signal>& pending);

  sim::Machine* machine_;
  pgas::World* world_;
  Workload workload_;
  HaloTuning tuning_;

  std::vector<std::vector<PulseRt>> rt_;  // [rank][pulse]

  // Symmetric objects (allocated world-collectively, over-allocated to the
  // max across ranks — the GROMACS over-allocation strategy).
  pgas::SymHandle coords_sym_;
  pgas::SymHandle forces_sym_;
  pgas::SymHandle stage_sym_;
  pgas::World::SignalArray coord_sig_;   // arrival of coordinate pulse data
  pgas::World::SignalArray force_sig_;   // force data arrival / readiness
  std::vector<std::vector<std::unique_ptr<sim::Signal>>> unpack_done_;
  // Consumption acks: word [R][p] is set to step+1 once the rank whose halo
  // slots R's pulse-p coordinates land in has finished its force kernels for
  // that step (its halo coordinates are no longer read). A sender must not
  // overwrite a peer's halo slots for step n+1 before the peer acknowledged
  // step n — the reuse protection the paper's per-step PE synchronization
  // provides, here GPU-resident. The ack travels as a signal_op over the
  // fabric so each rank only ever waits on its *own* symmetric word
  // (lane-local in partitioned runs; remote stores arrive via the fabric).
  pgas::World::SignalArray consumed_ack_;

  // Functional-mode buffers: incoming force staging per [rank][pulse].
  std::vector<std::vector<std::vector<md::Vec3>>> force_stage_;
  // Outgoing force wires for the NVLink get path: captured at readiness
  // time by the sender, read by the receiver's get. [rank][pulse].
  std::vector<std::vector<std::shared_ptr<std::vector<md::Vec3>>>> force_wire_;
};

}  // namespace hs::halo
