#include "halo/mpi_halo.hpp"

#include <cassert>
#include <cmath>

namespace hs::halo {

namespace {

constexpr std::size_t kVecBytes = sizeof(md::Vec3);

std::size_t bytes_for(int atoms) {
  return static_cast<std::size_t>(atoms) * kVecBytes;
}

// Distinct tag spaces per exchange direction and pulse.
int coord_tag(int pulse) { return pulse; }
int force_tag(int pulse) { return 1000 + pulse; }

}  // namespace

MpiHaloExchange::MpiHaloExchange(sim::Machine& machine, msg::Comm& comm,
                                 Workload workload)
    : machine_(&machine), comm_(&comm), workload_(std::move(workload)) {
  const int n_ranks = workload_.plan.grid.num_ranks();
  const int n_pulses = workload_.plan.total_pulses();
  force_stage_.resize(static_cast<std::size_t>(n_ranks));
  for (auto& per_rank : force_stage_) {
    per_rank.resize(static_cast<std::size_t>(n_pulses));
  }
}

sim::Task MpiHaloExchange::coord_phase(int rank, sim::Stream& stream,
                                       std::int64_t step) {
  const auto& cm = machine_->cost();

  for (int p = 0; p < total_pulses(); ++p) {
    const dd::PulseData& meta = pulse(rank, p);
    dd::DomainState* st = state(rank);
    dd::DomainState* peer = state(meta.send_rank);

    // Launch the coordinate pack kernel (indexed gather into the device
    // send buffer). The wire capture happens when the kernel's work runs.
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    co_await sim::Delay{cm.kernel_launch_ns};
    sim::KernelSpec pack;
    pack.name = "PackX_p" + std::to_string(p);
    pack.sm_demand = cm.pack_demand;
    pack.tag = step;
    pack.dispatch_ns = cm.kernel_dispatch_ns;
    const dd::PulseData* meta_ptr = &meta;
    pack.body = [this, st, meta_ptr, wire](sim::KernelContext& kctx) -> sim::Task {
      co_await kctx.compute(machine_->cost().pack_cost(meta_ptr->send_size));
      // Pack runs "at" span completion: gather into the wire buffer now.
      if (st == nullptr) co_return;
      wire->resize(meta_ptr->index_map.size());
      pack_coordinates(st->x, meta_ptr->index_map, 0, wire->size(),
                       meta_ptr->coord_shift, wire->data());
    };
    stream.launch(std::move(pack));

    // CPU-GPU synchronization: MPI needs the pack complete before sending.
    co_await sim::Delay{cm.event_api_ns};
    auto packed = stream.record();
    co_await sim::Delay{cm.stream_sync_ns};
    co_await packed->wait();

    // Blocking GPU-aware sendrecv: send to -dim neighbour, receive from
    // +dim neighbour directly into x + atomOffset (no unpack needed).
    co_await sim::Delay{cm.mpi_call_ns};
    const int peer_offset = pulse(meta.send_rank, p).atom_offset;
    auto send_done = comm_->isend(
        rank, meta.send_rank, coord_tag(p), bytes_for(meta.send_size),
        [wire, peer, peer_offset] {
          if (peer == nullptr) return;
          std::copy(wire->begin(), wire->end(), peer->x.begin() + peer_offset);
        });
    auto recv_done = comm_->irecv(rank, meta.recv_rank, coord_tag(p));
    co_await send_done->wait();
    co_await recv_done->wait();
    // Next pulse's pack may gather atoms received here: strict serialization.
  }
}

sim::Task MpiHaloExchange::force_phase(int rank, sim::Stream& stream,
                                       std::int64_t step) {
  const auto& cm = machine_->cost();

  for (int p = total_pulses() - 1; p >= 0; --p) {
    const dd::PulseData& meta = pulse(rank, p);
    dd::DomainState* st = state(rank);
    auto* self = this;

    // The forces for atoms received in pulse p are contiguous at
    // atomOffset; no pack kernel needed, but the CPU must know the GPU is
    // done producing them (stream sync before the MPI call).
    co_await sim::Delay{cm.event_api_ns};
    auto produced = stream.record();
    co_await sim::Delay{cm.stream_sync_ns};
    co_await produced->wait();

    // Capture at send time.
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    if (st != nullptr) {
      wire->assign(st->f.begin() + meta.atom_offset,
                   st->f.begin() + meta.atom_offset + meta.recv_size);
    }

    co_await sim::Delay{cm.mpi_call_ns};
    const int dst = meta.recv_rank;
    auto send_done = comm_->isend(rank, dst, force_tag(p),
                                  bytes_for(meta.recv_size),
                                  [self, wire, dst, p] {
                                    self->force_stage_[static_cast<std::size_t>(dst)]
                                                      [static_cast<std::size_t>(p)] =
                                        *wire;
                                  });
    auto recv_done = comm_->irecv(rank, meta.send_rank, force_tag(p));
    co_await send_done->wait();
    co_await recv_done->wait();

    // Launch the scatter-accumulate unpack kernel. No trailing sync: the
    // next (earlier) pulse's leading stream-sync covers this unpack before
    // its send reads the slots it writes, and the final unpack is ordered
    // before the force reduction by the stream event.
    co_await sim::Delay{cm.kernel_launch_ns};
    sim::KernelSpec unpack;
    unpack.name = "UnpackF_p" + std::to_string(p);
    unpack.sm_demand = cm.pack_demand;
    unpack.tag = step;
    unpack.dispatch_ns = cm.kernel_dispatch_ns;
    const dd::PulseData* meta_ptr = &meta;
    const int r = rank;
    unpack.body = [self, st, meta_ptr, r, p](sim::KernelContext& kctx) -> sim::Task {
      co_await kctx.compute(
          self->machine_->cost().unpack_cost(meta_ptr->send_size));
      if (st == nullptr) co_return;
      const auto& stage = self->force_stage_[static_cast<std::size_t>(r)]
                                            [static_cast<std::size_t>(p)];
      assert(static_cast<int>(stage.size()) == meta_ptr->send_size);
      unpack_forces(st->f, meta_ptr->index_map, stage);
    };
    stream.launch(std::move(unpack));
  }
}

}  // namespace hs::halo
