#include "halo/tmpi_halo.hpp"

#include <cassert>
#include <stdexcept>

namespace hs::halo {

namespace {
constexpr std::size_t kVecBytes = sizeof(md::Vec3);
std::size_t bytes_for(int atoms) {
  return static_cast<std::size_t>(atoms) * kVecBytes;
}
}  // namespace

ThreadMpiHaloExchange::ThreadMpiHaloExchange(sim::Machine& machine,
                                             Workload workload)
    : machine_(&machine), workload_(std::move(workload)) {
  const int n_ranks = workload_.plan.grid.num_ranks();
  for (const auto& rp : workload_.plan.ranks) {
    for (const auto& pd : rp.pulses) {
      if (machine.topology().link(rp.rank, pd.send_rank) == sim::LinkType::IB ||
          machine.topology().link(rp.rank, pd.recv_rank) == sim::LinkType::IB) {
        throw std::invalid_argument(
            "thread-MPI halo exchange requires a single NVLink domain "
            "(thread-MPI ranks share one process)");
      }
    }
  }
  force_stage_.resize(static_cast<std::size_t>(n_ranks));
  for (auto& per_rank : force_stage_) {
    per_rank.resize(static_cast<std::size_t>(workload_.plan.total_pulses()));
  }
}

sim::GpuEventPtr ThreadMpiHaloExchange::event(
    std::map<std::tuple<std::int64_t, int, int>, sim::GpuEventPtr>& table,
    std::int64_t step, int rank, int p) {
  std::lock_guard<std::mutex> lock(event_mu_);
  auto& slot = table[{step, rank, p}];
  if (!slot) {
    slot = std::make_shared<sim::GpuEvent>(machine_->device_engine(rank));
  }
  // Prune entries older than any plausible launch-ahead window.
  while (!table.empty() && std::get<0>(table.begin()->first) < step - 8) {
    table.erase(table.begin());
  }
  return slot;
}

sim::Task ThreadMpiHaloExchange::coord_phase(int rank, sim::Stream& stream,
                                             std::int64_t step) {
  const auto& cm = machine_->cost();

  for (int p = 0; p < total_pulses(); ++p) {
    const dd::PulseData& meta = pulse(rank, p);
    dd::DomainState* st = state(rank);
    dd::DomainState* peer = state(meta.send_rank);

    // Dependent entries reference halo received in earlier pulses: make the
    // stream wait for those copies (GPU events — the CPU never blocks).
    if (meta.num_dependent > 0) {
      for (int k = std::max(0, meta.first_dependent_pulse); k < p; ++k) {
        co_await sim::Delay{cm.event_api_ns};
        stream.wait(event(coord_copied_, step, rank, k));
      }
    }

    // Pack kernel (indexed gather into the device send buffer).
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    co_await sim::Delay{cm.kernel_launch_ns};
    sim::KernelSpec pack;
    pack.name = "PackX_p" + std::to_string(p);
    pack.sm_demand = cm.pack_demand;
    pack.tag = step;
    pack.dispatch_ns = cm.kernel_dispatch_ns;
    const dd::PulseData* meta_ptr = &meta;
    pack.body = [this, st, meta_ptr, wire](sim::KernelContext& kctx) -> sim::Task {
      co_await kctx.compute(machine_->cost().pack_cost(meta_ptr->send_size));
      if (st == nullptr) co_return;
      wire->resize(meta_ptr->index_map.size());
      pack_coordinates(st->x, meta_ptr->index_map, 0, wire->size(),
                       meta_ptr->coord_shift, wire->data());
    };
    stream.launch(std::move(pack));

    // Direct DMA copy into the receiver's coordinate array; the copy
    // engine runs it after the pack (stream order), and its completion is
    // the receiver's dependency event.
    const int dst = meta.send_rank;
    const int peer_offset = pulse(dst, p).atom_offset;
    auto copied = event(coord_copied_, step, dst, p);
    auto* fabric = &machine_->fabric();
    const std::size_t bytes = bytes_for(meta.send_size);
    const sim::SimTime setup = cm.dma_setup_ns;
    co_await sim::Delay{cm.event_api_ns};
    stream.enqueue_async(
        "DmaX_p" + std::to_string(p),
        [fabric, rank, dst, bytes, setup, wire, peer, peer_offset, copied,
         engine = &machine_->device_engine(rank)](std::function<void()> done) {
          engine->schedule_after(setup, [fabric, rank, dst, bytes, wire, peer,
                                         peer_offset, copied,
                                         done = std::move(done)] {
            sim::TransferRequest req;
            req.src_device = rank;
            req.dst_device = dst;
            req.bytes = bytes;
            req.label = "dma_x";
            // The copy event completes with the delivery: both are
            // destination-side effects (the event's waiters are the
            // receiver's stream), so in partitioned mode they must run on
            // the destination lane together.
            req.deliver = [wire, peer, peer_offset, copied] {
              if (peer != nullptr) {
                std::copy(wire->begin(), wire->end(),
                          peer->x.begin() + peer_offset);
              }
              copied->complete();
            };
            fabric->transfer(std::move(req), std::move(done));
          });
        });
  }

  // Consumers (non-local force kernels) are launched after this phase on
  // the same stream; make the stream wait for this rank's own receipts so
  // stream order implies halo completeness — still no CPU blocking.
  for (int p = 0; p < total_pulses(); ++p) {
    co_await sim::Delay{cm.event_api_ns};
    stream.wait(event(coord_copied_, step, rank, p));
  }
}

sim::Task ThreadMpiHaloExchange::force_phase(int rank, sim::Stream& stream,
                                             std::int64_t step) {
  const auto& cm = machine_->cost();
  auto* self = this;

  for (int p = total_pulses() - 1; p >= 0; --p) {
    const dd::PulseData& meta = pulse(rank, p);
    dd::DomainState* st = state(rank);

    // Outgoing: DMA the halo-slot forces back to the rank that sent the
    // coordinates. Stream order guarantees later pulses' unpacks (enqueued
    // above in this descending loop) have accumulated into these slots.
    const int dst = meta.recv_rank;
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    auto copied = event(force_copied_, step, dst, p);
    auto* fabric = &machine_->fabric();
    const std::size_t bytes = bytes_for(meta.recv_size);
    const sim::SimTime setup = cm.dma_setup_ns;
    const dd::PulseData* meta_ptr = &meta;
    co_await sim::Delay{cm.event_api_ns};
    stream.enqueue_async(
        "DmaF_p" + std::to_string(p),
        [self, fabric, rank, dst, p, bytes, setup, wire, st, meta_ptr, copied,
         engine = &machine_->device_engine(rank)](std::function<void()> done) {
          // Capture at copy time (the stream has finished the producers).
          if (st != nullptr) {
            wire->assign(st->f.begin() + meta_ptr->atom_offset,
                         st->f.begin() + meta_ptr->atom_offset +
                             meta_ptr->recv_size);
          }
          engine->schedule_after(setup, [self, fabric, rank, dst, p, bytes,
                                         wire, copied, done = std::move(done)] {
            sim::TransferRequest req;
            req.src_device = rank;
            req.dst_device = dst;
            req.bytes = bytes;
            req.label = "dma_f";
            // Staging write + event completion are both destination-side
            // effects; deliver them together on the destination lane.
            req.deliver = [self, wire, dst, p, copied] {
              self->force_stage_[static_cast<std::size_t>(dst)]
                                [static_cast<std::size_t>(p)] = *wire;
              copied->complete();
            };
            fabric->transfer(std::move(req), std::move(done));
          });
        });

    // Incoming: wait for the peer's copy, then scatter-accumulate.
    co_await sim::Delay{cm.event_api_ns};
    stream.wait(event(force_copied_, step, rank, p));
    co_await sim::Delay{cm.kernel_launch_ns};
    sim::KernelSpec unpack;
    unpack.name = "UnpackF_p" + std::to_string(p);
    unpack.sm_demand = cm.pack_demand;
    unpack.tag = step;
    unpack.dispatch_ns = cm.kernel_dispatch_ns;
    const int r = rank;
    unpack.body = [self, st, meta_ptr, r, p](sim::KernelContext& kctx) -> sim::Task {
      co_await kctx.compute(
          self->machine_->cost().unpack_cost(meta_ptr->send_size));
      if (st == nullptr) co_return;
      const auto& stage = self->force_stage_[static_cast<std::size_t>(r)]
                                            [static_cast<std::size_t>(p)];
      assert(static_cast<int>(stage.size()) == meta_ptr->send_size);
      unpack_forces(st->f, meta_ptr->index_map, stage);
    };
    stream.launch(std::move(unpack));
  }
}

}  // namespace hs::halo
