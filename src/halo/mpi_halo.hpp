// CPU-initiated GPU-aware MPI halo exchange — the baseline (Fig. 1).
//
// The defining property of this path is its control structure, not its
// transfers: pulses are serialized, and each one costs the CPU a
// stream-synchronize before the MPI call (the producing pack kernel must
// finish) plus a blocking wait for the transfer before the next dependent
// operation can be launched. Coordinates need a pack kernel on the send
// side only (the receive lands contiguously at atomOffset); forces are
// sent contiguously and need a scatter-accumulate unpack kernel on the
// receive side. These are the "multiple CPU-GPU synchronizations each
// time-step, often exposing resulting latencies on the critical path"
// of §3.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "halo/tuning.hpp"
#include "halo/workload.hpp"
#include "msg/comm.hpp"
#include "sim/machine.hpp"

namespace hs::halo {

class MpiHaloExchange {
 public:
  MpiHaloExchange(sim::Machine& machine, msg::Comm& comm, Workload workload);

  const Workload& workload() const { return workload_; }
  int total_pulses() const { return workload_.plan.total_pulses(); }

  /// Host-coroutine fragment: the coordinate halo phases for `rank` at
  /// `step`, launching pack kernels on `stream` and blocking the CPU on
  /// each pulse's communication. co_await via sim::Join from the rank's
  /// host step loop.
  sim::Task coord_phase(int rank, sim::Stream& stream, std::int64_t step);

  /// Host-coroutine fragment: the force halo phases (reverse pulse order),
  /// with an unpack kernel per pulse on `stream`.
  sim::Task force_phase(int rank, sim::Stream& stream, std::int64_t step);

 private:
  const dd::PulseData& pulse(int rank, int p) const {
    return workload_.plan.ranks[static_cast<std::size_t>(rank)]
        .pulses[static_cast<std::size_t>(p)];
  }
  dd::DomainState* state(int rank) {
    return workload_.functional()
               ? &(*workload_.states)[static_cast<std::size_t>(rank)]
               : nullptr;
  }

  sim::Machine* machine_;
  msg::Comm* comm_;
  Workload workload_;
  // Incoming force staging per [rank][pulse] (functional mode).
  std::vector<std::vector<std::vector<md::Vec3>>> force_stage_;
};

}  // namespace hs::halo
