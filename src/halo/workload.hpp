// Workload descriptor: what the halo exchange operates on.
//
// Functional mode carries real DomainStates (tests, examples, small
// benches): kernels move real coordinates and forces, so results are
// verifiable against the dd reference exchanges. Skeleton mode carries
// only the plan with analytically-predicted sizes (large-scale benches,
// up to 23 M atoms): the same kernels run with identical timing behaviour
// but no data movement.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dd/decomposition.hpp"
#include "dd/geometry.hpp"
#include "dd/plan.hpp"
#include "md/vec3.hpp"

namespace hs::halo {

struct Workload {
  dd::ExchangePlan plan;
  std::vector<dd::DomainState>* states = nullptr;  // null => skeleton mode
  double home_atoms_per_rank = 0.0;   // for kernel-cost computation
  double halo_atoms_per_rank = 0.0;

  bool functional() const { return states != nullptr; }

  int home_atoms(int rank) const {
    return states != nullptr
               ? (*states)[static_cast<std::size_t>(rank)].n_home
               : static_cast<int>(home_atoms_per_rank);
  }
  int halo_atoms(int rank) const {
    return states != nullptr
               ? (*states)[static_cast<std::size_t>(rank)].n_halo()
               : static_cast<int>(halo_atoms_per_rank);
  }
};

/// Pack a send buffer: out[k] = x[index_map[first + k]] + shift for
/// k in [0, count). All transports (tMPI, MPI, SHMEM) funnel through
/// this so the gather runs on the runtime-dispatched SIMD path; it is
/// an elementwise copy, so results are bit-identical at every ISA.
void pack_coordinates(std::span<const md::Vec3> x,
                      std::span<const int> index_map, std::size_t first,
                      std::size_t count, md::Vec3 shift, md::Vec3* out);

/// Unpack a received force stage: f[index_map[k]] += in[k]. One add per
/// element in map order — bit-identical to the scalar loop at every ISA.
void unpack_forces(std::span<md::Vec3> f, std::span<const int> index_map,
                   std::span<const md::Vec3> in);

/// Wrap a functional decomposition.
Workload make_functional_workload(dd::Decomposition& dd);

/// Build a skeleton workload from DD geometry + number density: per-pulse
/// sizes, dependency counts, and offsets are predicted analytically
/// (validated against functional plans by tests/dd/geometry_test).
Workload make_skeleton_workload(const dd::DomainGrid& grid,
                                double comm_cutoff, double density);

}  // namespace hs::halo
