// Transport selection and design-ablation switches for the halo exchange.
#pragma once

namespace hs::halo {

enum class Transport {
  Mpi,        // CPU-initiated GPU-aware MPI baseline (Fig. 1)
  ThreadMpi,  // event-driven DMA-copy design of GROMACS thread-MPI (§2.2);
              // fully host-async but per-pulse copy-engine launches,
              // intra-node (single NVLink domain) only
  Shmem,      // GPU-initiated NVSHMEM-style fused design (Fig. 2, Algs 2-6)
};

/// Design-choice switches, each corresponding to an optimization described
/// in §5. Defaults are the paper's full design; the ablation bench
/// (bench/abl_halo_design) toggles them individually.
struct HaloTuning {
  /// §5.1 fused vs baseline: one kernel processing all pulses in parallel
  /// vs one kernel per pulse, serialized on the stream.
  bool fuse_pulses = true;
  /// §5.1 dependency partitioning: pack independent (home) entries
  /// immediately, wait for prior-pulse signals only for dependent entries.
  /// Off: the whole pack waits for all dependencies first.
  bool dependency_partitioning = true;
  /// §5.1 TMA path: NVLink transfers ride the async copy engine
  /// (no SM time, chunk-pipelined). Off: SM-driven remote stores.
  bool use_tma = true;
  /// §5.2 fused signaling: receiver notification piggybacks on the data
  /// transfer (put-with-signal / release store by the last block). Off: a
  /// separate notification op is issued after the data.
  bool fused_signaling = true;
};

}  // namespace hs::halo
