// Thread-MPI-style halo exchange: GROMACS' built-in event-driven design
// (§2.2 of the paper).
//
// Thread-MPI ranks are threads of one process, so communication is direct
// DMA copies (cudaMemcpyPeerAsync-style) enqueued on GPU streams, with
// dependencies expressed as GPU events across devices — no CPU blocking
// anywhere. This "can asynchronously launch both communication and
// computation for multiple iterations, overlapping GPU compute and launch"
// and historically outperforms GPU-aware MPI in communication-bound
// regimes; the paper's NVSHMEM design extends exactly these benefits to
// multi-node while removing the copy-engine launch overheads.
//
// Per coordinate pulse (all host-async):
//   [wait earlier pulses' copy events]  -> pack kernel -> DMA copy into the
//   receiver's coordinate array -> record copy event on the receiver.
// Per force pulse (descending): DMA the halo-slot forces back, then the
// receiver's unpack kernel waits on the copy event and accumulates.
//
// Intra-node (single NVLink domain) only, like thread-MPI itself.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "halo/workload.hpp"
#include "sim/machine.hpp"

namespace hs::halo {

class ThreadMpiHaloExchange {
 public:
  /// Requires every rank pair to be NVLink-reachable (one process cannot
  /// span nodes); throws std::invalid_argument otherwise.
  ThreadMpiHaloExchange(sim::Machine& machine, Workload workload);

  const Workload& workload() const { return workload_; }
  int total_pulses() const { return workload_.plan.total_pulses(); }

  /// Host-coroutine fragment enqueueing the coordinate halo for `rank` at
  /// `step` on `stream`. Never blocks the CPU (only launch/event costs).
  sim::Task coord_phase(int rank, sim::Stream& stream, std::int64_t step);

  /// Host-coroutine fragment enqueueing the force halo (reverse order).
  sim::Task force_phase(int rank, sim::Stream& stream, std::int64_t step);

 private:
  const dd::PulseData& pulse(int rank, int p) const {
    return workload_.plan.ranks[static_cast<std::size_t>(rank)]
        .pulses[static_cast<std::size_t>(p)];
  }
  dd::DomainState* state(int rank) {
    return workload_.functional()
               ? &(*workload_.states)[static_cast<std::size_t>(rank)]
               : nullptr;
  }

  /// Cross-rank GPU events, shared process-wide exactly like thread-MPI.
  /// Key: (step, rank, pulse); the event is homed on the key rank's lane
  /// engine (its waiters live there; completion arrives there via the DMA
  /// delivery). Whichever host loop needs one first creates it; entries
  /// older than the launch-ahead window are pruned. The table itself is
  /// shared across ranks, so lookups are mutex-guarded — in partitioned
  /// runs two lanes may fault in the same (step, rank, pulse) entry
  /// concurrently.
  sim::GpuEventPtr event(std::map<std::tuple<std::int64_t, int, int>,
                                  sim::GpuEventPtr>& table,
                         std::int64_t step, int rank, int p);

  sim::Machine* machine_;
  Workload workload_;
  std::mutex event_mu_;
  std::map<std::tuple<std::int64_t, int, int>, sim::GpuEventPtr> coord_copied_;
  std::map<std::tuple<std::int64_t, int, int>, sim::GpuEventPtr> force_copied_;
  // Incoming force staging per [rank][pulse] (functional mode).
  std::vector<std::vector<std::vector<md::Vec3>>> force_stage_;
};

}  // namespace hs::halo
