#include "halo/shmem_halo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hs::halo {

namespace {

constexpr std::size_t kVecBytes = sizeof(md::Vec3);

sim::SimTime ns(double v) { return static_cast<sim::SimTime>(std::llround(v)); }

std::size_t bytes_for(int atoms) {
  return static_cast<std::size_t>(atoms) * kVecBytes;
}

}  // namespace

ShmemHaloExchange::ShmemHaloExchange(sim::Machine& machine, pgas::World& world,
                                     Workload workload, HaloTuning tuning)
    : machine_(&machine),
      world_(&world),
      workload_(std::move(workload)),
      tuning_(tuning) {
  const int n_ranks = workload_.plan.grid.num_ranks();
  const int n_pulses = workload_.plan.total_pulses();
  assert(n_ranks == machine.device_count());

  // Runtime transport-path flags: the Algorithm 1 isNVLinkAccess predicate,
  // evaluated via nvshmem_ptr-style reachability per pulse.
  rt_.resize(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    rt_[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(n_pulses));
    for (int p = 0; p < n_pulses; ++p) {
      const dd::PulseData& pd = pulse(r, p);
      PulseRt& rt = rt_[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
      rt.nvlink_out_coord = world.nvlink_reachable(r, pd.send_rank);
      rt.nvlink_in_coord = world.nvlink_reachable(r, pd.recv_rank);
      rt.nvlink_out_force = world.nvlink_reachable(r, pd.recv_rank);
      rt.nvlink_in_force = world.nvlink_reachable(r, pd.send_rank);
    }
  }

  // Symmetric allocations, over-allocated to the maximum across ranks
  // (symmetric allocation is world-collective; GROMACS over-allocates so
  // resizing is rarely needed, §5.3).
  int max_total = 1, max_stage = 1;
  for (const auto& rp : workload_.plan.ranks) {
    max_total = std::max(max_total, rp.n_total);
    for (const auto& pd : rp.pulses) {
      max_stage = std::max({max_stage, pd.send_size, pd.recv_size});
    }
  }
  coords_sym_ = world.alloc(bytes_for(max_total));
  forces_sym_ = world.alloc(bytes_for(max_total));
  stage_sym_ = world.alloc(bytes_for(max_stage) *
                           static_cast<std::size_t>(std::max(1, n_pulses)));
  if (n_pulses > 0) {
    coord_sig_ = world.alloc_signals(n_pulses, "coordSig");
    force_sig_ = world.alloc_signals(n_pulses, "forceSig");
    consumed_ack_ = world.alloc_signals(n_pulses, "consumedAck");
  }

  unpack_done_.resize(static_cast<std::size_t>(n_ranks));
  force_stage_.resize(static_cast<std::size_t>(n_ranks));
  force_wire_.resize(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    auto& done = unpack_done_[static_cast<std::size_t>(r)];
    for (int p = 0; p < n_pulses; ++p) {
      // Only rank r ever waits or stores these (its own pulse ordering),
      // so they are homed on r's lane.
      done.push_back(std::make_unique<sim::Signal>(machine.device_engine(r)));
    }
    force_stage_[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(n_pulses));
    force_wire_[static_cast<std::size_t>(r)].resize(
        static_cast<std::size_t>(n_pulses));
  }
}

bool ShmemHaloExchange::uses_ib(int rank) const {
  for (const auto& rt : rt_[static_cast<std::size_t>(rank)]) {
    if (!rt.nvlink_out_coord || !rt.nvlink_in_coord) return true;
  }
  return false;
}

void ShmemHaloExchange::issue_coord_segment(
    sim::KernelContext& ctx, int rank, int p, int first_entry, int count,
    const std::shared_ptr<sim::Signal>& pending) {
  (void)ctx;
  if (count <= 0) {
    pending->add(1);
    return;
  }
  const dd::PulseData& meta = pulse(rank, p);
  dd::DomainState* st = state(rank);
  dd::DomainState* peer = state(meta.send_rank);
  const int peer_offset = pulse(meta.send_rank, p).atom_offset + first_entry;

  // Capture the packed segment at issue time (the pack wrote it to shared
  // memory scratch / registers; the wire models the in-flight bytes).
  std::function<void()> deliver;
  if (st != nullptr) {
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    wire->resize(static_cast<std::size_t>(count));
    pack_coordinates(st->x, meta.index_map, static_cast<std::size_t>(first_entry),
                     static_cast<std::size_t>(count), meta.coord_shift,
                     wire->data());
    deliver = [wire, peer, peer_offset] {
      std::copy(wire->begin(), wire->end(),
                peer->x.begin() + peer_offset);
    };
  }

  world_->tma_store_async(rank, meta.send_rank, bytes_for(count),
                          std::move(deliver), [pending] { pending->add(1); });
}

sim::Task ShmemHaloExchange::coord_pulse_task(sim::KernelContext& ctx,
                                              int rank, int p,
                                              std::int64_t sigval) {
  const auto& cm = machine_->cost();
  const dd::PulseData& meta = pulse(rank, p);
  const PulseRt& rt = rt_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(p)];
  const int indep = meta.send_size - meta.num_dependent;
  const bool partition = tuning_.dependency_partitioning;

  auto pending = std::make_shared<sim::Signal>(machine_->device_engine(rank));
  // Local completion word for the TMA bulk stores: its blocked waits are
  // transfer-bound time on this rank, so bind it to this rank's trace lane
  // (the unpack_done_ waits stay unbound — they order same-rank pulses and
  // would double-count).
  pending->bind_trace(&machine_->device_trace(rank), rank, "tmaStorePending");
  int segments = 0;

  // Reuse protection: the peer must have finished consuming last step's
  // halo coordinates before we overwrite its slots. We wait on our *own*
  // consumedAck word; the peer's force-kernel completion pushed the ack
  // here via the fabric (see consumed_ack_ decl).
  {
    sim::Signal& ack = world_->signal(consumed_ack_, rank, p);
    const bool ready = ack.value() >= sigval - 1;
    co_await ack.wait_ge(sigval - 1);
    if (!ready) co_await sim::Delay{cm.signal_poll_ns};
  }

  // --- packWithDeps (Algorithm 4) ---
  if (partition && indep > 0) {
    co_await sim::Delay{ns(cm.pack_cost(indep))};
    if (rt.nvlink_out_coord) {
      if (!tuning_.use_tma) {
        // SM-driven remote stores: the copy costs SM time instead of riding
        // the async engine.
        co_await sim::Delay{ns(bytes_for(indep) / cm.sm_copy_bytes_per_ns)};
      }
      issue_coord_segment(ctx, rank, p, 0, indep, pending);
      ++segments;
    }
  }
  // Leader acquire-waits on prior pulses' arrival signals (only when this
  // pulse has dependent entries; with partitioning off, wait up front).
  if (meta.num_dependent > 0) {
    const int first = std::max(0, meta.first_dependent_pulse);
    for (int k = p - 1; k >= first; --k) {
      sim::Signal& dep = world_->signal(coord_sig_, rank, k);
      const bool ready = dep.value() >= sigval;
      co_await dep.wait_ge(sigval);
      if (!ready) co_await sim::Delay{cm.signal_poll_ns};
    }
  }
  const int tail_first = partition ? indep : 0;
  const int tail_count = partition ? meta.num_dependent : meta.send_size;
  if (tail_count > 0) {
    co_await sim::Delay{ns(cm.pack_cost(tail_count))};
    if (rt.nvlink_out_coord) {
      if (!tuning_.use_tma) {
        co_await sim::Delay{ns(bytes_for(tail_count) / cm.sm_copy_bytes_per_ns)};
      }
      issue_coord_segment(ctx, rank, p, tail_first, tail_count, pending);
      ++segments;
    }
  }

  // --- syncAndCommWithDeps, DATA mode (Algorithm 5) ---
  if (rt.nvlink_out_coord) {
    // Wait for the async bulk stores, then fuse the receiver notification:
    // a system-scope release store on the peer's signal word.
    if (segments > 0) co_await pending->wait_ge(segments);
    sim::SimTime notify_cost = cm.signal_release_ns;
    if (!tuning_.fused_signaling) {
      notify_cost += cm.shmem_put_issue_ns;  // separate notification op
    }
    co_await sim::Delay{notify_cost};
    world_->signal_op(rank, meta.send_rank,
                      world_->signal(coord_sig_, meta.send_rank, p), sigval);
  } else {
    // InfiniBand: one coarse staged put, notification fused
    // (nvshmem_float_put_signal_nbi) or separate when ablated.
    dd::DomainState* st = state(rank);
    dd::DomainState* peer = state(meta.send_rank);
    std::function<void()> deliver;
    if (st != nullptr) {
      auto wire = std::make_shared<std::vector<md::Vec3>>();
      wire->resize(static_cast<std::size_t>(meta.send_size));
      pack_coordinates(st->x, meta.index_map, 0, wire->size(),
                       meta.coord_shift, wire->data());
      const int peer_offset = pulse(meta.send_rank, p).atom_offset;
      deliver = [wire, peer, peer_offset] {
        std::copy(wire->begin(), wire->end(), peer->x.begin() + peer_offset);
      };
    }
    co_await sim::Delay{cm.shmem_put_issue_ns};
    sim::Signal& peer_sig = world_->signal(coord_sig_, meta.send_rank, p);
    if (tuning_.fused_signaling) {
      world_->put_signal_nbi(rank, meta.send_rank, bytes_for(meta.send_size),
                             std::move(deliver), peer_sig, sigval);
    } else {
      world_->put_nbi(rank, meta.send_rank, bytes_for(meta.send_size),
                      std::move(deliver));
      co_await sim::Delay{cm.shmem_put_issue_ns};
      world_->signal_op(rank, meta.send_rank, peer_sig, sigval);
    }
  }

  // Arrival confirmation: kernel completion implies this rank's halo
  // coordinates for pulse p are in place, so stream-ordered consumers
  // (non-local force kernels) need no extra synchronization.
  {
    sim::Signal& arr = world_->signal(coord_sig_, rank, p);
    const bool ready = arr.value() >= sigval;
    co_await arr.wait_ge(sigval);
    if (!ready) co_await sim::Delay{cm.signal_poll_ns};
  }
}

sim::Task ShmemHaloExchange::force_pulse_task(sim::KernelContext& ctx,
                                              int rank, int p,
                                              std::int64_t sigval) {
  (void)ctx;
  const auto& cm = machine_->cost();
  const dd::PulseData& meta = pulse(rank, p);
  const PulseRt& rt = rt_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(p)];
  const int total = total_pulses();
  dd::DomainState* st = state(rank);

  // --- Outgoing shipment (forces for atoms received in pulse p) ---
  // DEP_MGMT: wait for later pulses' unpacks — their dependent entries
  // accumulate into this pulse's slots (Algorithm 5, line 9).
  for (int q = p + 1; q < total; ++q) {
    sim::Signal& done =
        *unpack_done_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(q)];
    const bool ready = done.value() >= sigval;
    co_await done.wait_ge(sigval);
    if (!ready) co_await sim::Delay{cm.signal_poll_ns};
  }
  if (meta.recv_size > 0) {
    // Capture the outgoing data (now final).
    auto wire = std::make_shared<std::vector<md::Vec3>>();
    if (st != nullptr) {
      wire->assign(st->f.begin() + meta.atom_offset,
                   st->f.begin() + meta.atom_offset + meta.recv_size);
    }
    force_wire_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(p)] = wire;

    sim::Signal& peer_sig = world_->signal(force_sig_, meta.recv_rank, p);
    if (rt.nvlink_out_force) {
      // Receiver-driven get path: just notify readiness. The last pulse has
      // no prior data writes to flush, so a relaxed system store suffices
      // (§5.2 system_relaxed_store vs system_release_store).
      sim::SimTime c = (p == total - 1) ? cm.signal_relaxed_ns
                                        : cm.signal_release_ns;
      if (!tuning_.fused_signaling) c += cm.shmem_put_issue_ns;
      co_await sim::Delay{c};
      world_->signal_op(rank, meta.recv_rank, peer_sig, sigval);
    } else {
      // InfiniBand: staged put-with-signal into the peer's recv buffer.
      auto* self = this;
      const int dst = meta.recv_rank;
      auto deliver = [self, wire, dst, p] {
        self->force_stage_[static_cast<std::size_t>(dst)]
                          [static_cast<std::size_t>(p)] = *wire;
      };
      co_await sim::Delay{cm.shmem_put_issue_ns};
      if (tuning_.fused_signaling) {
        world_->put_signal_nbi(rank, dst, bytes_for(meta.recv_size),
                               std::move(deliver), peer_sig, sigval);
      } else {
        world_->put_nbi(rank, dst, bytes_for(meta.recv_size), std::move(deliver));
        co_await sim::Delay{cm.shmem_put_issue_ns};
        world_->signal_op(rank, dst, peer_sig, sigval);
      }
    }
  }

  // --- Incoming forces (for atoms I sent in pulse p) ---
  if (meta.send_size > 0) {
    if (rt.nvlink_in_force) {
      // TMA-load the index map while waiting (Algorithm 6 lines 8-11).
      co_await sim::Delay{cm.tma_issue_ns};
      {
        sim::Signal& rdy = world_->signal(force_sig_, rank, p);
        const bool ready = rdy.value() >= sigval;
        co_await rdy.wait_ge(sigval);
        if (!ready) co_await sim::Delay{cm.signal_poll_ns};
      }
      // Device-initiated bulk get from the peer's force array.
      auto got = std::make_shared<sim::Signal>(machine_->device_engine(rank));
      got->bind_trace(&machine_->device_trace(rank), rank, "tmaLoadPending");
      std::function<void()> deliver;
      if (st != nullptr) {
        // Resolve the peer's wire at issue time (it is final: the peer
        // signalled readiness before we got here).
        auto wire = force_wire_[static_cast<std::size_t>(meta.send_rank)]
                               [static_cast<std::size_t>(p)];
        auto* self = this;
        const int r = rank;
        deliver = [self, wire, r, p] {
          self->force_stage_[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(p)] = *wire;
        };
      }
      world_->tma_load_async(rank, meta.send_rank, bytes_for(meta.send_size),
                             std::move(deliver), [got] { got->store(1); });
      co_await got->wait_ge(1);
      if (!tuning_.use_tma) {
        co_await sim::Delay{ns(bytes_for(meta.send_size) /
                               cm.sm_copy_bytes_per_ns)};
      }
    } else {
      sim::Signal& dat = world_->signal(force_sig_, rank, p);
      const bool ready = dat.value() >= sigval;
      co_await dat.wait_ge(sigval);
      if (!ready) co_await sim::Delay{cm.signal_poll_ns};
    }
    // Parallel unpack: map each entry through the index map and accumulate
    // with atomicAdd (Algorithm 6 line 17).
    co_await sim::Delay{ns(cm.unpack_cost(meta.send_size))};
    if (st != nullptr) {
      const auto& stage = force_stage_[static_cast<std::size_t>(rank)]
                                      [static_cast<std::size_t>(p)];
      assert(static_cast<int>(stage.size()) == meta.send_size);
      unpack_forces(st->f, meta.index_map, stage);
    }
  }
  unpack_done_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(p)]
      ->store(sigval);
}

std::vector<sim::KernelSpec> ShmemHaloExchange::coord_kernels(
    int rank, std::int64_t step) {
  const std::int64_t sigval = step + 1;
  const auto& cm = machine_->cost();
  const int total = total_pulses();
  std::vector<sim::KernelSpec> specs;
  if (total == 0) return specs;

  auto make = [&](std::string name, int first_pulse, int count) {
    sim::KernelSpec spec;
    spec.name = std::move(name);
    spec.sm_demand = cm.comm_demand;
    spec.tag = step;
    spec.dispatch_ns = cm.kernel_dispatch_ns;
    auto hold = std::make_shared<sim::Device::SpanId>(0);
    spec.body = [this, rank, sigval, first_pulse, count,
                 hold](sim::KernelContext& ctx) -> sim::Task {
      *hold = ctx.device().begin_hold(machine_->cost().comm_demand,
                                      ctx.priority());
      for (int p = first_pulse; p < first_pulse + count; ++p) {
        ctx.spawn(coord_pulse_task(ctx, rank, p, sigval));
      }
      co_return;
    };
    auto* dev = &machine_->device(rank);
    spec.on_complete = [dev, hold] { dev->end_hold(*hold); };
    return spec;
  };

  if (tuning_.fuse_pulses) {
    specs.push_back(make("FusedPackCommX", 0, total));
  } else {
    for (int p = 0; p < total; ++p) {
      specs.push_back(make("PackCommX_p" + std::to_string(p), p, 1));
    }
  }
  return specs;
}

std::vector<sim::KernelSpec> ShmemHaloExchange::force_kernels(
    int rank, std::int64_t step) {
  const std::int64_t sigval = step + 1;
  const auto& cm = machine_->cost();
  const int total = total_pulses();
  std::vector<sim::KernelSpec> specs;
  if (total == 0) return specs;

  auto make = [&](std::string name, int first_pulse, int count) {
    sim::KernelSpec spec;
    spec.name = std::move(name);
    spec.sm_demand = cm.comm_demand;
    spec.tag = step;
    spec.dispatch_ns = cm.kernel_dispatch_ns;
    auto hold = std::make_shared<sim::Device::SpanId>(0);
    spec.body = [this, rank, sigval, first_pulse, count,
                 hold](sim::KernelContext& ctx) -> sim::Task {
      *hold = ctx.device().begin_hold(machine_->cost().comm_demand,
                                      ctx.priority());
      // Reverse traversal: begin with the last pulse's forces (Alg. 6).
      for (int p = first_pulse + count - 1; p >= first_pulse; --p) {
        ctx.spawn(force_pulse_task(ctx, rank, p, sigval));
      }
      co_return;
    };
    auto* dev = &machine_->device(rank);
    // The kernel covering pulse 0 is the last of the step's force kernels:
    // its completion means this rank no longer reads its halo coordinates.
    // Push a consumption ack to each rank that writes into our halo slots
    // (pulse symmetry: the pulse-q writer into us is our pulse-q recv_rank),
    // as a fabric signal_op so the waiter's word stays lane-local.
    const bool acks = first_pulse == 0;
    spec.on_complete = [this, dev, hold, rank, sigval, acks] {
      dev->end_hold(*hold);
      if (!acks) return;
      for (int q = 0; q < total_pulses(); ++q) {
        const int writer = pulse(rank, q).recv_rank;
        world_->signal_op(rank, writer,
                          world_->signal(consumed_ack_, writer, q), sigval);
      }
    };
    return spec;
  };

  if (tuning_.fuse_pulses) {
    specs.push_back(make("FusedCommUnpackF", 0, total));
  } else {
    for (int p = total - 1; p >= 0; --p) {
      specs.push_back(make("CommUnpackF_p" + std::to_string(p), p, 1));
    }
  }
  return specs;
}

}  // namespace hs::halo
