#include "halo/workload.hpp"

#include <cmath>

#include "md/simd/ops.hpp"

namespace hs::halo {

void pack_coordinates(std::span<const md::Vec3> x,
                      std::span<const int> index_map, std::size_t first,
                      std::size_t count, md::Vec3 shift, md::Vec3* out) {
  md::simd::pack_shifted(x, index_map, first, count, shift, out);
}

void unpack_forces(std::span<md::Vec3> f, std::span<const int> index_map,
                   std::span<const md::Vec3> in) {
  md::simd::unpack_accumulate(f, index_map, in);
}

Workload make_functional_workload(dd::Decomposition& dd) {
  Workload w;
  w.plan = dd.plan();
  w.states = &dd.states();
  double home = 0.0, halo = 0.0;
  for (const auto& st : dd.states()) {
    home += st.n_home;
    halo += st.n_halo();
  }
  w.home_atoms_per_rank = home / static_cast<double>(dd.states().size());
  w.halo_atoms_per_rank = halo / static_cast<double>(dd.states().size());
  return w;
}

Workload make_skeleton_workload(const dd::DomainGrid& grid,
                                double comm_cutoff, double density) {
  Workload w;
  w.home_atoms_per_rank = dd::estimate_home_atoms(grid, density);
  w.halo_atoms_per_rank = dd::estimate_halo_atoms(grid, comm_cutoff, density);

  const auto estimates = dd::estimate_pulse_sizes(grid, comm_cutoff, density);
  w.plan.grid = grid;
  w.plan.comm_cutoff = comm_cutoff;
  for (const auto& e : estimates) w.plan.pulse_dims.push_back(e.dim);

  const int n_home = static_cast<int>(std::llround(w.home_atoms_per_rank));

  // Dependent-entry prediction: the send slab of a phase includes atoms
  // forwarded from earlier phases. The home-only share of the slab's
  // cross-section is prod(domain widths) over non-dim axes; the rest of
  // the (grown) cross-section is halo-sourced, i.e. dependent.
  double extent[3];
  for (int d = 0; d < 3; ++d) extent[d] = grid.domain_width(d);

  w.plan.ranks.assign(static_cast<std::size_t>(grid.num_ranks()), dd::RankPlan{});

  std::size_t gp = 0;
  int pulses_before_dim = 0;
  for (int dim : {2, 1, 0}) {
    const int np = dd::pulses_for_dim(grid, dim, comm_cutoff);
    if (np == 0) continue;
    double home_cross = 1.0;
    double full_cross = 1.0;
    for (int d = 0; d < 3; ++d) {
      if (d == dim) continue;
      home_cross *= grid.domain_width(d);
      full_cross *= extent[d];
    }
    const double width = grid.domain_width(dim);
    const double t0 = std::min(comm_cutoff, width);
    const double t1 = comm_cutoff - t0;
    for (int p = 0; p < np; ++p) {
      const double thickness = p == 0 ? t0 : t1;
      const int send = static_cast<int>(
          std::llround(density * thickness * full_cross));
      // Pulse 0: dependent = halo-sourced share. Pulse 1 forwards pulse-0
      // arrivals exclusively, so everything is dependent.
      int dependent;
      int first_dep;
      if (p == 0) {
        dependent = static_cast<int>(
            std::llround(density * thickness * (full_cross - home_cross)));
        first_dep = dependent > 0 ? 0 : -1;
      } else {
        dependent = send;
        first_dep = pulses_before_dim;  // this dim's pulse 0
      }

      for (int r = 0; r < grid.num_ranks(); ++r) {
        dd::RankPlan& rp = w.plan.ranks[static_cast<std::size_t>(r)];
        rp.rank = r;
        rp.n_home = n_home;
        dd::PulseData pd;
        pd.dim = dim;
        pd.pulse = p;
        pd.send_rank = grid.neighbour(r, dim, -1);
        pd.recv_rank = grid.neighbour(r, dim, +1);
        pd.send_size = send;
        pd.recv_size = send;  // homogeneous: symmetric
        pd.dep_offset = n_home;
        pd.num_dependent = dependent;
        pd.first_dependent_pulse = first_dep;
        // Offsets accumulate previous pulses' receives.
        int offset = n_home;
        for (const auto& prev : rp.pulses) offset += prev.recv_size;
        pd.atom_offset = offset;
        rp.pulses.push_back(std::move(pd));
      }
      ++gp;
    }
    extent[dim] += comm_cutoff;
    pulses_before_dim = static_cast<int>(gp);
  }

  for (auto& rp : w.plan.ranks) {
    int total = rp.n_home;
    for (const auto& pd : rp.pulses) total += pd.recv_size;
    rp.n_total = total;
  }
  return w;
}

}  // namespace hs::halo
