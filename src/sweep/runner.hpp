// Campaign execution: probe the content-addressed cache, simulate the
// misses (optionally sharded across forked worker processes), and merge
// per-case documents into one deterministic result set.
//
// Determinism contract: everything that lands in result documents is
// derived by parsing the stored per-case text — never from the freshly
// simulated doubles — so a run that simulates and a run that hits the
// cache render byte-identical output. Wall-clock timings and hit/miss
// status appear only on the progress stream (stderr), never in
// documents.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sweep/cache.hpp"
#include "sweep/campaign.hpp"

namespace hs::sweep {

struct SweepOptions {
  /// Content-addressed store directory; "" = no cache (everything
  /// simulates, nothing persists).
  std::string cache_dir;
  /// Fork this many worker processes over the miss set (1 = in-process).
  /// Requires self_exe + spec_path; falls back to in-process otherwise.
  int shards = 1;
  /// Path to the halo_sweep binary (argv[0] / /proc/self/exe).
  std::string self_exe;
  /// Path of the campaign spec file (children re-expand it).
  std::string spec_path;
  /// Suppress per-case progress lines on stderr.
  bool quiet = false;
};

struct CaseOutcome {
  CaseConfig config;
  std::string label;
  std::string hash;      // 16 hex chars, the cache key
  bool hit = false;      // served from the cache without simulating
  std::string document;  // stored bench-metrics-v1 text
  /// Metric key/value pairs parsed back out of `document` (key-sorted).
  std::vector<std::pair<std::string, double>> metrics;
};

struct CampaignResult {
  std::string name;
  std::vector<CaseOutcome> cases;  // campaign expansion order
  int hits = 0;
  int misses = 0;
};

/// Simulate one case and render its cache document: a bench-metrics-v1
/// JSON whose single case is keyed by the config hash, with the canonical
/// config embedded under a top-level "config" key.
std::string simulate_case_document(const CaseConfig& config);

/// Worker-process entry (`halo_sweep <spec> --shard=i/N`): walk the
/// campaign's cache misses in expansion order and simulate + store every
/// miss whose miss-list index ≡ shard_index (mod shard_count). Returns
/// the number of cases simulated.
int run_shard(const Campaign& campaign, const ResultCache& cache,
              int shard_index, int shard_count, bool quiet);

/// Run a campaign end to end (see the determinism contract above).
CampaignResult run_campaign(const Campaign& campaign,
                            const SweepOptions& options);

}  // namespace hs::sweep
