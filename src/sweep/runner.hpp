// Campaign execution: probe the content-addressed cache, simulate the
// misses — in-process on a persistent thread pool by default, or across
// forked worker processes with --isolate-shards — and merge per-case
// documents into one deterministic result set.
//
// Determinism contract: everything that lands in result documents is
// derived by parsing the stored per-case text — never from the freshly
// simulated doubles — so a run that simulates and a run that hits the
// cache render byte-identical output, and so do every executor mode
// ({pool, fork} x {prepared-state on, off}). Wall-clock timings and
// hit/miss status appear only on the progress stream (stderr), never in
// documents.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runner/case.hpp"
#include "sweep/cache.hpp"
#include "sweep/campaign.hpp"
#include "sweep/prepared.hpp"

namespace hs::sweep {

struct SweepOptions {
  /// Content-addressed store directory; "" = no cache (everything
  /// simulates, nothing persists).
  std::string cache_dir;
  /// Parallelism over the miss set: worker threads in-process (the
  /// default), or forked worker processes with isolate_shards. 1 = one
  /// in-process worker.
  int shards = 1;
  /// Use fork/execv process sharding instead of the in-process pool
  /// (the PR-9 compatibility path; wants self_exe + spec_path + an
  /// enabled cache, else the pool runs anyway). Worth it only when a
  /// case might crash or exhaust memory: a dead shard's cases are
  /// re-simulated in-process, whereas a pool worker shares our fate.
  bool isolate_shards = false;
  /// Reuse warm state across the cases of this run: share one
  /// PreparedCase per setup sub-hash (sweep::PreparedStateCache) and
  /// recycle symmetric-heap arenas per worker (runner::CaseScratch).
  /// Off = rebuild everything per case (byte-identical output either
  /// way; this switch exists for measurement and identity tests).
  bool prepared_state = true;
  /// Bound the on-disk cache entry count (oldest-mtime eviction);
  /// 0 = unbounded. See ResultCache::set_max_entries.
  std::size_t cache_max_entries = 0;
  /// Path to the halo_sweep binary (argv[0] / /proc/self/exe).
  std::string self_exe;
  /// Path of the campaign spec file (children re-expand it).
  std::string spec_path;
  /// Suppress per-case progress lines on stderr.
  bool quiet = false;
};

/// Warm execution state threaded through simulate_case_document. Both
/// pointers may be null (cold: prepare + fresh arenas per case). The
/// prepared cache may be shared across threads; the scratch must be
/// thread-local.
struct ExecutionContext {
  PreparedStateCache* prepared = nullptr;
  runner::CaseScratch* scratch = nullptr;
};

struct CaseOutcome {
  CaseConfig config;
  std::string label;
  std::string hash;      // 16 hex chars, the cache key
  bool hit = false;      // served from the cache without simulating
  std::string document;  // stored bench-metrics-v1 text
  /// Metric key/value pairs parsed back out of `document` (key-sorted).
  std::vector<std::pair<std::string, double>> metrics;
};

struct CampaignResult {
  std::string name;
  std::vector<CaseOutcome> cases;  // campaign expansion order
  int hits = 0;
  int misses = 0;
  /// Forked shard children that exited abnormally (isolate_shards mode
  /// only; their cases were re-simulated in-process, so the result set is
  /// still complete).
  int failed_shards = 0;
};

/// Simulate one case and render its cache document: a bench-metrics-v1
/// JSON whose single case is keyed by the config hash, with the canonical
/// config embedded under a top-level "config" key.
std::string simulate_case_document(const CaseConfig& config);

/// Same, reusing warm state from `ctx` when its pointers are set. The
/// document text is byte-identical to the cold overload — warm state only
/// changes how fast we get there.
std::string simulate_case_document(const CaseConfig& config,
                                   const ExecutionContext& ctx);

/// Decode a waitpid()-style status for diagnostics: "" for a clean exit
/// 0, "exit code N" for a nonzero exit, "killed by signal N (NAME)" for a
/// signal death, "wait status N" otherwise.
std::string describe_wait_status(int status);

/// Worker-process entry (`halo_sweep <spec> --shard=i/N`): walk the
/// campaign's cache misses in expansion order and simulate + store every
/// miss whose miss-list index ≡ shard_index (mod shard_count). Returns
/// the number of cases simulated. Warm prepared state is used within the
/// shard unless prepared_state is false.
int run_shard(const Campaign& campaign, const ResultCache& cache,
              int shard_index, int shard_count, bool quiet,
              bool prepared_state = true);

/// Run a campaign end to end (see the determinism contract above).
CampaignResult run_campaign(const Campaign& campaign,
                            const SweepOptions& options);

}  // namespace hs::sweep
