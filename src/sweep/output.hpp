// Aggregated campaign outputs: the `halosim-campaign-v1` JSON document
// (per-case metrics + per-series strong-scaling curves + §6.3
// critical-path breakdowns) and a flat CSV. Both are pure functions of
// the parsed case documents, so repeat runs render byte-identical files
// (docs/formats.md).
#pragma once

#include <iosfwd>
#include <string_view>

#include "sweep/runner.hpp"

namespace hs::sweep {

inline constexpr std::string_view kCampaignSchema = "halosim-campaign-v1";

/// Write the campaign document. `pretty` inserts one newline per entry
/// (the file format); false renders one single line (the --serve batch
/// protocol's one-response-per-line framing).
void write_campaign_json(std::ostream& os, const CampaignResult& result,
                         bool pretty = true);

/// One row per case, fixed column set (see docs/formats.md); metrics a
/// case lacks render as empty fields.
void write_campaign_csv(std::ostream& os, const CampaignResult& result);

}  // namespace hs::sweep
