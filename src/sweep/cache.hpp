// Content-addressed on-disk result store for the campaign sweep.
//
// One file per case, `<dir>/<hash16>.json`, where the hash is the FNV-1a
// of the case's canonical config serialization (campaign.hpp). Because
// the simulator is deterministic, a config's result document is a pure
// function of its hash: a hit can be trusted byte-for-byte, a repeat
// sweep is 100% hits, and shards never contend (distinct configs write
// distinct files; stores are tmp+rename atomic). Corrupt or truncated
// entries fail validation and read as misses — the case is simply
// re-simulated and the entry rewritten.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace hs::sweep {

class ResultCache {
 public:
  /// `dir` is created (recursively) on first store; "" disables the disk
  /// layer entirely — every load misses, stores go nowhere.
  explicit ResultCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Path of a (possibly absent) entry.
  std::string path(const std::string& hash_hex) const;

  /// Returns the stored document text, or nullopt when absent or when
  /// validation fails (unparseable, wrong schema, empty cases — e.g. a
  /// truncated write from a killed shard).
  std::optional<std::string> load(const std::string& hash_hex) const;

  /// Atomically store (write tmp, rename). Returns false on I/O failure.
  bool store(const std::string& hash_hex, const std::string& text) const;

  /// Keep loaded/stored documents in memory too, so a long-lived server
  /// answers repeat queries without touching the filesystem. Also the
  /// only layer that works with the disk cache disabled.
  void set_memoize(bool on) { memoize_ = on; }

 private:
  std::string dir_;
  bool memoize_ = false;
  mutable std::map<std::string, std::string> memo_;
};

/// True if `text` parses as a bench-metrics-v1 document with at least one
/// case — the validation `load` applies.
bool validate_case_document(const std::string& text);

}  // namespace hs::sweep
