// Content-addressed on-disk result store for the campaign sweep.
//
// One file per case, `<dir>/<hash16>.json`, where the hash is the FNV-1a
// of the case's canonical config serialization (campaign.hpp). Because
// the simulator is deterministic, a config's result document is a pure
// function of its hash: a hit can be trusted byte-for-byte, a repeat
// sweep is 100% hits, and shards never contend (distinct configs write
// distinct files; stores are tmp+rename atomic). Corrupt or truncated
// entries fail validation and read as misses — the case is simply
// re-simulated and the entry rewritten.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace hs::sweep {

class ResultCache {
 public:
  /// `dir` is created (recursively) on first store; "" disables the disk
  /// layer entirely — every load misses, stores go nowhere.
  explicit ResultCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Path of a (possibly absent) entry.
  std::string path(const std::string& hash_hex) const;

  /// Returns the stored document text, or nullopt when absent or when
  /// validation fails (unparseable, wrong schema, empty cases — e.g. a
  /// truncated write from a killed shard).
  std::optional<std::string> load(const std::string& hash_hex) const;

  /// Atomically store (write tmp, rename). Returns false on I/O failure.
  bool store(const std::string& hash_hex, const std::string& text) const;

  /// Keep loaded/stored documents in memory too, so a long-lived server
  /// answers repeat queries without touching the filesystem. Also the
  /// only layer that works with the disk cache disabled.
  void set_memoize(bool on) { memoize_ = on; }

  /// Bound the on-disk entry count: after every store, entries beyond
  /// `n` are evicted oldest-mtime-first (filename tie-break, so the
  /// eviction order is deterministic even on coarse-mtime filesystems).
  /// 0 (the default) = unbounded. The memo layer is never trimmed.
  void set_max_entries(std::size_t n) { max_entries_ = n; }
  std::size_t max_entries() const { return max_entries_; }

  /// Entries evicted by the size cap since construction. An evicted case
  /// simply reads as a miss later — documents never change, only the
  /// hit/miss economics (reported on stderr when --quiet is off).
  std::size_t dropped() const;

 private:
  void trim() const;

  std::string dir_;
  bool memoize_ = false;
  std::size_t max_entries_ = 0;
  mutable std::size_t dropped_ = 0;
  /// Guards memo_ and the trim bookkeeping: one ResultCache may be
  /// shared by pool worker threads (distinct hashes never collide on
  /// disk, but the in-memory side needs the lock).
  mutable std::mutex mu_;
  mutable std::map<std::string, std::string> memo_;
};

/// True if `text` parses as a bench-metrics-v1 document with at least one
/// case — the validation `load` applies.
bool validate_case_document(const std::string& text);

}  // namespace hs::sweep
