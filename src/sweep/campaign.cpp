#include "sweep/campaign.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/json_writer.hpp"

namespace hs::sweep {

namespace {

using util::json::Value;

std::string quoted(const std::string& s) {
  return "\"" + util::json::escape(s) + "\"";
}

std::string opt_number(double v) {
  return v < 0.0 ? "null" : util::json::format_number(v);
}

[[noreturn]] void axis_error(const std::string& axis, const std::string& what) {
  throw std::runtime_error("campaign: axis '" + axis + "': " + what);
}

long long as_int(const Value& v, const std::string& axis) {
  if (!v.is_number()) axis_error(axis, "expected an integer");
  const double d = v.as_number();
  if (d != std::floor(d)) axis_error(axis, "expected an integer");
  return static_cast<long long>(d);
}

double as_num(const Value& v, const std::string& axis) {
  if (!v.is_number()) axis_error(axis, "expected a number");
  return v.as_number();
}

bool as_bool(const Value& v, const std::string& axis) {
  if (!v.is_bool()) axis_error(axis, "expected true/false");
  return v.as_bool();
}

std::string as_str(const Value& v, const std::string& axis) {
  if (!v.is_string()) axis_error(axis, "expected a string");
  return v.as_string();
}

void set_dd(CaseConfig& c, const Value& v, const std::string& axis) {
  if (!v.is_array() || v.size() != 3) {
    axis_error(axis, "expected [nx, ny, nz] (0,0,0 = auto)");
  }
  for (int i = 0; i < 3; ++i) {
    const long long n = as_int(v.at(static_cast<std::size_t>(i)), axis);
    if (n < 0) axis_error(axis, "dimensions must be >= 0");
    c.dd[i] = static_cast<int>(n);
  }
}

using Setter = std::function<void(CaseConfig&, const Value&,
                                  const std::string&)>;

/// Axis name -> setter, in a std::map so grid iteration (and therefore
/// expansion order) is deterministic and alphabetical.
const std::map<std::string, Setter>& axes() {
  static const std::map<std::string, Setter> table = {
      {"atoms", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.atoms = as_int(v, a);
       }},
      {"cost_model", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.cost_model = as_str(v, a);
       }},
      {"cpu_pe_barrier",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.cpu_pe_barrier = as_bool(v, a);
       }},
      {"dd", set_dd},
      {"dependency_partitioning",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.dependency_partitioning = as_bool(v, a);
       }},
      {"dt_fs", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.dt_fs = as_num(v, a);
       }},
      {"fuse_pulses", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.fuse_pulses = as_bool(v, a);
       }},
      {"fused_signaling",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.fused_signaling = as_bool(v, a);
       }},
      {"gpus_per_node",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.gpus_per_node = static_cast<int>(as_int(v, a));
       }},
      {"ib_bytes_per_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.ib_bytes_per_ns = as_num(v, a);
       }},
      {"ib_latency_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.ib_latency_ns = as_num(v, a);
       }},
      {"ib_per_message_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.ib_per_message_ns = as_num(v, a);
       }},
      {"machine", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.machine = as_str(v, a);
       }},
      {"nodes", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.nodes = static_cast<int>(as_int(v, a));
       }},
      {"nvlink_bytes_per_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.nvlink_bytes_per_ns = as_num(v, a);
       }},
      {"nvlink_latency_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.nvlink_latency_ns = as_num(v, a);
       }},
      {"nvlink_per_message_ns",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.nvlink_per_message_ns = as_num(v, a);
       }},
      {"proxy_placement",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.proxy_placement = as_str(v, a);
       }},
      {"prune_interval",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.prune_interval = static_cast<int>(as_int(v, a));
       }},
      {"prune_low_priority_stream",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.prune_low_priority_stream = as_bool(v, a);
       }},
      {"steps", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.steps = static_cast<int>(as_int(v, a));
       }},
      {"third_stream_for_update",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.third_stream_for_update = as_bool(v, a);
       }},
      {"transport", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.transport = as_str(v, a);
       }},
      {"use_cuda_graph",
       [](CaseConfig& c, const Value& v, const std::string& a) {
         c.use_cuda_graph = as_bool(v, a);
       }},
      {"use_tma", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.use_tma = as_bool(v, a);
       }},
      {"warmup", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.warmup = static_cast<int>(as_int(v, a));
       }},
      {"workers", [](CaseConfig& c, const Value& v, const std::string& a) {
         c.workers = static_cast<int>(as_int(v, a));
       }},
  };
  return table;
}

/// Validate enums/ranges and resolve cost_model "auto" -> preset name, so
/// the canonical serialization (and hash) always names the concrete model.
void finalize(CaseConfig& c) {
  if (c.machine != "dgx_h100" && c.machine != "gb200_nvl72") {
    axis_error("machine", "unknown machine '" + c.machine +
                              "' (dgx_h100|gb200_nvl72)");
  }
  if (c.cost_model == "auto") {
    c.cost_model = c.machine == "gb200_nvl72" ? "gb200_nvl72" : "h100_eos";
  }
  if (c.cost_model != "h100_eos" && c.cost_model != "gb200_nvl72") {
    axis_error("cost_model", "unknown cost model '" + c.cost_model +
                                 "' (auto|h100_eos|gb200_nvl72)");
  }
  if (c.transport != "mpi" && c.transport != "tmpi" && c.transport != "shmem") {
    axis_error("transport",
               "unknown transport '" + c.transport + "' (mpi|tmpi|shmem)");
  }
  if (c.proxy_placement != "reserved_core" &&
      c.proxy_placement != "rank_pinned" &&
      c.proxy_placement != "contended_core") {
    axis_error("proxy_placement",
               "unknown placement '" + c.proxy_placement +
                   "' (reserved_core|rank_pinned|contended_core)");
  }
  if (c.nodes <= 0) axis_error("nodes", "must be >= 1");
  if (c.gpus_per_node <= 0) axis_error("gpus_per_node", "must be >= 1");
  if (c.atoms <= 0) axis_error("atoms", "must be >= 1");
  if (c.steps <= 0) axis_error("steps", "must be >= 1");
  if (c.warmup < 0 || c.warmup >= c.steps) {
    axis_error("warmup", "must satisfy 0 <= warmup < steps");
  }
  if (c.workers < 0) axis_error("workers", "must be >= 0");
  if (c.dd_forced() &&
      c.dd[0] * c.dd[1] * c.dd[2] != c.nodes * c.gpus_per_node) {
    axis_error("dd", "forced grid must cover nodes * gpus_per_node ranks");
  }
}

}  // namespace

std::string atoms_label(long long atoms) {
  if (atoms % 1000000 == 0) return std::to_string(atoms / 1000000) + "M";
  if (atoms >= 1000000) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fM", static_cast<double>(atoms) / 1e6);
    return buf;
  }
  if (atoms % 1000 == 0) return std::to_string(atoms / 1000) + "k";
  return std::to_string(atoms);
}

std::string canonical_json(const CaseConfig& c) {
  // A std::map keeps the emitted keys byte-sorted no matter what order
  // fields are inserted in — canonicalization cannot drift with edits here.
  std::map<std::string, std::string> fields;
  const auto num = [](double v) { return util::json::format_number(v); };
  fields["atoms"] = num(static_cast<double>(c.atoms));
  fields["cost_model"] = quoted(c.cost_model);
  fields["cpu_pe_barrier"] = c.cpu_pe_barrier ? "true" : "false";
  fields["dd"] = "[" + std::to_string(c.dd[0]) + "," +
                 std::to_string(c.dd[1]) + "," + std::to_string(c.dd[2]) + "]";
  fields["dependency_partitioning"] =
      c.dependency_partitioning ? "true" : "false";
  fields["dt_fs"] = num(c.dt_fs);
  fields["fuse_pulses"] = c.fuse_pulses ? "true" : "false";
  fields["fused_signaling"] = c.fused_signaling ? "true" : "false";
  fields["gpus_per_node"] = num(c.gpus_per_node);
  fields["ib_bytes_per_ns"] = opt_number(c.ib_bytes_per_ns);
  fields["ib_latency_ns"] = opt_number(c.ib_latency_ns);
  fields["ib_per_message_ns"] = opt_number(c.ib_per_message_ns);
  fields["machine"] = quoted(c.machine);
  fields["nodes"] = num(c.nodes);
  fields["nvlink_bytes_per_ns"] = opt_number(c.nvlink_bytes_per_ns);
  fields["nvlink_latency_ns"] = opt_number(c.nvlink_latency_ns);
  fields["nvlink_per_message_ns"] = opt_number(c.nvlink_per_message_ns);
  fields["proxy_placement"] = quoted(c.proxy_placement);
  fields["prune_interval"] = num(c.prune_interval);
  fields["prune_low_priority_stream"] =
      c.prune_low_priority_stream ? "true" : "false";
  fields["steps"] = num(c.steps);
  fields["third_stream_for_update"] =
      c.third_stream_for_update ? "true" : "false";
  fields["transport"] = quoted(c.transport);
  fields["use_cuda_graph"] = c.use_cuda_graph ? "true" : "false";
  fields["use_tma"] = c.use_tma ? "true" : "false";
  fields["warmup"] = num(c.warmup);
  fields["workers"] = num(c.workers);

  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + value;
  }
  out += "}";
  return out;
}

std::uint64_t case_hash(const CaseConfig& config) {
  return util::fnv1a64(canonical_json(config));
}

std::string case_hash_hex(const CaseConfig& config) {
  return util::hex64(case_hash(config));
}

std::string setup_json(const CaseConfig& c) {
  // Keys in byte-sorted order, formatted exactly as in canonical_json, so
  // the setup serialization is a strict field subset of the canonical one.
  std::string out = "{\"atoms\":";
  out += util::json::format_number(static_cast<double>(c.atoms));
  out += ",\"dd\":[" + std::to_string(c.dd[0]) + "," +
         std::to_string(c.dd[1]) + "," + std::to_string(c.dd[2]) + "]";
  out += ",\"gpus_per_node\":" +
         util::json::format_number(static_cast<double>(c.gpus_per_node));
  out += ",\"nodes\":" + util::json::format_number(static_cast<double>(c.nodes));
  out += "}";
  return out;
}

std::uint64_t setup_hash(const CaseConfig& config) {
  return util::fnv1a64(setup_json(config));
}

std::string setup_hash_hex(const CaseConfig& config) {
  return util::hex64(setup_hash(config));
}

std::string case_label(const CaseConfig& c) {
  std::string label = c.transport + " " + atoms_label(c.atoms) + " " +
                      std::to_string(c.nodes) + "nx" +
                      std::to_string(c.gpus_per_node) + "g";
  if (c.machine == "gb200_nvl72") label += " nvl72";
  if (c.dd_forced()) {
    label += " dd" + std::to_string(c.dd[0]) + "x" + std::to_string(c.dd[1]) +
             "x" + std::to_string(c.dd[2]);
  }
  if (c.workers > 0) label += " w" + std::to_string(c.workers);
  return label;
}

std::vector<std::string> case_labels(const std::vector<CaseConfig>& cases) {
  std::vector<std::string> labels;
  labels.reserve(cases.size());
  std::map<std::string, int> counts;
  for (const CaseConfig& c : cases) {
    labels.push_back(case_label(c));
    ++counts[labels.back()];
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (counts[labels[i]] > 1) {
      labels[i] += " #" + case_hash_hex(cases[i]).substr(0, 8);
    }
  }
  return labels;
}

runner::CaseSpec to_case_spec(const CaseConfig& c) {
  runner::CaseSpec spec;
  spec.atoms = c.atoms;
  if (c.machine == "dgx_h100") {
    spec.topology = sim::Topology::dgx_h100(c.nodes, c.gpus_per_node);
  } else if (c.machine == "gb200_nvl72") {
    spec.topology = sim::Topology::gb200_nvl72(c.nodes, c.gpus_per_node);
  } else {
    throw std::runtime_error("campaign: unknown machine '" + c.machine + "'");
  }
  if (c.cost_model == "h100_eos" ||
      (c.cost_model == "auto" && c.machine == "dgx_h100")) {
    spec.cost_model = sim::CostModel::h100_eos();
  } else if (c.cost_model == "gb200_nvl72" || c.cost_model == "auto") {
    spec.cost_model = sim::CostModel::gb200_nvl72();
  } else {
    throw std::runtime_error("campaign: unknown cost model '" + c.cost_model +
                             "'");
  }
  sim::FabricParams& fabric = spec.cost_model.fabric;
  if (c.nvlink_latency_ns >= 0.0) {
    fabric.nvlink.latency_ns = static_cast<sim::SimTime>(c.nvlink_latency_ns);
  }
  if (c.nvlink_per_message_ns >= 0.0) {
    fabric.nvlink.per_message_ns =
        static_cast<sim::SimTime>(c.nvlink_per_message_ns);
  }
  if (c.nvlink_bytes_per_ns >= 0.0) {
    fabric.nvlink.bytes_per_ns = c.nvlink_bytes_per_ns;
  }
  if (c.ib_latency_ns >= 0.0) {
    fabric.ib.latency_ns = static_cast<sim::SimTime>(c.ib_latency_ns);
  }
  if (c.ib_per_message_ns >= 0.0) {
    fabric.ib.per_message_ns = static_cast<sim::SimTime>(c.ib_per_message_ns);
  }
  if (c.ib_bytes_per_ns >= 0.0) fabric.ib.bytes_per_ns = c.ib_bytes_per_ns;

  if (c.transport == "mpi") {
    spec.config.transport = halo::Transport::Mpi;
  } else if (c.transport == "tmpi") {
    spec.config.transport = halo::Transport::ThreadMpi;
  } else if (c.transport == "shmem") {
    spec.config.transport = halo::Transport::Shmem;
  } else {
    throw std::runtime_error("campaign: unknown transport '" + c.transport +
                             "'");
  }
  spec.config.halo_tuning.fuse_pulses = c.fuse_pulses;
  spec.config.halo_tuning.dependency_partitioning = c.dependency_partitioning;
  spec.config.halo_tuning.use_tma = c.use_tma;
  spec.config.halo_tuning.fused_signaling = c.fused_signaling;
  spec.config.prune_low_priority_stream = c.prune_low_priority_stream;
  spec.config.third_stream_for_update = c.third_stream_for_update;
  spec.config.use_cuda_graph = c.use_cuda_graph;
  spec.config.cpu_pe_barrier = c.cpu_pe_barrier;
  if (c.proxy_placement == "reserved_core") {
    spec.config.proxy_placement = pgas::ProxyPlacement::ReservedCore;
  } else if (c.proxy_placement == "rank_pinned") {
    spec.config.proxy_placement = pgas::ProxyPlacement::RankPinned;
  } else if (c.proxy_placement == "contended_core") {
    spec.config.proxy_placement = pgas::ProxyPlacement::ContendedCore;
  } else {
    throw std::runtime_error("campaign: unknown proxy placement '" +
                             c.proxy_placement + "'");
  }
  spec.config.prune_interval = c.prune_interval;
  spec.config.dt_fs = c.dt_fs;
  spec.steps = c.steps;
  spec.warmup = c.warmup;
  spec.workers = c.workers;
  if (c.dd_forced()) spec.dd = dd::GridDims{c.dd[0], c.dd[1], c.dd[2]};
  return spec;
}

namespace {

/// Expand one grid object (cartesian product of its array axes) onto
/// `out`. Axis iteration is alphabetical (json::Object is a std::map), so
/// expansion order is a pure function of the spec's *content*.
void expand_grid(const Value& grid, std::vector<CaseConfig>& out) {
  if (!grid.is_object()) {
    throw std::runtime_error("campaign: grid must be a JSON object");
  }
  struct AxisValues {
    std::string name;
    const Setter* set;
    std::vector<const Value*> values;
  };
  std::vector<AxisValues> expanded;
  for (const auto& [name, value] : grid.as_object()) {
    const auto it = axes().find(name);
    if (it == axes().end()) {
      throw std::runtime_error("campaign: unknown axis '" + name + "'");
    }
    AxisValues av{name, &it->second, {}};
    // An array axis is a list of values — except `dd`, whose *scalar*
    // form is itself a 3-array; a list of dd shapes is an array of arrays.
    const bool is_list =
        value.is_array() &&
        (name != "dd" || (value.size() > 0 && value.at(0).is_array()));
    if (is_list) {
      if (value.size() == 0) {
        throw std::runtime_error("campaign: axis '" + name +
                                 "' has an empty value list");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        av.values.push_back(&value.at(i));
      }
    } else {
      av.values.push_back(&value);
    }
    expanded.push_back(std::move(av));
  }

  std::size_t total = 1;
  for (const AxisValues& av : expanded) {
    total *= av.values.size();
    if (total > 100000) {
      throw std::runtime_error(
          "campaign: grid expands to more than 100000 cases");
    }
  }

  // Odometer over the axis value indices, last axis fastest.
  std::vector<std::size_t> idx(expanded.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    CaseConfig config;
    for (std::size_t a = 0; a < expanded.size(); ++a) {
      (*expanded[a].set)(config, *expanded[a].values[idx[a]],
                         expanded[a].name);
    }
    finalize(config);
    out.push_back(std::move(config));
    for (std::size_t a = expanded.size(); a-- > 0;) {
      if (++idx[a] < expanded[a].values.size()) break;
      idx[a] = 0;
    }
  }
}

}  // namespace

Campaign parse_campaign(const Value& spec) {
  if (!spec.is_object()) {
    throw std::runtime_error("campaign: spec must be a JSON object");
  }
  if (!spec.contains("schema") || !spec.at("schema").is_string() ||
      spec.at("schema").as_string() != kSpecSchema) {
    throw std::runtime_error("campaign: spec is not a " +
                             std::string(kSpecSchema) + " document");
  }
  Campaign campaign;
  campaign.name = "campaign";
  for (const auto& [key, value] : spec.as_object()) {
    if (key == "schema") continue;
    if (key == "description") continue;  // free-form, ignored
    if (key == "name") {
      campaign.name = as_str(value, "name");
    } else if (key == "grid") {
      expand_grid(value, campaign.cases);
    } else if (key == "grids") {
      if (!value.is_array()) {
        throw std::runtime_error("campaign: 'grids' must be an array");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        expand_grid(value.at(i), campaign.cases);
      }
    } else {
      throw std::runtime_error("campaign: unknown key '" + key + "'");
    }
  }
  if (campaign.cases.empty()) {
    throw std::runtime_error(
        "campaign: spec expands to no cases (need 'grid' or 'grids')");
  }
  // Dedup by canonical hash, first occurrence wins, order preserved.
  std::map<std::uint64_t, bool> seen;
  std::vector<CaseConfig> unique;
  unique.reserve(campaign.cases.size());
  for (CaseConfig& c : campaign.cases) {
    if (seen.emplace(case_hash(c), true).second) {
      unique.push_back(std::move(c));
    }
  }
  campaign.cases = std::move(unique);
  return campaign;
}

Campaign parse_campaign_text(std::string_view text) {
  return parse_campaign(util::json::parse(text));
}

}  // namespace hs::sweep
