// Prepared-state cache: share the setup-only slice of a case across
// every case with the same setup sub-hash.
//
// The setup slice (runner::PreparedCase — box, DD grid, skeleton
// workload) is a pure function of the setup axes (atoms, dd,
// gpus_per_node, nodes; sweep::setup_hash). It is built once per
// distinct setup and handed out as a shared_ptr-to-const: executions
// clone the workload on use, so the cached object is immutable and safe
// to share across pool worker threads (asserted under TSan by
// tests/sweep/prepared_test).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "runner/case.hpp"
#include "sweep/campaign.hpp"

namespace hs::sweep {

class PreparedStateCache {
 public:
  /// The shared immutable prepared state for `config`'s setup axes,
  /// building it on first use. Thread-safe; concurrent callers with the
  /// same setup sub-hash receive the same object.
  std::shared_ptr<const runner::PreparedCase> get(const CaseConfig& config);

  std::size_t entries() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const runner::PreparedCase>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hs::sweep
