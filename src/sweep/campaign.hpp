// Campaign specs: a grid of simulator configurations and its expansion
// into a deduplicated case list.
//
// A campaign spec is a `halosim-campaign-spec-v1` JSON document: one or
// more axis grids whose fields are each a scalar or an array of scalars;
// expansion takes the cartesian product of every grid, concatenates the
// grids in order, and dedups by canonical config hash. Every case is a
// plain serializable `CaseConfig`; `canonical_json` renders it with
// field-sorted keys and canonical number formatting, so the hash is
// invariant under spec-file key order and whitespace and changes for
// every semantically distinct field — the key of the content-addressed
// result cache (docs/sweep.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runner/case.hpp"
#include "util/json.hpp"

namespace hs::sweep {

inline constexpr std::string_view kSpecSchema = "halosim-campaign-spec-v1";

/// One point of the config grid. Fields mirror the spec-file axis names
/// exactly (see docs/sweep.md for the schema). Fabric overrides < 0 mean
/// "use the cost-model preset value".
struct CaseConfig {
  // Machine axes.
  std::string machine = "dgx_h100";  // or "gb200_nvl72"
  int nodes = 1;
  int gpus_per_node = 4;
  std::string cost_model = "auto";  // resolved at parse: h100_eos|gb200_nvl72
  // Workload axes.
  long long atoms = 45000;
  std::string transport = "shmem";  // mpi|tmpi|shmem
  int dd[3] = {0, 0, 0};            // forced DD grid; 0,0,0 = auto
  int steps = 16;
  int warmup = 4;
  int workers = 0;
  double dt_fs = 2.0;
  // Fabric parameter overrides (latency ns / per-message ns / bytes-per-ns).
  double nvlink_latency_ns = -1.0;
  double nvlink_per_message_ns = -1.0;
  double nvlink_bytes_per_ns = -1.0;
  double ib_latency_ns = -1.0;
  double ib_per_message_ns = -1.0;
  double ib_bytes_per_ns = -1.0;
  // Halo-design switches (§5.1-5.2).
  bool fuse_pulses = true;
  bool dependency_partitioning = true;
  bool use_tma = true;
  bool fused_signaling = true;
  // Schedule / runtime switches.
  bool prune_low_priority_stream = true;
  bool third_stream_for_update = true;
  bool use_cuda_graph = false;
  bool cpu_pe_barrier = false;
  std::string proxy_placement = "rank_pinned";
  int prune_interval = 4;

  bool dd_forced() const { return dd[0] != 0 || dd[1] != 0 || dd[2] != 0; }
};

/// Stable field-sorted compact serialization (the cache key's preimage):
/// keys in byte-sorted order, numbers in canonical shortest-round-trip
/// format, unset fabric overrides rendered as null. Guarded against
/// drift by the checked-in golden hashes (tests/sweep).
std::string canonical_json(const CaseConfig& config);

/// FNV-1a 64 over `canonical_json`, and its 16-hex-char rendering — the
/// cache file name and the stable case identity.
std::uint64_t case_hash(const CaseConfig& config);
std::string case_hash_hex(const CaseConfig& config);

/// `canonical_json` restricted to the *setup axes* — atoms, dd,
/// gpus_per_node, nodes: exactly the inputs of runner::prepare_case.
/// Two configs with equal setup serializations share one immutable
/// PreparedCase (prepared-state cache); every other axis (transport,
/// fabric overrides, design switches, steps, workers, ...) only affects
/// execution. Golden-pinned like the case hash
/// (tests/fixtures/sweep_golden_setup_keys.txt).
std::string setup_json(const CaseConfig& config);

/// FNV-1a 64 over `setup_json`, and its 16-hex-char rendering — the
/// prepared-state cache key.
std::uint64_t setup_hash(const CaseConfig& config);
std::string setup_hash_hex(const CaseConfig& config);

/// Compact atom-count rendering: "45k", "1.44M", "720000".
std::string atoms_label(long long atoms);

/// Human-readable case label, e.g. "shmem 45k 1nx4g" (plus " dd2x2x1" /
/// " w4" when forced). Not necessarily unique — see `case_labels`.
std::string case_label(const CaseConfig& config);

/// Labels for a whole case list, disambiguated deterministically: any
/// label shared by several cases gets a " #<hash8>" suffix.
std::vector<std::string> case_labels(const std::vector<CaseConfig>& cases);

/// Translate to the runnable spec (topology, cost model + fabric
/// overrides, RunConfig). Throws std::runtime_error on unknown machine /
/// transport / proxy_placement values.
runner::CaseSpec to_case_spec(const CaseConfig& config);

struct Campaign {
  std::string name;
  /// Expansion order, deduplicated by canonical hash (first wins).
  std::vector<CaseConfig> cases;
};

/// Parse + expand a campaign spec document. Throws std::runtime_error
/// with the offending axis name on unknown axes, bad types, or bad enum
/// values.
Campaign parse_campaign(const util::json::Value& spec);
Campaign parse_campaign_text(std::string_view text);

}  // namespace hs::sweep
