#include "sweep/prepared.hpp"

namespace hs::sweep {

std::shared_ptr<const runner::PreparedCase> PreparedStateCache::get(
    const CaseConfig& config) {
  const std::uint64_t key = setup_hash(config);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  // Built under the lock: a skeleton prepare is microseconds, and holding
  // the lock guarantees one build per key (concurrent callers share it).
  ++misses_;
  auto prepared = std::make_shared<const runner::PreparedCase>(
      runner::prepare_case(to_case_spec(config)));
  map_.emplace(key, prepared);
  return prepared;
}

std::size_t PreparedStateCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t PreparedStateCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PreparedStateCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace hs::sweep
