#include "sweep/output.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

#include "runner/critical_path.hpp"
#include "util/hash.hpp"
#include "util/json_writer.hpp"

namespace hs::sweep {

namespace {

using util::json::escape;
using util::json::format_number;

const double* find_metric(const CaseOutcome& outcome, const std::string& key) {
  for (const auto& [k, v] : outcome.metrics) {
    if (k == key) return &v;
  }
  return nullptr;
}

double metric_or(const CaseOutcome& outcome, const std::string& key,
                 double fallback) {
  const double* v = find_metric(outcome, key);
  return v != nullptr ? *v : fallback;
}

/// A strong-scaling series is every case identical except for machine
/// size; its key is the canonical config with the size axes (and the
/// size-dependent forced-DD shape) normalized away.
std::string series_key(const CaseConfig& config) {
  CaseConfig normalized = config;
  normalized.nodes = 1;
  normalized.gpus_per_node = 1;
  normalized.dd[0] = normalized.dd[1] = normalized.dd[2] = 0;
  return canonical_json(normalized);
}

std::string series_label(const CaseConfig& c) {
  std::string label = c.transport + " " + atoms_label(c.atoms);
  if (c.machine == "gb200_nvl72") label += " nvl72";
  if (c.workers > 0) label += " w" + std::to_string(c.workers);
  return label;
}

struct Series {
  std::string label;
  std::vector<const CaseOutcome*> points;  // sorted by (gpus, nodes)
};

/// Group cases into strong-scaling series and sort each series' points by
/// device count. Returned in series-label order; labels shared by several
/// distinct series get a deterministic " #<hash8>" suffix.
std::vector<Series> build_series(const CampaignResult& result) {
  std::map<std::string, Series> by_key;
  for (const CaseOutcome& outcome : result.cases) {
    const std::string key = series_key(outcome.config);
    Series& series = by_key[key];
    if (series.points.empty()) series.label = series_label(outcome.config);
    series.points.push_back(&outcome);
  }
  std::map<std::string, int> label_counts;
  for (const auto& [key, series] : by_key) ++label_counts[series.label];
  std::vector<Series> out;
  out.reserve(by_key.size());
  for (auto& [key, series] : by_key) {
    if (label_counts[series.label] > 1) {
      series.label += " #" + util::hex64(util::fnv1a64(key)).substr(0, 8);
    }
    std::stable_sort(series.points.begin(), series.points.end(),
                     [](const CaseOutcome* a, const CaseOutcome* b) {
                       const long long ga =
                           static_cast<long long>(a->config.nodes) *
                           a->config.gpus_per_node;
                       const long long gb =
                           static_cast<long long>(b->config.nodes) *
                           b->config.gpus_per_node;
                       if (ga != gb) return ga < gb;
                       return a->config.nodes < b->config.nodes;
                     });
    out.push_back(std::move(series));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Series& a, const Series& b) {
                     return a.label < b.label;
                   });
  return out;
}

void write_case_object(std::string& out, const CaseOutcome& outcome) {
  out += "{\"hash\":\"" + outcome.hash + "\",\"config\":" +
         canonical_json(outcome.config) + ",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : outcome.metrics) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(key) + "\":" + format_number(value);
  }
  out += "}}";
}

void write_curves(std::string& out, const std::vector<Series>& all,
                  const char* nl) {
  out += "\"curves\":{";
  bool first_series = true;
  for (const Series& series : all) {
    if (!first_series) out += ",";
    first_series = false;
    out += nl;
    out += "  \"" + escape(series.label) + "\":[";
    const CaseOutcome* base = series.points.front();
    const double base_gpus = metric_or(*base, "gpus", 0.0);
    const double base_rate = metric_or(*base, "ns_per_day", 0.0);
    bool first_point = true;
    for (const CaseOutcome* point : series.points) {
      if (!first_point) out += ",";
      first_point = false;
      const double gpus = metric_or(*point, "gpus", 0.0);
      const double rate = metric_or(*point, "ns_per_day", 0.0);
      // Parallel efficiency vs the series' smallest machine: speedup
      // divided by the device-count ratio (1.0 = perfect scaling).
      double efficiency = 0.0;
      if (base_rate > 0.0 && base_gpus > 0.0 && gpus > 0.0) {
        efficiency = (rate / base_rate) / (gpus / base_gpus);
      }
      out += "{\"gpus\":" + format_number(gpus) +
             ",\"nodes\":" + format_number(point->config.nodes) +
             ",\"gpus_per_node\":" + format_number(point->config.gpus_per_node) +
             ",\"label\":\"" + escape(point->label) + "\"" +
             ",\"ns_per_day\":" +
             format_number(metric_or(*point, "ns_per_day", 0.0)) +
             ",\"ms_per_step\":" +
             format_number(metric_or(*point, "ms_per_step", 0.0)) +
             ",\"efficiency\":" + format_number(efficiency) + "}";
    }
    out += "]";
  }
  out += nl;
  out += "}";
}

void write_critical_path(std::string& out, const CampaignResult& result,
                         const char* nl) {
  out += "\"critical_path\":{";
  bool first_case = true;
  for (const CaseOutcome& outcome : result.cases) {
    if (!first_case) out += ",";
    first_case = false;
    out += nl;
    out += "  \"" + escape(outcome.label) + "\":{\"window_us\":" +
           format_number(metric_or(outcome, "crit_window_us", 0.0));
    for (int c = 0; c < runner::kPathCategoryCount; ++c) {
      const std::string name =
          std::string(runner::to_string(static_cast<runner::PathCategory>(c)));
      out += ",\"" + name + "_us\":" +
             format_number(metric_or(outcome, "crit_" + name + "_us", 0.0));
    }
    out += "}";
  }
  out += nl;
  out += "}";
}

void csv_field(std::string& out, const CaseOutcome& outcome,
               const std::string& key) {
  const double* v = find_metric(outcome, key);
  out += ",";
  if (v != nullptr) out += format_number(*v);
}

}  // namespace

void write_campaign_json(std::ostream& os, const CampaignResult& result,
                         bool pretty) {
  const char* nl = pretty ? "\n" : "";
  std::string out = "{\"schema\":\"";
  out += kCampaignSchema;
  out += "\",\"name\":\"" + escape(result.name) + "\",";
  out += nl;
  out += "\"cases\":{";
  bool first = true;
  for (const CaseOutcome& outcome : result.cases) {
    if (!first) out += ",";
    first = false;
    out += nl;
    out += "  \"" + escape(outcome.label) + "\":";
    write_case_object(out, outcome);
  }
  out += nl;
  out += "},";
  out += nl;
  write_curves(out, build_series(result), nl);
  out += ",";
  out += nl;
  write_critical_path(out, result, nl);
  out += "}";
  out += "\n";
  os << out;
}

void write_campaign_csv(std::ostream& os, const CampaignResult& result) {
  std::string out =
      "label,hash,machine,nodes,gpus_per_node,gpus,atoms,transport,dd,steps,"
      "warmup,workers,ns_per_day,ms_per_step,local_us,nonlocal_us,"
      "exchange_mean_us,exchange_p99_us,crit_window_us";
  for (int c = 0; c < runner::kPathCategoryCount; ++c) {
    out += ",crit_";
    out += runner::to_string(static_cast<runner::PathCategory>(c));
    out += "_us";
  }
  out += "\n";
  for (const CaseOutcome& outcome : result.cases) {
    const CaseConfig& config = outcome.config;
    // Labels never contain commas or quotes (see case_label), so no CSV
    // quoting layer is needed.
    out += outcome.label + "," + outcome.hash + "," + config.machine + "," +
           std::to_string(config.nodes) + "," +
           std::to_string(config.gpus_per_node) + "," +
           std::to_string(static_cast<long long>(config.nodes) *
                          config.gpus_per_node) +
           "," + std::to_string(config.atoms) + "," + config.transport + "," +
           std::to_string(config.dd[0]) + "x" + std::to_string(config.dd[1]) +
           "x" + std::to_string(config.dd[2]) + "," +
           std::to_string(config.steps) + "," + std::to_string(config.warmup) +
           "," + std::to_string(config.workers);
    csv_field(out, outcome, "ns_per_day");
    csv_field(out, outcome, "ms_per_step");
    csv_field(out, outcome, "local_us");
    csv_field(out, outcome, "nonlocal_us");
    csv_field(out, outcome, "exchange_mean_us");
    csv_field(out, outcome, "exchange_p99_us");
    csv_field(out, outcome, "crit_window_us");
    for (int c = 0; c < runner::kPathCategoryCount; ++c) {
      csv_field(out, outcome,
                "crit_" +
                    std::string(runner::to_string(
                        static_cast<runner::PathCategory>(c))) +
                    "_us");
    }
    out += "\n";
  }
  os << out;
}

}  // namespace hs::sweep
