#include "sweep/runner.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runner/critical_path.hpp"
#include "runner/timing.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"
#include "util/metrics.hpp"

namespace hs::sweep {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void progress_line(bool quiet, std::size_t index, std::size_t total,
                   const CaseOutcome& outcome, double wall_ms) {
  if (quiet) return;
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.1f", wall_ms);
  std::cerr << "halo_sweep: [" << (index + 1) << "/" << total << "] "
            << outcome.hash << (outcome.hit ? " hit  " : " miss ") << wall
            << "ms " << outcome.label << "\n";
}

/// Parse the numeric metrics back out of a stored case document. The
/// JSON object is a std::map, so the pairs come out key-sorted — the
/// one order every run reproduces regardless of how the document was
/// produced.
std::vector<std::pair<std::string, double>> parse_metrics(
    const std::string& document) {
  const auto doc = util::json::parse(document);
  const auto& cases = doc.at("cases").as_object();
  if (cases.empty()) {
    throw std::runtime_error("sweep: case document has no cases");
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, value] : cases.begin()->second.as_object()) {
    if (value.is_number()) out.emplace_back(key, value.as_number());
  }
  return out;
}

}  // namespace

std::string simulate_case_document(const CaseConfig& config) {
  return simulate_case_document(config, ExecutionContext{});
}

std::string simulate_case_document(const CaseConfig& config,
                                   const ExecutionContext& ctx) {
  runner::CaseSpec spec = to_case_spec(config);
  runner::TraceAggregate agg;
  runner::CriticalPathReport crit;
  runner::CaseHooks hooks;
  hooks.collect = [&](sim::Machine& machine, pgas::World&) {
    agg = runner::aggregate_trace(machine.trace(), spec.warmup);
    crit = runner::compute_critical_path(machine.trace(), spec.warmup);
  };
  runner::CaseResult result;
  if (ctx.prepared != nullptr) {
    const std::shared_ptr<const runner::PreparedCase> prepared =
        ctx.prepared->get(config);
    result = runner::execute_case(spec, *prepared, ctx.scratch, &hooks);
  } else {
    const runner::PreparedCase prepared = runner::prepare_case(spec);
    result = runner::execute_case(spec, prepared, ctx.scratch, &hooks);
  }

  std::map<std::string, double> metrics;
  metrics["gpus"] = static_cast<double>(spec.topology.device_count());
  metrics["dd_x"] = result.grid.nx;
  metrics["dd_y"] = result.grid.ny;
  metrics["dd_z"] = result.grid.nz;
  metrics["dd_dim"] = result.grid.dimensionality();
  metrics["ns_per_day"] = result.perf.ns_per_day;
  metrics["ms_per_step"] = result.perf.ms_per_step;
  metrics["measured_steps"] = result.perf.measured_steps;
  metrics["local_us"] = result.timing.local_us;
  metrics["nonlocal_us"] = result.timing.nonlocal_us;
  metrics["nonoverlap_us"] = result.timing.nonoverlap_us;
  metrics["step_us"] = result.timing.step_us;
  metrics["other_us"] = result.timing.other_us;
  metrics["exchange_mean_us"] = agg.exchange_us.mean();
  metrics["exchange_p50_us"] = agg.exchange_percentile(50.0);
  metrics["exchange_p90_us"] = agg.exchange_percentile(90.0);
  metrics["exchange_p99_us"] = agg.exchange_percentile(99.0);
  metrics["exchange_max_us"] = agg.exchange_us.max();
  metrics["exchange_count"] = static_cast<double>(agg.exchange_us.count());
  metrics["crit_window_us"] = crit.window_mean_us();
  for (int c = 0; c < runner::kPathCategoryCount; ++c) {
    const auto cat = static_cast<runner::PathCategory>(c);
    metrics["crit_" + std::string(runner::to_string(cat)) + "_us"] =
        crit.category_mean_us(cat);
  }

  const std::string hash = case_hash_hex(config);
  std::string out = "{\"schema\":\"";
  out += util::metrics::kSchema;
  out += "\",\"cases\":{\n  \"" + hash + "\":{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!std::isfinite(value)) continue;  // JSON cannot hold NaN/inf
    if (!first) out += ",";
    first = false;
    out += "\"" + util::json::escape(key) +
           "\":" + util::json::format_number(value);
  }
  out += "}\n},\n\"config\":" + canonical_json(config) + "}\n";
  return out;
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 0) return "";
    return "exit code " + std::to_string(code);
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    std::string out = "killed by signal " + std::to_string(sig);
    const char* name = ::strsignal(sig);
    if (name != nullptr) out += std::string(" (") + name + ")";
    return out;
  }
  return "wait status " + std::to_string(status);
}

int run_shard(const Campaign& campaign, const ResultCache& cache,
              int shard_index, int shard_count, bool quiet,
              bool prepared_state) {
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
    throw std::runtime_error("sweep: bad shard assignment " +
                             std::to_string(shard_index) + "/" +
                             std::to_string(shard_count));
  }
  const std::vector<std::string> labels = case_labels(campaign.cases);
  PreparedStateCache prepared;
  runner::CaseScratch scratch;
  ExecutionContext ctx;
  if (prepared_state) {
    ctx.prepared = &prepared;
    ctx.scratch = &scratch;
  }
  int simulated = 0;
  std::size_t miss_index = 0;
  for (std::size_t i = 0; i < campaign.cases.size(); ++i) {
    const CaseConfig& config = campaign.cases[i];
    const std::string hash = case_hash_hex(config);
    if (cache.load(hash).has_value()) continue;  // someone else's hit
    const bool mine = miss_index % static_cast<std::size_t>(shard_count) ==
                      static_cast<std::size_t>(shard_index);
    ++miss_index;
    if (!mine) continue;
    const double start = now_ms();
    const std::string document = simulate_case_document(config, ctx);
    cache.store(hash, document);
    ++simulated;
    if (!quiet) {
      char wall[32];
      std::snprintf(wall, sizeof wall, "%.1f", now_ms() - start);
      std::cerr << "halo_sweep: shard " << shard_index << "/" << shard_count
                << " " << hash << " miss " << wall << "ms " << labels[i]
                << "\n";
    }
  }
  return simulated;
}

namespace {

/// Fan the campaign's misses out over `shards` forked copies of
/// ourselves. Best-effort: any shard failing (nonzero exit, signal
/// death, exec error) just leaves its cases unsimulated and the parent
/// picks them up afterwards. Returns the number of failed shards.
int fork_shards(const SweepOptions& options) {
  std::vector<pid_t> pids;
  int failed = 0;
  for (int s = 0; s < options.shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("halo_sweep: fork");
      break;
    }
    if (pid == 0) {
      std::string shard_arg = "--shard=" + std::to_string(s) + "/" +
                              std::to_string(options.shards);
      std::string cache_arg = "--cache-dir=" + options.cache_dir;
      std::vector<std::string> args = {options.self_exe, options.spec_path,
                                       cache_arg, shard_arg};
      if (!options.prepared_state) args.emplace_back("--no-prepared-state");
      if (options.quiet) args.emplace_back("--quiet");
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(options.self_exe.c_str(), argv.data());
      std::perror("halo_sweep: execv");
      ::_exit(127);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("halo_sweep: waitpid");
      ++failed;
      continue;
    }
    const std::string why = describe_wait_status(status);
    if (!why.empty()) {
      ++failed;
      std::cerr << "halo_sweep: shard process " << pid << " failed (" << why
                << "); its cases will be simulated in-process\n";
    }
  }
  return failed;
}

}  // namespace

CampaignResult run_campaign(const Campaign& campaign,
                            const SweepOptions& options) {
  ResultCache cache(options.cache_dir);
  cache.set_max_entries(options.cache_max_entries);
  const std::vector<std::string> labels = case_labels(campaign.cases);

  CampaignResult result;
  result.name = campaign.name;
  result.cases.resize(campaign.cases.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < campaign.cases.size(); ++i) {
    CaseOutcome& outcome = result.cases[i];
    outcome.config = campaign.cases[i];
    outcome.label = labels[i];
    outcome.hash = case_hash_hex(outcome.config);
    const double start = now_ms();
    if (auto document = cache.load(outcome.hash)) {
      outcome.hit = true;
      outcome.document = std::move(*document);
      ++result.hits;
      progress_line(options.quiet, i, campaign.cases.size(), outcome,
                    now_ms() - start);
    } else {
      misses.push_back(i);
    }
  }

  const bool forked = !misses.empty() && options.isolate_shards &&
                      options.shards > 1 && !options.self_exe.empty() &&
                      !options.spec_path.empty() && cache.enabled();
  if (forked) {
    result.failed_shards = fork_shards(options);
    // Mop up: collect what the shards stored, re-simulate anything a dead
    // shard left behind. Warm state still pays off for the residue.
    PreparedStateCache prepared;
    runner::CaseScratch scratch;
    ExecutionContext ctx;
    if (options.prepared_state) {
      ctx.prepared = &prepared;
      ctx.scratch = &scratch;
    }
    for (const std::size_t i : misses) {
      CaseOutcome& outcome = result.cases[i];
      const double start = now_ms();
      if (auto document = cache.load(outcome.hash)) {
        // A shard process filled it in; still a miss from the campaign's
        // point of view (it was simulated for this run).
        outcome.document = std::move(*document);
      } else {
        outcome.document = simulate_case_document(outcome.config, ctx);
        cache.store(outcome.hash, outcome.document);
      }
      ++result.misses;
      progress_line(options.quiet, i, campaign.cases.size(), outcome,
                    now_ms() - start);
    }
  } else if (!misses.empty()) {
    // In-process pool: persistent worker threads pull misses off a shared
    // counter. One PreparedStateCache is shared by every worker (its
    // entries are immutable); arena scratch is per worker. Safe because
    // simulation state is per-Engine/lane-homed — the TSan smoke sweeps
    // this path.
    const int workers =
        std::max(1, std::min(options.shards, static_cast<int>(misses.size())));
    PreparedStateCache prepared;
    std::atomic<std::size_t> next{0};
    std::mutex io_mu;
    auto work = [&]() {
      runner::CaseScratch scratch;
      ExecutionContext ctx;
      if (options.prepared_state) {
        ctx.prepared = &prepared;
        ctx.scratch = &scratch;
      }
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= misses.size()) break;
        const std::size_t i = misses[k];
        CaseOutcome& outcome = result.cases[i];
        const double start = now_ms();
        outcome.document = simulate_case_document(outcome.config, ctx);
        cache.store(outcome.hash, outcome.document);
        const std::lock_guard<std::mutex> lock(io_mu);
        progress_line(options.quiet, i, campaign.cases.size(), outcome,
                      now_ms() - start);
      }
    };
    if (workers == 1) {
      work();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) threads.emplace_back(work);
      for (std::thread& t : threads) t.join();
    }
    result.misses += static_cast<int>(misses.size());
  }

  for (CaseOutcome& outcome : result.cases) {
    outcome.metrics = parse_metrics(outcome.document);
  }
  if (!options.quiet) {
    std::cerr << "halo_sweep: campaign '" << result.name << "': "
              << result.cases.size() << " cases, " << result.hits << " hits, "
              << result.misses << " misses";
    if (cache.dropped() > 0) {
      std::cerr << ", " << cache.dropped() << " dropped";
    }
    std::cerr << "\n";
  }
  return result;
}

}  // namespace hs::sweep
