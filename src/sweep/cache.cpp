#include "sweep/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace hs::sweep {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::path(const std::string& hash_hex) const {
  return dir_ + "/" + hash_hex + ".json";
}

bool validate_case_document(const std::string& text) {
  try {
    const auto doc = util::json::parse(text);
    return doc.is_object() && doc.contains("schema") &&
           doc.at("schema").is_string() &&
           doc.at("schema").as_string() == util::metrics::kSchema &&
           doc.contains("cases") && doc.at("cases").is_object() &&
           doc.at("cases").size() > 0;
  } catch (const std::exception&) {
    return false;
  }
}

std::optional<std::string> ResultCache::load(const std::string& hash_hex) const {
  if (memoize_) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(hash_hex);
    if (it != memo_.end()) return it->second;
  }
  if (!enabled()) return std::nullopt;
  std::ifstream in(path(hash_hex));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (!validate_case_document(text)) return std::nullopt;
  if (memoize_) {
    std::lock_guard<std::mutex> lock(mu_);
    memo_[hash_hex] = text;
  }
  return text;
}

bool ResultCache::store(const std::string& hash_hex,
                        const std::string& text) const {
  if (memoize_) {
    std::lock_guard<std::mutex> lock(mu_);
    memo_[hash_hex] = text;
  }
  if (!enabled()) return true;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  // tmp + rename: concurrent shards may store different hashes into the
  // same directory, and a killed writer must never leave a half-written
  // entry under the final name (a truncated file would still read as a
  // miss, but the invariant is cheap to keep absolute).
  const std::string tmp =
      path(hash_hex) + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp);
    if (!os) return false;
    os << text;
    if (!os) return false;
  }
  fs::rename(tmp, path(hash_hex), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  if (max_entries_ > 0) trim();
  return true;
}

std::size_t ResultCache::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

/// True for `<16 hex chars>.json` — the only names the cache owns.
/// Anything else in the directory (tmp files mid-write, stray files) is
/// never evicted.
bool is_cache_entry_name(const std::string& name) {
  constexpr std::size_t kHashLen = 16;
  constexpr const char* kExt = ".json";
  if (name.size() != kHashLen + 5 || name.substr(kHashLen) != kExt) {
    return false;
  }
  for (std::size_t i = 0; i < kHashLen; ++i) {
    const char c = name[i];
    const bool hex =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace

void ResultCache::trim() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  struct Entry {
    fs::file_time_type mtime;
    std::string name;
  };
  std::vector<Entry> entries;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (ec) return;
    const std::string name = de.path().filename().string();
    if (!is_cache_entry_name(name)) continue;
    const auto mtime = fs::last_write_time(de.path(), ec);
    if (ec) continue;
    entries.push_back({mtime, name});
  }
  if (entries.size() <= max_entries_) return;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  const std::size_t excess = entries.size() - max_entries_;
  for (std::size_t i = 0; i < excess; ++i) {
    if (fs::remove(dir_ + "/" + entries[i].name, ec)) ++dropped_;
  }
}

}  // namespace hs::sweep
