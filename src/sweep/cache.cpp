#include "sweep/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace hs::sweep {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::path(const std::string& hash_hex) const {
  return dir_ + "/" + hash_hex + ".json";
}

bool validate_case_document(const std::string& text) {
  try {
    const auto doc = util::json::parse(text);
    return doc.is_object() && doc.contains("schema") &&
           doc.at("schema").is_string() &&
           doc.at("schema").as_string() == util::metrics::kSchema &&
           doc.contains("cases") && doc.at("cases").is_object() &&
           doc.at("cases").size() > 0;
  } catch (const std::exception&) {
    return false;
  }
}

std::optional<std::string> ResultCache::load(const std::string& hash_hex) const {
  if (memoize_) {
    const auto it = memo_.find(hash_hex);
    if (it != memo_.end()) return it->second;
  }
  if (!enabled()) return std::nullopt;
  std::ifstream in(path(hash_hex));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  if (!validate_case_document(text)) return std::nullopt;
  if (memoize_) memo_[hash_hex] = text;
  return text;
}

bool ResultCache::store(const std::string& hash_hex,
                        const std::string& text) const {
  if (memoize_) memo_[hash_hex] = text;
  if (!enabled()) return true;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  // tmp + rename: concurrent shards may store different hashes into the
  // same directory, and a killed writer must never leave a half-written
  // entry under the final name (a truncated file would still read as a
  // miss, but the invariant is cheap to keep absolute).
  const std::string tmp =
      path(hash_hex) + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp);
    if (!os) return false;
    os << text;
    if (!os) return false;
  }
  fs::rename(tmp, path(hash_hex), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace hs::sweep
