// Thread-MPI-like message layer: the baseline transport.
//
// Models GPU-aware MPI as used by the GROMACS halo exchange (Fig. 1):
// CPU-initiated two-sided messaging with rendezvous semantics. Data moves
// device-to-device over the fabric, but initiation and completion are
// host-side — the CPU must have synchronized the producing stream before
// posting, and must wait for the request before launching consumers. Those
// control-path costs (the paper's §3 critique of MPI) are charged by the
// caller from the cost model; this layer provides matching + transfer.
//
// Requests are sim::GpuEvent handles: complete at message delivery.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <tuple>

#include "sim/machine.hpp"

namespace hs::msg {

class Comm {
 public:
  explicit Comm(sim::Machine& machine) : machine_(&machine) {}

  int n_ranks() const { return machine_->device_count(); }
  int device_of(int rank) const { return rank; }

  /// Post a non-blocking send. `copy` performs the real data movement at
  /// delivery time. The returned event completes when the message has been
  /// delivered (rendezvous: requires the matching receive to be posted).
  sim::GpuEventPtr isend(int src_rank, int dst_rank, int tag,
                         std::size_t bytes, std::function<void()> copy);

  /// Post a non-blocking receive; completes at delivery of the matching send.
  sim::GpuEventPtr irecv(int dst_rank, int src_rank, int tag);

  /// Number of posted-but-unmatched operations (tests / leak detection).
  std::size_t unmatched() const;

 private:
  // Channel key: (src, dst, tag).
  using Key = std::tuple<int, int, int>;

  struct PendingSend {
    std::size_t bytes;
    std::function<void()> copy;
    sim::GpuEventPtr done;
  };
  struct PendingRecv {
    sim::GpuEventPtr done;
  };

  void start_transfer(const Key& key, PendingSend send, PendingRecv recv);

  sim::Machine* machine_;
  std::map<Key, std::deque<PendingSend>> sends_;
  std::map<Key, std::deque<PendingRecv>> recvs_;
};

}  // namespace hs::msg
