#include "msg/comm.hpp"

namespace hs::msg {

sim::GpuEventPtr Comm::isend(int src_rank, int dst_rank, int tag,
                             std::size_t bytes, std::function<void()> copy) {
  const Key key{src_rank, dst_rank, tag};
  PendingSend send{bytes, std::move(copy),
                   std::make_shared<sim::GpuEvent>(machine_->engine())};
  auto result = send.done;
  auto& recv_queue = recvs_[key];
  if (!recv_queue.empty()) {
    PendingRecv recv = std::move(recv_queue.front());
    recv_queue.pop_front();
    start_transfer(key, std::move(send), std::move(recv));
  } else {
    sends_[key].push_back(std::move(send));
  }
  return result;
}

sim::GpuEventPtr Comm::irecv(int dst_rank, int src_rank, int tag) {
  const Key key{src_rank, dst_rank, tag};
  PendingRecv recv{std::make_shared<sim::GpuEvent>(machine_->engine())};
  auto result = recv.done;
  auto& send_queue = sends_[key];
  if (!send_queue.empty()) {
    PendingSend send = std::move(send_queue.front());
    send_queue.pop_front();
    start_transfer(key, std::move(send), std::move(recv));
  } else {
    recvs_[key].push_back(std::move(recv));
  }
  return result;
}

void Comm::start_transfer(const Key& key, PendingSend send, PendingRecv recv) {
  sim::TransferRequest req;
  req.src_device = device_of(std::get<0>(key));
  req.dst_device = device_of(std::get<1>(key));
  req.bytes = send.bytes;
  req.num_messages = 1;
  req.label = "mpi_msg";
  req.deliver = std::move(send.copy);
  // GPU-aware MPI adds library/rendezvous overhead on top of the wire time;
  // the intra-node staging path costs more than the tuned IB RDMA path.
  const bool ib = machine_->fabric().link(req.src_device, req.dst_device) ==
                  sim::LinkType::IB;
  const sim::SimTime protocol = ib ? machine_->cost().mpi_protocol_ib_ns
                                   : machine_->cost().mpi_protocol_nvlink_ns;
  machine_->fabric().transfer(
      std::move(req),
      [this, protocol, send_done = send.done, recv_done = recv.done] {
        machine_->engine().schedule_after(protocol, [send_done, recv_done] {
          send_done->complete();
          recv_done->complete();
        });
      });
}

std::size_t Comm::unmatched() const {
  std::size_t n = 0;
  for (const auto& [_, q] : sends_) n += q.size();
  for (const auto& [_, q] : recvs_) n += q.size();
  return n;
}

}  // namespace hs::msg
