// The GPU-resident MD time-stepping loop (Algorithm 2 and Figs. 1-2).
//
// One host coroutine per rank issues, every step:
//   local stream     : Local non-bonded F
//   non-local stream : coordinate halo, Bonded F, Non-local non-bonded F,
//                      force halo
//   update stream    : ReduceF, Integrate, Clear   (medium priority, §5.4)
//   prune stream     : Rolling prune               (low priority, §5.4)
//
// With the SHMEM transport the loop launches everything asynchronously and
// never blocks on the GPU (Fig. 2); with MPI it blocks per pulse for the
// stream-sync + sendrecv round trips (Fig. 1). In functional mode the
// kernels run the real MD math against the DomainStates; in skeleton mode
// they only advance the clock.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "halo/mpi_halo.hpp"
#include "halo/shmem_halo.hpp"
#include "halo/tmpi_halo.hpp"
#include "md/cluster_nonbonded.hpp"
#include "md/integrator.hpp"
#include "md/nonbonded.hpp"
#include "md/simd/isa.hpp"
#include "runner/config.hpp"
#include "util/telemetry.hpp"

namespace hs::runner {

struct PerfReport {
  double ms_per_step = 0.0;
  double ns_per_day = 0.0;
  int measured_steps = 0;
};

class MdRunner {
 public:
  /// `ff` is required in functional mode (workload carries states) and
  /// ignored in skeleton mode. `seed_lists`, when given (functional mode
  /// only), is copied in place of the ctor's dd::build_pair_lists call —
  /// a prepared-state clone (runner::PreparedFunctional) built at the
  /// same positions/rlist yields a bit-identical run while skipping the
  /// per-run list build.
  MdRunner(sim::Machine& machine, pgas::World& world, msg::Comm& comm,
           halo::Workload workload, RunConfig config,
           const md::ForceField* ff = nullptr,
           const std::vector<dd::RankPairLists>* seed_lists = nullptr);

  /// Run `steps` MD steps to completion (drives the engine).
  void run(int steps);

  /// Wall-clock completion time of each step (max over ranks).
  const std::vector<sim::SimTime>& step_end_times() const {
    return step_end_times_;
  }

  /// Performance over the measured window, skipping `warmup` steps.
  PerfReport perf(int warmup = 2) const;

  int num_ranks() const { return workload_.plan.grid.num_ranks(); }
  const halo::Workload& workload() const { return workload_; }
  sim::Machine& machine() { return *machine_; }

  /// Pair-list sizes after the run (functional mode; tests/pruning).
  const std::vector<dd::RankPairLists>& pair_lists() const { return lists_; }

  /// Per-rank count of drift-triggered list rebuilds (functional mode).
  const std::vector<std::int64_t>& list_rebuilds() const {
    return rebuild_counts_;
  }

 private:
  struct RankStreams {
    sim::Stream* local = nullptr;
    sim::Stream* nonlocal = nullptr;
    sim::Stream* update = nullptr;
    sim::Stream* prune = nullptr;
  };

  dd::DomainState* state(int rank) {
    return workload_.functional()
               ? &(*workload_.states)[static_cast<std::size_t>(rank)]
               : nullptr;
  }
  int local_pairs_atoms(int rank) const;   // cost-model input
  int nonlocal_pairs_atoms(int rank) const;

  sim::Task rank_loop(int rank, int steps);

  sim::KernelSpec nb_local_spec(int rank, std::int64_t step);
  sim::KernelSpec bonded_spec(int rank, std::int64_t step);
  sim::KernelSpec nb_nonlocal_spec(int rank, std::int64_t step);
  sim::KernelSpec reduce_spec(int rank, std::int64_t step);
  sim::KernelSpec integrate_spec(int rank, std::int64_t step);
  sim::KernelSpec clear_spec(int rank, std::int64_t step);
  sim::KernelSpec prune_spec(int rank, std::int64_t step);

  /// Drift check + in-place list rebuild (Verlet-buffer contract); runs
  /// inside the integrate kernel body after positions advance.
  void maybe_rebuild_lists(int rank);

  sim::Machine* machine_;
  pgas::World* world_;
  msg::Comm* comm_;
  halo::Workload workload_;
  RunConfig config_;
  const md::ForceField* ff_;
  /// Kernel ISA for every CPU-side MD kernel this run (nonbonded clusters,
  /// reduce, integrate); resolved once in the ctor from config.kernel_isa /
  /// HALOSIM_FORCE_ISA so all steps dispatch identically.
  md::simd::KernelIsa isa_ = md::simd::KernelIsa::Scalar;
  std::optional<md::LeapfrogIntegrator> integrator_;

  std::unique_ptr<halo::ShmemHaloExchange> shmem_;
  std::unique_ptr<halo::MpiHaloExchange> mpi_;
  std::unique_ptr<halo::ThreadMpiHaloExchange> tmpi_;

  std::vector<RankStreams> streams_;
  std::vector<dd::RankPairLists> lists_;
  std::vector<std::vector<md::Vec3>> f_local_;  // per rank, home atoms

  // Cluster fast path (functional mode, config.use_cluster_kernels).
  std::optional<md::NbParamTable> nb_params_;
  std::vector<md::NbWorkspace> nb_ws_;  // per rank; kernels run serially

  // Verlet-buffer reuse: positions at the last list build and the squared
  // drift limit ((rlist - cutoff)/2)^2; negative disables rebuilds.
  std::vector<std::vector<md::Vec3>> x_ref_;  // per rank, n_total atoms
  double drift_limit2_ = -1.0;
  std::vector<std::int64_t> rebuild_counts_;

  // update-event ring per rank for ordering + launch-ahead throttling.
  std::vector<std::vector<sim::GpuEventPtr>> update_events_;
  std::vector<std::vector<sim::SimTime>> per_rank_step_end_;
  std::vector<sim::SimTime> step_end_times_;

  /// Per-rank step-duration histogram (`md.d<r>.step_ns`), registered in
  /// the rank's lane registry when machine telemetry is on. Empty =
  /// disabled.
  struct RankTelemetry {
    util::telemetry::Registry* reg = nullptr;
    util::telemetry::MetricId step_ns;
  };
  std::vector<RankTelemetry> telemetry_;
};

}  // namespace hs::runner
