#include "runner/pme_flow.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "md/fft.hpp"

namespace hs::runner {

namespace {

sim::SimTime ns(double v) { return static_cast<sim::SimTime>(std::llround(v)); }

struct FlowState {
  sim::Machine* machine;
  pgas::World* world;
  PmeFlowConfig config;

  std::vector<sim::Stream*> pp_streams;
  std::vector<sim::Stream*> pme_streams;
  // Per-PME-rank cumulative arrival counter (each client adds 1 per step).
  pgas::World::SignalArray x_arrived{};
  // Per-PP-rank long-range-force-ready signal (stores step+1).
  pgas::World::SignalArray f_ready{};

  // Timing probes.
  std::vector<std::vector<sim::SimTime>> step_end;     // [pp][step]
  std::vector<std::vector<sim::SimTime>> nb_done;      // [pp][step]
  std::vector<std::vector<sim::SimTime>> f_arrived_at; // [pp][step]

  int pme_server_of(int pp) const {
    return config.n_pp_ranks +
           pp * config.n_pme_ranks / config.n_pp_ranks;
  }
  std::vector<int> clients_of(int pme) const {
    std::vector<int> out;
    for (int pp = 0; pp < config.n_pp_ranks; ++pp) {
      if (pme_server_of(pp) == config.n_pp_ranks + pme) out.push_back(pp);
    }
    return out;
  }
  std::size_t grid_points() const {
    return static_cast<std::size_t>(config.pme_grid[0]) *
           static_cast<std::size_t>(config.pme_grid[1]) *
           static_cast<std::size_t>(config.pme_grid[2]);
  }
};

sim::KernelSpec simple_kernel(const sim::CostModel& cm, std::string name,
                              double cost, double demand, std::int64_t step) {
  sim::KernelSpec spec;
  spec.name = std::move(name);
  spec.sm_demand = demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  spec.body = [cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
  };
  return spec;
}

/// PP rank host loop: local short-range work + coordinate send to the PME
/// server + wait for long-range forces + update.
sim::Task pp_loop(FlowState* fs, int pp) {
  const auto& cm = fs->machine->cost();
  sim::Stream& stream = *fs->pp_streams[static_cast<std::size_t>(pp)];
  const int atoms = fs->config.atoms_per_pp_rank;
  const int server = fs->pme_server_of(pp);
  const std::size_t bytes = static_cast<std::size_t>(atoms) * 12;
  const bool gpu_initiated =
      fs->config.comm_mode == PmeCommMode::GpuInitiated;

  for (int step = 0; step < fs->config.steps; ++step) {
    const std::int64_t sigval = step + 1;
    co_await sim::Delay{cm.host_step_overhead_ns};

    // Local short-range force work.
    co_await sim::Delay{cm.kernel_launch_ns};
    {
      auto spec = simple_kernel(cm, "nb_local", cm.nb_local_cost(atoms),
                                cm.nb_demand, step);
      auto* fs2 = fs;
      spec.on_complete = [fs2, pp, step] {
        fs2->nb_done[static_cast<std::size_t>(pp)][static_cast<std::size_t>(step)] =
            fs2->machine->engine().now();
      };
      stream.launch(std::move(spec));
    }

    // Ship coordinates to the PME server.
    if (gpu_initiated) {
      // §7 future work: pack + device-initiated put-with-signal, fused into
      // one kernel; no CPU involvement.
      co_await sim::Delay{cm.kernel_launch_ns};
      sim::KernelSpec spec;
      spec.name = "FusedPackPmeX";
      spec.sm_demand = cm.comm_demand;
      spec.tag = step;
      spec.dispatch_ns = cm.kernel_dispatch_ns;
      auto* fs2 = fs;
      spec.body = [fs2, pp, server, atoms, bytes,
                   sigval](sim::KernelContext& ctx) -> sim::Task {
        (void)ctx;
        const auto& cost = fs2->machine->cost();
        co_await sim::Delay{ns(cost.pack_cost(atoms))};
        co_await sim::Delay{cost.shmem_put_issue_ns};
        sim::Signal& arrived =
            fs2->world->signal(fs2->x_arrived, server, 0);
        fs2->world->put_nbi(pp, server, bytes,
                            [&arrived] { arrived.add(1); });
      };
      stream.launch(std::move(spec));
    } else {
      // Today's flow: pack kernel, stream sync, CPU-initiated send.
      co_await sim::Delay{cm.kernel_launch_ns};
      stream.launch(simple_kernel(cm, "PackPmeX", cm.pack_cost(atoms),
                                  cm.pack_demand, step));
      co_await sim::Delay{cm.event_api_ns};
      auto packed = stream.record();
      co_await sim::Delay{cm.stream_sync_ns};
      co_await packed->wait();
      co_await sim::Delay{cm.mpi_call_ns};
      auto* fs2 = fs;
      sim::TransferRequest req;
      req.src_device = pp;
      req.dst_device = server;
      req.bytes = bytes;
      req.label = "pme_x";
      req.deliver = [fs2, server] {
        fs2->world->signal(fs2->x_arrived, server, 0).add(1);
      };
      const sim::SimTime protocol =
          fs->machine->fabric().link(pp, server) == sim::LinkType::IB
              ? cm.mpi_protocol_ib_ns
              : cm.mpi_protocol_nvlink_ns;
      auto sent = std::make_shared<sim::GpuEvent>(fs->machine->engine());
      auto* engine = &fs->machine->engine();
      fs->machine->fabric().transfer(std::move(req), [engine, protocol, sent] {
        engine->schedule_after(protocol, [sent] { sent->complete(); });
      });
      co_await sent->wait();
    }

    // Wait for the long-range forces.
    sim::Signal& ready = fs->world->signal(fs->f_ready, pp, 0);
    if (gpu_initiated) {
      // Device-side wait inside the reduction kernel: the host keeps going.
      co_await sim::Delay{cm.kernel_launch_ns};
      sim::KernelSpec spec;
      spec.name = "reduce_pme";
      spec.sm_demand = cm.service_demand;
      spec.tag = step;
      spec.dispatch_ns = cm.kernel_dispatch_ns;
      auto* fs2 = fs;
      spec.body = [fs2, pp, atoms, sigval,
                   &ready](sim::KernelContext& ctx) -> sim::Task {
        const auto& cost = fs2->machine->cost();
        const bool was_ready = ready.value() >= sigval;
        co_await ready.wait_ge(sigval);
        if (!was_ready) co_await sim::Delay{cost.signal_poll_ns};
        fs2->f_arrived_at[static_cast<std::size_t>(pp)]
                         [static_cast<std::size_t>(sigval - 1)] =
            fs2->machine->engine().now();
        co_await ctx.compute(cost.reduce_cost(atoms));
      };
      stream.launch(std::move(spec));
    } else {
      // CPU blocks until the force message lands, then launches the reduce.
      co_await sim::Delay{cm.stream_sync_ns};
      co_await ready.wait_ge(sigval);
      fs->f_arrived_at[static_cast<std::size_t>(pp)]
                      [static_cast<std::size_t>(step)] =
          fs->machine->engine().now();
      co_await sim::Delay{cm.kernel_launch_ns};
      stream.launch(simple_kernel(cm, "reduce_pme", cm.reduce_cost(atoms),
                                  cm.service_demand, step));
    }

    // Integrate and close the step.
    co_await sim::Delay{cm.kernel_launch_ns};
    stream.launch(simple_kernel(cm, "integrate", cm.integrate_cost(atoms),
                                cm.service_demand, step));
    co_await sim::Delay{cm.event_api_ns};
    auto done = stream.record();
    co_await done->wait();
    fs->step_end[static_cast<std::size_t>(pp)][static_cast<std::size_t>(step)] =
        fs->machine->engine().now();
  }
}

/// PME rank host loop: wait for all clients' coordinates, run the solve
/// chain, return forces.
sim::Task pme_loop(FlowState* fs, int pme_index) {
  const auto& cm = fs->machine->cost();
  sim::Stream& stream = *fs->pme_streams[static_cast<std::size_t>(pme_index)];
  const int device = fs->config.n_pp_ranks + pme_index;
  const auto clients = fs->clients_of(pme_index);
  const double grid_pts = static_cast<double>(fs->grid_points());
  const int total_atoms =
      fs->config.atoms_per_pp_rank * static_cast<int>(clients.size());
  const bool gpu_initiated =
      fs->config.comm_mode == PmeCommMode::GpuInitiated;

  for (int step = 0; step < fs->config.steps; ++step) {
    const std::int64_t sigval = step + 1;
    sim::Signal& arrived = fs->world->signal(fs->x_arrived, device, 0);
    const std::int64_t expected =
        static_cast<std::int64_t>(clients.size()) * sigval;

    if (!gpu_initiated) {
      // CPU waits for all coordinate messages before launching the chain.
      co_await arrived.wait_ge(expected);
    }

    if (gpu_initiated) {
      // The spread kernel itself waits for arrivals (device-side); all
      // launches go out immediately.
      co_await sim::Delay{cm.kernel_launch_ns};
      sim::KernelSpec spread;
      spread.name = "pme_spread";
      spread.sm_demand = cm.nb_demand;
      spread.tag = step;
      spread.dispatch_ns = cm.kernel_dispatch_ns;
      auto* fs2 = fs;
      spread.body = [fs2, total_atoms, expected,
                     &arrived](sim::KernelContext& ctx) -> sim::Task {
        const auto& cost = fs2->machine->cost();
        const bool was_ready = arrived.value() >= expected;
        co_await arrived.wait_ge(expected);
        if (!was_ready) co_await sim::Delay{cost.signal_poll_ns};
        co_await ctx.compute(cost.pme_kernel_overhead_ns +
                             cost.pme_spread_ns_per_atom * total_atoms);
      };
      stream.launch(std::move(spread));
    } else {
      co_await sim::Delay{cm.kernel_launch_ns};
      stream.launch(simple_kernel(
          cm, "pme_spread",
          cm.pme_kernel_overhead_ns + cm.pme_spread_ns_per_atom * total_atoms,
          cm.nb_demand, step));
    }
    // FFT -> convolution -> inverse FFT -> gather.
    co_await sim::Delay{cm.kernel_launch_ns};
    stream.launch(simple_kernel(
        cm, "pme_fft_fwd",
        cm.pme_kernel_overhead_ns + cm.pme_fft_ns_per_point * grid_pts,
        cm.nb_demand, step));
    co_await sim::Delay{cm.kernel_launch_ns};
    stream.launch(simple_kernel(
        cm, "pme_conv",
        cm.pme_kernel_overhead_ns + cm.pme_conv_ns_per_point * grid_pts,
        cm.service_demand, step));
    co_await sim::Delay{cm.kernel_launch_ns};
    stream.launch(simple_kernel(
        cm, "pme_fft_inv",
        cm.pme_kernel_overhead_ns + cm.pme_fft_ns_per_point * grid_pts,
        cm.nb_demand, step));
    co_await sim::Delay{cm.kernel_launch_ns};
    stream.launch(simple_kernel(
        cm, "pme_gather",
        cm.pme_kernel_overhead_ns + cm.pme_gather_ns_per_atom * total_atoms,
        cm.nb_demand, step));

    // Return forces to every client.
    if (gpu_initiated) {
      // Fused into a send kernel: device-initiated put-with-signal per
      // client, issued as soon as the gather (stream order) finishes.
      co_await sim::Delay{cm.kernel_launch_ns};
      sim::KernelSpec send;
      send.name = "FusedSendPmeF";
      send.sm_demand = cm.comm_demand;
      send.tag = step;
      send.dispatch_ns = cm.kernel_dispatch_ns;
      auto* fs2 = fs;
      const std::size_t bytes =
          static_cast<std::size_t>(fs->config.atoms_per_pp_rank) * 12;
      send.body = [fs2, clients, bytes, device,
                   sigval](sim::KernelContext& ctx) -> sim::Task {
        (void)ctx;
        const auto& cost = fs2->machine->cost();
        for (int client : clients) {
          co_await sim::Delay{cost.shmem_put_issue_ns};
          sim::Signal& ready = fs2->world->signal(fs2->f_ready, client, 0);
          fs2->world->put_signal_nbi(device, client, bytes, {}, ready, sigval);
        }
        co_return;
      };
      stream.launch(std::move(send));
    } else {
      co_await sim::Delay{cm.event_api_ns};
      auto gathered = stream.record();
      co_await sim::Delay{cm.stream_sync_ns};
      co_await gathered->wait();
      for (int client : clients) {
        co_await sim::Delay{cm.mpi_call_ns};
        sim::TransferRequest req;
        req.src_device = device;
        req.dst_device = client;
        req.bytes = static_cast<std::size_t>(fs->config.atoms_per_pp_rank) * 12;
        req.label = "pme_f";
        auto* fs2 = fs;
        const sim::SimTime protocol =
            fs->machine->fabric().link(device, client) == sim::LinkType::IB
                ? cm.mpi_protocol_ib_ns
                : cm.mpi_protocol_nvlink_ns;
        auto* engine = &fs->machine->engine();
        req.deliver = {};
        fs->machine->fabric().transfer(
            std::move(req), [fs2, engine, protocol, client, sigval] {
              engine->schedule_after(protocol, [fs2, client, sigval] {
                fs2->world->signal(fs2->f_ready, client, 0).store(sigval);
              });
            });
      }
    }
  }
}

}  // namespace

PmeFlowReport run_pme_flow(sim::Machine& machine, pgas::World& world,
                           const PmeFlowConfig& config) {
  if (machine.device_count() != config.n_pp_ranks + config.n_pme_ranks) {
    throw std::invalid_argument("pme_flow: device count != pp + pme ranks");
  }
  if (config.n_pp_ranks % config.n_pme_ranks != 0) {
    throw std::invalid_argument("pme_flow: pp ranks must divide evenly");
  }

  FlowState fs;
  fs.machine = &machine;
  fs.world = &world;
  fs.config = config;
  fs.x_arrived = world.alloc_signals(1, "pmeXArrived");
  fs.f_ready = world.alloc_signals(1, "pmeFReady");
  fs.step_end.assign(static_cast<std::size_t>(config.n_pp_ranks),
                     std::vector<sim::SimTime>(
                         static_cast<std::size_t>(config.steps), 0));
  fs.nb_done = fs.step_end;
  fs.f_arrived_at = fs.step_end;

  // Team-scoped symmetric buffers: PP-only halo/coordinate space and
  // PME-only mesh space coexist without redundant cross allocations (§5.3
  // resolved via the team extension).
  std::vector<int> pp_members, pme_members;
  for (int r = 0; r < config.n_pp_ranks; ++r) pp_members.push_back(r);
  for (int r = 0; r < config.n_pme_ranks; ++r) {
    pme_members.push_back(config.n_pp_ranks + r);
  }
  pgas::Team& pp_team = world.create_team(pp_members, 32u << 20);
  pgas::Team& pme_team = world.create_team(pme_members, 64u << 20);
  pp_team.alloc(static_cast<std::size_t>(config.atoms_per_pp_rank) * 12 * 2);
  pme_team.alloc(fs.grid_points() * sizeof(md::Complex));

  for (int r = 0; r < config.n_pp_ranks; ++r) {
    fs.pp_streams.push_back(&machine.create_stream(
        r, "pp" + std::to_string(r), sim::StreamPriority::kHigh));
  }
  for (int r = 0; r < config.n_pme_ranks; ++r) {
    fs.pme_streams.push_back(&machine.create_stream(
        config.n_pp_ranks + r, "pme" + std::to_string(r),
        sim::StreamPriority::kHigh));
  }

  for (int r = 0; r < config.n_pp_ranks; ++r) {
    machine.spawn_host_task(pp_loop(&fs, r));
  }
  for (int r = 0; r < config.n_pme_ranks; ++r) {
    machine.spawn_host_task(pme_loop(&fs, r));
  }
  machine.run();

  PmeFlowReport report;
  const int warmup = 2;
  if (config.steps <= warmup + 1) return report;
  sim::SimTime first = 0, last = 0;
  double wait_sum = 0.0;
  int wait_samples = 0;
  for (int r = 0; r < config.n_pp_ranks; ++r) {
    first = std::max(first, fs.step_end[static_cast<std::size_t>(r)]
                                       [static_cast<std::size_t>(warmup)]);
    last = std::max(last, fs.step_end[static_cast<std::size_t>(r)].back());
    for (int s = warmup; s < config.steps; ++s) {
      const sim::SimTime nb =
          fs.nb_done[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
      const sim::SimTime fa = fs.f_arrived_at[static_cast<std::size_t>(r)]
                                             [static_cast<std::size_t>(s)];
      wait_sum += sim::to_us(std::max<sim::SimTime>(0, fa - nb));
      ++wait_samples;
    }
  }
  report.measured_steps = config.steps - warmup - 1;
  report.us_per_step =
      sim::to_us(last - first) / static_cast<double>(report.measured_steps);
  if (wait_samples > 0) report.pme_wait_us = wait_sum / wait_samples;
  return report;
}

}  // namespace hs::runner
