// One self-contained benchmark case: a grappa-like skeleton workload on a
// simulated cluster, run through the GPU-resident MD schedule.
//
// Extracted from bench/common.hpp so non-bench drivers (the campaign
// sweep service, tools) can run the exact same cases the figure benches
// run: bench::CaseSpec/run_case are aliases of these.
#pragma once

#include <functional>
#include <optional>

#include "dd/geometry.hpp"
#include "runner/config.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/costmodel.hpp"
#include "sim/machine.hpp"

namespace hs::runner {

/// Grappa benchmark-set number density (water-like, ~100 atoms/nm^3, §6.1).
inline constexpr double kGrappaDensity = 100.0;
/// Communication cutoff = pair-list radius (cutoff + the large Verlet
/// buffer an nstlist=200 setup needs). At 1.3 nm the 90k/8-rank slabs are
/// thinner than the cutoff, giving the two-pulse "1D" decompositions the
/// paper's Fig. 7 pulse accounting implies.
inline constexpr double kCommCutoff = 1.30;

struct CaseSpec {
  long long atoms = 45000;
  sim::Topology topology = sim::Topology::dgx_h100(1, 4);
  sim::CostModel cost_model = sim::CostModel::h100_eos();
  RunConfig config{};
  int steps = 16;
  int warmup = 4;
  /// 0 = classic sequential engine; >= 1 = partitioned parallel engine with
  /// that many worker threads (bit-identical output across N >= 1).
  int workers = 0;
  /// Forced DD grid (the gmx mdrun -dd analogue). Empty: choose_grid picks
  /// the paper's dimensionality policy. Must factor the device count.
  std::optional<dd::GridDims> dd;
};

struct CaseResult {
  PerfReport perf;
  DeviceTimingReport timing;
  dd::GridDims grid;
};

/// Observation points around a run, for callers that want to read the
/// machine (trace, counters, telemetry) without owning the run loop.
/// `configure` fires right after Machine construction, before the
/// instrumented layers register; `collect` fires after the run, before
/// teardown.
struct CaseHooks {
  std::function<void(sim::Machine&)> configure;
  std::function<void(sim::Machine&, pgas::World&)> collect;
};

/// Build the skeleton workload for `spec` and run it to completion.
/// Throws std::invalid_argument if a forced DD grid does not match the
/// topology's device count.
CaseResult run_case(const CaseSpec& spec, const CaseHooks* hooks = nullptr);

}  // namespace hs::runner
