// One self-contained benchmark case: a grappa-like skeleton workload on a
// simulated cluster, run through the GPU-resident MD schedule.
//
// Extracted from bench/common.hpp so non-bench drivers (the campaign
// sweep service, tools) can run the exact same cases the figure benches
// run: bench::CaseSpec/run_case are aliases of these.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dd/decomposition.hpp"
#include "dd/geometry.hpp"
#include "halo/workload.hpp"
#include "pgas/symmetric_heap.hpp"
#include "runner/config.hpp"
#include "runner/md_runner.hpp"
#include "runner/timing.hpp"
#include "sim/costmodel.hpp"
#include "sim/machine.hpp"

namespace hs::runner {

/// Grappa benchmark-set number density (water-like, ~100 atoms/nm^3, §6.1).
inline constexpr double kGrappaDensity = 100.0;
/// Communication cutoff = pair-list radius (cutoff + the large Verlet
/// buffer an nstlist=200 setup needs). At 1.3 nm the 90k/8-rank slabs are
/// thinner than the cutoff, giving the two-pulse "1D" decompositions the
/// paper's Fig. 7 pulse accounting implies.
inline constexpr double kCommCutoff = 1.30;

struct CaseSpec {
  long long atoms = 45000;
  sim::Topology topology = sim::Topology::dgx_h100(1, 4);
  sim::CostModel cost_model = sim::CostModel::h100_eos();
  RunConfig config{};
  int steps = 16;
  int warmup = 4;
  /// 0 = classic sequential engine; >= 1 = partitioned parallel engine with
  /// that many worker threads (bit-identical output across N >= 1).
  int workers = 0;
  /// Forced DD grid (the gmx mdrun -dd analogue). Empty: choose_grid picks
  /// the paper's dimensionality policy. Must factor the device count.
  std::optional<dd::GridDims> dd;
};

struct CaseResult {
  PerfReport perf;
  DeviceTimingReport timing;
  dd::GridDims grid;
};

/// Observation points around a run, for callers that want to read the
/// machine (trace, counters, telemetry) without owning the run loop.
/// `configure` fires right after Machine construction, before the
/// instrumented layers register; `collect` fires after the run, before
/// teardown.
struct CaseHooks {
  std::function<void(sim::Machine&)> configure;
  std::function<void(sim::Machine&, pgas::World&)> collect;
};

/// The setup-only slice of a case: everything derived from the setup
/// axes (atom count, rank count, DD grid) before any engine state
/// exists — the box, the resolved decomposition, and the skeleton
/// workload (whose ExchangePlan embeds the DomainGrid). Immutable once
/// built: `execute_case` copies the workload per run (clone-on-use), so
/// one PreparedCase is safely shared — including across threads — by
/// every case that differs only in transport / fabric / design switches
/// (sweep::PreparedStateCache keys these by the setup sub-hash).
struct PreparedCase {
  long long atoms = 0;
  int ranks = 0;
  dd::GridDims dims;        // resolved grid (forced, or choose_grid's pick)
  halo::Workload workload;  // skeleton plan; the box lives in plan.grid
};

/// Warm per-worker scratch reused across `execute_case` calls. Recycled
/// symmetric-heap arenas keep their pages committed between runs, which
/// removes the dominant per-case setup cost (arena zero-fill page
/// faults) from back-to-back executions. One scratch per thread; reuse
/// never changes results (pgas::ArenaPool re-zeroes every allocated
/// byte).
struct CaseScratch {
  pgas::ArenaPool arenas;
};

/// Build the setup-only slice of `spec`: box, DD grid, skeleton
/// workload. Throws std::invalid_argument if a forced DD grid does not
/// match the topology's device count.
PreparedCase prepare_case(const CaseSpec& spec);

/// Run `spec` against a prepared setup slice (machine, PGAS world, MD
/// schedule, result collection). `prepared` must have been built for the
/// same setup axes (atoms, rank count, forced DD) — throws
/// std::invalid_argument otherwise. `scratch`, when given, recycles
/// symmetric-heap arenas across calls on the owning thread.
CaseResult execute_case(const CaseSpec& spec, const PreparedCase& prepared,
                        CaseScratch* scratch = nullptr,
                        const CaseHooks* hooks = nullptr);

/// Build the skeleton workload for `spec` and run it to completion —
/// prepare_case + execute_case in one step.
/// Throws std::invalid_argument if a forced DD grid does not match the
/// topology's device count.
CaseResult run_case(const CaseSpec& spec, const CaseHooks* hooks = nullptr);

/// Setup-only slice of a *functional* case: a snapshot of the decomposed
/// initial system (per-rank DomainStates) plus the initial pair lists in
/// compact snapshot form. A run clones both and seeds MdRunner with the
/// list clone, skipping the per-run dd::build_pair_lists — the seeded
/// run is bit-identical to one that builds its own lists (asserted by
/// tests/runner/prepared_case_test).
struct PreparedFunctional {
  std::vector<dd::DomainState> states;
  std::vector<dd::RankPairLists> lists;  // build scratch released
};

/// Snapshot `dd`'s current states and build the initial pair lists at
/// `rlist` (must equal the plan's comm_cutoff, as in MdRunner).
PreparedFunctional prepare_functional(const dd::Decomposition& dd,
                                      double rlist);

}  // namespace hs::runner
