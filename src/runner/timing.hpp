// Device-side timing analysis — the §6.3 methodology.
//
// From the kernel trace (the simulated %%globaltimer records), computes per
// step and per rank:
//   * Local work:     start -> end of the local non-bonded kernel;
//   * Non-local work: start of the first pack to the end of the last
//                     unpack (coordinate-halo kernel start to force-halo
//                     kernel end);
//   * Non-overlap:    end of the local non-bonded kernel to the end of the
//                     last unpack, clamped at zero;
// and reports averages over the measured steps, plus the mean time per
// step (from the runner's step-completion timestamps) and the residual
// "other" per-step work.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace hs::runner {

struct DeviceTimingReport {
  double local_us = 0.0;
  double nonlocal_us = 0.0;
  double nonoverlap_us = 0.0;
  double step_us = 0.0;
  double other_us = 0.0;  // step - local - nonoverlap, clamped at zero
  int measured_steps = 0;
};

/// True if the kernel participates in the halo "pack"/coordinate phase.
bool is_pack_kernel(std::string_view name);
/// True if the kernel participates in the halo "unpack"/force phase.
bool is_unpack_kernel(std::string_view name);

/// Analyze a trace over steps [warmup, n_steps). `step_end_times` comes
/// from MdRunner::step_end_times().
DeviceTimingReport analyze_device_timing(
    const sim::Trace& trace, const std::vector<sim::SimTime>& step_end_times,
    int n_ranks, int warmup = 2);

/// Render one device's kernel timeline for one step as an ASCII Gantt chart
/// (the Figs. 1-2 schedule illustrations), grouped by stream.
void render_timeline(const sim::Trace& trace, int device, std::int64_t step,
                     std::ostream& os, int width = 72);

/// Per-kernel-name duration statistics over the measured window.
struct KernelStat {
  std::string name;
  util::RunningStats us;  // one sample per trace record
};

/// Streaming aggregation of a whole trace: kernel time by name plus the
/// per-(rank, step) exchange latency distribution (first pack-kernel start
/// to last unpack-kernel end — the §6.3 non-local window), from which the
/// benches report percentiles.
struct TraceAggregate {
  std::vector<KernelStat> kernels;        // sorted by name
  util::RunningStats exchange_us;         // one sample per (rank, step)
  std::vector<double> exchange_samples;   // same samples, for percentiles

  double exchange_percentile(double p) const {
    return util::percentile(exchange_samples, p);
  }
};

/// Aggregate records with step >= warmup.
TraceAggregate aggregate_trace(const sim::Trace& trace, int warmup = 0);

/// Table of kernel stats (count/mean/min/max) and exchange-latency
/// percentiles (p50/p90/p99).
void print_trace_aggregate(std::ostream& os, const TraceAggregate& agg);

}  // namespace hs::runner
