// Device-side timing analysis — the §6.3 methodology.
//
// From the kernel trace (the simulated %%globaltimer records), computes per
// step and per rank:
//   * Local work:     start -> end of the local non-bonded kernel;
//   * Non-local work: start of the first pack to the end of the last
//                     unpack (coordinate-halo kernel start to force-halo
//                     kernel end);
//   * Non-overlap:    end of the local non-bonded kernel to the end of the
//                     last unpack, clamped at zero;
// and reports averages over the measured steps, plus the mean time per
// step (from the runner's step-completion timestamps) and the residual
// "other" per-step work.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace hs::runner {

struct DeviceTimingReport {
  double local_us = 0.0;
  double nonlocal_us = 0.0;
  double nonoverlap_us = 0.0;
  double step_us = 0.0;
  double other_us = 0.0;  // step - local - nonoverlap, clamped at zero
  int measured_steps = 0;
};

/// True if the kernel participates in the halo "pack"/coordinate phase.
bool is_pack_kernel(std::string_view name);
/// True if the kernel participates in the halo "unpack"/force phase.
bool is_unpack_kernel(std::string_view name);

/// Analyze a trace over steps [warmup, n_steps). `step_end_times` comes
/// from MdRunner::step_end_times().
DeviceTimingReport analyze_device_timing(
    const sim::Trace& trace, const std::vector<sim::SimTime>& step_end_times,
    int n_ranks, int warmup = 2);

/// Render one device's kernel timeline for one step as an ASCII Gantt chart
/// (the Figs. 1-2 schedule illustrations), grouped by stream.
void render_timeline(const sim::Trace& trace, int device, std::int64_t step,
                     std::ostream& os, int width = 72);

}  // namespace hs::runner
