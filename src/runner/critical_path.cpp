#include "runner/critical_path.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "runner/timing.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hs::runner {

std::string_view to_string(PathCategory cat) {
  switch (cat) {
    case PathCategory::Launch: return "launch";
    case PathCategory::Pack: return "pack";
    case PathCategory::Compute: return "compute";
    case PathCategory::Transfer: return "transfer";
    case PathCategory::NicQueue: return "nic_queue";
    case PathCategory::Proxy: return "proxy";
    case PathCategory::SignalWait: return "signal_wait";
    case PathCategory::Unpack: return "unpack";
    case PathCategory::Sync: return "sync";
    case PathCategory::Other: return "other";
  }
  return "?";
}

double CriticalPathReport::category_mean_us(PathCategory cat) const {
  if (steps.empty()) return 0.0;
  return total_us[static_cast<std::size_t>(cat)] /
         static_cast<double>(steps.size());
}

double CriticalPathReport::category_percentile(PathCategory cat,
                                               double p) const {
  return util::percentile(samples[static_cast<std::size_t>(cat)], p);
}

double CriticalPathReport::window_mean_us() const {
  if (steps.empty()) return 0.0;
  return total_window_us / static_cast<double>(steps.size());
}

double CriticalPathReport::window_percentile(double p) const {
  return util::percentile(window_samples, p);
}

namespace {

// A candidate attribution interval; on overlap the highest priority wins.
struct Mark {
  sim::SimTime begin;
  sim::SimTime end;
  PathCategory cat;
  int priority;
};

// Split a Transfer span into its NIC-queue / proxy-delay / wire portions,
// clipped to [lo, hi], and append the non-empty pieces.
void add_transfer_portions(const sim::TraceRecord& t, sim::SimTime lo,
                           sim::SimTime hi, int priority,
                           std::vector<Mark>& marks) {
  const sim::SimTime q_end = t.begin + t.queue_ns;
  const sim::SimTime p_end = q_end + t.proxy_ns;
  const auto push = [&](sim::SimTime b, sim::SimTime e, PathCategory cat) {
    b = std::max(b, lo);
    e = std::min(e, hi);
    if (b < e) marks.push_back({b, e, cat, priority});
  };
  push(t.begin, q_end, PathCategory::NicQueue);
  push(q_end, p_end, PathCategory::Proxy);
  push(p_end, t.end, PathCategory::Transfer);
}

}  // namespace

CriticalPathReport compute_critical_path(const sim::Trace& trace, int warmup) {
  CriticalPathReport rep;

  // ---- Index the span graph -------------------------------------------
  std::unordered_map<std::uint64_t, const sim::TraceRecord*> by_span;
  int max_device = -1;
  for (const auto& rec : trace.records()) {
    if (rec.span != 0) by_span.emplace(rec.span, &rec);
    max_device = std::max(max_device, rec.device);
  }
  if (max_device < 0) return rep;
  const auto n_dev = static_cast<std::size_t>(max_device + 1);

  std::vector<std::vector<const sim::TraceRecord*>> kernels(n_dev);
  std::vector<std::vector<const sim::TraceRecord*>> waits(n_dev);
  std::vector<std::vector<const sim::TraceRecord*>> incoming(n_dev);
  for (const auto& rec : trace.records()) {
    const auto d = static_cast<std::size_t>(rec.device);
    switch (rec.kind) {
      case sim::SpanKind::Kernel: kernels[d].push_back(&rec); break;
      case sim::SpanKind::Wait: waits[d].push_back(&rec); break;
      case sim::SpanKind::Transfer:
        if (rec.peer >= 0 && rec.peer <= max_device) {
          incoming[static_cast<std::size_t>(rec.peer)].push_back(&rec);
        }
        break;
    }
  }
  const auto by_begin = [](const sim::TraceRecord* a,
                           const sim::TraceRecord* b) {
    return a->begin < b->begin;
  };
  for (auto& v : kernels) std::sort(v.begin(), v.end(), by_begin);
  for (auto& v : waits) std::sort(v.begin(), v.end(), by_begin);
  for (auto& v : incoming) std::sort(v.begin(), v.end(), by_begin);

  // Wait span -> producing transfer (signal set->wait under a fabric
  // cause); kernel spans gated by an event wait.
  std::unordered_map<std::uint64_t, const sim::TraceRecord*> wait_producer;
  std::unordered_set<std::uint64_t> event_gated;
  for (const auto& edge : trace.edges()) {
    if (edge.kind == sim::EdgeKind::SignalSetWait) {
      const auto it = by_span.find(edge.src);
      if (it != by_span.end() && it->second->kind == sim::SpanKind::Transfer) {
        wait_producer[edge.dst] = it->second;
      }
    } else if (edge.kind == sim::EdgeKind::EventWait) {
      event_gated.insert(edge.dst);
    }
  }

  // ---- Exchange windows (same definition as aggregate_trace) ----------
  struct Window {
    sim::SimTime pack_begin = sim::kNever;
    sim::SimTime unpack_end = -1;
  };
  std::map<std::pair<int, std::int64_t>, Window> windows;
  for (const auto& rec : trace.records()) {
    if (rec.kind != sim::SpanKind::Kernel || rec.step < warmup) continue;
    if (is_pack_kernel(rec.name)) {
      Window& w = windows[{rec.device, rec.step}];
      w.pack_begin = std::min(w.pack_begin, rec.begin);
    } else if (is_unpack_kernel(rec.name)) {
      Window& w = windows[{rec.device, rec.step}];
      w.unpack_end = std::max(w.unpack_end, rec.end);
    }
  }

  // ---- Attribute each window ------------------------------------------
  for (const auto& [key, win] : windows) {
    if (win.pack_begin == sim::kNever || win.unpack_end <= win.pack_begin) {
      continue;  // incomplete step (truncated trace)
    }
    const auto [device, step] = key;
    const auto d = static_cast<std::size_t>(device);
    const sim::SimTime w0 = win.pack_begin;
    const sim::SimTime w1 = win.unpack_end;

    std::vector<Mark> marks;
    // Priority 1: fabric transfers inbound to this device — the MPI path
    // has no wait spans, so these explain the pack->unpack gap there.
    for (const auto* t : incoming[d]) {
      if (t->end <= w0) continue;
      if (t->begin >= w1) break;
      add_transfer_portions(*t, w0, w1, 1, marks);
    }
    // Priorities 2-3: kernels. This step's halo kernels are Pack/Unpack;
    // anything else overlapping the window is overlapped Compute.
    for (const auto* k : kernels[d]) {
      if (k->end <= w0) continue;
      if (k->begin >= w1) break;
      PathCategory cat = PathCategory::Compute;
      int priority = 2;
      if (k->step == step && is_pack_kernel(k->name)) {
        cat = PathCategory::Pack;
        priority = 3;
      } else if (k->step == step && is_unpack_kernel(k->name)) {
        cat = PathCategory::Unpack;
        priority = 3;
      }
      marks.push_back({std::max(k->begin, w0), std::min(k->end, w1), cat,
                       priority});
    }
    // Priority 4: blocked signal waits; priority 5: the portions of those
    // waits explained by the producing transfer's queue/proxy/wire phases.
    for (const auto* w : waits[d]) {
      if (w->end <= w0) continue;
      if (w->begin >= w1) break;
      const sim::SimTime lo = std::max(w->begin, w0);
      const sim::SimTime hi = std::min(w->end, w1);
      marks.push_back({lo, hi, PathCategory::SignalWait, 4});
      const auto it = wait_producer.find(w->span);
      if (it != wait_producer.end()) {
        add_transfer_portions(*it->second, lo, hi, 5, marks);
      }
    }

    // Boundary sweep: every mark edge (already clipped) plus the window
    // ends partition [w0, w1] into elementary segments, each either fully
    // covered by a mark or a gap.
    std::vector<sim::SimTime> cuts{w0, w1};
    for (const Mark& m : marks) {
      cuts.push_back(m.begin);
      cuts.push_back(m.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    StepBreakdown br;
    br.device = device;
    br.step = step;
    br.window_us = sim::to_us(w1 - w0);
    const auto add = [&br](PathCategory cat, sim::SimTime ns) {
      br.us[static_cast<std::size_t>(cat)] += sim::to_us(ns);
    };

    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const sim::SimTime a = cuts[i];
      const sim::SimTime b = cuts[i + 1];
      const Mark* best = nullptr;
      for (const Mark& m : marks) {
        if (m.begin <= a && m.end >= b &&
            (best == nullptr || m.priority > best->priority)) {
          best = &m;
        }
      }
      if (best != nullptr) {
        add(best->cat, b - a);
        continue;
      }
      // Gap. If a kernel starts exactly at its end, the trailing queue_ns
      // of the gap is launch overhead; the rest is stream sync when the
      // kernel was gated on an event, otherwise unattributed host time.
      const sim::TraceRecord* next = nullptr;
      for (const auto* k : kernels[d]) {
        if (k->begin == b) {
          next = k;
          break;
        }
        if (k->begin > b) break;
      }
      if (next == nullptr) {
        add(PathCategory::Other, b - a);
        continue;
      }
      const sim::SimTime launch = std::min(b - a, next->queue_ns);
      add(PathCategory::Launch, launch);
      if (b - a > launch) {
        add(event_gated.contains(next->span) ? PathCategory::Sync
                                             : PathCategory::Other,
            (b - a) - launch);
      }
    }

    rep.total_window_us += br.window_us;
    rep.window_samples.push_back(br.window_us);
    for (int c = 0; c < kPathCategoryCount; ++c) {
      rep.total_us[static_cast<std::size_t>(c)] +=
          br.us[static_cast<std::size_t>(c)];
      rep.samples[static_cast<std::size_t>(c)].push_back(
          br.us[static_cast<std::size_t>(c)]);
    }
    rep.steps.push_back(std::move(br));
  }
  return rep;
}

void print_critical_path(std::ostream& os, const CriticalPathReport& rep) {
  os << "critical path (exchange window, " << rep.steps.size()
     << " windows, mean " << util::Table::fmt(rep.window_mean_us(), 2)
     << " us):\n";
  if (rep.steps.empty()) {
    os << "  (no complete exchange windows)\n";
    return;
  }
  util::Table table({"category", "mean us", "share %", "p50 us", "p99 us"});
  for (int c = 0; c < kPathCategoryCount; ++c) {
    const auto cat = static_cast<PathCategory>(c);
    const double mean = rep.category_mean_us(cat);
    if (mean == 0.0) continue;
    table.add_row({std::string(to_string(cat)), util::Table::fmt(mean, 2),
                   util::Table::fmt(100.0 * rep.total_us[static_cast<std::size_t>(c)] /
                                        rep.total_window_us,
                                    1),
                   util::Table::fmt(rep.category_percentile(cat, 50.0), 2),
                   util::Table::fmt(rep.category_percentile(cat, 99.0), 2)});
  }
  table.print(os);
}

}  // namespace hs::runner
