// Run configuration for the GPU-resident MD time-stepping loop.
#pragma once

#include <string>

#include "halo/tuning.hpp"
#include "pgas/world.hpp"

namespace hs::runner {

struct RunConfig {
  halo::Transport transport = halo::Transport::Shmem;
  halo::HaloTuning halo_tuning{};

  // §5.4 end-of-step schedule optimizations (both default on):
  /// Rolling-prune kernels on a dedicated low-priority stream, launched at
  /// the end of the step. Off: the original schedule — prune runs on the
  /// non-local stream right after the force kernels, where it can block
  /// integration and delay the next step's critical path.
  bool prune_low_priority_stream = true;
  /// Third, medium-priority stream for reduction + update so they preempt
  /// pruning. Off: reduction/update share the local stream.
  bool third_stream_for_update = true;

  /// §5.5 NVSHMEM proxy-thread placement (applies to IB-path ranks).
  pgas::ProxyPlacement proxy_placement = pgas::ProxyPlacement::RankPinned;

  /// §7 workaround: CPU-side PE barrier each step (reduces SM time wasted
  /// polling under imbalance at the cost of GPU residency).
  bool cpu_pe_barrier = false;

  /// CUDA-graph-style scheduling (§2.2/§3): after the first captured step,
  /// each step costs one graph launch instead of ~20 kernel-launch and ~30
  /// event-management calls. Compatible with the Shmem and ThreadMpi
  /// transports only — CPU-blocking MPI phases cannot be captured (the same
  /// restriction the paper describes for GROMACS' CUDA-graph support).
  bool use_cuda_graph = false;

  /// Cluster-pair (NxM) nonbonded fast path: SoA coordinates, 4-atom
  /// cluster lists with interaction masks, and a batched kernel with a
  /// precomputed type-pair parameter table. Off: the scalar reference
  /// kernels (same pair set; forces agree to float tolerance).
  bool use_cluster_kernels = true;

  /// Kernel ISA for the CPU-side MD math ("scalar", "sse2", "avx2",
  /// "avx512"). Empty: the HALOSIM_FORCE_ISA environment variable if set,
  /// else the widest ISA the host supports (md::simd::resolve_isa()).
  /// Forcing "sse2" reproduces the pre-dispatch 4x4 numerics bit-exactly.
  std::string kernel_isa;

  /// Verlet-buffer list reuse: rebuild a rank's pair lists only when one
  /// of its atoms has drifted farther than half the buffer
  /// ((comm_cutoff - force cutoff) / 2) from its position at the last
  /// build. Off: lists are built once at start and only pruned
  /// (pre-existing behaviour; valid for short runs inside the buffer).
  bool rebuild_on_drift = true;

  /// Rolling prune cadence in steps (0 disables pruning).
  int prune_interval = 4;

  /// MD integration timestep in femtoseconds (for ns/day accounting).
  double dt_fs = 2.0;

  /// How many steps a rank's host loop may run ahead of its GPU (models the
  /// GROMACS event-driven launch-ahead window).
  int launch_ahead_steps = 3;
};

}  // namespace hs::runner
