#include "runner/case.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "halo/workload.hpp"
#include "msg/comm.hpp"
#include "pgas/world.hpp"

namespace hs::runner {

PreparedCase prepare_case(const CaseSpec& spec) {
  const int ranks = spec.topology.device_count();
  const float box_len = static_cast<float>(
      std::cbrt(static_cast<double>(spec.atoms) / kGrappaDensity));
  const md::Box box(box_len, box_len, box_len);
  dd::GridDims dims;
  if (spec.dd.has_value()) {
    dims = *spec.dd;
    if (dims.total() != ranks) {
      throw std::invalid_argument(
          "run_case: forced DD grid " + std::to_string(dims.nx) + "x" +
          std::to_string(dims.ny) + "x" + std::to_string(dims.nz) +
          " covers " + std::to_string(dims.total()) + " ranks, topology has " +
          std::to_string(ranks));
    }
  } else {
    dims = dd::choose_grid(box, ranks, kCommCutoff);
  }
  const dd::DomainGrid grid(box, dims);

  PreparedCase prepared;
  prepared.atoms = spec.atoms;
  prepared.ranks = ranks;
  prepared.dims = dims;
  prepared.workload = halo::make_skeleton_workload(grid, kCommCutoff,
                                                   kGrappaDensity);
  return prepared;
}

CaseResult execute_case(const CaseSpec& spec, const PreparedCase& prepared,
                        CaseScratch* scratch, const CaseHooks* hooks) {
  const int ranks = spec.topology.device_count();
  if (prepared.atoms != spec.atoms || prepared.ranks != ranks ||
      (spec.dd.has_value() &&
       (prepared.dims.nx != spec.dd->nx || prepared.dims.ny != spec.dd->ny ||
        prepared.dims.nz != spec.dd->nz))) {
    throw std::invalid_argument(
        "execute_case: prepared state (atoms=" +
        std::to_string(prepared.atoms) + ", ranks=" +
        std::to_string(prepared.ranks) + ") does not match the spec's setup "
        "axes — prepare_case the same setup first");
  }

  sim::MachineOptions machine_options;
  machine_options.workers = spec.workers;
  if (spec.workers > 0 && spec.config.transport == halo::Transport::Mpi) {
    // The MPI transport is CPU-blocking across ranks and refuses the
    // partitioned engine; comparative benches keep their MPI baseline on
    // the classic engine so --workers still works for the whole suite.
    machine_options.workers = 0;
  }
  sim::Machine machine(spec.topology, spec.cost_model, machine_options);
  machine.trace().set_enabled(true);
  if (hooks != nullptr && hooks->configure) hooks->configure(machine);
  pgas::World world(machine, 64u << 20,
                    scratch != nullptr ? &scratch->arenas : nullptr);
  msg::Comm comm(machine);
  // Clone-on-use: the runner takes the workload by value, so the shared
  // prepared slice stays untouched by the run.
  MdRunner md_runner(machine, world, comm, prepared.workload, spec.config);
  md_runner.run(spec.steps);

  CaseResult result;
  result.perf = md_runner.perf(spec.warmup);
  result.timing = analyze_device_timing(machine.trace(),
                                        md_runner.step_end_times(), ranks,
                                        spec.warmup);
  result.grid = prepared.dims;
  if (hooks != nullptr && hooks->collect) hooks->collect(machine, world);
  return result;
}

CaseResult run_case(const CaseSpec& spec, const CaseHooks* hooks) {
  const PreparedCase prepared = prepare_case(spec);
  return execute_case(spec, prepared, nullptr, hooks);
}

PreparedFunctional prepare_functional(const dd::Decomposition& dd,
                                      double rlist) {
  PreparedFunctional prepared;
  prepared.states = dd.states();
  prepared.lists = dd::build_pair_lists(dd, rlist);
  for (dd::RankPairLists& lists : prepared.lists) {
    lists.release_build_scratch();
  }
  return prepared;
}

}  // namespace hs::runner
