// PP/PME rank-specialization flow (§2.2 background, §5.3 constraint, §7
// future work).
//
// GROMACS dedicates a subset of ranks to the 3D-FFT-based PME long-range
// solve (MPMD rank specialization). Every step, each PP rank ships its
// coordinates to its PME server and receives long-range forces back; the
// PME rank runs spread -> forward FFT -> reciprocal convolution -> inverse
// FFT -> force gather. The paper identifies the PP<->PME communication as
// the next target for GPU-initiated communication ("which will be key to
// fully unlock the scalability potential", §7) — this module models both
// today's CPU-initiated flow and that future GPU-initiated flow on the
// simulated cluster, and uses the pgas Team extension for the PP-only /
// PME-only symmetric buffers that §5.3 shows are impossible with
// world-collective allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "pgas/team.hpp"
#include "pgas/world.hpp"
#include "sim/machine.hpp"

namespace hs::runner {

enum class PmeCommMode {
  CpuInitiated,  // today's GROMACS: stream sync + MPI-style send per step
  GpuInitiated,  // §7 future work: device-side put-with-signal, no CPU sync
};

struct PmeFlowConfig {
  int n_pp_ranks = 3;
  int n_pme_ranks = 1;
  int atoms_per_pp_rank = 30000;
  std::array<int, 3> pme_grid = {64, 64, 64};
  PmeCommMode comm_mode = PmeCommMode::CpuInitiated;
  int steps = 12;
};

struct PmeFlowReport {
  double us_per_step = 0.0;
  /// Mean exposed PP-side wait for long-range forces (µs/step).
  double pme_wait_us = 0.0;
  int measured_steps = 0;
};

/// Run the specialized-rank pipeline on a machine whose first
/// n_pp_ranks devices are PP ranks and the rest PME ranks. Timing-level
/// (skeleton) simulation using the machine's cost model.
PmeFlowReport run_pme_flow(sim::Machine& machine, pgas::World& world,
                           const PmeFlowConfig& config);

}  // namespace hs::runner
