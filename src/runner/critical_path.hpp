// Critical-path attribution over the causal trace — the simulated analogue
// of the paper's §6.3 decomposition (Figs 6-8).
//
// For every (rank, step) the exchange window runs from the first pack
// kernel's start to the last unpack kernel's end (the same window
// aggregate_trace measures). Walking the trace's span graph backwards from
// the unpack, every nanosecond of that window is attributed to exactly one
// of the paper's categories:
//
//   Launch     — kernel dispatch/launch overhead (gap covered by queue_ns)
//   Pack       — this step's coordinate pack/comm kernels
//   Compute    — other kernels overlapping the window (nb, bonded, ...)
//   Transfer   — fabric wire/service time the device was blocked on
//   NicQueue   — time a message sat in a busy source NIC queue
//   Proxy      — extra service induced by a contended proxy thread (§5.5)
//   SignalWait — blocked signal waits not explained by a known transfer
//   Unpack     — this step's force comm/unpack kernels
//   Sync       — gaps closed by an event wait (stream synchronization)
//   Other      — residual gaps (host scheduling, un-traced dependencies)
//
// The attribution is a partition: the per-step category sums reconcile with
// the measured exchange latency exactly (the acceptance tests assert <=1%).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace hs::runner {

enum class PathCategory : int {
  Launch = 0,
  Pack,
  Compute,
  Transfer,
  NicQueue,
  Proxy,
  SignalWait,
  Unpack,
  Sync,
  Other,
};

inline constexpr int kPathCategoryCount = 10;

std::string_view to_string(PathCategory cat);

/// One exchange window's attribution; us sums exactly to window_us.
struct StepBreakdown {
  int device = -1;
  std::int64_t step = -1;
  double window_us = 0.0;
  std::array<double, kPathCategoryCount> us{};

  double attributed_us() const {
    double sum = 0.0;
    for (double v : us) sum += v;
    return sum;
  }
};

struct CriticalPathReport {
  std::vector<StepBreakdown> steps;  // ordered by (device, step)
  std::array<double, kPathCategoryCount> total_us{};
  double total_window_us = 0.0;
  /// Per-category per-window samples (same order as `steps`), for
  /// percentiles.
  std::array<std::vector<double>, kPathCategoryCount> samples;
  std::vector<double> window_samples;

  double category_mean_us(PathCategory cat) const;
  /// Percentile over per-window samples; NaN when no windows were found.
  double category_percentile(PathCategory cat, double p) const;
  double window_mean_us() const;
  double window_percentile(double p) const;
};

/// Attribute every exchange window with step >= warmup. Works on any trace;
/// without causal edges (e.g. a hand-built trace) the breakdown degrades
/// gracefully to kernel/gap categories.
CriticalPathReport compute_critical_path(const sim::Trace& trace,
                                         int warmup = 0);

/// Aligned table: per-category total, mean per window, share of the window,
/// and p50/p99 across windows.
void print_critical_path(std::ostream& os, const CriticalPathReport& report);

}  // namespace hs::runner
