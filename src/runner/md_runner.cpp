#include "runner/md_runner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "md/simd/ops.hpp"

namespace hs::runner {

MdRunner::MdRunner(sim::Machine& machine, pgas::World& world, msg::Comm& comm,
                   halo::Workload workload, RunConfig config,
                   const md::ForceField* ff,
                   const std::vector<dd::RankPairLists>* seed_lists)
    : machine_(&machine),
      world_(&world),
      comm_(&comm),
      workload_(std::move(workload)),
      config_(config),
      ff_(ff) {
  const int n = num_ranks();
  assert(n == machine.device_count());
  // Resolve the kernel ISA once (config > HALOSIM_FORCE_ISA > cpuid) so
  // every step of the run dispatches identically; throws on unknown or
  // unsupported names before any state is built.
  isa_ = md::simd::resolve_isa(config_.kernel_isa);
  if (machine.partitioned()) {
    // The MPI transport rendezvous-blocks ranks against each other through
    // a shared CPU-side comm object, and the CPU PE barrier arrives on a
    // shared engine — both assume one timeline. Parallel (partitioned)
    // runs support Shmem and ThreadMpi only.
    if (config_.transport == halo::Transport::Mpi) {
      throw std::invalid_argument(
          "MPI transport is CPU-blocking across ranks and cannot run "
          "partitioned; use workers=0 or Shmem/ThreadMpi");
    }
    if (config_.cpu_pe_barrier) {
      throw std::invalid_argument(
          "cpu_pe_barrier uses a shared host barrier and cannot run "
          "partitioned; use workers=0");
    }
  }
  if (workload_.functional()) {
    assert(ff_ != nullptr && "functional runs need a force field");
    integrator_.emplace(config_.dt_fs * 1e-3);  // fs -> ps
    if (seed_lists != nullptr) {
      assert(seed_lists->size() == static_cast<std::size_t>(n) &&
             "seed lists must cover every rank");
      lists_ = *seed_lists;
    } else {
      lists_ = dd::build_pair_lists(workload_.plan.grid, *workload_.states,
                                    workload_.plan.comm_cutoff,
                                    workload_.plan.comm_cutoff);
    }
    f_local_.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      f_local_[static_cast<std::size_t>(r)].assign(
          static_cast<std::size_t>(state(r)->n_home), md::Vec3{});
    }
    if (config_.use_cluster_kernels) {
      nb_params_.emplace(*ff_);
      nb_ws_.resize(static_cast<std::size_t>(n));
    }
    rebuild_counts_.assign(static_cast<std::size_t>(n), 0);
    // Verlet-buffer reuse: the lists (rlist = comm_cutoff) stay valid
    // until an atom drifts more than half the buffer past its build-time
    // position; a non-positive buffer disables drift rebuilds.
    const double buffer = workload_.plan.comm_cutoff - ff_->cutoff();
    if (config_.rebuild_on_drift && buffer > 0.0) {
      drift_limit2_ = (buffer / 2.0) * (buffer / 2.0);
      x_ref_.resize(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        x_ref_[static_cast<std::size_t>(r)] = state(r)->x;
      }
    }
  }

  for (int r = 0; r < n; ++r) {
    world.set_proxy_placement(r, config_.proxy_placement);
  }

  switch (config_.transport) {
    case halo::Transport::Shmem:
      shmem_ = std::make_unique<halo::ShmemHaloExchange>(
          machine, world, workload_, config_.halo_tuning);
      break;
    case halo::Transport::ThreadMpi:
      tmpi_ = std::make_unique<halo::ThreadMpiHaloExchange>(machine, workload_);
      break;
    case halo::Transport::Mpi:
      mpi_ = std::make_unique<halo::MpiHaloExchange>(machine, comm, workload_);
      break;
  }

  streams_.resize(static_cast<std::size_t>(n));
  update_events_.resize(static_cast<std::size_t>(n));
  per_rank_step_end_.resize(static_cast<std::size_t>(n));
  if (machine.telemetry_enabled()) {
    telemetry_.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto& t = telemetry_[static_cast<std::size_t>(r)];
      t.reg = &machine.telemetry_row(r);
      t.step_ns = t.reg->histogram("md.d" + std::to_string(r) + ".step_ns",
                                   "ns", r);
      // Report the dispatched ISA once at t=0 (gauge level: 0=scalar,
      // 1=sse2, 2=avx2, 3=avx512) so traces record which path ran.
      const auto isa_id = t.reg->gauge(
          "md.d" + std::to_string(r) + ".simd_isa", "level", r);
      t.reg->set(isa_id, 0, static_cast<double>(md::simd::isa_level(isa_)));
    }
  }
  for (int r = 0; r < n; ++r) {
    auto& s = streams_[static_cast<std::size_t>(r)];
    const std::string suffix = std::to_string(r);
    // Local and non-local force streams share the top priority tier (the
    // force kernels time-share the SMs); update preempts prune (§5.4).
    s.local = &machine.create_stream(r, "local" + suffix,
                                     sim::StreamPriority::kHigh);
    s.nonlocal = &machine.create_stream(r, "nonlocal" + suffix,
                                        sim::StreamPriority::kHigh);
    s.update = &machine.create_stream(r, "update" + suffix,
                                      sim::StreamPriority::kMedium);
    s.prune = &machine.create_stream(r, "prune" + suffix,
                                     sim::StreamPriority::kLow);
  }
}

int MdRunner::local_pairs_atoms(int rank) const {
  return workload_.home_atoms(rank);
}

int MdRunner::nonlocal_pairs_atoms(int rank) const {
  return workload_.halo_atoms(rank);
}

// ---- kernel builders --------------------------------------------------

sim::KernelSpec MdRunner::nb_local_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "nb_local";
  spec.sm_demand = cm.nb_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost = cm.nb_local_cost(local_pairs_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    // Local forces accumulate into the separate f_local buffer (GROMACS has
    // distinct local/non-local force outputs); ReduceF folds them into f.
    auto& fl = self->f_local_[static_cast<std::size_t>(rank)];
    const auto nh = fl.size();
    auto& lists = self->lists_[static_cast<std::size_t>(rank)];
    if (self->nb_params_.has_value()) {
      md::compute_nonbonded_clusters(
          self->workload_.plan.grid.box(), *self->nb_params_,
          lists.cluster_local, std::span<const md::Vec3>(st->x.data(), nh),
          std::span<const int>(st->type.data(), nh),
          std::span<md::Vec3>(fl.data(), nh),
          self->nb_ws_[static_cast<std::size_t>(rank)], self->isa_);
    } else {
      md::compute_nonbonded(self->workload_.plan.grid.box(), *self->ff_,
                            std::span<const md::Vec3>(st->x.data(), nh),
                            std::span<const int>(st->type.data(), nh),
                            lists.local, std::span<md::Vec3>(fl.data(), nh));
    }
    co_return;
  };
  return spec;
}

sim::KernelSpec MdRunner::bonded_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "bonded";
  spec.sm_demand = cm.nb_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  const double cost = cm.bonded_cost(local_pairs_atoms(rank));
  spec.body = [cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
  };
  return spec;
}

sim::KernelSpec MdRunner::nb_nonlocal_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "nb_nonlocal";
  spec.sm_demand = cm.nb_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost = cm.nb_nonlocal_cost(nonlocal_pairs_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    auto& lists = self->lists_[static_cast<std::size_t>(rank)];
    if (self->nb_params_.has_value()) {
      md::compute_nonbonded_clusters(
          self->workload_.plan.grid.box(), *self->nb_params_,
          lists.cluster_nonlocal, st->x, st->type, st->f,
          self->nb_ws_[static_cast<std::size_t>(rank)], self->isa_);
    } else {
      md::compute_nonbonded(self->workload_.plan.grid.box(), *self->ff_,
                            st->x, st->type, lists.nonlocal, st->f);
    }
    co_return;
  };
  return spec;
}

sim::KernelSpec MdRunner::reduce_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "reduce";
  spec.sm_demand = cm.service_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost = cm.reduce_cost(workload_.home_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    auto& fl = self->f_local_[static_cast<std::size_t>(rank)];
    md::simd::accumulate(std::span<md::Vec3>(st->f.data(), fl.size()), fl,
                         self->isa_);
    co_return;
  };
  return spec;
}

sim::KernelSpec MdRunner::integrate_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "integrate";
  spec.sm_demand = cm.service_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost = cm.integrate_cost(workload_.home_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    const auto nh = static_cast<std::size_t>(st->n_home);
    self->integrator_->step(
        self->workload_.plan.grid.box(), *self->ff_,
        std::span<const int>(st->type.data(), nh),
        std::span<const md::Vec3>(st->f.data(), nh),
        std::span<md::Vec3>(st->v.data(), nh),
        std::span<md::Vec3>(st->x.data(), nh), self->isa_);
    self->maybe_rebuild_lists(rank);
    co_return;
  };
  return spec;
}

sim::KernelSpec MdRunner::clear_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "clear";
  spec.sm_demand = cm.service_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost =
      cm.clear_cost(workload_.home_atoms(rank) + workload_.halo_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    std::fill(st->f.begin(), st->f.end(), md::Vec3{});
    auto& fl = self->f_local_[static_cast<std::size_t>(rank)];
    std::fill(fl.begin(), fl.end(), md::Vec3{});
    co_return;
  };
  return spec;
}

sim::KernelSpec MdRunner::prune_spec(int rank, std::int64_t step) {
  const auto& cm = machine_->cost();
  sim::KernelSpec spec;
  spec.name = "prune";
  spec.sm_demand = cm.service_demand;
  spec.tag = step;
  spec.dispatch_ns = cm.kernel_dispatch_ns;
  dd::DomainState* st = state(rank);
  auto* self = this;
  const double cost = cm.prune_cost(workload_.home_atoms(rank));
  spec.body = [self, st, rank, cost](sim::KernelContext& ctx) -> sim::Task {
    co_await ctx.compute(cost);
    if (st == nullptr) co_return;
    // Rolling prune: drop pairs beyond the full list radius at the current
    // positions — safe under the same Verlet-buffer argument as the list
    // itself, and it keeps the working list short between rebuilds.
    auto& lists = self->lists_[static_cast<std::size_t>(rank)];
    const double rlist = self->workload_.plan.comm_cutoff;
    const md::Box& box = self->workload_.plan.grid.box();
    lists.local.prune(box, st->x, rlist);
    lists.nonlocal.prune(box, st->x, rlist);
    lists.cluster_local.prune(box, st->x, rlist);
    lists.cluster_nonlocal.prune(box, st->x, rlist);
    co_return;
  };
  return spec;
}

void MdRunner::maybe_rebuild_lists(int rank) {
  if (drift_limit2_ < 0.0) return;
  dd::DomainState* st = state(rank);
  auto& ref = x_ref_[static_cast<std::size_t>(rank)];
  assert(ref.size() == st->x.size());
  const md::Box& box = workload_.plan.grid.box();
  bool drifted = false;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (static_cast<double>(box.distance2(st->x[i], ref[i])) >
        drift_limit2_) {
      drifted = true;
      break;
    }
  }
  if (!drifted) return;
  lists_[static_cast<std::size_t>(rank)].rebuild(
      box, st->x, st->n_home, workload_.plan.comm_cutoff);
  ref = st->x;
  ++rebuild_counts_[static_cast<std::size_t>(rank)];
}

// ---- step loop ----------------------------------------------------------

sim::Task MdRunner::rank_loop(int rank, int steps) {
  const auto& cm = machine_->cost();
  RankStreams& s = streams_[static_cast<std::size_t>(rank)];
  const bool shmem = config_.transport == halo::Transport::Shmem;
  const bool tmpi = config_.transport == halo::Transport::ThreadMpi;
  sim::Stream* upd = config_.third_stream_for_update ? s.update : s.local;

  // CUDA-graph scheduling: the first step is captured at normal API cost;
  // replays cost a single graph launch (MPI cannot be captured: its phases
  // block the CPU mid-step).
  const bool graphs_possible =
      config_.use_cuda_graph && config_.transport != halo::Transport::Mpi;

  for (int step = 0; step < steps; ++step) {
    // Launch-ahead throttle: the host may run only a few steps ahead of
    // the device (GROMACS launches tens of steps ahead; a small window
    // keeps queues bounded without ever exposing launch latency).
    if (step >= config_.launch_ahead_steps) {
      co_await update_events_[static_cast<std::size_t>(rank)]
          [static_cast<std::size_t>(step - config_.launch_ahead_steps)]
              ->wait();
    }
    const bool graph_replay = graphs_possible && step >= 1;
    const sim::SimTime launch_cost =
        graph_replay ? 0 : cm.kernel_launch_ns;
    const sim::SimTime event_cost = graph_replay ? 0 : cm.event_api_ns;
    const sim::SimTime dispatch_cost =
        graph_replay ? cm.graph_dispatch_ns : cm.kernel_dispatch_ns;
    co_await sim::Delay{graph_replay ? cm.graph_launch_ns
                                     : cm.host_step_overhead_ns};

    sim::GpuEventPtr prev =
        step > 0 ? update_events_[static_cast<std::size_t>(rank)]
                                 [static_cast<std::size_t>(step - 1)]
                 : nullptr;
    if (prev != nullptr) {
      // Positions/buffers of step-1 must be final before this step's force
      // work (GPU-side ordering only — no CPU sync).
      co_await sim::Delay{event_cost};
      s.local->wait(prev);
      co_await sim::Delay{event_cost};
      s.nonlocal->wait(prev);
    }

    // 1. Local non-bonded F on the local stream.
    co_await sim::Delay{launch_cost};
    {
      auto spec = nb_local_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      s.local->launch(std::move(spec));
    }
    co_await sim::Delay{event_cost};
    auto local_done = s.local->record();

    // 2. Coordinate halo exchange.
    if (shmem) {
      for (auto& spec : shmem_->coord_kernels(rank, step)) {
        co_await sim::Delay{launch_cost};
        spec.dispatch_ns = dispatch_cost;
        s.nonlocal->launch(std::move(spec));
      }
    } else if (tmpi) {
      // Host-async event-driven enqueue; the "join" returns as soon as all
      // launches are issued (the phase never blocks on the GPU).
      auto done = std::make_shared<sim::GpuEvent>(machine_->device_engine(rank));
      machine_->spawn_host_task_on(rank,
                                   tmpi_->coord_phase(rank, *s.nonlocal, step),
                                   [done] { done->complete(); });
      co_await done->wait();
    } else {
      // CPU-blocking MPI phases (Fig. 1). Joined via completion event.
      auto done = std::make_shared<sim::GpuEvent>(machine_->device_engine(rank));
      machine_->spawn_host_task_on(rank,
                                   mpi_->coord_phase(rank, *s.nonlocal, step),
                                   [done] { done->complete(); });
      co_await done->wait();
    }

    // 3. Bonded + non-local non-bonded F on the non-local stream.
    co_await sim::Delay{launch_cost};
    {
      auto spec = bonded_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      s.nonlocal->launch(std::move(spec));
    }
    co_await sim::Delay{launch_cost};
    {
      auto spec = nb_nonlocal_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      s.nonlocal->launch(std::move(spec));
    }

    // 4. Force halo exchange.
    if (shmem) {
      for (auto& spec : shmem_->force_kernels(rank, step)) {
        co_await sim::Delay{launch_cost};
        spec.dispatch_ns = dispatch_cost;
        s.nonlocal->launch(std::move(spec));
      }
    } else if (tmpi) {
      auto done = std::make_shared<sim::GpuEvent>(machine_->device_engine(rank));
      machine_->spawn_host_task_on(rank,
                                   tmpi_->force_phase(rank, *s.nonlocal, step),
                                   [done] { done->complete(); });
      co_await done->wait();
    } else {
      auto done = std::make_shared<sim::GpuEvent>(machine_->device_engine(rank));
      machine_->spawn_host_task_on(rank,
                                   mpi_->force_phase(rank, *s.nonlocal, step),
                                   [done] { done->complete(); });
      co_await done->wait();
    }

    // 4b. Original (§5.4-off) schedule: prune on the non-local stream right
    // after the force kernels, where it delays the reduction below.
    const bool prune_step =
        config_.prune_interval > 0 && step % config_.prune_interval == 0;
    if (prune_step && !config_.prune_low_priority_stream) {
      co_await sim::Delay{launch_cost};
      s.nonlocal->launch(prune_spec(rank, step));
    }

    co_await sim::Delay{event_cost};
    auto nonlocal_done = s.nonlocal->record();

    // 5. Reduce + integrate + clear on the update stream (§5.4: medium
    // priority so they preempt pruning).
    co_await sim::Delay{event_cost};
    upd->wait(local_done);
    co_await sim::Delay{event_cost};
    upd->wait(nonlocal_done);
    co_await sim::Delay{launch_cost};
    {
      auto spec = reduce_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      upd->launch(std::move(spec));
    }
    co_await sim::Delay{launch_cost};
    {
      auto spec = integrate_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      upd->launch(std::move(spec));
    }
    co_await sim::Delay{launch_cost};
    {
      auto spec = clear_spec(rank, step);
      spec.dispatch_ns = dispatch_cost;
      upd->launch(std::move(spec));
    }
    co_await sim::Delay{event_cost};
    auto update_done = upd->record();
    update_events_[static_cast<std::size_t>(rank)].push_back(update_done);

    auto* self = this;
    update_done->when_complete(
        [self, rank, step, eng = &machine_->device_engine(rank)] {
          const sim::SimTime now = eng->now();
          auto& ends = self->per_rank_step_end_[static_cast<std::size_t>(rank)];
          ends[static_cast<std::size_t>(step)] = now;
          if (!self->telemetry_.empty()) {
            // Step durations are rank-local: this rank's updates complete
            // in step order, so step-1's end is already recorded. Step 0
            // measures from t=0 and therefore includes setup.
            const RankTelemetry& t =
                self->telemetry_[static_cast<std::size_t>(rank)];
            const sim::SimTime prev =
                step > 0 ? ends[static_cast<std::size_t>(step - 1)] : 0;
            t.reg->observe(t.step_ns, now, static_cast<double>(now - prev));
          }
        });

    // 6. Optimized schedule: prune at end of step on the low-priority
    // stream, relaxed from the critical path (§5.4).
    if (prune_step && config_.prune_low_priority_stream) {
      co_await sim::Delay{event_cost};
      s.prune->wait(update_done);
      co_await sim::Delay{launch_cost};
      s.prune->launch(prune_spec(rank, step));
    }

    // 7. Optional CPU-side PE barrier (§7 workaround).
    if (config_.cpu_pe_barrier) {
      co_await world_->barrier_all();
    }
  }
}

void MdRunner::run(int steps) {
  assert(steps > 0);
  if (machine_->trace().enabled()) {
    // ~16 spans per rank-step (kernels + waits + transfers) is a generous
    // upper bound for the skeleton schedule; avoids growth reallocations.
    machine_->trace().reserve(machine_->trace().records().size() +
                              static_cast<std::size_t>(steps) *
                                  static_cast<std::size_t>(num_ranks()) * 16);
  }
  for (int r = 0; r < num_ranks(); ++r) {
    per_rank_step_end_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(steps), 0);
    update_events_[static_cast<std::size_t>(r)].clear();
    update_events_[static_cast<std::size_t>(r)].reserve(
        static_cast<std::size_t>(steps));
  }
  for (int r = 0; r < num_ranks(); ++r) {
    machine_->spawn_host_task_on(r, rank_loop(r, steps));
  }
  machine_->run();

  step_end_times_.assign(static_cast<std::size_t>(steps), 0);
  for (int step = 0; step < steps; ++step) {
    sim::SimTime latest = 0;
    for (int r = 0; r < num_ranks(); ++r) {
      latest = std::max(latest,
                        per_rank_step_end_[static_cast<std::size_t>(r)]
                                          [static_cast<std::size_t>(step)]);
    }
    step_end_times_[static_cast<std::size_t>(step)] = latest;
  }
}

PerfReport MdRunner::perf(int warmup) const {
  PerfReport report;
  const int steps = static_cast<int>(step_end_times_.size());
  if (steps <= warmup + 1) return report;
  const sim::SimTime window =
      step_end_times_.back() - step_end_times_[static_cast<std::size_t>(warmup)];
  report.measured_steps = steps - warmup - 1;
  report.ms_per_step =
      sim::to_ms(window) / static_cast<double>(report.measured_steps);
  // ns/day = dt[fs] * 1e-6 [ns] * steps/day.
  report.ns_per_day = 86.4 * config_.dt_fs / report.ms_per_step;
  return report;
}

}  // namespace hs::runner
