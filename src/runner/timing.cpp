#include "runner/timing.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <vector>

namespace hs::runner {

bool is_pack_kernel(std::string_view name) {
  return name.starts_with("FusedPackCommX") || name.starts_with("PackCommX") ||
         name.starts_with("PackX");
}

bool is_unpack_kernel(std::string_view name) {
  return name.starts_with("FusedCommUnpackF") ||
         name.starts_with("CommUnpackF") || name.starts_with("UnpackF");
}

DeviceTimingReport analyze_device_timing(
    const sim::Trace& trace, const std::vector<sim::SimTime>& step_end_times,
    int n_ranks, int warmup) {
  struct Cell {
    sim::SimTime local_begin = sim::kNever;
    sim::SimTime local_end = -1;
    sim::SimTime pack_begin = sim::kNever;
    sim::SimTime unpack_end = -1;
  };
  // (rank, step) -> interval endpoints.
  std::map<std::pair<int, std::int64_t>, Cell> cells;

  const auto n_steps = static_cast<std::int64_t>(step_end_times.size());
  for (const auto& rec : trace.records()) {
    if (rec.step < warmup || rec.step >= n_steps) continue;
    Cell& c = cells[{rec.device, rec.step}];
    if (rec.name == "nb_local") {
      c.local_begin = std::min(c.local_begin, rec.begin);
      c.local_end = std::max(c.local_end, rec.end);
    } else if (is_pack_kernel(rec.name)) {
      c.pack_begin = std::min(c.pack_begin, rec.begin);
    } else if (is_unpack_kernel(rec.name)) {
      c.unpack_end = std::max(c.unpack_end, rec.end);
    }
  }

  DeviceTimingReport rep;
  double local = 0, nonlocal = 0, nonoverlap = 0;
  int samples = 0;
  for (const auto& [key, c] : cells) {
    if (c.local_end < 0 || c.unpack_end < 0 || c.pack_begin == sim::kNever) {
      continue;  // incomplete step (e.g. truncated trace)
    }
    local += sim::to_us(c.local_end - c.local_begin);
    nonlocal += sim::to_us(c.unpack_end - c.pack_begin);
    nonoverlap += sim::to_us(std::max<sim::SimTime>(0, c.unpack_end - c.local_end));
    ++samples;
  }
  if (samples > 0) {
    rep.local_us = local / samples;
    rep.nonlocal_us = nonlocal / samples;
    rep.nonoverlap_us = nonoverlap / samples;
  }
  (void)n_ranks;

  if (n_steps > warmup + 1) {
    const sim::SimTime window =
        step_end_times.back() -
        step_end_times[static_cast<std::size_t>(warmup)];
    rep.measured_steps = static_cast<int>(n_steps) - warmup - 1;
    rep.step_us = sim::to_us(window) / rep.measured_steps;
    rep.other_us = std::max(0.0, rep.step_us - rep.local_us - rep.nonoverlap_us);
  }
  return rep;
}

TraceAggregate aggregate_trace(const sim::Trace& trace, int warmup) {
  TraceAggregate agg;
  std::map<std::string, util::RunningStats> by_name;
  struct Window {
    sim::SimTime pack_begin = sim::kNever;
    sim::SimTime unpack_end = -1;
  };
  std::map<std::pair<int, std::int64_t>, Window> windows;

  for (const auto& rec : trace.records()) {
    // Kernel spans only: fabric Transfer and signal Wait spans overlap the
    // stream-resident work and would double-count into the kernel stats.
    if (rec.kind != sim::SpanKind::Kernel) continue;
    if (rec.step < warmup) continue;
    by_name[rec.name].add(sim::to_us(rec.end - rec.begin));
    if (is_pack_kernel(rec.name) || is_unpack_kernel(rec.name)) {
      Window& w = windows[{rec.device, rec.step}];
      if (is_pack_kernel(rec.name)) {
        w.pack_begin = std::min(w.pack_begin, rec.begin);
      } else {
        w.unpack_end = std::max(w.unpack_end, rec.end);
      }
    }
  }

  agg.kernels.reserve(by_name.size());
  for (auto& [name, stats] : by_name) agg.kernels.push_back({name, stats});
  for (const auto& [key, w] : windows) {
    if (w.pack_begin == sim::kNever || w.unpack_end < 0) continue;
    const double us = sim::to_us(w.unpack_end - w.pack_begin);
    agg.exchange_us.add(us);
    agg.exchange_samples.push_back(us);
  }
  return agg;
}

void print_trace_aggregate(std::ostream& os, const TraceAggregate& agg) {
  os << "kernel stats (us):\n";
  for (const auto& k : agg.kernels) {
    os << "  " << k.name << ": n=" << k.us.count() << " mean="
       << k.us.mean() << " min=" << k.us.min() << " max=" << k.us.max()
       << "\n";
  }
  if (agg.kernels.empty()) os << "  (no kernels)\n";
  if (agg.exchange_us.count() > 0) {
    os << "exchange latency (us): n=" << agg.exchange_us.count()
       << " mean=" << agg.exchange_us.mean()
       << " p50=" << agg.exchange_percentile(50.0)
       << " p90=" << agg.exchange_percentile(90.0)
       << " p99=" << agg.exchange_percentile(99.0)
       << " max=" << agg.exchange_us.max() << "\n";
  }
}

void render_timeline(const sim::Trace& trace, int device, std::int64_t step,
                     std::ostream& os, int width) {
  std::vector<sim::TraceRecord> recs;
  for (const auto& r : trace.records()) {
    if (r.device == device && r.step == step) recs.push_back(r);
  }
  if (recs.empty()) {
    os << "(no trace records for device " << device << ", step " << step
       << ")\n";
    return;
  }
  sim::SimTime t0 = recs.front().begin, t1 = recs.front().end;
  for (const auto& r : recs) {
    t0 = std::min(t0, r.begin);
    t1 = std::max(t1, r.end);
  }
  std::sort(recs.begin(), recs.end(), [](const auto& a, const auto& b) {
    if (a.stream != b.stream) return a.stream < b.stream;
    return a.begin < b.begin;
  });
  const double scale = static_cast<double>(width) /
                       static_cast<double>(std::max<sim::SimTime>(1, t1 - t0));
  std::string last_stream;
  os << std::fixed << std::setprecision(1);
  for (const auto& r : recs) {
    if (r.stream != last_stream) {
      os << r.stream << ":\n";
      last_stream = r.stream;
    }
    const int b = static_cast<int>(static_cast<double>(r.begin - t0) * scale);
    const int e =
        std::max(b + 1, static_cast<int>(static_cast<double>(r.end - t0) * scale));
    std::string bar(static_cast<std::size_t>(width + 1), ' ');
    for (int i = b; i < std::min(e, width); ++i) {
      bar[static_cast<std::size_t>(i)] = '#';
    }
    os << "  |" << bar << "| " << r.name << "  [" << sim::to_us(r.begin - t0)
       << " - " << sim::to_us(r.end - t0) << " us]\n";
  }
  os << "  window: " << sim::to_us(t1 - t0) << " us\n";
}

}  // namespace hs::runner
