#include "halo/tmpi_halo.hpp"

#include <gtest/gtest.h>

#include "halo_test_util.hpp"

namespace hs::halo {
namespace {

using testing::Fixture;

void run_coord_phase(Fixture& f, ThreadMpiHaloExchange& halo,
                     std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    f.machine->spawn_host_task(
        halo.coord_phase(r, *f.streams[static_cast<std::size_t>(r)], step));
  }
  f.machine->run();
}

void run_force_phase(Fixture& f, ThreadMpiHaloExchange& halo,
                     std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    f.machine->spawn_host_task(
        halo.force_phase(r, *f.streams[static_cast<std::size_t>(r)], step));
  }
  f.machine->run();
}

struct GridCase {
  const char* name;
  dd::GridDims dims;
  int gpus;
};

class TmpiExchange : public ::testing::TestWithParam<GridCase> {};

TEST_P(TmpiExchange, CoordinateHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(1, tc.gpus));
  f.perturb_positions();
  dd::Decomposition ref = *f.dd;
  ref.exchange_coordinates();

  ThreadMpiHaloExchange halo(*f.machine, make_functional_workload(*f.dd));
  run_coord_phase(f, halo);

  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    for (int i = got.n_home; i < got.n_total(); ++i) {
      ASSERT_EQ(got.x[static_cast<std::size_t>(i)],
                want.x[static_cast<std::size_t>(i)])
          << "rank " << r << " slot " << i;
    }
  }
}

TEST_P(TmpiExchange, ForceHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(1, tc.gpus));
  f.fill_forces();
  dd::Decomposition ref = *f.dd;
  ref.exchange_forces();

  ThreadMpiHaloExchange halo(*f.machine, make_functional_workload(*f.dd));
  run_force_phase(f, halo);

  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    for (int i = 0; i < got.n_home; ++i) {
      const auto& g = got.f[static_cast<std::size_t>(i)];
      const auto& w = want.f[static_cast<std::size_t>(i)];
      const float tol = 1e-5f * md::norm(w) + 1e-3f;
      ASSERT_NEAR(g.x, w.x, tol) << "rank " << r << " atom " << i;
      ASSERT_NEAR(g.y, w.y, tol);
      ASSERT_NEAR(g.z, w.z, tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TmpiExchange,
    ::testing::Values(GridCase{"d1", dd::GridDims{4, 1, 1}, 4},
                      GridCase{"d2", dd::GridDims{2, 2, 1}, 4},
                      GridCase{"d3", dd::GridDims{2, 2, 2}, 8},
                      GridCase{"two_pulse", dd::GridDims{8, 1, 1}, 8}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TmpiHalo, RejectsInterNodeTopologies) {
  auto f = Fixture::make(dd::GridDims{4, 1, 1}, sim::Topology::dgx_h100(4, 1));
  EXPECT_THROW(ThreadMpiHaloExchange(*f.machine,
                                     make_functional_workload(*f.dd)),
               std::invalid_argument);
}

TEST(TmpiHalo, HostLoopNeverBlocksOnGpu) {
  // The defining property vs regular MPI: the coordinate phase returns as
  // soon as all launches are issued. The host-side completion time is pure
  // launch/event API cost — it must not scale with the payload, while the
  // GPU-side exchange time does.
  auto measure = [](int atoms) {
    auto f = Fixture::make(dd::GridDims{2, 2, 2},
                           sim::Topology::dgx_h100(1, 8), atoms);
    ThreadMpiHaloExchange halo(*f.machine, make_functional_workload(*f.dd));
    sim::SimTime issued = -1;
    auto* machine = f.machine.get();
    f.machine->spawn_host_task(
        halo.coord_phase(0, *f.streams[0], 0),
        [&issued, machine] { issued = machine->engine().now(); });
    for (int r = 1; r < 8; ++r) {
      f.machine->spawn_host_task(
          halo.coord_phase(r, *f.streams[static_cast<std::size_t>(r)], 0));
    }
    const sim::SimTime total = f.machine->run();
    return std::pair<sim::SimTime, sim::SimTime>(issued, total);
  };
  const auto small = measure(4000);
  const auto large = measure(16000);
  EXPECT_GT(small.first, 0);
  // Host-side issue cost identical for 4x the atoms; GPU-side time grows.
  EXPECT_EQ(small.first, large.first);
  EXPECT_GT(large.second, small.second);
}

}  // namespace
}  // namespace hs::halo
