#include "halo/workload.hpp"

#include <gtest/gtest.h>

#include "md/system.hpp"

namespace hs::halo {
namespace {

TEST(SkeletonWorkload, MirrorsFunctionalPlanStructure) {
  md::GrappaSpec spec;
  spec.target_atoms = 20000;
  spec.density = 50.0;
  md::System sys = md::build_grappa(spec);
  dd::Decomposition decomp(sys, dd::GridDims{2, 2, 2}, 0.9);

  const Workload functional = make_functional_workload(decomp);
  const Workload skeleton =
      make_skeleton_workload(decomp.grid(), 0.9, spec.density);

  EXPECT_FALSE(skeleton.functional());
  EXPECT_TRUE(functional.functional());
  ASSERT_EQ(skeleton.plan.total_pulses(), functional.plan.total_pulses());
  EXPECT_EQ(skeleton.plan.pulse_dims, functional.plan.pulse_dims);

  for (std::size_t r = 0; r < skeleton.plan.ranks.size(); ++r) {
    const auto& sk = skeleton.plan.ranks[r];
    const auto& fn = functional.plan.ranks[r];
    EXPECT_NEAR(sk.n_home, fn.n_home, 0.10 * fn.n_home + 20);
    for (std::size_t p = 0; p < sk.pulses.size(); ++p) {
      const auto& sp = sk.pulses[p];
      const auto& fp = fn.pulses[p];
      EXPECT_EQ(sp.send_rank, fp.send_rank) << "pulse " << p;
      EXPECT_EQ(sp.recv_rank, fp.recv_rank) << "pulse " << p;
      EXPECT_EQ(sp.dim, fp.dim);
      EXPECT_NEAR(sp.send_size, fp.send_size, 0.15 * fp.send_size + 25)
          << "pulse " << p;
      EXPECT_NEAR(sp.num_dependent, fp.num_dependent,
                  0.25 * fp.num_dependent + 25)
          << "pulse " << p;
    }
  }
}

TEST(SkeletonWorkload, TwoPulseStructure) {
  const md::Box box(4.0f, 10, 10);
  const dd::DomainGrid grid(box, dd::GridDims{8, 1, 1});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  ASSERT_EQ(w.plan.total_pulses(), 2);
  const auto& rp = w.plan.ranks[0];
  EXPECT_EQ(rp.pulses[1].num_dependent, rp.pulses[1].send_size);
  EXPECT_EQ(rp.pulses[1].first_dependent_pulse, 0);
  EXPECT_EQ(rp.pulses[0].num_dependent, 0);
}

TEST(SkeletonWorkload, OffsetsAreCumulative) {
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{2, 2, 2});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  for (const auto& rp : w.plan.ranks) {
    int expect = rp.n_home;
    for (const auto& pd : rp.pulses) {
      EXPECT_EQ(pd.atom_offset, expect);
      expect += pd.recv_size;
    }
    EXPECT_EQ(rp.n_total, expect);
  }
}

TEST(SkeletonWorkload, HaloAtomsAccessor) {
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{4, 1, 1});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  EXPECT_GT(w.halo_atoms(0), 0);
  EXPECT_GT(w.home_atoms(0), 0);
  EXPECT_NEAR(w.home_atoms(0), 12.0 * 12 * 12 * 100 / 4, 5.0);
}

}  // namespace
}  // namespace hs::halo
