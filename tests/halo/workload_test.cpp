#include "halo/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::halo {
namespace {

std::vector<md::Vec3> random_vecs(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<md::Vec3> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(md::Vec3{static_cast<float>(rng.uniform(-5, 5)),
                         static_cast<float>(rng.uniform(-5, 5)),
                         static_cast<float>(rng.uniform(-5, 5))});
  }
  return v;
}

TEST(HaloPackUnpack, MatchesScalarLoopBitExactly) {
  // pack_coordinates/unpack_forces are the SIMD-dispatched gathers the
  // transports use; both are elementwise, so whatever ISA is active they
  // must equal the plain loops bit-for-bit (sizes straddle lane tails).
  for (const int count : {1, 7, 8, 9, 64, 203}) {
    const auto x = random_vecs(500, 10 + static_cast<std::uint64_t>(count));
    std::vector<int> map;
    for (int k = 0; k < count; ++k) map.push_back((k * 7) % 500);
    const md::Vec3 shift{1.5f, -12.0f, 0.0f};

    std::vector<md::Vec3> packed(static_cast<std::size_t>(count));
    pack_coordinates(x, map, 0, static_cast<std::size_t>(count), shift,
                     packed.data());
    for (int k = 0; k < count; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      EXPECT_EQ(packed[ks], x[static_cast<std::size_t>(map[ks])] + shift)
          << count << "/" << k;
    }

    // Force unpack accumulates into existing values through a unique map.
    std::vector<int> umap;
    for (int k = 0; k < count; ++k) umap.push_back(k * 2);
    auto f = random_vecs(500, 20 + static_cast<std::uint64_t>(count));
    const auto f_before = f;
    const auto incoming = random_vecs(count,
                                      30 + static_cast<std::uint64_t>(count));
    unpack_forces(f, umap, incoming);
    for (int i = 0; i < 500; ++i) {
      const auto is = static_cast<std::size_t>(i);
      md::Vec3 expect = f_before[is];
      for (int k = 0; k < count; ++k) {
        if (umap[static_cast<std::size_t>(k)] == i) {
          expect += incoming[static_cast<std::size_t>(k)];
        }
      }
      EXPECT_EQ(f[is], expect) << count << "/" << i;
    }
  }
}

TEST(HaloPackUnpack, SubRangePackMatchesWholePack) {
  const auto x = random_vecs(300, 40);
  std::vector<int> map;
  for (int k = 0; k < 190; ++k) map.push_back((k * 11) % 300);
  const md::Vec3 shift{0.0f, 6.0f, -6.0f};
  std::vector<md::Vec3> whole(map.size());
  pack_coordinates(x, map, 0, map.size(), shift, whole.data());
  std::vector<md::Vec3> chunked(map.size());
  pack_coordinates(x, map, 0, 77, shift, chunked.data());
  pack_coordinates(x, map, 77, map.size() - 77, shift, chunked.data() + 77);
  for (std::size_t k = 0; k < map.size(); ++k) {
    EXPECT_EQ(chunked[k], whole[k]) << k;
  }
}

TEST(SkeletonWorkload, MirrorsFunctionalPlanStructure) {
  md::GrappaSpec spec;
  spec.target_atoms = 20000;
  spec.density = 50.0;
  md::System sys = md::build_grappa(spec);
  dd::Decomposition decomp(sys, dd::GridDims{2, 2, 2}, 0.9);

  const Workload functional = make_functional_workload(decomp);
  const Workload skeleton =
      make_skeleton_workload(decomp.grid(), 0.9, spec.density);

  EXPECT_FALSE(skeleton.functional());
  EXPECT_TRUE(functional.functional());
  ASSERT_EQ(skeleton.plan.total_pulses(), functional.plan.total_pulses());
  EXPECT_EQ(skeleton.plan.pulse_dims, functional.plan.pulse_dims);

  for (std::size_t r = 0; r < skeleton.plan.ranks.size(); ++r) {
    const auto& sk = skeleton.plan.ranks[r];
    const auto& fn = functional.plan.ranks[r];
    EXPECT_NEAR(sk.n_home, fn.n_home, 0.10 * fn.n_home + 20);
    for (std::size_t p = 0; p < sk.pulses.size(); ++p) {
      const auto& sp = sk.pulses[p];
      const auto& fp = fn.pulses[p];
      EXPECT_EQ(sp.send_rank, fp.send_rank) << "pulse " << p;
      EXPECT_EQ(sp.recv_rank, fp.recv_rank) << "pulse " << p;
      EXPECT_EQ(sp.dim, fp.dim);
      EXPECT_NEAR(sp.send_size, fp.send_size, 0.15 * fp.send_size + 25)
          << "pulse " << p;
      EXPECT_NEAR(sp.num_dependent, fp.num_dependent,
                  0.25 * fp.num_dependent + 25)
          << "pulse " << p;
    }
  }
}

TEST(SkeletonWorkload, TwoPulseStructure) {
  const md::Box box(4.0f, 10, 10);
  const dd::DomainGrid grid(box, dd::GridDims{8, 1, 1});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  ASSERT_EQ(w.plan.total_pulses(), 2);
  const auto& rp = w.plan.ranks[0];
  EXPECT_EQ(rp.pulses[1].num_dependent, rp.pulses[1].send_size);
  EXPECT_EQ(rp.pulses[1].first_dependent_pulse, 0);
  EXPECT_EQ(rp.pulses[0].num_dependent, 0);
}

TEST(SkeletonWorkload, OffsetsAreCumulative) {
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{2, 2, 2});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  for (const auto& rp : w.plan.ranks) {
    int expect = rp.n_home;
    for (const auto& pd : rp.pulses) {
      EXPECT_EQ(pd.atom_offset, expect);
      expect += pd.recv_size;
    }
    EXPECT_EQ(rp.n_total, expect);
  }
}

TEST(SkeletonWorkload, HaloAtomsAccessor) {
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{4, 1, 1});
  const Workload w = make_skeleton_workload(grid, 0.9, 100.0);
  EXPECT_GT(w.halo_atoms(0), 0);
  EXPECT_GT(w.home_atoms(0), 0);
  EXPECT_NEAR(w.home_atoms(0), 12.0 * 12 * 12 * 100 / 4, 5.0);
}

}  // namespace
}  // namespace hs::halo
