// Cross-transport properties: both implementations move identical data,
// and the timing relations the paper reports hold in the model.
#include <gtest/gtest.h>

#include "halo/mpi_halo.hpp"
#include "halo/shmem_halo.hpp"
#include "halo_test_util.hpp"

namespace hs::halo {
namespace {

using testing::Fixture;

TEST(TransportEquivalence, CoordinateDataIdenticalAcrossTransports) {
  const dd::GridDims dims{2, 2, 1};
  const auto topo = sim::Topology::dgx_h100(2, 2);

  auto fa = Fixture::make(dims, topo);
  fa.perturb_positions();
  auto fb = Fixture::make(dims, topo);
  fb.perturb_positions();  // same seed => same state

  ShmemHaloExchange shmem(*fa.machine, *fa.world,
                          make_functional_workload(*fa.dd));
  for (int r = 0; r < fa.dd->num_ranks(); ++r) {
    for (auto& spec : shmem.coord_kernels(r, 0)) {
      fa.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
    }
  }
  fa.machine->run();

  MpiHaloExchange mpi(*fb.machine, *fb.comm, make_functional_workload(*fb.dd));
  for (int r = 0; r < fb.dd->num_ranks(); ++r) {
    fb.machine->spawn_host_task(
        mpi.coord_phase(r, *fb.streams[static_cast<std::size_t>(r)], 0));
  }
  fb.machine->run();

  for (std::size_t r = 0; r < fa.dd->states().size(); ++r) {
    const auto& a = fa.dd->states()[r];
    const auto& b = fb.dd->states()[r];
    for (int i = a.n_home; i < a.n_total(); ++i) {
      ASSERT_EQ(a.x[static_cast<std::size_t>(i)],
                b.x[static_cast<std::size_t>(i)])
          << "rank " << r << " slot " << i;
    }
  }
}

TEST(TransportEquivalence, ShmemCoordinatePhaseIsFasterIntraNode) {
  // The headline claim at communication-bound sizes: the GPU-initiated
  // fused exchange beats the CPU-initiated MPI path. Compare isolated
  // coordinate phases on a 4-GPU NVLink node.
  const dd::GridDims dims{4, 1, 1};
  sim::SimTime t_shmem, t_mpi;
  {
    auto f = Fixture::make(dims, sim::Topology::dgx_h100(1, 4));
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd));
    for (int r = 0; r < 4; ++r) {
      for (auto& spec : halo.coord_kernels(r, 0)) {
        f.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
      }
    }
    f.machine->run();
    t_shmem = f.machine->engine().now();
  }
  {
    auto f = Fixture::make(dims, sim::Topology::dgx_h100(1, 4));
    MpiHaloExchange halo(*f.machine, *f.comm, make_functional_workload(*f.dd));
    for (int r = 0; r < 4; ++r) {
      f.machine->spawn_host_task(
          halo.coord_phase(r, *f.streams[static_cast<std::size_t>(r)], 0));
    }
    f.machine->run();
    t_mpi = f.machine->engine().now();
  }
  EXPECT_LT(t_shmem, t_mpi);
}

TEST(TransportEquivalence, MultiPulseAdvantageGrowsWithDimensionality) {
  // Fused pulses overlap; MPI pulses serialize with CPU round-trips. The
  // SHMEM advantage on the coordinate phase should be larger for 3D than
  // for 1D (the paper's motivation for fusing phases).
  auto measure = [](dd::GridDims dims, int nodes, int gpn) {
    sim::SimTime t_shmem, t_mpi;
    {
      auto f = Fixture::make(dims, sim::Topology::dgx_h100(nodes, gpn), 8000);
      ShmemHaloExchange halo(*f.machine, *f.world,
                             make_functional_workload(*f.dd));
      for (int r = 0; r < f.dd->num_ranks(); ++r) {
        for (auto& spec : halo.coord_kernels(r, 0)) {
          f.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
        }
      }
      f.machine->run();
      t_shmem = f.machine->engine().now();
    }
    {
      auto f = Fixture::make(dims, sim::Topology::dgx_h100(nodes, gpn), 8000);
      MpiHaloExchange halo(*f.machine, *f.comm,
                           make_functional_workload(*f.dd));
      for (int r = 0; r < f.dd->num_ranks(); ++r) {
        f.machine->spawn_host_task(
            halo.coord_phase(r, *f.streams[static_cast<std::size_t>(r)], 0));
      }
      f.machine->run();
      t_mpi = f.machine->engine().now();
    }
    return static_cast<double>(t_mpi - t_shmem);
  };

  const double gain_1d = measure(dd::GridDims{8, 1, 1}, 1, 8);
  const double gain_3d = measure(dd::GridDims{2, 2, 2}, 1, 8);
  EXPECT_GT(gain_3d, gain_1d * 1.2);
}

TEST(TransportEquivalence, ProxyContentionOnlyHurtsIbShmem) {
  // §5.5: a contended proxy thread slows the IB path dramatically.
  auto run_once = [](double proxy_factor) {
    auto f = Fixture::make(dd::GridDims{4, 1, 1}, sim::Topology::dgx_h100(4, 1));
    for (int r = 0; r < 4; ++r) {
      f.world->set_proxy_placement(r, proxy_factor > 1.0
                                          ? pgas::ProxyPlacement::ContendedCore
                                          : pgas::ProxyPlacement::ReservedCore);
    }
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd));
    for (int r = 0; r < 4; ++r) {
      for (auto& spec : halo.coord_kernels(r, 0)) {
        f.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
      }
    }
    f.machine->run();
    return f.machine->engine().now();
  };
  const auto healthy = run_once(1.0);
  const auto contended = run_once(50.0);
  EXPECT_GT(contended, healthy * 2);
}

}  // namespace
}  // namespace hs::halo
