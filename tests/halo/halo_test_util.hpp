// Shared fixtures for halo-exchange tests: build a small grappa system,
// decompose it, wire up a simulated machine, and drive one exchange.
#pragma once

#include <memory>
#include <vector>

#include "dd/decomposition.hpp"
#include "halo/mpi_halo.hpp"
#include "halo/shmem_halo.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::halo::testing {

struct Fixture {
  std::unique_ptr<dd::Decomposition> dd;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<pgas::World> world;
  std::unique_ptr<msg::Comm> comm;
  std::vector<sim::Stream*> streams;

  static Fixture make(dd::GridDims dims, sim::Topology topo,
                      int atoms = 4000, double rc = 1.0,
                      std::uint64_t seed = 5) {
    md::GrappaSpec spec;
    spec.target_atoms = atoms;
    spec.density = 50.0;
    spec.seed = seed;
    Fixture f;
    f.dd = std::make_unique<dd::Decomposition>(md::build_grappa(spec), dims, rc);
    f.machine = std::make_unique<sim::Machine>(topo, sim::CostModel::h100_eos());
    f.world = std::make_unique<pgas::World>(*f.machine, 8u << 20);
    f.comm = std::make_unique<msg::Comm>(*f.machine);
    for (int r = 0; r < f.dd->num_ranks(); ++r) {
      f.streams.push_back(&f.machine->create_stream(
          r, "nonlocal" + std::to_string(r), sim::StreamPriority::kHigh));
    }
    return f;
  }

  /// Perturb home positions deterministically (stay within domains).
  void perturb_positions(std::uint64_t seed = 17) {
    util::Rng rng(seed);
    for (auto& st : dd->states()) {
      for (int i = 0; i < st.n_home; ++i) {
        auto& p = st.x[static_cast<std::size_t>(i)];
        p.x += static_cast<float>(rng.uniform(-5e-4, 5e-4));
        p.y += static_cast<float>(rng.uniform(-5e-4, 5e-4));
        p.z += static_cast<float>(rng.uniform(-5e-4, 5e-4));
      }
    }
  }

  /// Fill force arrays with deterministic per-slot values: home forces from
  /// the gid, halo slots with distinct contributions.
  void fill_forces() {
    for (auto& st : dd->states()) {
      for (int i = 0; i < st.n_total(); ++i) {
        const float g =
            static_cast<float>(st.global_id[static_cast<std::size_t>(i)] + 1);
        const float slot = i >= st.n_home ? 0.25f : 1.0f;
        st.f[static_cast<std::size_t>(i)] =
            md::Vec3{g * slot, g * 0.5f * slot, -g * slot};
      }
    }
  }
};

}  // namespace hs::halo::testing
