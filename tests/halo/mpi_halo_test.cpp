#include "halo/mpi_halo.hpp"

#include <gtest/gtest.h>

#include "halo_test_util.hpp"

namespace hs::halo {
namespace {

using testing::Fixture;

void run_coord_phase(Fixture& f, MpiHaloExchange& halo, std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    f.machine->spawn_host_task(
        halo.coord_phase(r, *f.streams[static_cast<std::size_t>(r)], step));
  }
  f.machine->run();
}

void run_force_phase(Fixture& f, MpiHaloExchange& halo, std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    f.machine->spawn_host_task(
        halo.force_phase(r, *f.streams[static_cast<std::size_t>(r)], step));
  }
  f.machine->run();
}

struct TopoCase {
  const char* name;
  dd::GridDims dims;
  int nodes;
  int gpus_per_node;
};

class MpiExchange : public ::testing::TestWithParam<TopoCase> {};

TEST_P(MpiExchange, CoordinateHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node));
  f.perturb_positions();
  dd::Decomposition ref = *f.dd;
  ref.exchange_coordinates();

  MpiHaloExchange halo(*f.machine, *f.comm, make_functional_workload(*f.dd));
  run_coord_phase(f, halo);

  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    for (int i = got.n_home; i < got.n_total(); ++i) {
      ASSERT_EQ(got.x[static_cast<std::size_t>(i)],
                want.x[static_cast<std::size_t>(i)])
          << "rank " << r << " slot " << i;
    }
  }
}

TEST_P(MpiExchange, ForceHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node));
  f.fill_forces();
  dd::Decomposition ref = *f.dd;
  ref.exchange_forces();

  MpiHaloExchange halo(*f.machine, *f.comm, make_functional_workload(*f.dd));
  run_force_phase(f, halo);

  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    for (int i = 0; i < got.n_home; ++i) {
      const auto& g = got.f[static_cast<std::size_t>(i)];
      const auto& w = want.f[static_cast<std::size_t>(i)];
      const float tol = 1e-5f * md::norm(w) + 1e-3f;
      ASSERT_NEAR(g.x, w.x, tol) << "rank " << r << " atom " << i;
      ASSERT_NEAR(g.y, w.y, tol);
      ASSERT_NEAR(g.z, w.z, tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MpiExchange,
    ::testing::Values(
        TopoCase{"nvlink_1d", dd::GridDims{4, 1, 1}, 1, 4},
        TopoCase{"ib_2d", dd::GridDims{2, 2, 1}, 4, 1},
        TopoCase{"mixed_3d", dd::GridDims{2, 2, 2}, 2, 4},
        TopoCase{"two_pulse", dd::GridDims{8, 1, 1}, 1, 8}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MpiHalo, EachPulseCostsCpuSynchronization) {
  // The MPI coordinate phase serializes pulses with CPU-GPU syncs; a 3D
  // decomposition (3 pulses) must take at least 3x the per-pulse control
  // cost even with empty payloads.
  auto f = Fixture::make(dd::GridDims{2, 2, 2}, sim::Topology::dgx_h100(1, 8));
  MpiHaloExchange halo(*f.machine, *f.comm, make_functional_workload(*f.dd));
  run_coord_phase(f, halo);
  const auto& cm = f.machine->cost();
  const sim::SimTime min_control =
      3 * (cm.kernel_launch_ns + cm.stream_sync_ns + cm.mpi_call_ns);
  EXPECT_GT(f.machine->engine().now(), min_control);
}

TEST(MpiHalo, SkeletonModeRuns) {
  sim::Machine machine(sim::Topology::dgx_h100(2, 2),
                       sim::CostModel::h100_eos());
  msg::Comm comm(machine);
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{2, 2, 1});
  MpiHaloExchange halo(machine, comm,
                       make_skeleton_workload(grid, 0.9, 100.0));
  std::vector<sim::Stream*> streams;
  for (int r = 0; r < 4; ++r) {
    streams.push_back(&machine.create_stream(r, "s" + std::to_string(r),
                                             sim::StreamPriority::kHigh));
  }
  for (int r = 0; r < 4; ++r) {
    machine.spawn_host_task(halo.coord_phase(r, *streams[static_cast<std::size_t>(r)], 0));
  }
  machine.run();
  EXPECT_GT(machine.engine().now(), 0);
}

}  // namespace
}  // namespace hs::halo
