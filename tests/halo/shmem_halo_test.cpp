#include "halo/shmem_halo.hpp"

#include <gtest/gtest.h>

#include "halo_test_util.hpp"

namespace hs::halo {
namespace {

using testing::Fixture;

/// Launch the coordinate kernels for every rank and drain the machine.
void run_coord_exchange(Fixture& f, ShmemHaloExchange& halo,
                        std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    for (auto& spec : halo.coord_kernels(r, step)) {
      f.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
    }
  }
  f.machine->run();
}

void run_force_exchange(Fixture& f, ShmemHaloExchange& halo,
                        std::int64_t step = 0) {
  for (int r = 0; r < f.dd->num_ranks(); ++r) {
    for (auto& spec : halo.force_kernels(r, step)) {
      f.streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
    }
  }
  f.machine->run();
}

void expect_halo_coords_match(const Fixture& f, const dd::Decomposition& ref) {
  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    ASSERT_EQ(got.n_total(), want.n_total());
    for (int i = got.n_home; i < got.n_total(); ++i) {
      EXPECT_EQ(got.x[static_cast<std::size_t>(i)],
                want.x[static_cast<std::size_t>(i)])
          << "rank " << r << " slot " << i;
    }
  }
}

void expect_home_forces_match(const Fixture& f, const dd::Decomposition& ref) {
  for (std::size_t r = 0; r < f.dd->states().size(); ++r) {
    const auto& got = f.dd->states()[r];
    const auto& want = ref.states()[r];
    for (int i = 0; i < got.n_home; ++i) {
      const auto& g = got.f[static_cast<std::size_t>(i)];
      const auto& w = want.f[static_cast<std::size_t>(i)];
      const float tol = 1e-5f * md::norm(w) + 1e-3f;
      ASSERT_NEAR(g.x, w.x, tol) << "rank " << r << " atom " << i;
      ASSERT_NEAR(g.y, w.y, tol);
      ASSERT_NEAR(g.z, w.z, tol);
    }
  }
}

struct TopoCase {
  const char* name;
  dd::GridDims dims;
  int nodes;
  int gpus_per_node;
};

class ShmemExchange : public ::testing::TestWithParam<TopoCase> {};

TEST_P(ShmemExchange, CoordinateHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node));
  f.perturb_positions();
  dd::Decomposition ref = *f.dd;  // same perturbed home positions
  ref.exchange_coordinates();

  ShmemHaloExchange halo(*f.machine, *f.world,
                         make_functional_workload(*f.dd));
  run_coord_exchange(f, halo);
  expect_halo_coords_match(f, ref);
  EXPECT_GT(f.machine->engine().now(), 0);
}

TEST_P(ShmemExchange, ForceHaloMatchesReference) {
  const auto& tc = GetParam();
  auto f = Fixture::make(tc.dims, sim::Topology::dgx_h100(tc.nodes, tc.gpus_per_node));
  f.fill_forces();
  dd::Decomposition ref = *f.dd;
  ref.exchange_forces();

  ShmemHaloExchange halo(*f.machine, *f.world,
                         make_functional_workload(*f.dd));
  run_force_exchange(f, halo);
  expect_home_forces_match(f, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ShmemExchange,
    ::testing::Values(
        TopoCase{"nvlink_1d", dd::GridDims{4, 1, 1}, 1, 4},
        TopoCase{"nvlink_3d", dd::GridDims{2, 2, 2}, 1, 8},
        TopoCase{"ib_1d", dd::GridDims{4, 1, 1}, 4, 1},
        TopoCase{"mixed_2d", dd::GridDims{2, 2, 1}, 2, 2},
        TopoCase{"ib_3d", dd::GridDims{2, 2, 2}, 8, 1},
        TopoCase{"nvlink_two_pulse", dd::GridDims{8, 1, 1}, 1, 8}),
    [](const auto& info) { return std::string(info.param.name); });

struct TuningCase {
  const char* name;
  HaloTuning tuning;
};

class ShmemAblations : public ::testing::TestWithParam<TuningCase> {};

TEST_P(ShmemAblations, ProduceIdenticalDataOnMixedTopology) {
  // Every design ablation changes timing, never results.
  auto f = Fixture::make(dd::GridDims{2, 2, 1}, sim::Topology::dgx_h100(2, 2));
  f.perturb_positions();
  f.fill_forces();
  dd::Decomposition ref = *f.dd;
  ref.exchange_coordinates();
  ref.exchange_forces();

  ShmemHaloExchange halo(*f.machine, *f.world,
                         make_functional_workload(*f.dd), GetParam().tuning);
  run_coord_exchange(f, halo, 0);
  run_force_exchange(f, halo, 0);
  expect_halo_coords_match(f, ref);
  expect_home_forces_match(f, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, ShmemAblations,
    ::testing::Values(
        TuningCase{"full_design", HaloTuning{}},
        TuningCase{"serialized_pulses", HaloTuning{false, true, true, true}},
        TuningCase{"no_dependency_partitioning",
                   HaloTuning{true, false, true, true}},
        TuningCase{"no_tma", HaloTuning{true, true, false, true}},
        TuningCase{"no_fused_signaling", HaloTuning{true, true, true, false}},
        TuningCase{"all_off", HaloTuning{false, false, false, false}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ShmemHalo, FusedIsNotSlowerThanSerializedPulses) {
  const dd::GridDims dims{2, 2, 2};
  sim::SimTime fused_time, serial_time;
  {
    auto f = Fixture::make(dims, sim::Topology::dgx_h100(1, 8));
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd), HaloTuning{});
    run_coord_exchange(f, halo);
    fused_time = f.machine->engine().now();
  }
  {
    auto f = Fixture::make(dims, sim::Topology::dgx_h100(1, 8));
    HaloTuning t;
    t.fuse_pulses = false;
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd), t);
    run_coord_exchange(f, halo);
    serial_time = f.machine->engine().now();
  }
  EXPECT_LE(fused_time, serial_time);
}

TEST(ShmemHalo, SignalsAreMonotonicAcrossSteps) {
  // Two steps through the same signal arrays: step 1 must not be satisfied
  // by step 0's values.
  auto f = Fixture::make(dd::GridDims{4, 1, 1}, sim::Topology::dgx_h100(1, 4));
  ShmemHaloExchange halo(*f.machine, *f.world,
                         make_functional_workload(*f.dd));
  run_coord_exchange(f, halo, 0);
  // The reuse-protection protocol requires the step-0 force kernels to run
  // (they acknowledge halo consumption) before step-1 coordinates may land.
  run_force_exchange(f, halo, 0);
  const sim::SimTime t0 = f.machine->engine().now();
  f.perturb_positions(99);
  dd::Decomposition ref = *f.dd;
  ref.exchange_coordinates();
  run_coord_exchange(f, halo, 1);
  EXPECT_GT(f.machine->engine().now(), t0);
  expect_halo_coords_match(f, ref);
}

TEST(ShmemHalo, SkeletonModeRunsWithoutData) {
  sim::Machine machine(sim::Topology::dgx_h100(4, 1),
                       sim::CostModel::h100_eos());
  pgas::World world(machine, 8u << 20);
  const md::Box box(12, 12, 12);
  const dd::DomainGrid grid(box, dd::GridDims{4, 1, 1});
  ShmemHaloExchange halo(machine, world,
                         make_skeleton_workload(grid, 0.9, 100.0));
  std::vector<sim::Stream*> streams;
  for (int r = 0; r < 4; ++r) {
    streams.push_back(&machine.create_stream(r, "s" + std::to_string(r),
                                             sim::StreamPriority::kHigh));
  }
  for (int r = 0; r < 4; ++r) {
    for (auto& spec : halo.coord_kernels(r, 0)) {
      streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
    }
    for (auto& spec : halo.force_kernels(r, 0)) {
      streams[static_cast<std::size_t>(r)]->launch(std::move(spec));
    }
  }
  machine.run();
  EXPECT_GT(machine.engine().now(), 0);
  for (auto* s : streams) EXPECT_TRUE(s->idle());
}

TEST(ShmemHalo, UsesIbReflectsTopology) {
  {
    auto f = Fixture::make(dd::GridDims{4, 1, 1}, sim::Topology::dgx_h100(1, 4));
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd));
    EXPECT_FALSE(halo.uses_ib(0));
  }
  {
    auto f = Fixture::make(dd::GridDims{4, 1, 1}, sim::Topology::dgx_h100(4, 1));
    ShmemHaloExchange halo(*f.machine, *f.world,
                           make_functional_workload(*f.dd));
    EXPECT_TRUE(halo.uses_ib(0));
  }
}

}  // namespace
}  // namespace hs::halo
