#include "pgas/team.hpp"

#include <gtest/gtest.h>

namespace hs::pgas {
namespace {

using sim::CostModel;
using sim::Topology;

TEST(Team, MembershipMapping) {
  sim::Machine m(Topology::dgx_h100(1, 8), CostModel::h100_eos());
  World w(m, 1 << 20);
  Team& team = w.create_team({0, 2, 5});
  EXPECT_EQ(team.size(), 3);
  EXPECT_EQ(team.world_pe(1), 2);
  EXPECT_EQ(team.index_of(5), 2);
  EXPECT_EQ(team.index_of(1), -1);
  EXPECT_TRUE(team.contains(0));
  EXPECT_FALSE(team.contains(7));
}

TEST(Team, RejectsInvalidMemberSets) {
  sim::Machine m(Topology::dgx_h100(1, 4), CostModel::h100_eos());
  World w(m, 1 << 20);
  EXPECT_THROW(w.create_team({}), std::invalid_argument);
  EXPECT_THROW(w.create_team({0, 0}), std::invalid_argument);
  EXPECT_THROW(w.create_team({0, 9}), std::invalid_argument);
}

TEST(Team, AllocationIsTeamLocal) {
  // The §5.3 clash, resolved: a PP-only buffer costs nothing on PME PEs.
  sim::Machine m(Topology::dgx_h100(2, 4), CostModel::h100_eos());
  World w(m, 1 << 20);
  // 6 PP ranks, 2 PME ranks (the paper's MPMD rank specialization).
  Team& pp = w.create_team({0, 1, 2, 3, 4, 5});
  Team& pme = w.create_team({6, 7});

  const std::size_t world_before = w.heap().allocated();
  const SymHandle pp_buf = pp.alloc(4096);
  EXPECT_EQ(w.heap().allocated(), world_before);  // world heap untouched
  EXPECT_GE(pp.allocated_bytes(), 4096u);
  EXPECT_EQ(pme.allocated_bytes(), 0u);  // no redundant PME allocation

  // Views resolve per team member and are independent.
  auto v0 = pp.view<float>(pp_buf, 0);
  auto v5 = pp.view<float>(pp_buf, 5);
  v0[0] = 1.0f;
  v5[0] = 2.0f;
  EXPECT_EQ(v0[0], 1.0f);
  EXPECT_EQ(v5[0], 2.0f);
}

TEST(Team, RemotePtrFollowsNvlinkReachabilityOfWorldPes) {
  // 2 nodes x 4 GPUs: PP team spans both nodes.
  sim::Machine m(Topology::dgx_h100(2, 4), CostModel::h100_eos());
  World w(m, 1 << 20);
  Team& pp = w.create_team({0, 1, 4, 5});
  const SymHandle h = pp.alloc(64);
  EXPECT_NE(pp.remote_ptr<float>(h, 0, 1), nullptr);  // PEs 0,1: same node
  EXPECT_EQ(pp.remote_ptr<float>(h, 0, 2), nullptr);  // PEs 0,4: IB
  EXPECT_NE(pp.remote_ptr<float>(h, 2, 3), nullptr);  // PEs 4,5: same node
}

TEST(Team, ContrastWithWorldCollectiveAllocation) {
  // Without teams (today's NVSHMEM), the same PP buffer must be allocated
  // world-wide — including on PME PEs that never use it.
  sim::Machine m(Topology::dgx_h100(1, 8), CostModel::h100_eos());
  World w(m, 1 << 20);
  const std::size_t before = w.heap().allocated();
  w.alloc(4096);  // world-collective: every PE pays
  EXPECT_GE(w.heap().allocated() - before, 4096u);
  // vs. the team path, where only members pay (see AllocationIsTeamLocal).
}

TEST(BufferRegistration, TracksRegisteredRanges) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  std::vector<float> src(256);  // a non-symmetric source buffer
  EXPECT_FALSE(w.is_registered(0, src.data()));
  w.register_buffer(0, src.data(), src.size() * sizeof(float));
  EXPECT_TRUE(w.is_registered(0, src.data()));
  EXPECT_TRUE(w.is_registered(0, src.data() + 255));
  EXPECT_FALSE(w.is_registered(0, src.data() + 256));
  EXPECT_FALSE(w.is_registered(1, src.data()));  // registration is per PE
  w.unregister_buffer(0, src.data());
  EXPECT_FALSE(w.is_registered(0, src.data()));
}

}  // namespace
}  // namespace hs::pgas
