#include "pgas/symmetric_heap.hpp"

#include <gtest/gtest.h>

namespace hs::pgas {
namespace {

TEST(SymmetricHeap, AllocReturnsSameOffsetForAllPes) {
  SymmetricHeap heap(4, 4096);
  const SymHandle a = heap.alloc(100);
  const SymHandle b = heap.alloc(100);
  EXPECT_NE(a.offset, b.offset);
  // Symmetric: the handle is PE-independent; views differ only in arena.
  for (int pe = 0; pe < 4; ++pe) {
    auto va = heap.view<std::byte>(a, pe);
    EXPECT_EQ(va.size(), 100u);
  }
}

TEST(SymmetricHeap, ViewsAreDistinctPerPe) {
  SymmetricHeap heap(2, 4096);
  const SymHandle h = heap.alloc(sizeof(float) * 4);
  auto v0 = heap.view<float>(h, 0);
  auto v1 = heap.view<float>(h, 1);
  v0[0] = 1.0f;
  v1[0] = 2.0f;
  EXPECT_EQ(v0[0], 1.0f);
  EXPECT_EQ(v1[0], 2.0f);
}

TEST(SymmetricHeap, RespectsAlignment) {
  SymmetricHeap heap(1, 4096);
  heap.alloc(3);
  const SymHandle h = heap.alloc(8, 64);
  EXPECT_EQ(h.offset % 64, 0u);
}

TEST(SymmetricHeap, ThrowsWhenExhausted) {
  SymmetricHeap heap(1, 128);
  heap.alloc(100);
  EXPECT_THROW(heap.alloc(100), std::bad_alloc);
}

TEST(SymmetricHeap, ReleaseAllResets) {
  SymmetricHeap heap(1, 128);
  heap.alloc(100);
  heap.release_all();
  EXPECT_EQ(heap.allocated(), 0u);
  EXPECT_NO_THROW(heap.alloc(100));
}

TEST(SymmetricHeap, InvalidHandleIsDetectable) {
  SymHandle h;
  EXPECT_FALSE(h.valid());
  SymmetricHeap heap(1, 128);
  EXPECT_TRUE(heap.alloc(1).valid());
}

}  // namespace
}  // namespace hs::pgas
