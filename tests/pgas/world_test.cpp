#include "pgas/world.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace hs::pgas {
namespace {

using sim::CostModel;
using sim::Topology;

TEST(World, RemotePtrFollowsNvlinkReachability) {
  // 2 nodes x 2 GPUs: PEs 0,1 share a node; 2,3 share the other.
  sim::Machine m(Topology::dgx_h100(2, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  const SymHandle h = w.alloc(64);
  EXPECT_NE(w.remote_ptr<float>(h, 0, 1), nullptr);   // same node
  EXPECT_EQ(w.remote_ptr<float>(h, 0, 2), nullptr);   // across IB
  EXPECT_NE(w.remote_ptr<float>(h, 0, 0), nullptr);   // self
  // The returned pointer aliases the target PE's heap view.
  EXPECT_EQ(w.remote_ptr<float>(h, 0, 1), w.view<float>(h, 1).data());
}

TEST(World, Nvl72MakesEveryPeerNvlinkReachable) {
  sim::Machine m(Topology::gb200_nvl72(4, 2), CostModel::gb200_nvl72());
  World w(m, 1 << 20);
  const SymHandle h = w.alloc(64);
  for (int pe = 0; pe < w.n_pes(); ++pe) {
    EXPECT_NE(w.remote_ptr<float>(h, 0, pe), nullptr) << "pe " << pe;
  }
}

TEST(World, PutNbiMovesBytesAtDeliveryTime) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  const SymHandle h = w.alloc(sizeof(float) * 4);
  auto src = w.view<float>(h, 0);
  auto dst = w.view<float>(h, 1);
  src[0] = 42.0f;
  w.put_nbi(0, 1, sizeof(float) * 4, [src, dst]() mutable {
    std::memcpy(dst.data(), src.data(), sizeof(float) * 4);
  });
  EXPECT_EQ(dst[0], 0.0f);  // not yet delivered
  m.run();
  EXPECT_EQ(dst[0], 42.0f);
}

TEST(World, PutSignalNbiDeliversDataBeforeSignal) {
  sim::Machine m(Topology::dgx_h100(2, 1), CostModel::h100_eos());
  World w(m, 1 << 20);
  const SymHandle h = w.alloc(sizeof(float));
  auto arr = w.alloc_signals(1);
  auto dst = w.view<float>(h, 1);
  bool data_present_at_signal = false;
  w.signal(arr, 1, 0).when_ge(7, [&] {
    data_present_at_signal = dst[0] == 5.0f;  // acquire sees the payload
  });
  w.put_signal_nbi(0, 1, sizeof(float), [dst]() mutable { dst[0] = 5.0f; },
                   w.signal(arr, 1, 0), 7);
  m.run();
  EXPECT_TRUE(data_present_at_signal);
}

TEST(World, SignalArraysAreIndependentPerPe) {
  sim::Machine m(Topology::dgx_h100(1, 4), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto arr = w.alloc_signals(3);
  w.signal(arr, 2, 1).store(9);
  EXPECT_EQ(w.signal(arr, 2, 1).value(), 9);
  EXPECT_EQ(w.signal(arr, 1, 1).value(), 0);
  EXPECT_EQ(w.signal(arr, 2, 0).value(), 0);
  w.reset_signals(arr, 0);
  EXPECT_EQ(w.signal(arr, 2, 1).value(), 0);
}

TEST(World, TwoSignalArraysDoNotAlias) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto a = w.alloc_signals(2);
  auto b = w.alloc_signals(2);
  w.signal(a, 0, 0).store(1);
  EXPECT_EQ(w.signal(b, 0, 0).value(), 0);
}

TEST(World, TmaStoreChunksIntoMessages) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  const auto& cm = m.cost();
  // 4.5 chunks => 5 messages; completion time reflects per-message cost.
  const std::size_t bytes =
      static_cast<std::size_t>(cm.tma_chunk_bytes) * 9 / 2;
  sim::SimTime done_at = -1;
  w.tma_store_async(0, 1, bytes, {}, [&] { done_at = m.engine().now(); });
  m.run();
  const auto& nv = cm.fabric.nvlink;
  const sim::SimTime expected =
      nv.latency_ns + 5 * nv.per_message_ns +
      static_cast<sim::SimTime>(static_cast<double>(bytes) / nv.bytes_per_ns);
  EXPECT_NEAR(static_cast<double>(done_at), static_cast<double>(expected), 2.0);
}

TEST(World, ProxyPlacementDrivesFabricSlowdown) {
  sim::Machine m(Topology::dgx_h100(2, 1), CostModel::h100_eos());
  World w(m, 1 << 20);
  const sim::SimTime healthy = m.fabric().estimate(0, 1, 4096, 4);
  w.set_proxy_placement(0, ProxyPlacement::ContendedCore);
  const sim::SimTime contended = m.fabric().estimate(0, 1, 4096, 4);
  EXPECT_GT(contended, healthy);
  w.set_proxy_placement(0, ProxyPlacement::ReservedCore);
  EXPECT_EQ(m.fabric().estimate(0, 1, 4096, 4), healthy);
  // Rank-level pinning performs the same as the reserved core (§5.5).
  w.set_proxy_placement(0, ProxyPlacement::RankPinned);
  EXPECT_EQ(m.fabric().estimate(0, 1, 4096, 4), healthy);
}

sim::Task pe_main(World* w, sim::SimTime delay, std::vector<sim::SimTime>* out) {
  co_await sim::Delay{delay};
  co_await w->barrier_all();
  out->push_back(w->machine().engine().now());
}

TEST(World, HostBarrierSynchronizesAllPes) {
  sim::Machine m(Topology::dgx_h100(1, 3), CostModel::h100_eos());
  World w(m, 1 << 20);
  std::vector<sim::SimTime> released;
  std::vector<sim::SimTime> delays{10, 50, 30};
  for (int pe = 0; pe < 3; ++pe) {
    m.spawn_host_task(pe_main(&w, delays[static_cast<std::size_t>(pe)], &released));
  }
  m.run();
  ASSERT_EQ(released.size(), 3u);
  for (auto t : released) EXPECT_EQ(t, 50);
}

TEST(World, SymmetricAllocationIsWorldCollective) {
  // The paper's §5.3 constraint: a symmetric destination buffer exists on
  // every PE, whether or not that PE wants it (PP/PME clash). Our model
  // makes this structural: alloc() reserves on all arenas.
  sim::Machine m(Topology::dgx_h100(1, 4), CostModel::h100_eos());
  World w(m, 1 << 10);
  const std::size_t before = w.heap().allocated();
  w.alloc(512);
  EXPECT_GE(w.heap().allocated() - before, 512u);
  // No per-PE selective allocation API exists; exhausting the heap on one
  // PE exhausts it on all.
  EXPECT_THROW(w.alloc(1 << 10), std::bad_alloc);
}

}  // namespace
}  // namespace hs::pgas
