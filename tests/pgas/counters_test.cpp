// Counter accounting for the PGAS op layer: every op counts once, under its
// own op kind, with hand-computed byte totals, and the fabric sees matching
// per-link traffic for 2-rank exchanges over both transports.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "pgas/world.hpp"

namespace hs::pgas {
namespace {

using sim::CostModel;
using sim::LinkType;
using sim::Topology;

TEST(WorldCountersTest, NvlinkTwoRankExchangeHandComputedBytes) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  const SymHandle h = w.alloc(4096);
  auto arr = w.alloc_signals(1);

  // One put each way, one put_signal, one bare signal op, one TMA store,
  // one TMA load.
  w.put_nbi(0, 1, 1000, {});
  w.put_nbi(1, 0, 500, {});
  w.put_signal_nbi(0, 1, 2048, {}, w.signal(arr, 1, 0), 1);
  w.signal_op(1, 0, w.signal(arr, 0, 0), 1);
  w.tma_store_async(0, 1, 4096, {});
  w.tma_load_async(1, 0, 256, {});
  m.run();

  const WorldCounters c = w.counters();
  EXPECT_EQ(c.op(PgasOp::Put).calls, 2u);
  EXPECT_EQ(c.op(PgasOp::Put).bytes, 1500u);
  EXPECT_EQ(c.op(PgasOp::PutSignal).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::PutSignal).bytes, 2048u);
  EXPECT_EQ(c.op(PgasOp::SignalOp).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::SignalOp).bytes, sizeof(std::int64_t));
  EXPECT_EQ(c.op(PgasOp::TmaStore).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::TmaStore).bytes, 4096u);
  EXPECT_EQ(c.op(PgasOp::Get).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::Get).bytes, 256u);
  EXPECT_EQ(c.total_calls(), 6u);
  EXPECT_EQ(c.total_bytes(), 1500u + 2048u + 8u + 4096u + 256u);

  // The fabric saw the same traffic, all of it on NVLink.
  const auto& fc = m.fabric().counters();
  EXPECT_EQ(fc.link(LinkType::NVLink).transfers, 6u);
  EXPECT_EQ(fc.link(LinkType::NVLink).bytes, c.total_bytes());
  EXPECT_EQ(fc.link(LinkType::IB).transfers, 0u);
  // Puts and signal ops are single messages; TMA ops chunk.
  const auto chunk = static_cast<std::size_t>(m.cost().tma_chunk_bytes);
  const auto tma_msgs = (4096u + chunk - 1) / chunk + (256u + chunk - 1) / chunk;
  EXPECT_EQ(fc.link(LinkType::NVLink).messages, 4u + tma_msgs);
}

TEST(WorldCountersTest, IbTwoRankExchangeHandComputedBytes) {
  sim::Machine m(Topology::dgx_h100(2, 1), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto arr = w.alloc_signals(1);

  w.put_signal_nbi(0, 1, 4096, {}, w.signal(arr, 1, 0), 1);
  w.put_nbi(1, 0, 1024, {});
  w.signal_op(0, 1, w.signal(arr, 1, 0), 2);
  m.run();

  const WorldCounters c = w.counters();
  EXPECT_EQ(c.op(PgasOp::PutSignal).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::PutSignal).bytes, 4096u);
  EXPECT_EQ(c.op(PgasOp::Put).calls, 1u);
  EXPECT_EQ(c.op(PgasOp::Put).bytes, 1024u);
  EXPECT_EQ(c.op(PgasOp::SignalOp).calls, 1u);
  EXPECT_EQ(c.total_bytes(), 4096u + 1024u + 8u);

  const auto& fc = m.fabric().counters();
  EXPECT_EQ(fc.link(LinkType::IB).transfers, 3u);
  EXPECT_EQ(fc.link(LinkType::IB).bytes, 4096u + 1024u + 8u);
  EXPECT_EQ(fc.link(LinkType::NVLink).transfers, 0u);
  // Every IB transfer held dev0's or dev1's NIC for > 0 ns.
  EXPECT_GT(fc.nic_busy_ns[0], 0u);
  EXPECT_GT(fc.nic_busy_ns[1], 0u);
}

TEST(WorldCountersTest, PutSignalDoesNotDoubleCountAsPut) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto arr = w.alloc_signals(1);
  w.put_signal_nbi(0, 1, 128, {}, w.signal(arr, 1, 0), 1);
  m.run();
  const WorldCounters c = w.counters();
  EXPECT_EQ(c.op(PgasOp::Put).calls, 0u);
  EXPECT_EQ(c.op(PgasOp::SignalOp).calls, 0u);
  EXPECT_EQ(c.op(PgasOp::PutSignal).calls, 1u);
}

TEST(WorldCountersTest, CountsSignalWaits) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto arr = w.alloc_signals(2);

  int fired = 0;
  w.signal(arr, 1, 0).when_ge(1, [&] { ++fired; });
  w.signal(arr, 1, 1).when_ge(2, [&] { ++fired; });
  EXPECT_EQ(w.counters().op(PgasOp::SignalWait).calls, 2u);

  w.put_signal_nbi(0, 1, 64, {}, w.signal(arr, 1, 0), 1);
  w.signal_op(0, 1, w.signal(arr, 1, 1), 2);
  m.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(w.counters().op(PgasOp::SignalWait).calls, 2u);
}

TEST(WorldCountersTest, ResetRebasesCounters) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  World w(m, 1 << 20);
  auto arr = w.alloc_signals(1);
  w.signal(arr, 1, 0).when_ge(1, [] {});
  w.put_signal_nbi(0, 1, 64, {}, w.signal(arr, 1, 0), 1);
  m.run();
  EXPECT_EQ(w.counters().op(PgasOp::PutSignal).calls, 1u);
  EXPECT_EQ(w.counters().op(PgasOp::SignalWait).calls, 1u);

  w.reset_counters();
  EXPECT_EQ(w.counters().total_calls(), 0u);
  EXPECT_EQ(w.counters().op(PgasOp::SignalWait).calls, 0u);

  // Post-reset activity is counted from zero.
  w.signal(arr, 1, 0).when_ge(2, [] {});
  w.put_nbi(0, 1, 32, {});
  m.run();
  EXPECT_EQ(w.counters().op(PgasOp::Put).calls, 1u);
  EXPECT_EQ(w.counters().op(PgasOp::SignalWait).calls, 1u);
}

}  // namespace
}  // namespace hs::pgas
