#include "msg/comm.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hs::msg {
namespace {

using sim::CostModel;
using sim::Topology;

TEST(Comm, SendThenRecvMatches) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  Comm comm(m);
  int payload = 0;
  auto s = comm.isend(0, 1, 5, 1024, [&] { payload = 7; });
  EXPECT_EQ(comm.unmatched(), 1u);
  auto r = comm.irecv(1, 0, 5);
  EXPECT_EQ(comm.unmatched(), 0u);
  m.run();
  EXPECT_TRUE(s->is_complete());
  EXPECT_TRUE(r->is_complete());
  EXPECT_EQ(payload, 7);
  EXPECT_EQ(s->completed_at(), r->completed_at());
}

TEST(Comm, RecvBeforeSendAlsoMatches) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  Comm comm(m);
  auto r = comm.irecv(1, 0, 3);
  m.run();
  EXPECT_FALSE(r->is_complete());  // nothing to match yet
  auto s = comm.isend(0, 1, 3, 64, {});
  m.run();
  EXPECT_TRUE(r->is_complete());
  EXPECT_TRUE(s->is_complete());
}

TEST(Comm, TagsSeparateChannels) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  Comm comm(m);
  std::vector<int> order;
  comm.irecv(1, 0, 1)->when_complete([&] { order.push_back(1); });
  comm.irecv(1, 0, 2)->when_complete([&] { order.push_back(2); });
  // Sends arrive in reverse tag order; matching is by tag, not FIFO.
  comm.isend(0, 1, 2, 64, {});
  comm.isend(0, 1, 1, 64, {});
  m.run();
  ASSERT_EQ(order.size(), 2u);
  // Same size transfers complete in post order: tag 2 was posted first.
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(Comm, SameTagMessagesMatchInOrder) {
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  Comm comm(m);
  std::vector<int> delivered;
  comm.isend(0, 1, 0, 64, [&] { delivered.push_back(1); });
  comm.isend(0, 1, 0, 64, [&] { delivered.push_back(2); });
  comm.irecv(1, 0, 0);
  comm.irecv(1, 0, 0);
  m.run();
  EXPECT_EQ(delivered, (std::vector<int>{1, 2}));
}

TEST(Comm, InterNodeTransfersTakeLonger) {
  sim::Machine m(Topology::dgx_h100(2, 2), CostModel::h100_eos());
  Comm comm(m);
  auto intra = comm.isend(0, 1, 0, 1 << 20, {});
  comm.irecv(1, 0, 0);
  auto inter = comm.isend(2, 3, 0, 1 << 20, {});  // wait, 2,3 same node
  comm.irecv(3, 2, 0);
  auto cross = comm.isend(0, 2, 0, 1 << 20, {});
  comm.irecv(2, 0, 0);
  m.run();
  EXPECT_EQ(intra->completed_at(), inter->completed_at());
  EXPECT_GT(cross->completed_at(), intra->completed_at());
}

TEST(Comm, BidirectionalExchangeCompletes) {
  // The halo pattern: each rank sends to and receives from a neighbour.
  sim::Machine m(Topology::dgx_h100(1, 2), CostModel::h100_eos());
  Comm comm(m);
  auto s0 = comm.isend(0, 1, 0, 128, {});
  auto r0 = comm.irecv(0, 1, 0);
  auto s1 = comm.isend(1, 0, 0, 128, {});
  auto r1 = comm.irecv(1, 0, 0);
  m.run();
  EXPECT_TRUE(s0->is_complete());
  EXPECT_TRUE(r0->is_complete());
  EXPECT_TRUE(s1->is_complete());
  EXPECT_TRUE(r1->is_complete());
  EXPECT_EQ(comm.unmatched(), 0u);
}

}  // namespace
}  // namespace hs::msg
