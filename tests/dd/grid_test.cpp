#include "dd/grid.hpp"

#include <gtest/gtest.h>

namespace hs::dd {
namespace {

const md::Box kCube(9.6f, 9.6f, 9.6f);

TEST(ChooseGrid, PaperDimensionalityMapping) {
  // §6.3: 8 ranks -> 1D, 16 -> 2D, 32 -> 3D.
  EXPECT_EQ(choose_grid(kCube, 4, 0.9).dimensionality(), 1);
  EXPECT_EQ(choose_grid(kCube, 8, 0.9).dimensionality(), 1);
  EXPECT_EQ(choose_grid(kCube, 16, 0.9).dimensionality(), 2);
  EXPECT_EQ(choose_grid(kCube, 32, 0.9).dimensionality(), 3);
}

TEST(ChooseGrid, BalancedFactorizations) {
  const GridDims g16 = choose_grid(kCube, 16, 0.9);
  EXPECT_EQ(g16.nx, 4);
  EXPECT_EQ(g16.ny, 4);
  EXPECT_EQ(g16.nz, 1);
  const GridDims g32 = choose_grid(md::Box(30, 30, 30), 32, 0.9);
  EXPECT_EQ(g32.nx, 4);
  EXPECT_EQ(g32.ny, 4);
  EXPECT_EQ(g32.nz, 2);
  const GridDims g512 = choose_grid(md::Box(60, 60, 60), 512, 0.9);
  EXPECT_EQ(g512.nx, 8);
  EXPECT_EQ(g512.ny, 8);
  EXPECT_EQ(g512.nz, 8);
}

TEST(ChooseGrid, EscalatesWhenSlabsTooThin) {
  // 8 ranks on a tiny box: 1D slabs would be thinner than cutoff/2.
  const md::Box tiny(3.0f, 3.0f, 3.0f);
  const GridDims g = choose_grid(tiny, 8, 0.9);
  EXPECT_GT(g.dimensionality(), 1);
  EXPECT_EQ(g.total(), 8);
}

TEST(ChooseGrid, SingleRankIsTrivial) {
  const GridDims g = choose_grid(kCube, 1, 0.9);
  EXPECT_EQ(g.total(), 1);
  EXPECT_EQ(g.dimensionality(), 0);
}

TEST(ChooseGrid, ProductAlwaysMatchesRankCount) {
  for (int n : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128}) {
    EXPECT_EQ(choose_grid(md::Box(40, 40, 40), n, 0.9).total(), n) << n;
  }
}

TEST(DomainGrid, RankCellRoundTrip) {
  const DomainGrid grid(kCube, GridDims{4, 3, 2});
  for (int r = 0; r < grid.num_ranks(); ++r) {
    const auto c = grid.cell_of_rank(r);
    EXPECT_EQ(grid.rank_of_cell(c[0], c[1], c[2]), r);
  }
}

TEST(DomainGrid, BoundsTileTheBox) {
  const DomainGrid grid(kCube, GridDims{4, 2, 1});
  EXPECT_FLOAT_EQ(grid.lo(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grid.hi(grid.num_ranks() - 1, 0), 9.6f);
  EXPECT_FLOAT_EQ(grid.domain_width(0), 2.4f);
  EXPECT_FLOAT_EQ(grid.domain_width(1), 4.8f);
  EXPECT_FLOAT_EQ(grid.domain_width(2), 9.6f);
}

TEST(DomainGrid, PositionOwnershipIsExhaustiveAndUnique) {
  const DomainGrid grid(kCube, GridDims{3, 2, 2});
  // Sample positions; each maps to exactly one rank whose bounds contain it.
  for (float fx : {0.0f, 3.1f, 6.5f, 9.5f}) {
    for (float fy : {0.2f, 5.0f, 9.59f}) {
      for (float fz : {1.0f, 8.0f}) {
        const md::Vec3 p{fx, fy, fz};
        const int r = grid.rank_of_position(p);
        for (int d = 0; d < 3; ++d) {
          EXPECT_GE(p[d], grid.lo(r, d));
          EXPECT_LT(p[d], grid.hi(r, d));
        }
      }
    }
  }
}

TEST(DomainGrid, NeighbourWrapsPeriodically) {
  const DomainGrid grid(kCube, GridDims{4, 1, 1});
  EXPECT_EQ(grid.neighbour(0, 0, -1), 3);
  EXPECT_EQ(grid.neighbour(3, 0, +1), 0);
  EXPECT_EQ(grid.neighbour(1, 0, +1), 2);
  // Undecomposed dims: the only neighbour is self.
  EXPECT_EQ(grid.neighbour(1, 1, +1), 1);
}

TEST(DomainGrid, DimensionalityCounts) {
  EXPECT_EQ((GridDims{4, 1, 1}).dimensionality(), 1);
  EXPECT_EQ((GridDims{4, 4, 1}).dimensionality(), 2);
  EXPECT_EQ((GridDims{4, 4, 2}).dimensionality(), 3);
}

}  // namespace
}  // namespace hs::dd
