#include "dd/geometry.hpp"

#include <gtest/gtest.h>

#include "dd/decomposition.hpp"
#include "md/system.hpp"
#include "util/stats.hpp"

namespace hs::dd {
namespace {

TEST(Geometry, EstimateMatchesFunctionalPlanWithinTolerance) {
  md::GrappaSpec spec;
  spec.target_atoms = 20000;
  spec.density = 50.0;
  const md::System sys = md::build_grappa(spec);

  for (const GridDims dims :
       {GridDims{4, 1, 1}, GridDims{2, 2, 1}, GridDims{2, 2, 2}}) {
    Decomposition dd(sys, dims, 0.9);
    const auto estimates = estimate_pulse_sizes(dd.grid(), 0.9, spec.density);
    ASSERT_EQ(static_cast<int>(estimates.size()), dd.plan().total_pulses());
    for (std::size_t p = 0; p < estimates.size(); ++p) {
      double mean_send = 0.0;
      for (const auto& rp : dd.plan().ranks) {
        mean_send += rp.pulses[p].send_size;
      }
      mean_send /= dd.plan().ranks.size();
      EXPECT_NEAR(mean_send, estimates[p].send_atoms,
                  0.12 * estimates[p].send_atoms + 10.0)
          << "dims " << dims.nx << "x" << dims.ny << "x" << dims.nz
          << " pulse " << p;
    }
  }
}

TEST(Geometry, HomeEstimateIsExactForUniformGrid) {
  md::GrappaSpec spec;
  spec.target_atoms = 8000;
  spec.density = 50.0;
  const md::System sys = md::build_grappa(spec);
  const DomainGrid grid(sys.box, GridDims{2, 2, 2});
  EXPECT_NEAR(estimate_home_atoms(grid, spec.density),
              sys.natoms() / 8.0, sys.natoms() * 0.01);
}

TEST(Geometry, LaterPhasesShipMoreThanEarlier) {
  // Forwarding grows the cross-section: with equal widths, the x phase
  // ships more than the y phase, which ships more than z.
  const md::Box box(10, 10, 10);
  const DomainGrid grid(box, GridDims{2, 2, 2});
  const auto est = estimate_pulse_sizes(grid, 1.0, 100.0);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_EQ(est[0].dim, 2);
  EXPECT_EQ(est[2].dim, 0);
  EXPECT_GT(est[1].send_atoms, est[0].send_atoms);
  EXPECT_GT(est[2].send_atoms, est[1].send_atoms);
}

TEST(Geometry, TwoPulseDimSplitsTheSlab) {
  const md::Box box(4.0f, 10, 10);
  const DomainGrid grid(box, GridDims{8, 1, 1});  // width 0.5 < rc 0.9
  const auto est = estimate_pulse_sizes(grid, 0.9, 100.0);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0].pulse, 0);
  EXPECT_EQ(est[1].pulse, 1);
  // Pulse 0 ships a domain-width slab, pulse 1 the remainder.
  EXPECT_NEAR(est[0].send_atoms, 100.0 * 0.5 * 100.0, 1.0);
  EXPECT_NEAR(est[1].send_atoms, 100.0 * 0.4 * 100.0, 1.0);
}

TEST(Geometry, UndedecomposedDimsShipNothing) {
  const md::Box box(10, 10, 10);
  const DomainGrid grid(box, GridDims{4, 1, 1});
  const auto est = estimate_pulse_sizes(grid, 0.9, 100.0);
  ASSERT_EQ(est.size(), 1u);
  EXPECT_EQ(est[0].dim, 0);
}

TEST(Geometry, HaloTotalIsSumOfPulses) {
  const md::Box box(12, 12, 12);
  const DomainGrid grid(box, GridDims{2, 2, 2});
  const auto est = estimate_pulse_sizes(grid, 0.9, 100.0);
  double sum = 0.0;
  for (const auto& e : est) sum += e.send_atoms;
  EXPECT_DOUBLE_EQ(estimate_halo_atoms(grid, 0.9, 100.0), sum);
}

}  // namespace
}  // namespace hs::dd
