// Lifecycle properties of the decomposition under motion: repeated
// perturb -> repartition -> rebuild cycles must conserve atoms, keep plans
// internally consistent, and keep the halo oracle satisfied.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dd/decomposition.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::dd {
namespace {

md::System make_system(std::uint64_t seed) {
  md::GrappaSpec spec;
  spec.target_atoms = 4000;
  spec.density = 50.0;
  spec.seed = seed;
  return md::build_grappa(spec);
}

struct Cycle {
  GridDims dims;
  std::uint64_t seed;
};

class RepartitionCycles : public ::testing::TestWithParam<Cycle> {};

TEST_P(RepartitionCycles, ConservesAtomsAndPlanValidity) {
  const auto [dims, seed] = GetParam();
  md::System sys = make_system(seed);
  const int total_atoms = sys.natoms();
  Decomposition dd(sys, dims, 1.0);
  util::Rng rng(seed * 7 + 1);

  for (int cycle = 0; cycle < 4; ++cycle) {
    // Move home atoms by up to 0.15 nm (some cross domain boundaries).
    for (auto& st : dd.states()) {
      for (int i = 0; i < st.n_home; ++i) {
        auto& p = st.x[static_cast<std::size_t>(i)];
        p = dd.grid().box().wrap(
            p + md::Vec3{static_cast<float>(rng.uniform(-0.15, 0.15)),
                         static_cast<float>(rng.uniform(-0.15, 0.15)),
                         static_cast<float>(rng.uniform(-0.15, 0.15))});
      }
    }
    dd.repartition();

    // Atom conservation with unique ownership.
    std::set<int> owners;
    int total = 0;
    for (const auto& st : dd.states()) {
      total += st.n_home;
      for (int i = 0; i < st.n_home; ++i) {
        EXPECT_TRUE(owners.insert(st.global_id[static_cast<std::size_t>(i)])
                        .second)
            << "atom owned twice";
      }
      // Every home atom lies inside its domain.
      for (int i = 0; i < st.n_home; ++i) {
        for (int d = 0; d < 3; ++d) {
          EXPECT_GE(st.x[static_cast<std::size_t>(i)][d],
                    dd.grid().lo(st.rank, d));
          EXPECT_LT(st.x[static_cast<std::size_t>(i)][d],
                    dd.grid().hi(st.rank, d));
        }
      }
    }
    EXPECT_EQ(total, total_atoms);

    // Plan consistency: sizes pair up across ranks.
    for (const auto& rp : dd.plan().ranks) {
      for (std::size_t p = 0; p < rp.pulses.size(); ++p) {
        const PulseData& pd = rp.pulses[p];
        EXPECT_EQ(pd.send_size,
                  dd.plan()
                      .ranks[static_cast<std::size_t>(pd.send_rank)]
                      .pulses[p]
                      .recv_size);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, RepartitionCycles,
    ::testing::Values(Cycle{GridDims{4, 1, 1}, 1}, Cycle{GridDims{2, 2, 1}, 2},
                      Cycle{GridDims{2, 2, 2}, 3}, Cycle{GridDims{8, 1, 1}, 4}),
    [](const auto& info) {
      const auto& d = info.param.dims;
      return std::to_string(d.nx) + "x" + std::to_string(d.ny) + "x" +
             std::to_string(d.nz);
    });

TEST(ExchangeIdempotence, RepeatedCoordinateExchangeIsStable) {
  // Without motion, exchanging twice leaves halo slots bit-identical.
  md::System sys = make_system(9);
  Decomposition dd(sys, GridDims{2, 2, 1}, 1.0);
  dd.exchange_coordinates();
  std::vector<std::vector<md::Vec3>> snapshot;
  for (const auto& st : dd.states()) snapshot.push_back(st.x);
  dd.exchange_coordinates();
  for (std::size_t r = 0; r < dd.states().size(); ++r) {
    for (std::size_t i = 0; i < snapshot[r].size(); ++i) {
      EXPECT_EQ(dd.states()[r].x[i], snapshot[r][i]);
    }
  }
}

TEST(ForceExchangeLinearity, ScaledForcesScaleResults) {
  // exchange(2f) == 2 * exchange(f): accumulation is linear.
  md::System sys = make_system(12);
  Decomposition a(sys, GridDims{2, 2, 1}, 1.0);
  Decomposition b = a;
  for (std::size_t r = 0; r < a.states().size(); ++r) {
    auto& fa = a.states()[r].f;
    auto& fb = b.states()[r].f;
    for (std::size_t i = 0; i < fa.size(); ++i) {
      const float v = static_cast<float>((i * 2654435761u) % 1000) * 0.01f;
      fa[i] = md::Vec3{v, -v, 2 * v};
      fb[i] = fa[i] * 2.0f;
    }
  }
  a.exchange_forces();
  b.exchange_forces();
  for (std::size_t r = 0; r < a.states().size(); ++r) {
    const auto& st_a = a.states()[r];
    const auto& st_b = b.states()[r];
    for (int i = 0; i < st_a.n_home; ++i) {
      EXPECT_NEAR(st_b.f[static_cast<std::size_t>(i)].x,
                  2.0f * st_a.f[static_cast<std::size_t>(i)].x, 1e-3f);
      EXPECT_NEAR(st_b.f[static_cast<std::size_t>(i)].z,
                  2.0f * st_a.f[static_cast<std::size_t>(i)].z, 1e-3f);
    }
  }
}

}  // namespace
}  // namespace hs::dd
