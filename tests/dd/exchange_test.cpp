#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dd/decomposition.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::dd {
namespace {

md::System small_system(int atoms = 3000) {
  md::GrappaSpec spec;
  spec.target_atoms = atoms;
  spec.density = 50.0;
  return md::build_grappa(spec);
}

TEST(CoordinateExchange, HaloSlotsTrackOwnerPositions) {
  md::System sys = small_system();
  Decomposition dd(sys, GridDims{2, 2, 1}, 0.9);

  // Perturb home positions slightly (atoms stay in their domains), then
  // exchange; every halo slot must equal the owner's new position plus the
  // accumulated periodic shift.
  util::Rng rng(7);
  std::map<int, md::Vec3> new_pos;
  for (auto& st : dd.states()) {
    for (int i = 0; i < st.n_home; ++i) {
      auto& p = st.x[static_cast<std::size_t>(i)];
      p.x += static_cast<float>(rng.uniform(-1e-3, 1e-3));
      p.y += static_cast<float>(rng.uniform(-1e-3, 1e-3));
      p.z += static_cast<float>(rng.uniform(-1e-3, 1e-3));
      new_pos[st.global_id[static_cast<std::size_t>(i)]] = p;
    }
  }
  dd.exchange_coordinates();

  const md::Box& box = dd.grid().box();
  for (const auto& st : dd.states()) {
    for (int i = st.n_home; i < st.n_total(); ++i) {
      const md::Vec3 got = st.x[static_cast<std::size_t>(i)];
      const md::Vec3 want =
          new_pos.at(st.global_id[static_cast<std::size_t>(i)]);
      for (int d = 0; d < 3; ++d) {
        // Equal up to a whole number of box lengths (periodic image).
        const float diff = got[d] - want[d];
        const float wraps = std::round(diff / box.length(d));
        EXPECT_NEAR(diff, wraps * box.length(d), 1e-4f)
            << "rank " << st.rank << " slot " << i << " dim " << d;
      }
    }
  }
}

TEST(CoordinateExchange, ForwardedCornersArriveAfterSecondPhase) {
  // In a 2D decomposition, corner halo data reaches a rank only via
  // forwarding (z/y pulse data re-sent in the next phase). Verify corner
  // slots update after a position change two hops away.
  md::System sys = small_system();
  Decomposition dd(sys, GridDims{2, 2, 1}, 0.9);
  auto& states = dd.states();

  // Find a halo slot on rank 0 whose owner is the diagonal rank 3
  // (cell (1,1)): reachable only through forwarding.
  int slot = -1, gid = -1;
  for (int i = states[0].n_home; i < states[0].n_total(); ++i) {
    const int g = states[0].global_id[static_cast<std::size_t>(i)];
    // Is g home on rank 3?
    for (int j = 0; j < states[3].n_home; ++j) {
      if (states[3].global_id[static_cast<std::size_t>(j)] == g) {
        slot = i;
        gid = g;
        break;
      }
    }
    if (slot >= 0) break;
  }
  ASSERT_GE(slot, 0) << "no diagonal-owner halo atom found";

  // Move the owner's copy and exchange.
  for (int j = 0; j < states[3].n_home; ++j) {
    if (states[3].global_id[static_cast<std::size_t>(j)] == gid) {
      states[3].x[static_cast<std::size_t>(j)].z += 0.001f;
    }
  }
  const float before = states[0].x[static_cast<std::size_t>(slot)].z;
  dd.exchange_coordinates();
  const float after = states[0].x[static_cast<std::size_t>(slot)].z;
  EXPECT_NEAR(after - before, 0.001f, 1e-5f);
}

TEST(ForceExchange, HaloContributionsReturnToOwners) {
  md::System sys = small_system();
  Decomposition dd(sys, GridDims{2, 2, 2}, 0.9);
  auto& states = dd.states();

  // Deterministic pseudo-forces: halo slot for atom gid gets gid+1 in x.
  // Home forces start at zero. After the exchange, the owner's home force
  // must equal (gid+1) * (number of ranks holding gid as halo).
  std::map<int, int> halo_count;
  for (auto& st : states) {
    std::fill(st.f.begin(), st.f.end(), md::Vec3{});
    for (int i = st.n_home; i < st.n_total(); ++i) {
      const int gid = st.global_id[static_cast<std::size_t>(i)];
      st.f[static_cast<std::size_t>(i)] =
          md::Vec3{static_cast<float>(gid + 1), 0, 0};
      ++halo_count[gid];
    }
  }
  dd.exchange_forces();
  for (const auto& st : states) {
    for (int i = 0; i < st.n_home; ++i) {
      const int gid = st.global_id[static_cast<std::size_t>(i)];
      const auto it = halo_count.find(gid);
      const float expected =
          it == halo_count.end()
              ? 0.0f
              : static_cast<float>(gid + 1) * static_cast<float>(it->second);
      EXPECT_NEAR(st.f[static_cast<std::size_t>(i)].x, expected,
                  1e-2f + 1e-6f * expected)
          << "gid " << gid;
    }
  }
}

TEST(ForceExchange, NoHaloForcesMeansNoChange) {
  md::System sys = small_system();
  Decomposition dd(sys, GridDims{4, 1, 1}, 0.9);
  for (auto& st : dd.states()) {
    std::fill(st.f.begin(), st.f.end(), md::Vec3{});
    for (int i = 0; i < st.n_home; ++i) {
      st.f[static_cast<std::size_t>(i)] = md::Vec3{1, 2, 3};
    }
  }
  dd.exchange_forces();
  for (const auto& st : dd.states()) {
    for (int i = 0; i < st.n_home; ++i) {
      EXPECT_EQ(st.f[static_cast<std::size_t>(i)], (md::Vec3{1, 2, 3}));
    }
  }
}

TEST(Decomposition, GatherScatterRoundTrip) {
  const md::System sys = small_system();
  Decomposition dd(sys, GridDims{2, 2, 1}, 0.9);
  const md::System back = dd.gather();
  ASSERT_EQ(back.natoms(), sys.natoms());
  for (int i = 0; i < sys.natoms(); ++i) {
    EXPECT_EQ(back.x[static_cast<std::size_t>(i)],
              sys.box.wrap(sys.x[static_cast<std::size_t>(i)]));
    EXPECT_EQ(back.type[static_cast<std::size_t>(i)],
              sys.type[static_cast<std::size_t>(i)]);
  }
}

TEST(Decomposition, RepartitionMovesMigratedAtoms) {
  md::System sys = small_system();
  Decomposition dd(sys, GridDims{4, 1, 1}, 0.9);
  // Push one home atom across its domain's high-x boundary and repartition.
  auto& st0 = dd.states()[0];
  const float hi = dd.grid().hi(0, 0);
  st0.x[0] = md::Vec3{hi + 0.05f, st0.x[0].y, st0.x[0].z};
  const int moved_gid = st0.global_id[0];
  dd.repartition();
  // The atom must now be home on rank 1, and totals conserved.
  bool found_on_1 = false;
  for (int i = 0; i < dd.states()[1].n_home; ++i) {
    found_on_1 |= dd.states()[1].global_id[static_cast<std::size_t>(i)] == moved_gid;
  }
  EXPECT_TRUE(found_on_1);
  int total = 0;
  for (const auto& st : dd.states()) total += st.n_home;
  EXPECT_EQ(total, sys.natoms());
}

}  // namespace
}  // namespace hs::dd
