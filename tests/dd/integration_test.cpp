// The load-bearing correctness test of the whole decomposition stack:
// forces computed via domain decomposition + halo exchange must match the
// single-rank reference for every DD dimensionality and pulse structure.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dd/decomposition.hpp"
#include "md/integrator.hpp"
#include "md/nonbonded.hpp"
#include "md/system.hpp"

namespace hs::dd {
namespace {

constexpr double kCutoff = 0.9;
constexpr double kRlist = 1.0;  // cutoff + Verlet buffer

md::System test_system(int atoms = 4000, std::uint64_t seed = 11) {
  md::GrappaSpec spec;
  spec.target_atoms = atoms;
  spec.density = 50.0;
  spec.seed = seed;
  return md::build_grappa(spec);
}

/// One decomposed force evaluation: halo coords, pair lists, local +
/// non-local forces, force halo back-accumulation.
void decomposed_forces(Decomposition& dd, const md::ForceField& ff) {
  dd.exchange_coordinates();
  const auto lists = build_pair_lists(dd, kRlist);
  for (std::size_t r = 0; r < dd.states().size(); ++r) {
    DomainState& st = dd.states()[r];
    std::fill(st.f.begin(), st.f.end(), md::Vec3{});
    md::compute_nonbonded(dd.grid().box(), ff, st.x, st.type, lists[r].local,
                          st.f);
    md::compute_nonbonded(dd.grid().box(), ff, st.x, st.type,
                          lists[r].nonlocal, st.f);
  }
  dd.exchange_forces();
}

std::vector<md::Vec3> reference_forces(const md::System& sys,
                                       const md::ForceField& ff) {
  std::vector<md::Vec3> f(sys.x.size());
  md::PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
  md::compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
  return f;
}

class DecomposedForces : public ::testing::TestWithParam<GridDims> {};

TEST_P(DecomposedForces, MatchSingleRankReference) {
  const md::System sys = test_system();
  const md::ForceField ff(md::grappa_atom_types(), kCutoff);
  const auto f_ref = reference_forces(sys, ff);

  Decomposition dd(sys, GetParam(), kRlist);
  decomposed_forces(dd, ff);

  int checked = 0;
  for (const auto& st : dd.states()) {
    for (int i = 0; i < st.n_home; ++i) {
      const auto gid = static_cast<std::size_t>(
          st.global_id[static_cast<std::size_t>(i)]);
      const md::Vec3& got = st.f[static_cast<std::size_t>(i)];
      const md::Vec3& want = f_ref[gid];
      const float tol = 2e-4f * md::norm(want) + 5e-3f;
      ASSERT_NEAR(got.x, want.x, tol) << "gid " << gid;
      ASSERT_NEAR(got.y, want.y, tol) << "gid " << gid;
      ASSERT_NEAR(got.z, want.z, tol) << "gid " << gid;
      ++checked;
    }
  }
  EXPECT_EQ(checked, sys.natoms());
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DecomposedForces,
    ::testing::Values(GridDims{2, 1, 1},   // minimal 1D
                      GridDims{4, 1, 1},   // 1D
                      GridDims{1, 4, 1},   // 1D along y
                      GridDims{2, 2, 1},   // 2D
                      GridDims{2, 1, 2},   // 2D xz
                      GridDims{2, 2, 2},   // 3D
                      GridDims{8, 1, 1},   // 1D with two pulses
                      GridDims{4, 2, 1}),  // asymmetric 2D
    [](const auto& info) {
      const auto& d = info.param;
      return std::to_string(d.nx) + "x" + std::to_string(d.ny) + "x" +
             std::to_string(d.nz);
    });

TEST(DecomposedTrajectory, TracksSingleRankOverSteps) {
  // Integrate several steps with repartitioning and verify positions match
  // a single-rank trajectory (loose tolerance: float accumulation orders
  // differ between the decomposed and reference paths).
  md::System ref = test_system(5000, 23);
  md::System dec = ref;
  const md::ForceField ff(md::grappa_atom_types(), kCutoff);
  const md::LeapfrogIntegrator integ(0.0005);

  Decomposition dd(dec, GridDims{2, 2, 1}, kRlist);

  constexpr int kSteps = 10;
  constexpr int kNstList = 5;
  for (int step = 0; step < kSteps; ++step) {
    // Reference step.
    {
      std::vector<md::Vec3> f(ref.x.size());
      md::PairList list;
      list.build_local(ref.box, ref.x, ref.natoms(), kRlist);
      md::compute_nonbonded(ref.box, ff, ref.x, ref.type, list, f);
      integ.step(ref.box, ff, ref.type, f, ref.v, ref.x);
    }
    // Decomposed step.
    if (step > 0 && step % kNstList == 0) dd.repartition();
    decomposed_forces(dd, ff);
    for (auto& st : dd.states()) {
      const std::size_t nh = static_cast<std::size_t>(st.n_home);
      integ.step(dd.grid().box(), ff,
                 std::span<const int>(st.type.data(), nh),
                 std::span<const md::Vec3>(st.f.data(), nh),
                 std::span<md::Vec3>(st.v.data(), nh),
                 std::span<md::Vec3>(st.x.data(), nh));
    }
  }

  const md::System gathered = dd.gather();
  double max_err = 0.0;
  for (int i = 0; i < ref.natoms(); ++i) {
    const md::Vec3 d = ref.box.min_image(gathered.x[static_cast<std::size_t>(i)],
                                         ref.x[static_cast<std::size_t>(i)]);
    max_err = std::max(max_err, static_cast<double>(md::norm(d)));
  }
  EXPECT_LT(max_err, 5e-4) << "trajectories diverged";
}

TEST(DecomposedEnergy, MatchesReferenceEnergy) {
  const md::System sys = test_system(5000, 31);
  const md::ForceField ff(md::grappa_atom_types(), kCutoff);

  md::PairList ref_list;
  ref_list.build_local(sys.box, sys.x, sys.natoms(), kRlist);
  std::vector<md::Vec3> f_ref(sys.x.size());
  const md::Energies e_ref = md::compute_nonbonded(sys.box, ff, sys.x,
                                                   sys.type, ref_list, f_ref);

  Decomposition dd(sys, GridDims{2, 2, 2}, kRlist);
  dd.exchange_coordinates();
  const auto lists = build_pair_lists(dd, kRlist);
  md::Energies e_dec;
  for (std::size_t r = 0; r < dd.states().size(); ++r) {
    DomainState& st = dd.states()[r];
    std::fill(st.f.begin(), st.f.end(), md::Vec3{});
    const auto e1 = md::compute_nonbonded(dd.grid().box(), ff, st.x, st.type,
                                          lists[r].local, st.f);
    const auto e2 = md::compute_nonbonded(dd.grid().box(), ff, st.x, st.type,
                                          lists[r].nonlocal, st.f);
    e_dec.lj += e1.lj + e2.lj;
    e_dec.coulomb += e1.coulomb + e2.coulomb;
  }
  EXPECT_NEAR(e_dec.lj, e_ref.lj, 1e-6 * std::abs(e_ref.lj) + 1e-5);
  EXPECT_NEAR(e_dec.coulomb, e_ref.coulomb,
              1e-6 * std::abs(e_ref.coulomb) + 1e-5);
}

}  // namespace
}  // namespace hs::dd
