#include "dd/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dd/decomposition.hpp"
#include "md/system.hpp"

namespace hs::dd {
namespace {

md::System small_system(int atoms = 3000, std::uint64_t seed = 42) {
  md::GrappaSpec spec;
  spec.target_atoms = atoms;
  spec.density = 50.0;
  spec.seed = seed;
  return md::build_grappa(spec);
}

struct PlanCase {
  GridDims dims;
  double rc;
};

class PlanInvariants : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanInvariants, StructureIsConsistent) {
  const auto [dims, rc] = GetParam();
  Decomposition dd(small_system(), dims, rc);
  const ExchangePlan& plan = dd.plan();
  const auto& states = dd.states();

  for (const auto& rp : plan.ranks) {
    ASSERT_EQ(static_cast<int>(rp.pulses.size()), plan.total_pulses());
    for (std::size_t p = 0; p < rp.pulses.size(); ++p) {
      const PulseData& pd = rp.pulses[p];
      // Index maps are ascending and unique, referencing valid atoms.
      EXPECT_TRUE(std::is_sorted(pd.index_map.begin(), pd.index_map.end()));
      EXPECT_TRUE(std::adjacent_find(pd.index_map.begin(),
                                     pd.index_map.end()) ==
                  pd.index_map.end());
      for (int idx : pd.index_map) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, pd.atom_offset);  // never references later arrivals
      }
      EXPECT_EQ(pd.send_size, static_cast<int>(pd.index_map.size()));
      // Dependency partition: dep_offset == n_home; counts agree.
      EXPECT_EQ(pd.dep_offset, rp.n_home);
      const int dependent = static_cast<int>(std::count_if(
          pd.index_map.begin(), pd.index_map.end(),
          [&](int i) { return i >= pd.dep_offset; }));
      EXPECT_EQ(dependent, pd.num_dependent);
      if (pd.num_dependent > 0) {
        EXPECT_GE(pd.first_dependent_pulse, 0);
        EXPECT_LT(pd.first_dependent_pulse, static_cast<int>(p));
      } else {
        EXPECT_EQ(pd.first_dependent_pulse, -1);
      }
    }
  }

  // Pairwise consistency: what r sends in pulse p equals what its -dim
  // neighbour receives in pulse p.
  for (const auto& rp : plan.ranks) {
    for (std::size_t p = 0; p < rp.pulses.size(); ++p) {
      const PulseData& pd = rp.pulses[p];
      const PulseData& peer =
          plan.ranks[static_cast<std::size_t>(pd.send_rank)].pulses[p];
      EXPECT_EQ(pd.send_size, peer.recv_size);
      EXPECT_EQ(peer.recv_rank, rp.rank);
    }
  }

  // Atom conservation: home atoms partition the global system.
  int total_home = 0;
  for (const auto& st : states) total_home += st.n_home;
  EXPECT_EQ(total_home, dd.global_atoms());
}

TEST_P(PlanInvariants, FirstPulseIsFullyIndependent) {
  const auto [dims, rc] = GetParam();
  Decomposition dd(small_system(), dims, rc);
  for (const auto& rp : dd.plan().ranks) {
    if (rp.pulses.empty()) continue;
    EXPECT_EQ(rp.pulses[0].num_dependent, 0);
    EXPECT_EQ(rp.pulses[0].first_dependent_pulse, -1);
  }
}

TEST_P(PlanInvariants, HaloMatchesGeometricOracle) {
  const auto [dims, rc] = GetParam();
  const md::System sys = small_system();
  Decomposition dd(sys, dims, rc);
  const DomainGrid& grid = dd.grid();
  const float frc = static_cast<float>(rc);

  for (const auto& st : dd.states()) {
    // Expected halo: every (atom, periodic image) whose image position lies
    // in the extension region [lo_d, hi_d + rc) for all decomposed d
    // (undecomposed dims unconstrained) and is not a home atom position.
    std::multiset<int> expected;
    for (int gid = 0; gid < sys.natoms(); ++gid) {
      const md::Vec3 p = sys.box.wrap(sys.x[static_cast<std::size_t>(gid)]);
      for (int sx = 0; sx <= (grid.dims().nx > 1 ? 1 : 0); ++sx) {
        for (int sy = 0; sy <= (grid.dims().ny > 1 ? 1 : 0); ++sy) {
          for (int sz = 0; sz <= (grid.dims().nz > 1 ? 1 : 0); ++sz) {
            const md::Vec3 img = p + md::Vec3{sx * sys.box.length(0),
                                              sy * sys.box.length(1),
                                              sz * sys.box.length(2)};
            bool in_ext = true;
            bool in_home = true;
            for (int d = 0; d < 3; ++d) {
              if (grid.dims().along(d) < 2) continue;
              if (img[d] < grid.lo(st.rank, d) ||
                  img[d] >= grid.hi(st.rank, d) + frc) {
                in_ext = false;
              }
              if (img[d] < grid.lo(st.rank, d) ||
                  img[d] >= grid.hi(st.rank, d)) {
                in_home = false;
              }
            }
            if (in_ext && !in_home) expected.insert(gid);
          }
        }
      }
    }
    std::multiset<int> actual(st.global_id.begin() + st.n_home,
                              st.global_id.end());
    EXPECT_EQ(actual, expected) << "rank " << st.rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PlanInvariants,
    ::testing::Values(PlanCase{GridDims{4, 1, 1}, 0.9},   // 1D, 1 pulse
                      PlanCase{GridDims{2, 2, 1}, 0.9},   // 2D
                      PlanCase{GridDims{2, 2, 2}, 0.9},   // 3D
                      PlanCase{GridDims{8, 1, 1}, 0.9},   // 1D, 2 pulses
                      PlanCase{GridDims{4, 2, 1}, 1.1},   // 2D, mixed pulses
                      PlanCase{GridDims{1, 1, 4}, 0.9},   // z-only
                      PlanCase{GridDims{1, 3, 1}, 0.9}),  // y-only
    [](const auto& info) {
      const auto& c = info.param;
      return "g" + std::to_string(c.dims.nx) + "x" + std::to_string(c.dims.ny) +
             "x" + std::to_string(c.dims.nz) + "_rc" +
             std::to_string(static_cast<int>(c.rc * 10));
    });

TEST(Plan, TwoPulseDimHasDependentSecondPulse) {
  // 8 slabs over ~4.9 nm box: width ~0.61 < rc 0.9 => 2 pulses; pulse 1
  // forwards pulse-0 arrivals, so it is fully dependent.
  md::GrappaSpec spec;
  spec.target_atoms = 6000;
  spec.density = 50.0;
  const md::System sys = md::build_grappa(spec);
  Decomposition dd(sys, GridDims{8, 1, 1}, 0.9);
  EXPECT_EQ(dd.plan().total_pulses(), 2);
  for (const auto& rp : dd.plan().ranks) {
    const PulseData& p1 = rp.pulses[1];
    EXPECT_EQ(p1.pulse, 1);
    EXPECT_EQ(p1.num_dependent, p1.send_size);
    EXPECT_EQ(p1.first_dependent_pulse, 0);
    EXPECT_GT(p1.send_size, 0);
  }
}

TEST(Plan, PulseOrderIsZThenYThenX) {
  const md::System sys = small_system();
  Decomposition dd(sys, GridDims{2, 2, 2}, 0.9);
  ASSERT_EQ(dd.plan().total_pulses(), 3);
  EXPECT_EQ(dd.plan().pulse_dims[0], 2);
  EXPECT_EQ(dd.plan().pulse_dims[1], 1);
  EXPECT_EQ(dd.plan().pulse_dims[2], 0);
}

TEST(Plan, CoordShiftOnlyAtPeriodicBoundary) {
  const md::System sys = small_system();
  Decomposition dd(sys, GridDims{4, 1, 1}, 0.9);
  for (const auto& rp : dd.plan().ranks) {
    const auto cell = dd.grid().cell_of_rank(rp.rank);
    const PulseData& pd = rp.pulses[0];
    if (cell[0] == 0) {
      EXPECT_FLOAT_EQ(pd.coord_shift.x, sys.box.length(0));
    } else {
      EXPECT_FLOAT_EQ(pd.coord_shift.x, 0.0f);
    }
    EXPECT_FLOAT_EQ(pd.coord_shift.y, 0.0f);
    EXPECT_FLOAT_EQ(pd.coord_shift.z, 0.0f);
  }
}

}  // namespace
}  // namespace hs::dd
