#include "md/cluster_nonbonded.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "md/nonbonded.hpp"
#include "md/pair_list.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Vec3> random_positions(int n, const Box& box, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> x;
  for (int i = 0; i < n; ++i) {
    x.push_back(Vec3{static_cast<float>(rng.uniform(0, box.length(0))),
                     static_cast<float>(rng.uniform(0, box.length(1))),
                     static_cast<float>(rng.uniform(0, box.length(2)))});
  }
  return x;
}

std::vector<int> random_types(int n, int ntypes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> t;
  for (int i = 0; i < n; ++i) {
    t.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(ntypes))));
  }
  return t;
}

// Float pair arithmetic vs the double reference: tolerances looser than
// the scalar kernel's but far tighter than any physical effect.
void expect_forces_close(std::span<const Vec3> got, std::span<const Vec3> ref) {
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const float g = got[i][d], r = ref[i][d];
      EXPECT_NEAR(g, r, 1e-3f + 1e-4f * std::abs(r)) << "atom " << i;
    }
  }
}

TEST(ClusterNonbonded, MatchesReferenceOnRandomBoxes) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  struct Case {
    float lx, ly, lz;
    int n;
    std::uint64_t seed;
  };
  for (const auto& c : {Case{6, 6, 6, 400, 1}, Case{4, 5, 6, 300, 2},
                        Case{3.5f, 3.5f, 3.5f, 150, 3}}) {
    const Box box(c.lx, c.ly, c.lz);
    const auto x = random_positions(c.n, box, c.seed);
    const auto t = random_types(c.n, ff.num_types(), c.seed + 100);

    ClusterPairList list;
    list.build_local(box, x, c.n, ff.cutoff());
    std::vector<Vec3> f(x.size());
    const Energies e = compute_nonbonded_clusters(box, params, list, x, t, f,
                                                  ws);

    std::vector<Vec3> f_ref(x.size());
    const Energies e_ref =
        compute_nonbonded_reference(box, ff, x, t, f_ref);

    expect_forces_close(f, f_ref);
    EXPECT_NEAR(e.lj, e_ref.lj, 1e-4 * (1.0 + std::abs(e_ref.lj)));
    EXPECT_NEAR(e.coulomb, e_ref.coulomb,
                1e-4 * (1.0 + std::abs(e_ref.coulomb)));
  }
}

TEST(ClusterNonbonded, MatchesScalarKernelOnSameList) {
  // Same rlist, same pair set: scalar kernel over the scalar list vs the
  // batched kernel over the cluster list.
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(6, 6, 6);
  const auto x = random_positions(500, box, 4);
  const auto t = random_types(500, ff.num_types(), 5);

  PairList scalar_list;
  scalar_list.build_local(box, x, 500, 1.0);
  std::vector<Vec3> f_scalar(x.size());
  const Energies e_scalar =
      compute_nonbonded(box, ff, x, t, scalar_list, f_scalar);

  ClusterPairList cluster_list;
  cluster_list.build_local(box, x, 500, 1.0);
  std::vector<Vec3> f_cluster(x.size());
  const Energies e_cluster = compute_nonbonded_clusters(
      box, params, cluster_list, x, t, f_cluster, ws);

  expect_forces_close(f_cluster, f_scalar);
  EXPECT_NEAR(e_cluster.lj, e_scalar.lj, 1e-4 * (1.0 + std::abs(e_scalar.lj)));
  EXPECT_NEAR(e_cluster.coulomb, e_scalar.coulomb,
              1e-4 * (1.0 + std::abs(e_scalar.coulomb)));
}

TEST(ClusterNonbonded, ForcesObeyNewtonsThirdLaw) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(5, 5, 5);
  const auto x = random_positions(350, box, 6);
  const auto t = random_types(350, ff.num_types(), 7);
  ClusterPairList list;
  list.build_local(box, x, 350, 1.0);
  std::vector<Vec3> f(x.size());
  compute_nonbonded_clusters(box, params, list, x, t, f, ws);

  double sx = 0, sy = 0, sz = 0, l1 = 0;
  for (const auto& v : f) {
    sx += v.x;
    sy += v.y;
    sz += v.z;
    l1 += std::abs(v.x) + std::abs(v.y) + std::abs(v.z);
  }
  // The net force is a sum of exactly cancelling +/- pair terms; allow
  // only float accumulation noise relative to the total force magnitude.
  const double tol = 1e-6 * (1.0 + l1);
  EXPECT_NEAR(sx, 0.0, tol);
  EXPECT_NEAR(sy, 0.0, tol);
  EXPECT_NEAR(sz, 0.0, tol);
}

TEST(ClusterNonbonded, BufferedListStaysValidUnderSmallDrift) {
  // Build at rlist = cutoff + buffer, drift every atom by < buffer/2,
  // evaluate with the stale list: the runtime cutoff mask must yield the
  // same result as a reference evaluation at the drifted positions.
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(6, 6, 6);
  auto x = random_positions(400, box, 8);
  const auto t = random_types(400, ff.num_types(), 9);
  const double buffer = 0.2;
  ClusterPairList list;
  list.build_local(box, x, 400, ff.cutoff() + buffer);

  util::Rng rng(10);
  for (auto& p : x) {
    const float d = static_cast<float>(buffer / 2.0 * 0.99 / std::sqrt(3.0));
    p = box.wrap(p + Vec3{static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d))});
  }

  std::vector<Vec3> f(x.size());
  const Energies e = compute_nonbonded_clusters(box, params, list, x, t, f,
                                                ws);
  std::vector<Vec3> f_ref(x.size());
  const Energies e_ref = compute_nonbonded_reference(box, ff, x, t, f_ref);
  expect_forces_close(f, f_ref);
  EXPECT_NEAR(e.total(), e_ref.total(), 1e-4 * (1.0 + std::abs(e_ref.total())));
}

TEST(ClusterNonbonded, PruneAtCutoffIsBitNeutral) {
  // Entries dropped by prune(r >= cutoff) contributed exactly +/-0.0, so
  // forces and energies after pruning are bit-identical.
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(6, 6, 6);
  const auto x = random_positions(400, box, 11);
  const auto t = random_types(400, ff.num_types(), 12);
  ClusterPairList list;
  list.build_local(box, x, 400, 1.1);  // buffered

  std::vector<Vec3> f_before(x.size());
  const Energies e_before =
      compute_nonbonded_clusters(box, params, list, x, t, f_before, ws);
  const std::size_t removed = list.prune(box, x, ff.cutoff());
  EXPECT_GT(removed, 0u);
  std::vector<Vec3> f_after(x.size());
  const Energies e_after =
      compute_nonbonded_clusters(box, params, list, x, t, f_after, ws);

  EXPECT_EQ(e_before.lj, e_after.lj);
  EXPECT_EQ(e_before.coulomb, e_after.coulomb);
  for (std::size_t i = 0; i < f_before.size(); ++i) {
    EXPECT_EQ(f_before[i], f_after[i]) << i;
  }
}

TEST(ClusterNonbonded, TinySystemsWithPadSlots) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(3, 3, 3);
  for (int n : {1, 2, 3, 5, 9}) {
    const auto x = random_positions(n, box, 20 + static_cast<std::uint64_t>(n));
    const auto t = random_types(n, ff.num_types(),
                                30 + static_cast<std::uint64_t>(n));
    ClusterPairList list;
    list.build_local(box, x, n, 1.0);
    std::vector<Vec3> f(x.size());
    const Energies e = compute_nonbonded_clusters(box, params, list, x, t, f,
                                                  ws);
    std::vector<Vec3> f_ref(x.size());
    const Energies e_ref = compute_nonbonded_reference(box, ff, x, t, f_ref);
    expect_forces_close(f, f_ref);
    EXPECT_NEAR(e.total(), e_ref.total(),
                1e-4 * (1.0 + std::abs(e_ref.total())))
        << n << " atoms";
  }
}

TEST(ClusterNonbonded, NonlocalListCoversHaloForces) {
  // Decomposed-step shape: home atoms [0, n_home), halo beyond. The
  // cluster non-local kernel must reproduce the scalar non-local kernel
  // (home-halo pairs only; Newton's -F lands in halo slots).
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  NbWorkspace ws;
  const Box box(6, 6, 6);
  const auto x = random_positions(500, box, 13);
  const auto t = random_types(500, ff.num_types(), 14);
  const int n_home = 320;

  PairList scalar_list;
  scalar_list.build_nonlocal(box, x, n_home, 1.0);
  std::vector<Vec3> f_scalar(x.size());
  compute_nonbonded(box, ff, x, t, scalar_list, f_scalar);

  ClusterPairList cluster_list;
  cluster_list.build_nonlocal(box, x, n_home, 1.0);
  std::vector<Vec3> f_cluster(x.size());
  compute_nonbonded_clusters(box, params, cluster_list, x, t, f_cluster, ws);

  expect_forces_close(f_cluster, f_scalar);
}

TEST(NbParamTable, MirrorsForceFieldParameters) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  ASSERT_EQ(params.num_types(), ff.num_types());
  EXPECT_FLOAT_EQ(params.cutoff2(), static_cast<float>(ff.cutoff2()));
  for (int ti = 0; ti < ff.num_types(); ++ti) {
    for (int tj = 0; tj < ff.num_types(); ++tj) {
      const auto& p = ff.pair_params(ti, tj);
      const auto& tp = params.row(ti)[tj];
      EXPECT_FLOAT_EQ(tp.c6, static_cast<float>(p.c6));
      EXPECT_FLOAT_EQ(tp.c12, static_cast<float>(p.c12));
      EXPECT_FLOAT_EQ(tp.qq,
                      static_cast<float>(kCoulombFactor * ff.type(ti).charge *
                                         ff.type(tj).charge));
    }
  }
}

}  // namespace
}  // namespace hs::md
