#include "md/integrator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "md/nonbonded.hpp"
#include "md/system.hpp"

namespace hs::md {
namespace {

TEST(Leapfrog, FreeParticleMovesLinearly) {
  const Box box(100, 100, 100);
  const ForceField ff({AtomType{0.3f, 0.0f, 0.0f, 2.0f}}, 1.0);
  std::vector<int> types = {0};
  std::vector<Vec3> x = {Vec3{1, 1, 1}};
  std::vector<Vec3> v = {Vec3{1, 0, 0}};
  std::vector<Vec3> f = {Vec3{}};
  LeapfrogIntegrator integ(0.5);
  for (int s = 0; s < 4; ++s) integ.step(box, ff, types, f, v, x);
  EXPECT_NEAR(x[0].x, 3.0f, 1e-5f);
  EXPECT_NEAR(x[0].y, 1.0f, 1e-6f);
}

TEST(Leapfrog, ConstantForceAccelerates) {
  const Box box(1000, 1000, 1000);
  const ForceField ff({AtomType{0.3f, 0.0f, 0.0f, 2.0f}}, 1.0);
  std::vector<int> types = {0};
  std::vector<Vec3> x = {Vec3{1, 1, 1}};
  std::vector<Vec3> v = {Vec3{}};
  std::vector<Vec3> f = {Vec3{2, 0, 0}};  // a = 1 nm/ps^2
  LeapfrogIntegrator integ(0.1);
  for (int s = 0; s < 10; ++s) integ.step(box, ff, types, f, v, x);
  EXPECT_NEAR(v[0].x, 1.0f, 1e-5f);  // v = a t = 1 after 1 ps
}

TEST(Leapfrog, WrapsThroughPeriodicBoundary) {
  const Box box(2, 2, 2);
  const ForceField ff({AtomType{0.3f, 0.0f, 0.0f, 1.0f}}, 0.5);
  std::vector<int> types = {0};
  std::vector<Vec3> x = {Vec3{1.9f, 1, 1}};
  std::vector<Vec3> v = {Vec3{1, 0, 0}};
  std::vector<Vec3> f = {Vec3{}};
  LeapfrogIntegrator integ(0.2);
  integ.step(box, ff, types, f, v, x);
  EXPECT_NEAR(x[0].x, 0.1f, 1e-5f);
}

TEST(Leapfrog, EnergyApproximatelyConservedInMicrocanonicalRun) {
  GrappaSpec spec;
  spec.target_atoms = 700;
  spec.density = 20.0;  // dilute => gentle forces on the jittered lattice
  spec.temperature = 120.0;
  System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  LeapfrogIntegrator integ(0.0005);

  const double rlist = 1.1;
  PairList list;
  double e0 = 0.0, e_last = 0.0;
  for (int step = 0; step < 60; ++step) {
    if (step % 10 == 0) {
      list.build_local(sys.box, sys.x, sys.natoms(), rlist);
    }
    std::vector<Vec3> f(sys.x.size());
    const Energies pe =
        compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
    const double total = pe.total() + kinetic_energy(sys, ff);
    if (step == 0) e0 = total;
    e_last = total;
    integ.step(sys.box, ff, sys.type, f, sys.v, sys.x);
  }
  // Leapfrog + single precision + buffered list: expect drift well under 1%
  // of the kinetic energy scale.
  const double scale = std::abs(kinetic_energy(sys, ff)) + 1.0;
  EXPECT_LT(std::abs(e_last - e0) / scale, 0.02)
      << "e0=" << e0 << " e_last=" << e_last;
}

TEST(Leapfrog, VelocityRescalingMovesTemperatureTowardTarget) {
  GrappaSpec spec;
  spec.target_atoms = 2000;
  spec.temperature = 400.0;
  System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  const double t_before = temperature(sys, ff);
  LeapfrogIntegrator::rescale_velocities(t_before, 300.0, 0.1, 0.002, sys.v);
  const double t_after = temperature(sys, ff);
  EXPECT_LT(std::abs(t_after - 300.0), std::abs(t_before - 300.0));
}

}  // namespace
}  // namespace hs::md
