#include "md/soa.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Vec3> random_vecs(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(Vec3{static_cast<float>(rng.uniform(-5, 5)),
                     static_cast<float>(rng.uniform(-5, 5)),
                     static_cast<float>(rng.uniform(-5, 5))});
  }
  return v;
}

TEST(SoaVecs, GatherScatterRoundTrips) {
  const auto src = random_vecs(137, 1);
  SoaVecs soa;
  soa.gather(src);
  ASSERT_EQ(soa.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(soa.at(i), src[i]);
  }
  std::vector<Vec3> back(src.size());
  soa.scatter(back);
  EXPECT_EQ(back, src);
}

TEST(SoaVecs, GatherIndexedFollowsMap) {
  const auto src = random_vecs(50, 2);
  const std::vector<std::int32_t> idx = {4, 4, 0, 49, 17, 3};
  SoaVecs soa;
  soa.gather_indexed(src, idx);
  ASSERT_EQ(soa.size(), idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(soa.at(k), src[static_cast<std::size_t>(idx[k])]);
  }
}

TEST(SoaVecs, ScatterAddIndexedSkipsNegativeAndAccumulates) {
  SoaVecs soa;
  soa.resize(4);
  soa.set(0, Vec3{1, 2, 3});
  soa.set(1, Vec3{10, 20, 30});
  soa.set(2, Vec3{100, 200, 300});
  soa.set(3, Vec3{-1, -1, -1});  // pad slot, must be skipped
  const std::vector<std::int32_t> idx = {1, 1, 0, -1};
  std::vector<Vec3> dst(2, Vec3{0.5f, 0.5f, 0.5f});
  soa.scatter_add_indexed(dst, idx);
  EXPECT_EQ(dst[0], (Vec3{100.5f, 200.5f, 300.5f}));
  EXPECT_EQ(dst[1], (Vec3{11.5f, 22.5f, 33.5f}));
}

TEST(SoaVecs, TailElementsSurviveWhenCountIsNotLaneMultiple) {
  // Regression for the SIMD shims: n % 8 != 0 leaves a scalar tail that
  // the lane-block paths must not drop or overrun. Every shim is
  // elementwise, so results are exact at any dispatched ISA.
  const int n = 1003;
  const auto src = random_vecs(n, 4);

  SoaVecs soa;
  soa.gather(src);
  ASSERT_EQ(soa.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(soa.at(i), src[i]) << i;
  }
  std::vector<Vec3> back(src.size());
  soa.scatter(back);
  EXPECT_EQ(back, src);

  // Indexed gather through a shuffled unique map (reverse order).
  std::vector<std::int32_t> idx(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    idx[static_cast<std::size_t>(k)] = n - 1 - k;
  }
  soa.gather_indexed(src, idx);
  ASSERT_EQ(soa.size(), idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(soa.at(k), src[static_cast<std::size_t>(idx[k])]) << k;
  }

  // Indexed scatter-add back through the same unique map, with a pad
  // slot (-1) in the tail region.
  idx[static_cast<std::size_t>(n - 2)] = -1;
  std::vector<Vec3> dst(static_cast<std::size_t>(n), Vec3{1, 1, 1});
  soa.scatter_add_indexed(dst, idx);
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (idx[ks] < 0) continue;
    const Vec3 expect = Vec3{1, 1, 1} + soa.at(ks);
    EXPECT_EQ(dst[static_cast<std::size_t>(idx[ks])], expect) << k;
  }
  EXPECT_EQ(dst[1], (Vec3{1, 1, 1}));  // slot idx[n-2] pointed at: untouched
}

TEST(SoaVecs, ScatterAddIndexedAcceptsShorterIndexMap) {
  // 8-wide kernels pad the workspace to a whole number of j-cluster
  // pairs, so the force SoA may be longer than the cluster atom map;
  // trailing slots must be ignored.
  const int n = 24;
  const auto vals = random_vecs(n, 5);
  SoaVecs soa;
  soa.gather(vals);
  std::vector<std::int32_t> idx;
  for (int k = 0; k < n - 8; ++k) idx.push_back(k);
  std::vector<Vec3> dst(static_cast<std::size_t>(n - 8), Vec3{});
  soa.scatter_add_indexed(dst, idx);
  for (int k = 0; k < n - 8; ++k) {
    EXPECT_EQ(dst[static_cast<std::size_t>(k)],
              vals[static_cast<std::size_t>(k)])
        << k;
  }
}

TEST(SoaVecs, AssignZeroRecyclesAndZeroes) {
  SoaVecs soa;
  soa.gather(random_vecs(32, 3));
  soa.assign_zero(8);
  ASSERT_EQ(soa.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(soa.at(i), (Vec3{0, 0, 0}));
  }
}

}  // namespace
}  // namespace hs::md
