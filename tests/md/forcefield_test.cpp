#include "md/forcefield.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hs::md {
namespace {

ForceField make_ff(double rc = 0.9) {
  return ForceField({AtomType{0.3f, 1.0f, 1.0f, 18.0f},
                     AtomType{0.3f, 1.0f, -1.0f, 18.0f}},
                    rc);
}

TEST(ForceField, ReactionFieldConstants) {
  const ForceField ff = make_ff(0.9);
  // Conducting boundary: krf = 1/(2 rc^3), crf = 1/rc + krf rc^2 = 1.5/rc.
  EXPECT_NEAR(ff.krf(), 1.0 / (2.0 * 0.9 * 0.9 * 0.9), 1e-12);
  EXPECT_NEAR(ff.crf(), 1.5 / 0.9, 1e-12);
}

TEST(ForceField, FiniteEpsilonRfConstants) {
  const ForceField ff({AtomType{}}, 1.0, /*epsilon_rf=*/78.0);
  const double krf = (78.0 - 1.0) / (2.0 * 78.0 + 1.0);
  EXPECT_NEAR(ff.krf(), krf, 1e-12);
}

TEST(ForceField, CoulombForceVanishesAtCutoff) {
  const ForceField ff = make_ff(0.9);
  const double rc2 = ff.cutoff2();
  // Pure-charge pair params (no LJ).
  const PairParams no_lj{0.0, 0.0};
  const PairTerm t = ff.evaluate(rc2, no_lj, 1.0);
  EXPECT_NEAR(t.f_over_r, 0.0, 1e-9);
}

TEST(ForceField, CoulombEnergyVanishesAtCutoff) {
  const ForceField ff = make_ff(0.9);
  const PairParams no_lj{0.0, 0.0};
  const PairTerm t = ff.evaluate(ff.cutoff2(), no_lj, 1.0);
  EXPECT_NEAR(t.e_coulomb, 0.0, 1e-9);
}

TEST(ForceField, LjMinimumAtTwoToSixthSigma) {
  const ForceField ff = make_ff(2.0);
  const auto& p = ff.pair_params(0, 0);
  // sigma is stored as float; allow for the float->double representation.
  const double sigma = static_cast<double>(ff.type(0).sigma);
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  const PairTerm at_min = ff.evaluate(rmin * rmin, p, 0.0);
  EXPECT_NEAR(at_min.f_over_r, 0.0, 1e-6);
  EXPECT_NEAR(at_min.e_lj, -1.0, 1e-6);  // epsilon = 1
}

TEST(ForceField, LjRepulsiveInsideMinimum) {
  const ForceField ff = make_ff(2.0);
  const auto& p = ff.pair_params(0, 0);
  const double sigma = static_cast<double>(ff.type(0).sigma);
  const PairTerm t = ff.evaluate(sigma * sigma, p, 0.0);  // r = sigma
  EXPECT_GT(t.f_over_r, 0.0);                             // pushes apart
  EXPECT_NEAR(t.e_lj, 0.0, 1e-9);                         // V(sigma) = 0
}

TEST(ForceField, OppositeChargesAttract) {
  const ForceField ff = make_ff(2.0);
  const PairParams no_lj{0.0, 0.0};
  const double qq = kCoulombFactor * 1.0 * -1.0;
  const PairTerm t = ff.evaluate(0.5 * 0.5, no_lj, qq);
  EXPECT_LT(t.f_over_r, 0.0);
  EXPECT_LT(t.e_coulomb, 0.0);
}

TEST(ForceField, LorentzBerthelotCombination) {
  const ForceField ff({AtomType{0.2f, 1.0f, 0, 1}, AtomType{0.4f, 4.0f, 0, 1}},
                      1.0);
  const auto& mixed = ff.pair_params(0, 1);
  const double sigma = 0.5 * (static_cast<double>(ff.type(0).sigma) +
                              ff.type(1).sigma);
  const double eps = std::sqrt(static_cast<double>(ff.type(0).epsilon) *
                               ff.type(1).epsilon);
  EXPECT_NEAR(mixed.c6, 4.0 * eps * std::pow(sigma, 6.0), 1e-12);
  EXPECT_NEAR(mixed.c12, 4.0 * eps * std::pow(sigma, 12.0), 1e-12);
  // Symmetry.
  EXPECT_EQ(ff.pair_params(0, 1).c6, ff.pair_params(1, 0).c6);
}

}  // namespace
}  // namespace hs::md
