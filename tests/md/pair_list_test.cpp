#include "md/pair_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Vec3> random_positions(int n, const Box& box, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> x;
  for (int i = 0; i < n; ++i) {
    x.push_back(Vec3{static_cast<float>(rng.uniform(0, box.length(0))),
                     static_cast<float>(rng.uniform(0, box.length(1))),
                     static_cast<float>(rng.uniform(0, box.length(2)))});
  }
  return x;
}

using PairSet = std::set<std::pair<int, int>>;

PairSet to_set(const PairList& list) {
  PairSet s;
  for (const auto& p : list.pairs()) s.insert({p.i, p.j});
  return s;
}

PairSet brute_local(const Box& box, const std::vector<Vec3>& x, int n_home,
                    double r) {
  PairSet s;
  for (int i = 0; i < n_home; ++i) {
    for (int j = i + 1; j < n_home; ++j) {
      if (box.distance2(x[static_cast<std::size_t>(i)],
                        x[static_cast<std::size_t>(j)]) <=
          static_cast<float>(r * r)) {
        s.insert({i, j});
      }
    }
  }
  return s;
}

TEST(PairList, LocalListMatchesBruteForce) {
  const Box box(6, 6, 6);
  const auto x = random_positions(400, box, 5);
  PairList list;
  list.build_local(box, x, 400, 1.0);
  EXPECT_EQ(to_set(list), brute_local(box, x, 400, 1.0));
}

TEST(PairList, LocalListHasNoSelfOrReversedPairs) {
  const Box box(5, 5, 5);
  const auto x = random_positions(200, box, 6);
  PairList list;
  list.build_local(box, x, 200, 1.2);
  for (const auto& p : list.pairs()) {
    EXPECT_LT(p.i, p.j);
  }
}

TEST(PairList, NonlocalListMatchesBruteForce) {
  const Box box(6, 6, 6);
  auto x = random_positions(300, box, 7);
  const int n_home = 200;
  PairList list;
  list.build_nonlocal(box, x, n_home, 1.0);
  PairSet expected;
  for (int i = 0; i < n_home; ++i) {
    for (int j = n_home; j < 300; ++j) {
      if (box.distance2(x[static_cast<std::size_t>(i)],
                        x[static_cast<std::size_t>(j)]) <= 1.0f) {
        expected.insert({i, j});
      }
    }
  }
  EXPECT_EQ(to_set(list), expected);
}

TEST(PairList, NonlocalEmptyHaloYieldsEmptyList) {
  const Box box(5, 5, 5);
  const auto x = random_positions(100, box, 8);
  PairList list;
  list.build_nonlocal(box, x, 100, 1.0);
  EXPECT_EQ(list.size(), 0u);
}

TEST(PairList, PruneDropsOnlyDistantPairs) {
  const Box box(6, 6, 6);
  auto x = random_positions(300, box, 9);
  PairList list;
  list.build_local(box, x, 300, 1.2);  // buffered list
  const std::size_t before = list.size();
  const std::size_t removed = list.prune(box, x, 1.0);
  EXPECT_EQ(list.size() + removed, before);
  // Every surviving pair is within the prune radius...
  for (const auto& p : list.pairs()) {
    EXPECT_LE(box.distance2(x[static_cast<std::size_t>(p.i)],
                            x[static_cast<std::size_t>(p.j)]),
              1.0f + 1e-6f);
  }
  // ...and the survivors are exactly the brute-force r=1.0 pairs.
  EXPECT_EQ(to_set(list), brute_local(box, x, 300, 1.0));
}

TEST(PairList, BufferedListSurvivesSmallDisplacements) {
  // The Verlet-buffer contract: a list built with rlist = rc + buffer
  // contains every pair within rc after any displacement where each atom
  // moves less than buffer/2.
  const Box box(6, 6, 6);
  auto x = random_positions(300, box, 10);
  const double rc = 0.9, buffer = 0.2;
  PairList list;
  list.build_local(box, x, 300, rc + buffer);
  // Move every atom by less than buffer/2 in a random direction.
  util::Rng rng(11);
  auto moved = x;
  for (auto& p : moved) {
    const float d = static_cast<float>(buffer / 2.0 * 0.99 / std::sqrt(3.0));
    p = box.wrap(p + Vec3{static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d))});
  }
  const PairSet after = brute_local(box, moved, 300, rc);
  const PairSet listed = to_set(list);
  for (const auto& p : after) {
    EXPECT_TRUE(listed.count(p)) << p.first << "," << p.second;
  }
}

}  // namespace
}  // namespace hs::md
