#include "md/ewald.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hs::md {
namespace {

/// Rock-salt (NaCl) conventional cell: 8 ions, alternating charges on a
/// simple cubic sublattice with nearest-neighbour distance r0.
struct RockSalt {
  Box box;
  std::vector<Vec3> x;
  std::vector<double> q;
};

RockSalt rock_salt(double r0 = 1.0) {
  RockSalt rs{Box(static_cast<float>(2 * r0), static_cast<float>(2 * r0),
                  static_cast<float>(2 * r0)),
              {},
              {}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        rs.x.push_back(Vec3{static_cast<float>(i * r0),
                            static_cast<float>(j * r0),
                            static_cast<float>(k * r0)});
        rs.q.push_back((i + j + k) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
  return rs;
}

TEST(EwaldDirect, ReproducesMadelungConstant) {
  // The classic validation: the NaCl Madelung constant M = 1.747565.
  // Total cell energy = -8 * M / (2 * r0) in unit-prefactor convention.
  // r_cut must stay below L/2 = 1.0 = the nearest-neighbour distance, so
  // every pair is handled in reciprocal space; beta = 4 makes the excluded
  // real-space tail erfc(4)/1 ~ 1.5e-8 negligible.
  const RockSalt rs = rock_salt();
  EwaldParams p;
  p.beta = 4.0;
  p.r_cut = 0.99;
  p.mmax = 16;
  const EwaldResult r = ewald_direct(rs.box, rs.x, rs.q, p);
  EXPECT_NEAR(r.total(), -4.0 * 1.747565, 2e-4);
}

TEST(EwaldDirect, EnergyIsBetaIndependent) {
  // The splitting parameter moves weight between real/recip/self parts but
  // the total is an invariant of the physical system.
  const RockSalt rs = rock_salt();
  EwaldParams p;
  p.r_cut = 0.99;
  p.mmax = 18;
  p.beta = 3.5;
  const double e1 = ewald_direct(rs.box, rs.x, rs.q, p).total();
  p.beta = 4.5;
  const double e2 = ewald_direct(rs.box, rs.x, rs.q, p).total();
  EXPECT_NEAR(e1, e2, 5e-4);
}

TEST(EwaldDirect, ForcesVanishOnPerfectLattice) {
  const RockSalt rs = rock_salt();
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 0.99;
  p.mmax = 12;
  const EwaldResult r = ewald_direct(rs.box, rs.x, rs.q, p);
  for (const auto& f : r.forces) {
    EXPECT_NEAR(f.x, 0.0, 1e-6);
    EXPECT_NEAR(f.y, 0.0, 1e-6);
    EXPECT_NEAR(f.z, 0.0, 1e-6);
  }
}

TEST(EwaldDirect, ForceMatchesEnergyGradient) {
  // Displace one ion; compare analytic force against a central difference
  // of the total energy.
  RockSalt rs = rock_salt();
  rs.x[0].x += 0.08f;
  rs.x[0].y -= 0.05f;
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 0.99;
  p.mmax = 12;
  const EwaldResult r = ewald_direct(rs.box, rs.x, rs.q, p);

  const double h = 1e-4;
  for (int axis = 0; axis < 3; ++axis) {
    auto displaced = rs.x;
    displaced[0].set(axis, displaced[0][axis] + static_cast<float>(h));
    const double ep = ewald_direct(rs.box, displaced, rs.q, p).total();
    displaced[0].set(axis, displaced[0][axis] - 2.0f * static_cast<float>(h));
    const double em = ewald_direct(rs.box, displaced, rs.q, p).total();
    const double numeric = -(ep - em) / (2.0 * h);
    const double analytic = axis == 0   ? r.forces[0].x
                            : axis == 1 ? r.forces[0].y
                                        : r.forces[0].z;
    EXPECT_NEAR(analytic, numeric, 5e-3) << "axis " << axis;
  }
}

TEST(Bspline, PartitionOfUnity) {
  // Cardinal B-splines sum to 1 over the integer shifts for any u.
  for (int order : {2, 3, 4, 5}) {
    for (double frac : {0.0, 0.21, 0.5, 0.77}) {
      double sum = 0.0;
      for (int k = 0; k < order; ++k) sum += bspline(order, frac + k);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order << " u " << frac;
    }
  }
}

TEST(Bspline, DerivativeMatchesFiniteDifference) {
  for (double u : {0.5, 1.3, 2.6, 3.4}) {
    const double h = 1e-6;
    const double numeric = (bspline(4, u + h) - bspline(4, u - h)) / (2 * h);
    EXPECT_NEAR(bspline_derivative(4, u), numeric, 1e-6) << u;
  }
}

struct RandomSystem {
  Box box{4, 4, 4};
  std::vector<Vec3> x;
  std::vector<double> q;
};

RandomSystem random_neutral_system(int n, std::uint64_t seed) {
  RandomSystem rs;
  util::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    rs.x.push_back(Vec3{static_cast<float>(rng.uniform(0, 4)),
                        static_cast<float>(rng.uniform(0, 4)),
                        static_cast<float>(rng.uniform(0, 4))});
    rs.q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  return rs;
}

TEST(Pme, EnergyMatchesDirectEwald) {
  const RandomSystem rs = random_neutral_system(24, 42);
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 1.2;
  p.mmax = 14;
  p.grid = {32, 32, 32};
  const double direct = ewald_direct(rs.box, rs.x, rs.q, p).e_recip;
  const double mesh = pme(rs.box, rs.x, rs.q, p).e_recip;
  EXPECT_NEAR(mesh, direct, 2e-3 * std::abs(direct) + 1e-5);
}

TEST(Pme, ForcesMatchDirectEwald) {
  const RandomSystem rs = random_neutral_system(16, 7);
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 1.2;
  p.mmax = 14;
  p.grid = {32, 32, 32};
  const EwaldResult direct = ewald_direct(rs.box, rs.x, rs.q, p);
  const EwaldResult mesh = pme(rs.box, rs.x, rs.q, p);
  double fscale = 0.0;
  for (const auto& f : direct.forces) {
    fscale = std::max({fscale, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
  }
  for (std::size_t i = 0; i < direct.forces.size(); ++i) {
    EXPECT_NEAR(mesh.forces[i].x, direct.forces[i].x, 5e-3 * fscale) << i;
    EXPECT_NEAR(mesh.forces[i].y, direct.forces[i].y, 5e-3 * fscale) << i;
    EXPECT_NEAR(mesh.forces[i].z, direct.forces[i].z, 5e-3 * fscale) << i;
  }
}

TEST(Pme, NetForceIsSmallButNotExactlyZero) {
  // Known SPME artifact: analytic B-spline differentiation conserves
  // energy but not momentum exactly (Essmann et al. §4); the net force is
  // a small grid-level residual that codes optionally remove. Assert it is
  // tiny relative to the force scale, and that it shrinks with the mesh.
  const RandomSystem rs = random_neutral_system(20, 11);
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 1.2;
  auto net = [&](std::array<int, 3> grid) {
    p.grid = grid;
    const EwaldResult mesh = pme(rs.box, rs.x, rs.q, p);
    double fx = 0, fy = 0, fz = 0, scale = 0;
    for (const auto& f : mesh.forces) {
      fx += f.x;
      fy += f.y;
      fz += f.z;
      scale = std::max({scale, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
    }
    return std::pair<double, double>(
        std::sqrt(fx * fx + fy * fy + fz * fz), scale);
  };
  const auto coarse = net({16, 16, 16});
  const auto fine = net({64, 64, 64});
  EXPECT_LT(coarse.first, 0.05 * coarse.second);
  EXPECT_LT(fine.first, coarse.first);
}

TEST(Pme, MadelungViaMesh) {
  const RockSalt rs = rock_salt();
  EwaldParams p;
  p.beta = 4.0;
  p.r_cut = 0.99;
  p.grid = {32, 32, 32};
  const EwaldResult r = pme(rs.box, rs.x, rs.q, p);
  EXPECT_NEAR(r.total(), -4.0 * 1.747565, 2e-3);
}

TEST(Pme, FinerGridConverges) {
  const RandomSystem rs = random_neutral_system(16, 13);
  EwaldParams p;
  p.beta = 2.5;
  p.r_cut = 1.2;
  p.mmax = 14;
  const double exact = ewald_direct(rs.box, rs.x, rs.q, p).e_recip;
  p.grid = {16, 16, 16};
  const double coarse = std::abs(pme(rs.box, rs.x, rs.q, p).e_recip - exact);
  p.grid = {64, 64, 64};
  const double fine = std::abs(pme(rs.box, rs.x, rs.q, p).e_recip - exact);
  EXPECT_LT(fine, coarse);
}

TEST(Ewald, RejectsBadInputs) {
  const RockSalt rs = rock_salt();
  EwaldParams p;
  p.r_cut = 1.5;  // >= L/2
  EXPECT_THROW(ewald_real_space(rs.box, rs.x, rs.q, p), std::invalid_argument);
  std::vector<double> short_q(rs.q.begin(), rs.q.end() - 1);
  p.r_cut = 0.9;
  EXPECT_THROW(ewald_real_space(rs.box, rs.x, short_q, p),
               std::invalid_argument);
}

}  // namespace
}  // namespace hs::md
