#include "md/nonbonded.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "md/system.hpp"

namespace hs::md {
namespace {

TEST(Nonbonded, TwoBodyForceIsAntisymmetric) {
  const Box box(10, 10, 10);
  const ForceField ff(grappa_atom_types(), 0.9);
  std::vector<Vec3> x = {Vec3{5, 5, 5}, Vec3{5.4f, 5, 5}};
  std::vector<int> types = {0, 1};
  std::vector<Vec3> f(2);
  PairList list;
  list.build_local(box, x, 2, 0.9);
  ASSERT_EQ(list.size(), 1u);
  compute_nonbonded(box, ff, x, types, list, f);
  EXPECT_FLOAT_EQ(f[0].x, -f[1].x);
  EXPECT_FLOAT_EQ(f[0].y, -f[1].y);
  EXPECT_FLOAT_EQ(f[0].z, -f[1].z);
  EXPECT_NE(f[0].x, 0.0f);
}

TEST(Nonbonded, PairBeyondCutoffContributesNothing) {
  const Box box(10, 10, 10);
  const ForceField ff(grappa_atom_types(), 0.9);
  std::vector<Vec3> x = {Vec3{1, 1, 1}, Vec3{3, 1, 1}};
  std::vector<int> types = {0, 1};
  std::vector<Vec3> f(2);
  PairList list;
  list.build_local(box, x, 2, 2.5);  // list radius covers the pair
  ASSERT_EQ(list.size(), 1u);
  const Energies e = compute_nonbonded(box, ff, x, types, list, f);
  EXPECT_EQ(f[0].x, 0.0f);  // cutoff check inside the kernel skips it
  EXPECT_EQ(e.total(), 0.0);
}

TEST(Nonbonded, ListedKernelMatchesReference) {
  GrappaSpec spec;
  spec.target_atoms = 600;
  spec.density = 40.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);

  std::vector<Vec3> f_list(sys.x.size());
  PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), 0.9);
  const Energies e_list =
      compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f_list);

  std::vector<Vec3> f_ref(sys.x.size());
  const Energies e_ref =
      compute_nonbonded_reference(sys.box, ff, sys.x, sys.type, f_ref);

  EXPECT_NEAR(e_list.lj, e_ref.lj, 1e-6 * std::abs(e_ref.lj) + 1e-6);
  EXPECT_NEAR(e_list.coulomb, e_ref.coulomb,
              1e-6 * std::abs(e_ref.coulomb) + 1e-6);
  for (std::size_t i = 0; i < f_ref.size(); ++i) {
    // Summation order differs between the two kernels; compare with a
    // relative tolerance on the force magnitude.
    const float tol = 1e-5f * norm(f_ref[i]) + 1e-3f;
    EXPECT_NEAR(f_list[i].x, f_ref[i].x, tol) << i;
    EXPECT_NEAR(f_list[i].y, f_ref[i].y, tol) << i;
    EXPECT_NEAR(f_list[i].z, f_ref[i].z, tol) << i;
  }
}

TEST(Nonbonded, BufferedListGivesSameForcesAsExactList) {
  // Pairs in the buffer shell are beyond the cutoff; the kernel's distance
  // check must make them no-ops.
  GrappaSpec spec;
  spec.target_atoms = 400;
  spec.density = 40.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.8);

  std::vector<Vec3> f_exact(sys.x.size());
  PairList exact;
  exact.build_local(sys.box, sys.x, sys.natoms(), 0.8);
  compute_nonbonded(sys.box, ff, sys.x, sys.type, exact, f_exact);

  std::vector<Vec3> f_buffered(sys.x.size());
  PairList buffered;
  buffered.build_local(sys.box, sys.x, sys.natoms(), 1.1);
  compute_nonbonded(sys.box, ff, sys.x, sys.type, buffered, f_buffered);

  for (std::size_t i = 0; i < f_exact.size(); ++i) {
    // Pair visit order differs (different cell-grid sizes), so float
    // accumulation order differs; contributions are identical.
    const float tol = 1e-5f * norm(f_exact[i]) + 1e-4f;
    EXPECT_NEAR(f_exact[i].x, f_buffered[i].x, tol);
    EXPECT_NEAR(f_exact[i].y, f_buffered[i].y, tol);
    EXPECT_NEAR(f_exact[i].z, f_buffered[i].z, tol);
  }
}

TEST(Nonbonded, TotalForceIsZero) {
  // Newton's third law: internal forces sum to ~0.
  GrappaSpec spec;
  spec.target_atoms = 500;
  spec.density = 40.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  std::vector<Vec3> f(sys.x.size());
  PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), 0.9);
  compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
  double fx = 0, fy = 0, fz = 0;
  for (const auto& v : f) {
    fx += v.x;
    fy += v.y;
    fz += v.z;
  }
  EXPECT_NEAR(fx, 0.0, 0.5);
  EXPECT_NEAR(fy, 0.0, 0.5);
  EXPECT_NEAR(fz, 0.0, 0.5);
}

TEST(Nonbonded, EnergiesAreFinite) {
  GrappaSpec spec;
  spec.target_atoms = 1000;
  spec.density = 30.0;  // moderate density: attractive regime
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  std::vector<Vec3> f(sys.x.size());
  PairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), 0.9);
  const Energies e = compute_nonbonded(sys.box, ff, sys.x, sys.type, list, f);
  EXPECT_TRUE(std::isfinite(e.lj));
  EXPECT_TRUE(std::isfinite(e.coulomb));
}

}  // namespace
}  // namespace hs::md
