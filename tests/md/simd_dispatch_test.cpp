// Runtime SIMD dispatch: registry/force-override semantics, the 4x8 wide
// list view, and cross-ISA parity of every dispatched kernel. The parity
// tests iterate md::simd::supported_isas(), so on an AVX-512 host they
// cover Scalar vs Sse2 vs Avx2 vs Avx512 (including 4x4 vs 4x8 geometry)
// and degrade gracefully on narrower hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "md/cluster_nonbonded.hpp"
#include "md/cluster_pair_list.hpp"
#include "md/integrator.hpp"
#include "md/simd/isa.hpp"
#include "md/simd/ops.hpp"
#include "md/system.hpp"
#include "util/rng.hpp"

namespace hs::md {
namespace {

using simd::KernelIsa;

std::vector<Vec3> random_positions(int n, const Box& box, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> x;
  for (int i = 0; i < n; ++i) {
    x.push_back(Vec3{static_cast<float>(rng.uniform(0, box.length(0))),
                     static_cast<float>(rng.uniform(0, box.length(1))),
                     static_cast<float>(rng.uniform(0, box.length(2)))});
  }
  return x;
}

std::vector<int> random_types(int n, int ntypes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> t;
  for (int i = 0; i < n; ++i) {
    t.push_back(
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ntypes))));
  }
  return t;
}

// Float-accumulation tolerance: the lane blocks sum the same pair terms
// in a different order (8/16-wide partial sums), so per-component error
// scales with the accumulated force magnitude — slightly looser than the
// cluster-vs-reference tolerance, which compares against double math.
void expect_forces_close(std::span<const Vec3> got, std::span<const Vec3> ref,
                         const char* label) {
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const float g = got[i][d], r = ref[i][d];
      EXPECT_NEAR(g, r, 1e-3f + 5e-4f * std::abs(r))
          << label << " atom " << i;
    }
  }
}

// ---- registry / override semantics ------------------------------------

TEST(SimdDispatch, NamesAndParseRoundTrip) {
  for (const KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse2,
                              KernelIsa::Avx2, KernelIsa::Avx512}) {
    const auto parsed = simd::parse_isa(simd::isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << simd::isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(simd::parse_isa("").has_value());
  EXPECT_FALSE(simd::parse_isa("avx").has_value());
  EXPECT_FALSE(simd::parse_isa("AVX2").has_value());
}

TEST(SimdDispatch, UnknownForcedIsaErrorsCleanly) {
  EXPECT_THROW(simd::resolve_isa("neon"), std::invalid_argument);
  EXPECT_THROW(simd::resolve_isa("avx1024"), std::invalid_argument);
}

TEST(SimdDispatch, UnavailableForcedIsaErrorsCleanly) {
  // Exercised against an explicit availability list so the error path is
  // testable regardless of what this host actually supports.
  const std::vector<KernelIsa> narrow = {KernelIsa::Scalar, KernelIsa::Sse2};
  EXPECT_EQ(simd::resolve_isa_checked("sse2", narrow), KernelIsa::Sse2);
  EXPECT_EQ(simd::resolve_isa_checked("scalar", narrow), KernelIsa::Scalar);
  EXPECT_THROW(simd::resolve_isa_checked("avx2", narrow), std::runtime_error);
  EXPECT_THROW(simd::resolve_isa_checked("avx512", narrow),
               std::runtime_error);
  EXPECT_THROW(simd::resolve_isa_checked("neon", narrow),
               std::invalid_argument);
}

TEST(SimdDispatch, SupportedIsasAscendingFromScalar) {
  const auto isas = simd::supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), KernelIsa::Scalar);
  EXPECT_TRUE(std::is_sorted(isas.begin(), isas.end()));
  EXPECT_EQ(isas.back(), simd::detect_best_isa());
  for (const KernelIsa isa : isas) EXPECT_TRUE(simd::isa_available(isa));
}

TEST(SimdDispatch, GeometryPerIsa) {
  EXPECT_EQ(simd::j_cluster_width(KernelIsa::Scalar), 4);
  EXPECT_EQ(simd::j_cluster_width(KernelIsa::Sse2), 4);
  EXPECT_EQ(simd::j_cluster_width(KernelIsa::Avx2), 8);
  EXPECT_EQ(simd::j_cluster_width(KernelIsa::Avx512), 8);
}

// ---- the 4x8 wide view ------------------------------------------------

using Pair = std::pair<std::int32_t, std::int32_t>;

std::vector<Pair> pairs_from_wide_view(const ClusterPairList& list) {
  constexpr int kC = ClusterPairList::kClusterSize;
  const auto atoms = list.cluster_atoms();
  std::vector<Pair> pairs;
  for (const auto& ie : list.i_entries8()) {
    for (std::int32_t e = ie.j_begin; e < ie.j_end; ++e) {
      const auto& je = list.j_entries8()[static_cast<std::size_t>(e)];
      for (int ii = 0; ii < kC; ++ii) {
        for (int jj = 0; jj < 2 * kC; ++jj) {
          if ((je.mask >> (ii * 2 * kC + jj)) & 1u) {
            pairs.emplace_back(
                atoms[static_cast<std::size_t>(ie.ci * kC + ii)],
                atoms[static_cast<std::size_t>(je.cj8 * 2 * kC + jj)]);
          }
        }
      }
    }
  }
  return pairs;
}

TEST(WideClusterView, HoldsExactlyTheCanonicalPairSet) {
  const Box box(6, 6, 6);
  const auto x = random_positions(700, box, 41);
  ClusterPairList list;
  list.build_local(box, x, 700, 1.0);

  std::vector<Pair> narrow;
  list.for_each_pair([&](std::int32_t i, std::int32_t j) {
    narrow.emplace_back(i, j);
  });
  auto wide = pairs_from_wide_view(list);
  ASSERT_EQ(wide.size(), list.pair_count());
  std::sort(narrow.begin(), narrow.end());
  std::sort(wide.begin(), wide.end());
  EXPECT_EQ(narrow, wide);

  // Prune invalidates and rebuilds the view; the contract must hold on
  // the pruned list too.
  list.prune(box, x, 0.9);
  narrow.clear();
  list.for_each_pair([&](std::int32_t i, std::int32_t j) {
    narrow.emplace_back(i, j);
  });
  wide = pairs_from_wide_view(list);
  ASSERT_EQ(wide.size(), list.pair_count());
  std::sort(narrow.begin(), narrow.end());
  std::sort(wide.begin(), wide.end());
  EXPECT_EQ(narrow, wide);
}

// ---- cross-ISA parity: cluster nonbonded ------------------------------

struct NbResult {
  std::vector<Vec3> f;
  Energies e;
};

NbResult eval(const Box& box, const NbParamTable& params,
              const ClusterPairList& list, std::span<const Vec3> x,
              std::span<const int> t, KernelIsa isa) {
  NbWorkspace ws;
  NbResult r;
  r.f.assign(x.size(), Vec3{});
  r.e = compute_nonbonded_clusters(box, params, list, x, t, r.f, ws, isa);
  return r;
}

void check_isa_parity(const Box& box, const NbParamTable& params,
                      const ClusterPairList& list, std::span<const Vec3> x,
                      std::span<const int> t) {
  const NbResult ref = eval(box, params, list, x, t, KernelIsa::Scalar);
  for (const KernelIsa isa : simd::supported_isas()) {
    if (isa == KernelIsa::Scalar) continue;
    const NbResult got = eval(box, params, list, x, t, isa);
    expect_forces_close(got.f, ref.f, simd::isa_name(isa));
    EXPECT_NEAR(got.e.lj, ref.e.lj, 1e-4 * (1.0 + std::abs(ref.e.lj)))
        << simd::isa_name(isa);
    EXPECT_NEAR(got.e.coulomb, ref.e.coulomb,
                1e-4 * (1.0 + std::abs(ref.e.coulomb)))
        << simd::isa_name(isa);
  }
}

TEST(CrossIsaParity, LocalForcesAgreeAt3k) {
  md::GrappaSpec spec;
  spec.target_atoms = 3000;
  spec.density = 50.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  ClusterPairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), 1.0);
  check_isa_parity(sys.box, params, list, sys.x, sys.type);
}

TEST(CrossIsaParity, LocalForcesAgreeAt24k) {
  md::GrappaSpec spec;
  spec.target_atoms = 24000;
  spec.density = 50.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  ClusterPairList list;
  list.build_local(sys.box, sys.x, sys.natoms(), 1.0);
  check_isa_parity(sys.box, params, list, sys.x, sys.type);
}

TEST(CrossIsaParity, NonlocalListAgrees) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  const Box box(6, 6, 6);
  const auto x = random_positions(900, box, 42);
  const auto t = random_types(900, ff.num_types(), 43);
  ClusterPairList list;
  list.build_nonlocal(box, x, 600, 1.0);
  check_isa_parity(box, params, list, x, t);
}

TEST(CrossIsaParity, BufferedDriftThenPruneAgrees) {
  // The Verlet-buffer path: a buffered list evaluated at drifted
  // positions, then pruned. Every ISA must agree with Scalar on both the
  // stale-list evaluation and the post-prune one.
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  const Box box(6, 6, 6);
  auto x = random_positions(800, box, 44);
  const auto t = random_types(800, ff.num_types(), 45);
  ClusterPairList list;
  list.build_local(box, x, 800, 1.1);

  util::Rng rng(46);
  const float d = static_cast<float>(0.1 * 0.99 / std::sqrt(3.0));
  for (auto& p : x) {
    p = box.wrap(p + Vec3{static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d)),
                          static_cast<float>(rng.uniform(-d, d))});
  }
  check_isa_parity(box, params, list, x, t);
  ASSERT_GT(list.prune(box, x, ff.cutoff()), 0u);
  check_isa_parity(box, params, list, x, t);
}

TEST(CrossIsaParity, PruneIsBitNeutralAtEveryIsa) {
  // Pruned entries contributed exactly +/-0 on the 4x4 path; the 4x8
  // merge only relocates mask nibbles, so the same must hold per ISA.
  const ForceField ff(grappa_atom_types(), 0.9);
  const NbParamTable params(ff);
  const Box box(6, 6, 6);
  const auto x = random_positions(500, box, 47);
  const auto t = random_types(500, ff.num_types(), 48);
  for (const KernelIsa isa : simd::supported_isas()) {
    ClusterPairList list;
    list.build_local(box, x, 500, 1.1);
    const NbResult before = eval(box, params, list, x, t, isa);
    ASSERT_GT(list.prune(box, x, ff.cutoff()), 0u);
    const NbResult after = eval(box, params, list, x, t, isa);
    EXPECT_EQ(before.e.lj, after.e.lj) << simd::isa_name(isa);
    EXPECT_EQ(before.e.coulomb, after.e.coulomb) << simd::isa_name(isa);
    for (std::size_t i = 0; i < before.f.size(); ++i) {
      EXPECT_EQ(before.f[i], after.f[i]) << simd::isa_name(isa) << " " << i;
    }
  }
}

// ---- cross-ISA parity: integrator -------------------------------------

TEST(CrossIsaParity, IntegratorSse2IsBitExactWithScalar) {
  // Forced Scalar/Sse2 both take the legacy double-arithmetic update —
  // the forced-sse2 determinism contract for golden traces.
  const ForceField ff(grappa_atom_types(), 0.9);
  const Box box(5, 5, 5);
  const int n = 777;
  const auto x0 = random_positions(n, box, 50);
  const auto t = random_types(n, ff.num_types(), 51);
  const auto f = random_positions(n, box, 52);  // arbitrary force values
  const auto v0 = random_positions(n, box, 53);

  const LeapfrogIntegrator integ(2e-3);
  auto xa = x0, va = v0, xb = x0, vb = v0;
  for (int step = 0; step < 5; ++step) {
    integ.step(box, ff, t, f, va, xa, KernelIsa::Scalar);
    integ.step(box, ff, t, f, vb, xb, KernelIsa::Sse2);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(xa[static_cast<std::size_t>(i)], xb[static_cast<std::size_t>(i)])
        << i;
    EXPECT_EQ(va[static_cast<std::size_t>(i)], vb[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(CrossIsaParity, IntegratorWideIsasMatchScalarClosely) {
  const ForceField ff(grappa_atom_types(), 0.9);
  const Box box(5, 5, 5);
  const int n = 1003;  // non-multiple of 8: covers the vector tail
  const auto x0 = random_positions(n, box, 54);
  const auto t = random_types(n, ff.num_types(), 55);
  const auto f = random_positions(n, box, 56);
  const auto v0 = random_positions(n, box, 57);
  const LeapfrogIntegrator integ(2e-3);

  auto xr = x0, vr = v0;
  for (int step = 0; step < 5; ++step) {
    integ.step(box, ff, t, f, vr, xr, KernelIsa::Scalar);
  }
  for (const KernelIsa isa : simd::supported_isas()) {
    if (isa < KernelIsa::Avx2) continue;
    auto xw = x0, vw = v0;
    for (int step = 0; step < 5; ++step) {
      integ.step(box, ff, t, f, vw, xw, isa);
    }
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      for (int d = 0; d < 3; ++d) {
        // Positions live on a torus: compare modulo the box length so a
        // float-rounding wrap right at a boundary is not a false failure.
        const double L = box.length(d);
        double dx = std::abs(static_cast<double>(xw[k][d]) - xr[k][d]);
        dx = std::min(dx, L - dx);
        EXPECT_LT(dx, 1e-4) << simd::isa_name(isa) << " x " << i;
        EXPECT_NEAR(vw[k][d], vr[k][d], 1e-4f)
            << simd::isa_name(isa) << " v " << i;
      }
    }
  }
}

// ---- cross-ISA parity: elementwise ops (bit-exact) --------------------

TEST(CrossIsaParity, PackUnpackReduceAreBitIdentical) {
  const Box box(6, 6, 6);
  const int n = 1200;
  const auto x = random_positions(n, box, 60);
  util::Rng rng(61);
  std::vector<int> idx;
  for (int k = 0; k < 531; ++k) {  // unique ascending subset
    idx.push_back(static_cast<int>(rng.next_below(2)) + (k > 0 ? idx.back() : 0) + 1);
  }
  ASSERT_LT(idx.back(), n);
  const Vec3 shift{0.25f, -6.0f, 0.125f};

  std::vector<Vec3> ref_pack(idx.size());
  simd::pack_shifted(x, idx, 0, idx.size(), shift, ref_pack.data(),
                     KernelIsa::Scalar);
  std::vector<Vec3> ref_f = random_positions(n, box, 62);
  const auto incoming = random_positions(static_cast<int>(idx.size()), box, 63);
  simd::unpack_accumulate(ref_f, idx, incoming, KernelIsa::Scalar);
  std::vector<Vec3> ref_acc = random_positions(n, box, 64);
  simd::accumulate(ref_acc, x, KernelIsa::Scalar);

  for (const KernelIsa isa : simd::supported_isas()) {
    if (isa == KernelIsa::Scalar) continue;
    std::vector<Vec3> pack(idx.size());
    simd::pack_shifted(x, idx, 0, idx.size(), shift, pack.data(), isa);
    std::vector<Vec3> f = random_positions(n, box, 62);
    simd::unpack_accumulate(f, idx, incoming, isa);
    std::vector<Vec3> acc = random_positions(n, box, 64);
    simd::accumulate(acc, x, isa);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      EXPECT_EQ(pack[k], ref_pack[k]) << simd::isa_name(isa) << " " << k;
    }
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      EXPECT_EQ(f[k], ref_f[k]) << simd::isa_name(isa) << " f " << i;
      EXPECT_EQ(acc[k], ref_acc[k]) << simd::isa_name(isa) << " acc " << i;
    }
  }
}

TEST(CrossIsaParity, SubRangePackMatchesFullPack) {
  // The SHMEM transport packs in chunks (first/count sub-ranges); chunked
  // packing must equal one full pack at any ISA.
  const Box box(6, 6, 6);
  const auto x = random_positions(500, box, 65);
  std::vector<int> idx;
  for (int k = 0; k < 333; ++k) idx.push_back((k * 3) % 500);
  const Vec3 shift{-6.0f, 0.0f, 3.5f};

  for (const KernelIsa isa : simd::supported_isas()) {
    std::vector<Vec3> full(idx.size());
    simd::pack_shifted(x, idx, 0, idx.size(), shift, full.data(), isa);
    std::vector<Vec3> chunked(idx.size());
    const std::size_t cut = 101;
    simd::pack_shifted(x, idx, 0, cut, shift, chunked.data(), isa);
    simd::pack_shifted(x, idx, cut, idx.size() - cut, shift,
                       chunked.data() + cut, isa);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      EXPECT_EQ(chunked[k], full[k]) << simd::isa_name(isa) << " " << k;
    }
  }
}

}  // namespace
}  // namespace hs::md
