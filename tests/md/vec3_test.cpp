#include "md/vec3.hpp"

#include <gtest/gtest.h>

namespace hs::md {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0f * a, (Vec3{2, 4, 6}));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{1, 2, 2};
  EXPECT_FLOAT_EQ(dot(a, a), 9.0f);
  EXPECT_FLOAT_EQ(norm2(a), 9.0f);
  EXPECT_FLOAT_EQ(norm(a), 3.0f);
}

TEST(Vec3, IndexAccess) {
  Vec3 a{1, 2, 3};
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(a[1], 2.0f);
  EXPECT_EQ(a[2], 3.0f);
  a.set(1, 9.0f);
  EXPECT_EQ(a.y, 9.0f);
}

TEST(Vec3, CompoundAssignment) {
  Vec3 a{1, 1, 1};
  a += Vec3{1, 2, 3};
  a -= Vec3{0, 1, 2};
  a *= 3.0f;
  EXPECT_EQ(a, (Vec3{6, 6, 6}));
}

}  // namespace
}  // namespace hs::md
