#include "md/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

TEST(Fft, MatchesNaiveDft) {
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    auto sig = random_signal(n, n);
    const auto expect = naive_dft(sig, false);
    fft(sig, false);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(sig[k].real(), expect[k].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(sig[k].imag(), expect[k].imag(), 1e-9);
    }
  }
}

TEST(Fft, RoundTripRecoversSignal) {
  auto sig = random_signal(128, 9);
  const auto original = sig;
  fft(sig, false);
  fft(sig, true);
  for (std::size_t k = 0; k < sig.size(); ++k) {
    EXPECT_NEAR(sig[k].real() / 128.0, original[k].real(), 1e-10);
    EXPECT_NEAR(sig[k].imag() / 128.0, original[k].imag(), 1e-10);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(6);
  EXPECT_THROW(fft(v, false), std::invalid_argument);
}

TEST(Fft, ParsevalHolds) {
  auto sig = random_signal(64, 3);
  double time_energy = 0.0;
  for (const auto& c : sig) time_energy += std::norm(c);
  fft(sig, false);
  double freq_energy = 0.0;
  for (const auto& c : sig) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-9);
}

TEST(Grid3D, SingleModeTransforms) {
  // A pure plane wave concentrates into one reciprocal bin.
  Grid3D g(8, 8, 8);
  const int m = 3;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 8; ++z) {
        const double phase = 2.0 * std::numbers::pi * m * x / 8.0;
        g.at(x, y, z) = Complex(std::cos(phase), std::sin(phase));
      }
    }
  }
  g.fft3(false);  // forward (-i) places exp(+2 pi i m x / 8) into bin m
  for (int x = 0; x < 8; ++x) {
    const double expected = x == m ? 512.0 : 0.0;
    EXPECT_NEAR(std::abs(g.at(x, 0, 0)), expected, 1e-8) << x;
  }
}

TEST(Grid3D, RoundTrip) {
  Grid3D g(4, 8, 4);
  util::Rng rng(5);
  for (auto& c : g.data()) c = Complex(rng.uniform(-1, 1), 0.0);
  const auto original = g.data();
  g.fft3(false);
  g.fft3(true);
  const double norm = static_cast<double>(g.size());
  for (std::size_t k = 0; k < g.size(); ++k) {
    EXPECT_NEAR(g.data()[k].real() / norm, original[k].real(), 1e-10);
  }
}

TEST(Grid3D, RejectsBadDims) {
  EXPECT_THROW(Grid3D(6, 8, 8), std::invalid_argument);
}

}  // namespace
}  // namespace hs::md
