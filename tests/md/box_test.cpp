#include "md/box.hpp"

#include <gtest/gtest.h>

namespace hs::md {
namespace {

TEST(Box, WrapBringsPositionsInside) {
  const Box box(10, 20, 30);
  const Vec3 w = box.wrap(Vec3{-1, 25, 31});
  EXPECT_FLOAT_EQ(w.x, 9.0f);
  EXPECT_FLOAT_EQ(w.y, 5.0f);
  EXPECT_FLOAT_EQ(w.z, 1.0f);
}

TEST(Box, WrapIsIdempotentInside) {
  const Box box(10, 10, 10);
  const Vec3 p{3.5f, 0.0f, 9.999f};
  EXPECT_EQ(box.wrap(p), p);
}

TEST(Box, WrapHandlesExactBoundary) {
  const Box box(10, 10, 10);
  const Vec3 w = box.wrap(Vec3{10.0f, 20.0f, -10.0f});
  EXPECT_GE(w.x, 0.0f);
  EXPECT_LT(w.x, 10.0f);
  EXPECT_GE(w.y, 0.0f);
  EXPECT_LT(w.y, 10.0f);
  EXPECT_GE(w.z, 0.0f);
  EXPECT_LT(w.z, 10.0f);
}

TEST(Box, MinImagePicksNearestImage) {
  const Box box(10, 10, 10);
  const Vec3 a{0.5f, 5.0f, 5.0f};
  const Vec3 b{9.5f, 5.0f, 5.0f};
  const Vec3 d = box.min_image(a, b);
  EXPECT_FLOAT_EQ(d.x, 1.0f);  // across the boundary, not 9 through the box
  EXPECT_FLOAT_EQ(d.y, 0.0f);
}

TEST(Box, MinImageDirectWhenClose) {
  const Box box(10, 10, 10);
  const Vec3 d = box.min_image(Vec3{4, 4, 4}, Vec3{6, 5, 4});
  EXPECT_FLOAT_EQ(d.x, -2.0f);
  EXPECT_FLOAT_EQ(d.y, -1.0f);
  EXPECT_FLOAT_EQ(d.z, 0.0f);
}

TEST(Box, MinImageWorksForOutOfBoxCoordinates) {
  // Halo atoms arrive pre-shifted, possibly outside [0, L).
  const Box box(10, 10, 10);
  const Vec3 home{9.8f, 5.0f, 5.0f};
  const Vec3 halo{10.3f, 5.0f, 5.0f};  // shifted image of 0.3
  EXPECT_NEAR(box.distance2(home, halo), 0.25f, 1e-6f);
}

TEST(Box, Distance2MatchesNorm) {
  const Box box(100, 100, 100);  // effectively no wrapping
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 6, 3};
  EXPECT_FLOAT_EQ(box.distance2(a, b), 25.0f);
}

TEST(Box, Volume) {
  const Box box(2, 3, 4);
  EXPECT_DOUBLE_EQ(box.volume(), 24.0);
}

}  // namespace
}  // namespace hs::md
