#include "md/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hs::md {
namespace {

TEST(GrappaBuilder, HitsTargetAtomCountApproximately) {
  GrappaSpec spec;
  spec.target_atoms = 4000;
  const System sys = build_grappa(spec);
  EXPECT_NEAR(sys.natoms(), 4000, 400);
  EXPECT_EQ(sys.x.size(), sys.v.size());
  EXPECT_EQ(sys.x.size(), sys.type.size());
}

TEST(GrappaBuilder, DensityMatchesSpec) {
  GrappaSpec spec;
  spec.target_atoms = 8000;
  spec.density = 50.0;
  const System sys = build_grappa(spec);
  EXPECT_NEAR(sys.natoms() / sys.box.volume(), 50.0, 0.5);
}

TEST(GrappaBuilder, AllPositionsInsideBox) {
  GrappaSpec spec;
  spec.target_atoms = 3000;
  const System sys = build_grappa(spec);
  for (const auto& p : sys.x) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], 0.0f);
      EXPECT_LT(p[d], sys.box.length(d));
    }
  }
}

TEST(GrappaBuilder, IsChargeNeutral) {
  GrappaSpec spec;
  spec.target_atoms = 5000;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  EXPECT_NEAR(total_charge(sys, ff), 0.0, 1e-6);
}

TEST(GrappaBuilder, DeterministicForSeed) {
  GrappaSpec spec;
  spec.target_atoms = 1000;
  const System a = build_grappa(spec);
  const System b = build_grappa(spec);
  ASSERT_EQ(a.natoms(), b.natoms());
  for (int i = 0; i < a.natoms(); ++i) {
    EXPECT_EQ(a.x[static_cast<std::size_t>(i)], b.x[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.type[static_cast<std::size_t>(i)], b.type[static_cast<std::size_t>(i)]);
  }
}

TEST(GrappaBuilder, DifferentSeedsDiffer) {
  GrappaSpec spec;
  spec.target_atoms = 1000;
  const System a = build_grappa(spec);
  spec.seed += 1;
  const System b = build_grappa(spec);
  int same = 0;
  for (int i = 0; i < std::min(a.natoms(), b.natoms()); ++i) {
    same += a.x[static_cast<std::size_t>(i)] == b.x[static_cast<std::size_t>(i)];
  }
  EXPECT_LT(same, a.natoms() / 10);
}

TEST(GrappaBuilder, InitialTemperatureNearTarget) {
  GrappaSpec spec;
  spec.target_atoms = 20000;
  spec.temperature = 300.0;
  const System sys = build_grappa(spec);
  const ForceField ff(grappa_atom_types(), 0.9);
  EXPECT_NEAR(temperature(sys, ff), 300.0, 10.0);
}

TEST(GrappaBuilder, NetMomentumIsZero) {
  GrappaSpec spec;
  spec.target_atoms = 2000;
  const System sys = build_grappa(spec);
  const auto types = grappa_atom_types();
  double px = 0, py = 0, pz = 0;
  for (int i = 0; i < sys.natoms(); ++i) {
    const double m = types[static_cast<std::size_t>(sys.type[static_cast<std::size_t>(i)])].mass;
    px += m * sys.v[static_cast<std::size_t>(i)].x;
    py += m * sys.v[static_cast<std::size_t>(i)].y;
    pz += m * sys.v[static_cast<std::size_t>(i)].z;
  }
  EXPECT_NEAR(px, 0.0, 1e-2);
  EXPECT_NEAR(py, 0.0, 1e-2);
  EXPECT_NEAR(pz, 0.0, 1e-2);
}

TEST(GrappaBuilder, MixtureFractionsRoughly40_40_20) {
  GrappaSpec spec;
  spec.target_atoms = 30000;
  const System sys = build_grappa(spec);
  int counts[3] = {0, 0, 0};
  for (int t : sys.type) ++counts[t];
  const double n = sys.natoms();
  EXPECT_NEAR(counts[0] / n, 0.4, 0.02);
  EXPECT_NEAR(counts[1] / n, 0.4, 0.02);
  EXPECT_NEAR(counts[2] / n, 0.2, 0.02);
}

}  // namespace
}  // namespace hs::md
