#include "md/cell_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace hs::md {
namespace {

std::vector<Vec3> random_positions(int n, const Box& box, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vec3> x;
  x.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.push_back(Vec3{static_cast<float>(rng.uniform(0, box.length(0))),
                     static_cast<float>(rng.uniform(0, box.length(1))),
                     static_cast<float>(rng.uniform(0, box.length(2)))});
  }
  return x;
}

std::set<int> brute_force_neighbors(const Box& box, const std::vector<Vec3>& x,
                                    const Vec3& p, double r) {
  std::set<int> out;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (box.distance2(p, x[j]) <= static_cast<float>(r * r)) {
      out.insert(static_cast<int>(j));
    }
  }
  return out;
}

TEST(CellList, CandidatesAreSupersetOfNeighbors) {
  const Box box(6, 6, 6);
  const auto x = random_positions(500, box, 1);
  const double r = 1.0;
  CellList cells(box, r);
  cells.build(x);
  for (int qi = 0; qi < 20; ++qi) {
    const Vec3& p = x[static_cast<std::size_t>(qi * 17)];
    std::set<int> candidates;
    cells.for_each_candidate(p, [&](int j) { candidates.insert(j); });
    const auto expected = brute_force_neighbors(box, x, p, r);
    for (int j : expected) {
      EXPECT_TRUE(candidates.count(j)) << "missing neighbor " << j;
    }
  }
}

TEST(CellList, NoDuplicateCandidates) {
  const Box box(5, 5, 5);
  const auto x = random_positions(200, box, 2);
  CellList cells(box, 1.0);
  cells.build(x);
  std::vector<int> seen;
  cells.for_each_candidate(x[0], [&](int j) { seen.push_back(j); });
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(CellList, SmallBoxFallsBackToFewCells) {
  // Box barely larger than the radius: 1-2 cells per dim; stencil must
  // still enumerate every atom exactly once.
  const Box box(2.2f, 2.2f, 2.2f);
  const auto x = random_positions(50, box, 3);
  CellList cells(box, 1.0);
  cells.build(x);
  std::vector<int> seen;
  cells.for_each_candidate(x[0], [&](int j) { seen.push_back(j); });
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  EXPECT_EQ(seen.size(), 50u);  // every atom is a candidate in a tiny box
}

TEST(CellList, HandlesOutOfBoxPositions) {
  // Halo coordinates may be outside [0, L); they are wrapped for binning.
  const Box box(10, 10, 10);
  std::vector<Vec3> x = {Vec3{10.5f, 5, 5}, Vec3{0.4f, 5, 5}};
  CellList cells(box, 1.0);
  cells.build(x);
  std::set<int> seen;
  cells.for_each_candidate(Vec3{0.5f, 5, 5}, [&](int j) { seen.insert(j); });
  EXPECT_TRUE(seen.count(0));  // wrapped image of 10.5 is 0.5
  EXPECT_TRUE(seen.count(1));
}

TEST(CellList, DimsReflectBoxAndCellSize) {
  const Box box(10, 5, 2.5f);
  CellList cells(box, 1.0);
  EXPECT_EQ(cells.cells_per_dim(0), 10);
  EXPECT_EQ(cells.cells_per_dim(1), 5);
  EXPECT_EQ(cells.cells_per_dim(2), 2);
}

TEST(CellList, EmptyBuildIsSafe) {
  const Box box(5, 5, 5);
  CellList cells(box, 1.0);
  cells.build({});
  int count = 0;
  cells.for_each_candidate(Vec3{1, 1, 1}, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace hs::md
